//! `prop::option::of` — strategies for `Option<T>`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy producing `Some` three times out of four, like upstream's
/// default `prob`.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn new_value(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.below(4) == 0 {
            None
        } else {
            Some(self.inner.new_value(rng))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_both_variants() {
        let strat = of(0u8..10);
        let mut rng = TestRng::from_seed(15);
        let values: Vec<Option<u8>> = (0..100).map(|_| strat.new_value(&mut rng)).collect();
        assert!(values.iter().any(|v| v.is_none()));
        assert!(values.iter().any(|v| v.is_some()));
    }
}
