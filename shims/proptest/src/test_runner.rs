//! Deterministic RNG, per-suite configuration, and failure reporting.

use std::fmt;

/// A deterministic generator (splitmix64) seeding each test case from the
/// test's path and case index, so failures reproduce without a regressions
/// file.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn from_seed(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x5DEECE66D,
        }
    }

    /// The RNG for case `case` of the test named `name`.
    pub fn for_case(name: &str, case: u64) -> Self {
        let mut hash: u64 = 0xcbf29ce484222325;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x100000001b3);
        }
        let salt = std::env::var("PROPTEST_RNG_SALT")
            .ok()
            .and_then(|s| s.parse::<u64>().ok())
            .unwrap_or(0);
        TestRng::from_seed(hash ^ case.wrapping_mul(0x9e3779b97f4a7c15) ^ salt)
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be positive.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Per-suite configuration (subset of proptest's `Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each property runs. The `PROPTEST_CASES` environment
    /// variable overrides whatever the suite requests, so CI can pin a
    /// faster (or more thorough) budget without touching the code.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases: env_cases().unwrap_or(cases),
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig::with_cases(256)
    }
}

fn env_cases() -> Option<u32> {
    std::env::var("PROPTEST_CASES").ok()?.parse().ok()
}

/// A failed property invocation; carried back to the runner which panics
/// with the generated inputs attached.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }

    /// Proptest-compatible alias.
    pub fn reject(message: impl Into<String>) -> Self {
        TestCaseError::fail(message)
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_per_name_and_case() {
        let a: Vec<u64> = {
            let mut rng = TestRng::for_case("suite::test", 3);
            (0..4).map(|_| rng.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut rng = TestRng::for_case("suite::test", 3);
            (0..4).map(|_| rng.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut rng = TestRng::for_case("suite::test", 4);
            (0..4).map(|_| rng.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn below_and_unit_are_in_range() {
        let mut rng = TestRng::from_seed(9);
        for _ in 0..1000 {
            assert!(rng.below(7) < 7);
            let f = rng.unit_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
