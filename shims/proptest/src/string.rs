//! String generation from a regex subset.
//!
//! Supports the pattern features the workspace's property tests use:
//!
//! - character classes `[a-z0-9_€é😀]` with ranges and `\`-escapes
//! - single literal characters (with `\`-escapes)
//! - literal groups `(abc)`, usually with an optional quantifier
//! - quantifiers: `{m,n}`, `{n}`, `?` (applied to the preceding atom)
//! - `\PC` — "any printable character" (non-control Unicode)
//!
//! Anything outside that subset panics with the offending pattern, so a new
//! test pattern fails loudly instead of generating the wrong language.

use crate::test_runner::TestRng;
use std::iter::Peekable;
use std::str::Chars;

enum Part {
    /// Inclusive code-point ranges with a total weight for uniform choice.
    Class(Vec<(u32, u32)>),
    /// A fixed string emitted verbatim per repetition.
    Literal(String),
    /// `\PC`: any printable character.
    AnyPrintable,
}

struct Atom {
    part: Part,
    min: usize,
    max: usize,
}

/// Printable ranges used for `\PC` (ASCII, Latin/European, some emoji).
const PRINTABLE: &[(u32, u32)] = &[(0x20, 0x7e), (0xc0, 0x24f), (0x1f600, 0x1f640)];

/// Generate one string matching `pattern`.
pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
    let atoms = parse(pattern);
    let mut out = String::new();
    for atom in &atoms {
        let count = atom.min + rng.below((atom.max - atom.min + 1) as u64) as usize;
        for _ in 0..count {
            match &atom.part {
                Part::Literal(text) => out.push_str(text),
                Part::Class(ranges) => out.push(pick(ranges, rng)),
                Part::AnyPrintable => out.push(pick(PRINTABLE, rng)),
            }
        }
    }
    out
}

fn pick(ranges: &[(u32, u32)], rng: &mut TestRng) -> char {
    let total: u64 = ranges.iter().map(|&(lo, hi)| u64::from(hi - lo + 1)).sum();
    let mut offset = rng.below(total);
    for &(lo, hi) in ranges {
        let width = u64::from(hi - lo + 1);
        if offset < width {
            return char::from_u32(lo + offset as u32)
                .expect("string pattern produced an invalid code point");
        }
        offset -= width;
    }
    unreachable!("offset within total weight")
}

fn parse(pattern: &str) -> Vec<Atom> {
    let mut chars = pattern.chars().peekable();
    let mut atoms = Vec::new();
    while let Some(c) = chars.next() {
        let part = match c {
            '[' => parse_class(&mut chars, pattern),
            '(' => parse_group(&mut chars, pattern),
            '\\' => match chars.next() {
                Some('P') => match chars.next() {
                    Some('C') => Part::AnyPrintable,
                    other => unsupported(pattern, &format!("\\P{other:?}")),
                },
                Some(escaped) if escaped.is_ascii_alphanumeric() => {
                    unsupported(pattern, &format!("escape `\\{escaped}`"))
                }
                Some(escaped) => Part::Literal(escaped.to_string()),
                None => unsupported(pattern, "trailing backslash"),
            },
            '.' | '*' | '+' | '|' | '^' | '$' => {
                unsupported(pattern, &format!("metacharacter `{c}`"))
            }
            literal => Part::Literal(literal.to_string()),
        };
        let (min, max) = parse_quantifier(&mut chars, pattern);
        atoms.push(Atom { part, min, max });
    }
    atoms
}

fn parse_class(chars: &mut Peekable<Chars>, pattern: &str) -> Part {
    let mut ranges: Vec<(u32, u32)> = Vec::new();
    loop {
        let c = match chars.next() {
            Some(']') => break,
            Some('\\') => class_escape(chars.next(), pattern),
            Some(c) => c,
            None => unsupported(pattern, "unterminated character class"),
        };
        // `a-z` range (a lone `-` before `]` is a literal dash).
        if chars.peek() == Some(&'-') {
            let mut ahead = chars.clone();
            ahead.next();
            match ahead.peek() {
                Some(&end) if end != ']' => {
                    chars.next();
                    let end = match chars.next() {
                        Some('\\') => class_escape(chars.next(), pattern),
                        Some(e) => e,
                        None => unsupported(pattern, "unterminated class range"),
                    };
                    assert!(
                        (c as u32) <= (end as u32),
                        "invalid class range {c}-{end} in pattern {pattern:?}"
                    );
                    ranges.push((c as u32, end as u32));
                    continue;
                }
                _ => {}
            }
        }
        ranges.push((c as u32, c as u32));
    }
    if ranges.is_empty() {
        unsupported(pattern, "empty character class");
    }
    Part::Class(ranges)
}

/// Resolve `\x` inside a character class or literal group. Only punctuation
/// escapes are literal; alphanumeric escapes (`\n`, `\d`, `\w`, ...) are
/// regex metasyntax this shim does not implement, so they panic instead of
/// silently generating the letter. (Real control characters typed directly
/// into the pattern string — e.g. via Rust's own `"\n"` — need no escape.)
fn class_escape(escaped: Option<char>, pattern: &str) -> char {
    match escaped {
        Some(c) if c.is_ascii_alphanumeric() => {
            unsupported(pattern, &format!("class escape `\\{c}`"))
        }
        Some(c) => c,
        None => unsupported(pattern, "trailing backslash in class"),
    }
}

fn parse_group(chars: &mut Peekable<Chars>, pattern: &str) -> Part {
    let mut literal = String::new();
    loop {
        match chars.next() {
            Some(')') => break,
            Some('\\') => literal.push(class_escape(chars.next(), pattern)),
            Some('[') | Some('(') => unsupported(pattern, "nested class/group"),
            Some(c) => literal.push(c),
            None => unsupported(pattern, "unterminated group"),
        }
    }
    Part::Literal(literal)
}

fn parse_quantifier(chars: &mut Peekable<Chars>, pattern: &str) -> (usize, usize) {
    match chars.peek() {
        Some('?') => {
            chars.next();
            (0, 1)
        }
        Some('{') => {
            chars.next();
            let mut spec = String::new();
            loop {
                match chars.next() {
                    Some('}') => break,
                    Some(c) => spec.push(c),
                    None => unsupported(pattern, "unterminated quantifier"),
                }
            }
            let parse_count = |text: &str| -> usize {
                text.trim()
                    .parse()
                    .unwrap_or_else(|_| unsupported(pattern, &format!("bad quantifier `{spec}`")))
            };
            match spec.split_once(',') {
                Some((min, max)) => {
                    let (min, max) = (parse_count(min), parse_count(max));
                    assert!(min <= max, "inverted quantifier {{{spec}}} in {pattern:?}");
                    (min, max)
                }
                None => {
                    let n = parse_count(&spec);
                    (n, n)
                }
            }
        }
        _ => (1, 1),
    }
}

fn unsupported(pattern: &str, what: &str) -> ! {
    panic!(
        "proptest shim: unsupported regex feature ({what}) in string strategy {pattern:?}; \
         supported: classes [..], literals, (literal)? groups, {{m,n}} quantifiers, \\PC"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(pattern: &str, seed: u64) -> Vec<String> {
        let mut rng = TestRng::from_seed(seed);
        (0..200).map(|_| generate(pattern, &mut rng)).collect()
    }

    #[test]
    fn class_with_ranges_and_escapes() {
        for s in sample("[a-z0-9_\\-]{1,8}", 1) {
            assert!((1..=8).contains(&s.chars().count()), "{s:?}");
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_' || c == '-'));
        }
    }

    #[test]
    fn optional_group_and_exact_counts() {
        let samples = sample("[a-f]{3}(\\.json)?", 2);
        assert!(samples.iter().any(|s| s.ends_with(".json")));
        assert!(samples.iter().any(|s| !s.ends_with(".json")));
        for s in &samples {
            assert_eq!(s.trim_end_matches(".json").len(), 3, "{s:?}");
        }
    }

    #[test]
    fn unicode_class_members_appear() {
        let samples = sample("[aé😀]{1,1}", 3);
        assert!(samples.iter().any(|s| s == "é"));
        assert!(samples.iter().any(|s| s == "😀"));
        assert!(samples.iter().any(|s| s == "a"));
    }

    #[test]
    fn printable_escape_generates_no_controls() {
        for s in sample("\\PC{0,64}", 4) {
            assert!(s.chars().count() <= 64);
            assert!(s.chars().all(|c| !c.is_control()), "{s:?}");
        }
    }

    #[test]
    fn zero_width_quantifier_allows_empty() {
        assert!(sample("[a-z]{0,2}", 5).iter().any(|s| s.is_empty()));
    }

    #[test]
    #[should_panic(expected = "unsupported regex feature")]
    fn unsupported_features_fail_loudly() {
        let mut rng = TestRng::from_seed(6);
        generate("a+", &mut rng);
    }

    #[test]
    #[should_panic(expected = "class escape `\\d`")]
    fn alphanumeric_class_escapes_fail_instead_of_going_literal() {
        let mut rng = TestRng::from_seed(7);
        generate("[a-z\\d]{1,4}", &mut rng);
    }
}
