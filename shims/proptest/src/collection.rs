//! Collection strategies: `vec` and `btree_map`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::collections::BTreeMap;
use std::ops::{Range, RangeInclusive};

/// An inclusive size window for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        self.min + rng.below((self.max - self.min + 1) as u64) as usize
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(range: Range<usize>) -> Self {
        assert!(range.start < range.end, "empty collection size range");
        SizeRange {
            min: range.start,
            max: range.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(range: RangeInclusive<usize>) -> Self {
        assert!(range.start() <= range.end(), "empty collection size range");
        SizeRange {
            min: *range.start(),
            max: *range.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        SizeRange {
            min: exact,
            max: exact,
        }
    }
}

/// Strategy for `Vec<T>` with sizes drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.pick(rng);
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}

/// Strategy for `BTreeMap<K, V>`. Key collisions may make the map smaller
/// than the drawn size, matching upstream's behavior of treating the size as
/// an upper bound under a saturated key space.
pub fn btree_map<K, V>(key: K, value: V, size: impl Into<SizeRange>) -> BTreeMapStrategy<K, V>
where
    K: Strategy,
    K::Value: Ord,
    V: Strategy,
{
    BTreeMapStrategy {
        key,
        value,
        size: size.into(),
    }
}

pub struct BTreeMapStrategy<K, V> {
    key: K,
    value: V,
    size: SizeRange,
}

impl<K, V> Strategy for BTreeMapStrategy<K, V>
where
    K: Strategy,
    K::Value: Ord,
    V: Strategy,
{
    type Value = BTreeMap<K::Value, V::Value>;

    fn new_value(&self, rng: &mut TestRng) -> BTreeMap<K::Value, V::Value> {
        let len = self.size.pick(rng);
        let mut map = BTreeMap::new();
        for _ in 0..len {
            map.insert(self.key.new_value(rng), self.value.new_value(rng));
        }
        map
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_sizes_cover_the_window() {
        let strat = vec(0u8..4, 1..4);
        let mut rng = TestRng::from_seed(13);
        let mut seen = [false; 5];
        for _ in 0..300 {
            seen[strat.new_value(&mut rng).len()] = true;
        }
        assert_eq!(seen, [false, true, true, true, false]);
    }

    #[test]
    fn exact_sizes_and_maps() {
        let mut rng = TestRng::from_seed(14);
        let grid = vec(vec(0u32..2, 3..=3), 3..=3).new_value(&mut rng);
        assert_eq!(grid.len(), 3);
        assert!(grid.iter().all(|row| row.len() == 3));
        let map = btree_map(0u8..50, 0u8..3, 4..5).new_value(&mut rng);
        assert!(map.len() <= 4);
    }
}
