//! Offline shim for the subset of `proptest` used by this workspace.
//!
//! The build environment has no access to crates.io, so this crate provides
//! a generation-only property-testing harness with proptest's API shape:
//! the [`proptest!`] macro, the [`strategy::Strategy`] trait with
//! `prop_map`/`prop_flat_map`/`prop_recursive`/`boxed`, range and string
//! (regex-subset) strategies, `prop::collection::{vec, btree_map}`,
//! `prop::option::of`, `any::<T>()`, and the `prop_assert*` macros.
//!
//! Differences from real proptest, deliberately accepted:
//! - **No shrinking.** A failing case reports the generated inputs verbatim.
//! - **Deterministic seeding.** Case `i` of test `t` derives its RNG seed
//!   from `(t, i)`, so runs are reproducible without a persistence file.
//!   Set `PROPTEST_RNG_SALT` to explore a different deterministic stream.
//! - **Regex strategies** support the subset used here: character classes
//!   (with ranges and escapes), literal atoms, optional literal groups
//!   `(...)?`, counted repetition `{m,n}`, and `\PC` (any printable char).
//! - `PROPTEST_CASES` overrides the per-suite case count, as upstream.

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// Namespace alias so `prop::collection::vec(..)` works after
/// `use proptest::prelude::*`, mirroring proptest's prelude.
pub mod prop {
    pub use crate::collection;
    pub use crate::option;
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Build a strategy as the uniform union of several strategies with the same
/// value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Fail the current test case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fail the current test case unless both expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    stringify!($left),
                    stringify!($right),
                    left,
                    right
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "{}\n  left: {:?}\n right: {:?}",
                    format!($($fmt)+),
                    left,
                    right
                ),
            ));
        }
    }};
}

/// Fail the current test case if both expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if left == right {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                left
            )));
        }
    }};
}

/// Declare property tests. Supports the upstream surface used in this
/// workspace: an optional `#![proptest_config(..)]` header and `#[test]`
/// functions whose arguments are drawn from strategies with `name in strat`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr); $(
        $(#[$meta:meta])+
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])+
            fn $name() {
                let config = $config;
                let cases = config.cases.max(1);
                for case in 0..cases {
                    let mut rng = $crate::test_runner::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        case as u64,
                    );
                    $(
                        let $arg = $crate::strategy::Strategy::new_value(&($strategy), &mut rng);
                    )+
                    let outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(
                            move || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                                $body
                                ::std::result::Result::Ok(())
                            },
                        ),
                    );
                    match outcome {
                        ::std::result::Result::Ok(::std::result::Result::Ok(())) => {}
                        failed => {
                            // The body consumed the inputs; the RNG is
                            // deterministic per (test, case), so regenerate
                            // them for the report. Passing cases pay nothing.
                            let mut rng = $crate::test_runner::TestRng::for_case(
                                concat!(module_path!(), "::", stringify!($name)),
                                case as u64,
                            );
                            $(
                                let $arg =
                                    $crate::strategy::Strategy::new_value(&($strategy), &mut rng);
                            )+
                            let described_inputs = format!(
                                concat!($("\n  ", stringify!($arg), " = {:?}"),+),
                                $(&$arg),+
                            );
                            match failed {
                                ::std::result::Result::Ok(::std::result::Result::Err(error)) => {
                                    panic!(
                                        "proptest case {case}/{cases} of `{}` failed: {error}\ninputs:{}",
                                        stringify!($name),
                                        described_inputs,
                                    );
                                }
                                ::std::result::Result::Err(payload) => {
                                    eprintln!(
                                        "proptest case {case}/{cases} of `{}` panicked\ninputs:{}",
                                        stringify!($name),
                                        described_inputs,
                                    );
                                    ::std::panic::resume_unwind(payload);
                                }
                                _ => unreachable!(),
                            }
                        }
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_pair() -> impl Strategy<Value = (u8, bool)> {
        (any::<u8>(), any::<bool>())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(n in 3usize..17, f in -2.0f64..2.0, i in -5i64..=5) {
            prop_assert!((3..17).contains(&n));
            prop_assert!((-2.0..2.0).contains(&f));
            prop_assert!((-5..=5).contains(&i));
        }

        #[test]
        fn vec_respects_size_and_element_ranges(v in prop::collection::vec(1u32..5, 2..6)) {
            prop_assert!((2..=5).contains(&v.len()), "len = {}", v.len());
            for x in &v {
                prop_assert!((1..5).contains(x));
            }
        }

        #[test]
        fn flat_map_links_sizes(grid in (1usize..5).prop_flat_map(|n| {
            prop::collection::vec(prop::collection::vec(0u32..3, n..=n), n..=n)
        })) {
            let n = grid.len();
            prop_assert!((1..5).contains(&n));
            for row in &grid {
                prop_assert_eq!(row.len(), n);
            }
        }

        #[test]
        fn oneof_and_map_compose(v in prop_oneof![
            Just(0u64),
            (1u64..10).prop_map(|x| x * 100),
        ]) {
            prop_assert!(v == 0 || (100..1000).contains(&v));
        }

        #[test]
        fn string_regex_subset_is_honored(s in "[a-z]{2,4}(\\.json)?") {
            let stem_len = s.trim_end_matches(".json").len();
            prop_assert!((2..=4).contains(&stem_len), "s = {:?}", s);
            prop_assert!(s.trim_end_matches(".json").chars().all(|c| c.is_ascii_lowercase()));
        }

        #[test]
        fn btree_map_and_option_strategies_work(
            m in prop::collection::btree_map("[a-f]{1,3}", 0u32..9, 0..6),
            o in prop::option::of(1u8..4),
        ) {
            prop_assert!(m.len() <= 5);
            if let Some(x) = o {
                prop_assert!((1..4).contains(&x));
            }
        }

        #[test]
        fn tuples_and_any_compose(pair in arb_pair()) {
            let (byte, flag) = pair;
            let encoded = (u16::from(byte) << 1) | u16::from(flag);
            prop_assert!(encoded <= 511);
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(x in 0u8..255) {
            prop_assert!(x < 255);
        }
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Debug, Clone, PartialEq)]
        enum Tree {
            Leaf(u8),
            Branch(Vec<Tree>),
        }
        let strat = any::<u8>()
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 16, 4, |inner| {
                crate::collection::vec(inner, 0..4).prop_map(Tree::Branch)
            });
        let mut rng = TestRng::for_case("recursive_strategies_terminate", 0);
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 1,
                Tree::Branch(children) => 1 + children.iter().map(depth).max().unwrap_or(0),
            }
        }
        for _ in 0..200 {
            let tree = strat.new_value(&mut rng);
            assert!(
                depth(&tree) <= 4,
                "depth {} exceeds recursion bound",
                depth(&tree)
            );
        }
    }

    #[test]
    #[should_panic(expected = "boom: 3")]
    fn panicking_body_keeps_its_message_and_reports_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(8))]
            #[allow(unused)]
            fn body_panics(x in 3u8..4) {
                panic!("boom: {}", x);
            }
        }
        body_panics();
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failing_property_panics_with_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(8))]
            #[allow(unused)]
            fn always_fails(x in 0u8..4) {
                prop_assert!(x > 200, "x was {}", x);
            }
        }
        always_fails();
    }
}
