//! `any::<T>()` — full-domain strategies for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    fn generate(rng: &mut TestRng) -> Self;
}

/// Strategy over the full domain of `T`.
pub struct Any<T>(PhantomData<T>);

/// The canonical strategy for `T`, like `proptest::arbitrary::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        T::generate(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {
        $(impl Arbitrary for $t {
            fn generate(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        })*
    };
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn generate(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn generate(rng: &mut TestRng) -> Self {
        rng.unit_f64()
    }
}

impl Arbitrary for f32 {
    fn generate(rng: &mut TestRng) -> Self {
        rng.unit_f64() as f32
    }
}

impl Arbitrary for char {
    fn generate(rng: &mut TestRng) -> Self {
        // Mostly ASCII with a sprinkling of wider code points.
        match rng.below(4) {
            0..=2 => (0x20 + rng.below(0x5f) as u32) as u8 as char,
            _ => char::from_u32(0xA1 + rng.below(0x24f - 0xa1) as u32).unwrap_or('¿'),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_generates_varied_values() {
        let mut rng = TestRng::from_seed(11);
        let bytes: Vec<u8> = (0..64).map(|_| any::<u8>().new_value(&mut rng)).collect();
        assert!(
            bytes
                .iter()
                .collect::<std::collections::BTreeSet<_>>()
                .len()
                > 10
        );
        let flags: Vec<bool> = (0..64).map(|_| any::<bool>().new_value(&mut rng)).collect();
        assert!(flags.contains(&true) && flags.contains(&false));
    }
}
