//! The `Strategy` trait and its combinators (generation-only).

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike real proptest there is no value tree and no shrinking: a strategy
/// simply produces a value from an RNG.
pub trait Strategy {
    type Value;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }

    /// Recursive strategies: `depth` levels where each level is a 50/50
    /// union of the leaf strategy and `recurse` applied to the previous
    /// level. `desired_size` and `expected_branch_size` are accepted for
    /// API compatibility; collection bounds inside `recurse` control size.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut level = leaf.clone();
        for _ in 0..depth {
            let branch = recurse(level).boxed();
            level = Union::new(vec![leaf.clone(), branch]).boxed();
        }
        level
    }
}

/// A clonable, type-erased strategy (single-threaded, like tests).
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        self.0.new_value(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between strategies of a common value type.
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "Union requires at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        let index = rng.below(self.options.len() as u64) as usize;
        self.options[index].new_value(rng)
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, R, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    R: Strategy,
    F: Fn(S::Value) -> R,
{
    type Value = R::Value;

    fn new_value(&self, rng: &mut TestRng) -> R::Value {
        (self.f)(self.inner.new_value(rng)).new_value(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let offset = (u128::from(rng.next_u64()) % span) as i128;
                    (self.start as i128 + offset) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn new_value(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as i128 - start as i128) as u128 + 1;
                    let offset = (u128::from(rng.next_u64()) % span) as i128;
                    (start as i128 + offset) as $t
                }
            }
        )*
    };
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + rng.unit_f64() as $t * (self.end - self.start)
                }
            }
        )*
    };
}

float_range_strategy!(f32, f64);

/// String strategies from a regex-subset pattern (see [`crate::string`]).
impl Strategy for &'static str {
    type Value = String;

    fn new_value(&self, rng: &mut TestRng) -> String {
        crate::string::generate(self, rng)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {
        $(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.new_value(rng),)+)
                }
            }
        )*
    };
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
    (A, B, C, D, E, F, G, H)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn union_covers_every_option() {
        let union = Union::new(vec![
            Just(1u8).boxed(),
            Just(2u8).boxed(),
            Just(3u8).boxed(),
        ]);
        let mut rng = TestRng::from_seed(5);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[union.new_value(&mut rng) as usize] = true;
        }
        assert_eq!(seen, [false, true, true, true]);
    }

    #[test]
    fn map_and_flat_map_transform() {
        let mut rng = TestRng::from_seed(6);
        let doubled = (1u32..5).prop_map(|x| x * 2);
        for _ in 0..50 {
            let v = doubled.new_value(&mut rng);
            assert!(v % 2 == 0 && (2..10).contains(&v));
        }
        let dependent = (1usize..4).prop_flat_map(|n| crate::collection::vec(0u8..2, n..=n));
        for _ in 0..50 {
            let v = dependent.new_value(&mut rng);
            assert!((1..4).contains(&v.len()));
        }
    }

    #[test]
    fn signed_and_inclusive_ranges() {
        let mut rng = TestRng::from_seed(7);
        for _ in 0..500 {
            let v = (-10i64..10).new_value(&mut rng);
            assert!((-10..10).contains(&v));
            let w = (0u8..=255).new_value(&mut rng);
            let _ = w; // full domain: just must not panic
        }
    }
}
