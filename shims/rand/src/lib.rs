//! Offline shim for the subset of `rand` 0.8 used by this workspace.
//!
//! The build environment has no access to crates.io, so this crate provides
//! the API surface the workspace relies on — `rngs::StdRng`, the `Rng` and
//! `SeedableRng` traits (`gen`, `gen_range`, `gen_bool`), and
//! `seq::SliceRandom::shuffle` — backed by a xoshiro256++ generator. Streams
//! are deterministic per seed (which the quiz/sim tests rely on) but are NOT
//! the same streams as the real `rand` crate, and none of this is
//! cryptographically secure.

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing convenience methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a uniform value of `T` over its full domain ([0, 1) for floats).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from a (half-open or inclusive) range. Panics when
    /// the range is empty, like `rand::Rng::gen_range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Return `true` with probability `p` (clamped to [0, 1]).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;

    fn from_entropy() -> Self {
        // No OS entropy hook in the shim; derive a seed from the clock.
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9e3779b97f4a7c15);
        Self::seed_from_u64(nanos)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

fn unit_f64(word: u64) -> f64 {
    // 53 mantissa bits -> uniform in [0, 1).
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The standard generator: xoshiro256++ (deterministic per seed).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let mut s = [0u64; 4];
            for word in &mut s {
                *word = splitmix64(&mut state);
            }
            // All-zero state would be a fixed point; splitmix64 cannot emit
            // four zeros in a row, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x9e3779b97f4a7c15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Types samplable uniformly over their full domain via [`Rng::gen`].
pub trait Standard: Sized {
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {
        $(impl Standard for $t {
            fn sample<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        })*
    };
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for f32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {
        $(
            impl SampleRange<$t> for Range<$t> {
                fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let offset = (u128::sample(rng) % span) as i128;
                    (self.start as i128 + offset) as $t
                }
            }

            impl SampleRange<$t> for RangeInclusive<$t> {
                fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "cannot sample empty range");
                    let span = (end as i128 - start as i128) as u128 + 1;
                    let offset = (u128::sample(rng) % span) as i128;
                    (start as i128 + offset) as $t
                }
            }
        )*
    };
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {
        $(
            impl SampleRange<$t> for Range<$t> {
                fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    self.start + (<$t as Standard>::sample(rng)) * (self.end - self.start)
                }
            }

            impl SampleRange<$t> for RangeInclusive<$t> {
                fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "cannot sample empty range");
                    start + (<$t as Standard>::sample(rng)) * (end - start)
                }
            }
        )*
    };
}

impl_sample_range_float!(f32, f64);

pub mod seq {
    use super::RngCore;

    /// Slice helpers driven by a generator.
    pub trait SliceRandom {
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// Uniformly pick a reference to one element (None when empty).
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get((rng.next_u64() % self.len() as u64) as usize)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed_and_distinct_across_seeds() {
        let a: Vec<u64> = {
            let mut rng = StdRng::seed_from_u64(7);
            (0..8).map(|_| rng.gen()).collect()
        };
        let b: Vec<u64> = {
            let mut rng = StdRng::seed_from_u64(7);
            (0..8).map(|_| rng.gen()).collect()
        };
        let c: Vec<u64> = {
            let mut rng = StdRng::seed_from_u64(8);
            (0..8).map(|_| rng.gen()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3..10u64);
            assert!((3..10).contains(&v));
            let v = rng.gen_range(-5..=5i64);
            assert!((-5..=5).contains(&v));
            let f = rng.gen_range(0.25..0.75f64);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits = {hits}");
        assert_eq!((0..100).filter(|_| rng.gen_bool(0.0)).count(), 0);
        assert_eq!((0..100).filter(|_| rng.gen_bool(1.0)).count(), 100);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut data: Vec<u32> = (0..50).collect();
        data.shuffle(&mut rng);
        let mut sorted = data.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            data, sorted,
            "50 elements virtually never shuffle to identity"
        );
    }
}
