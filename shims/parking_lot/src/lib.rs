//! Offline shim for the subset of `parking_lot` used by this workspace.
//!
//! The build environment has no access to crates.io, so this crate provides
//! the same API surface (`Mutex` with a non-poisoning, guard-returning
//! `lock()`) backed by `std::sync::Mutex`. Poisoned locks are recovered
//! rather than propagated, matching parking_lot's no-poisoning semantics.

use std::fmt;
use std::sync::TryLockError;

pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// A mutual-exclusion lock with parking_lot's panic-free `lock()` signature.
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(guard),
            Err(TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_tuple("Mutex").field(&&*guard).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

impl<T> From<T> for Mutex<T> {
    fn from(value: T) -> Self {
        Mutex::new(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(format!("{m:?}"), "Mutex(42)");
    }

    #[test]
    fn lock_recovers_from_poison() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison the lock");
        })
        .join();
        *m.lock() = 7;
        assert_eq!(*m.lock(), 7);
    }
}
