//! Offline shim for the subset of `rayon` used by this workspace.
//!
//! The build environment has no access to crates.io, so this crate provides
//! the rayon API surface the matrix kernels rely on — `into_par_iter()` on
//! ranges and vectors, `par_chunks()` on slices, `map`/`collect`/`reduce`,
//! and `current_num_threads()` — implemented as an eager fork/join over
//! `std::thread::scope`. `map` really does fan work out across OS threads
//! (one contiguous chunk per hardware thread); it is not work-stealing, but
//! row-partitioned kernels split evenly so the difference is minor at these
//! sizes.

use std::ops::Range;

/// Number of worker threads a parallel `map` will use.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Run `f` over every item on a pool of scoped threads, preserving order.
fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let len = items.len();
    let threads = current_num_threads().min(len).max(1);
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk_len = len.div_ceil(threads);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(threads);
    let mut iter = items.into_iter();
    loop {
        let chunk: Vec<T> = iter.by_ref().take(chunk_len).collect();
        if chunk.is_empty() {
            break;
        }
        chunks.push(chunk);
    }
    let f = &f;
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| scope.spawn(move || chunk.into_iter().map(f).collect::<Vec<R>>()))
            .collect();
        let mut out = Vec::with_capacity(len);
        for handle in handles {
            out.extend(handle.join().expect("rayon-shim worker thread panicked"));
        }
        out
    })
}

/// An eager "parallel iterator": the item sequence is materialized and each
/// `map` runs across scoped threads.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    pub fn map<R, F>(self, f: F) -> ParIter<R>
    where
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        ParIter {
            items: parallel_map(self.items, f),
        }
    }

    /// `rayon::iter::ParallelIterator::map_init`: like [`ParIter::map`], but
    /// every worker thread builds one scoped state value with `init` and
    /// threads `&mut` to it through each of its items. The state never
    /// crosses threads and is dropped when the worker finishes its chunk —
    /// scratch buffers built in `init` are shared across a worker's items
    /// but never contended.
    pub fn map_init<S, R, INIT, F>(self, init: INIT, f: F) -> ParIter<R>
    where
        R: Send,
        INIT: Fn() -> S + Sync,
        F: Fn(&mut S, T) -> R + Sync,
    {
        let len = self.items.len();
        let threads = current_num_threads().min(len).max(1);
        if threads <= 1 {
            let mut state = init();
            return ParIter {
                items: self.items.into_iter().map(|t| f(&mut state, t)).collect(),
            };
        }
        let chunk_len = len.div_ceil(threads);
        let mut chunks: Vec<Vec<T>> = Vec::with_capacity(threads);
        let mut iter = self.items.into_iter();
        loop {
            let chunk: Vec<T> = iter.by_ref().take(chunk_len).collect();
            if chunk.is_empty() {
                break;
            }
            chunks.push(chunk);
        }
        let (init, f) = (&init, &f);
        let items = std::thread::scope(|scope| {
            let handles: Vec<_> = chunks
                .into_iter()
                .map(|chunk| {
                    scope.spawn(move || {
                        let mut state = init();
                        chunk
                            .into_iter()
                            .map(|t| f(&mut state, t))
                            .collect::<Vec<R>>()
                    })
                })
                .collect();
            let mut out = Vec::with_capacity(len);
            for handle in handles {
                out.extend(handle.join().expect("rayon-shim worker thread panicked"));
            }
            out
        });
        ParIter { items }
    }

    pub fn filter_map<R, F>(self, f: F) -> ParIter<R>
    where
        R: Send,
        F: Fn(T) -> Option<R> + Sync,
    {
        let mapped = parallel_map(self.items, f);
        ParIter {
            items: mapped.into_iter().flatten().collect(),
        }
    }

    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync,
    {
        parallel_map(self.items, f);
    }

    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }

    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> T
    where
        ID: Fn() -> T,
        OP: Fn(T, T) -> T,
    {
        self.items.into_iter().fold(identity(), op)
    }

    pub fn sum<S>(self) -> S
    where
        S: std::iter::Sum<T>,
    {
        self.items.into_iter().sum()
    }
}

/// Conversion into a [`ParIter`], mirroring `rayon::iter::IntoParallelIterator`.
pub trait IntoParallelIterator {
    type Item: Send;
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

macro_rules! impl_range_into_par_iter {
    ($($t:ty),*) => {
        $(impl IntoParallelIterator for Range<$t> {
            type Item = $t;
            fn into_par_iter(self) -> ParIter<$t> {
                ParIter { items: self.collect() }
            }
        })*
    };
}

impl_range_into_par_iter!(usize, u32, u64, i32, i64);

/// `par_chunks`, mirroring `rayon::slice::ParallelSlice`.
pub trait ParallelSlice<T: Sync> {
    fn par_chunks(&self, chunk_size: usize) -> ParIter<&[T]>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, chunk_size: usize) -> ParIter<&[T]> {
        assert!(chunk_size > 0, "chunk_size must be positive");
        ParIter {
            items: self.chunks(chunk_size).collect(),
        }
    }
}

pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelSlice};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let doubled: Vec<usize> = (0..10_000usize).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(doubled, (0..10_000).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn reduce_matches_serial_fold() {
        let total = (0..1000u64)
            .collect::<Vec<_>>()
            .into_par_iter()
            .reduce(|| 0, |a, b| a + b);
        assert_eq!(total, 499_500);
    }

    #[test]
    fn par_chunks_covers_every_element() {
        let data: Vec<u32> = (0..103).collect();
        let sums: Vec<u32> = data.par_chunks(10).map(|c| c.iter().sum()).collect();
        assert_eq!(sums.len(), 11);
        assert_eq!(sums.iter().sum::<u32>(), data.iter().sum::<u32>());
    }

    #[test]
    fn current_num_threads_reports_the_hardware() {
        // Regression pin: `ShardedAccumulator::with_auto_shards` and the
        // ingest routing pool size off this value, so it must track the real
        // hardware (`available_parallelism`), never a baked-in constant.
        let expected = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        assert_eq!(super::current_num_threads(), expected);
        assert!(super::current_num_threads() >= 1);
    }

    #[test]
    fn map_init_builds_one_state_per_worker() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let inits = AtomicUsize::new(0);
        let out: Vec<usize> = (0..10_000usize)
            .into_par_iter()
            .map_init(
                || {
                    inits.fetch_add(1, Ordering::SeqCst);
                    Vec::<usize>::new()
                },
                |scratch, i| {
                    // The scoped state really is reusable scratch that
                    // persists across a worker's items.
                    scratch.push(i);
                    i * 2
                },
            )
            .collect();
        assert_eq!(out, (0..10_000).map(|i| i * 2).collect::<Vec<_>>());
        // One state per worker thread (not per item), at most one per
        // hardware thread and at least one overall.
        let states = inits.load(Ordering::SeqCst);
        assert!(states >= 1 && states <= super::current_num_threads());
    }

    #[test]
    fn empty_inputs_are_fine() {
        let empty: Vec<u8> = Vec::new();
        let out: Vec<u8> = empty.into_par_iter().map(|b| b + 1).collect();
        assert!(out.is_empty());
        assert_eq!((0..0usize).into_par_iter().reduce(|| 7, |a, b| a + b), 7);
    }
}
