//! Offline shim for the subset of `criterion` used by this workspace.
//!
//! The build environment has no access to crates.io, so this crate provides
//! the criterion API the bench targets use — `Criterion`, `benchmark_group`,
//! `bench_function`, `bench_with_input`, `Bencher::iter`, `BenchmarkId`, and
//! the `criterion_group!`/`criterion_main!` macros — as a simple wall-clock
//! timing harness. Each benchmark warms up for `warm_up_time`, then runs
//! `sample_size` samples within `measurement_time` and reports the median
//! per-iteration time on stdout. There is no statistical analysis, plotting,
//! or baseline comparison.
//!
//! Beyond the upstream API, the shim records every benchmark's median and, at
//! the end of `criterion_main!`, writes `BENCH_<target>.json` — a flat
//! `{"bench/name": median_ns}` object — so the repo accumulates a
//! machine-readable perf trajectory (CI uploads these files as artifacts).
//! Set `BENCH_JSON_DIR` to redirect the output directory; set it to `-` to
//! disable writing.

use std::fmt::Display;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Medians recorded by every benchmark run in this process, in run order.
static RESULTS: Mutex<Vec<(String, u128)>> = Mutex::new(Vec::new());

/// Identifier for a parameterized benchmark, e.g. `windowed_ingest/100000`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            id: name.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId { id: name }
    }
}

/// The timing-harness configuration (subset of `criterion::Criterion`).
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            warm_up_time: Duration::from_secs(3),
            measurement_time: Duration::from_secs(5),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Plotting is not supported; accepted for API compatibility.
    pub fn without_plots(self) -> Self {
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let report = run_benchmark(self, name, f);
        println!("{report}");
        self
    }
}

/// A named group of benchmarks sharing one configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into().id);
        let report = run_benchmark(self.criterion, &full, f);
        println!("{report}");
        self
    }

    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into().id);
        let report = run_benchmark(self.criterion, &full, |b| f(b, input));
        println!("{report}");
        self
    }

    pub fn finish(self) {}
}

/// Passed to the benchmark closure; `iter` times the supplied routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn time_once<F: FnMut(&mut Bencher)>(f: &mut F, iters: u64) -> Duration {
    let mut bencher = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    bencher.elapsed
}

fn run_benchmark(config: &Criterion, name: &str, mut f: impl FnMut(&mut Bencher)) -> String {
    // Warm-up: also estimates the per-iteration cost so samples fit the
    // measurement window.
    let warm_up_start = Instant::now();
    let mut warm_up_iters: u64 = 0;
    let mut batch: u64 = 1;
    while warm_up_start.elapsed() < config.warm_up_time {
        time_once(&mut f, batch);
        warm_up_iters += batch;
        batch = batch.saturating_mul(2).min(1 << 20);
    }
    let per_iter = warm_up_start.elapsed().as_nanos().max(1) / u128::from(warm_up_iters.max(1));

    let samples = config.sample_size.max(2);
    let budget_per_sample = config.measurement_time.as_nanos().max(1) / samples as u128;
    let iters_per_sample = (budget_per_sample / per_iter.max(1)).clamp(1, 1 << 24) as u64;

    let mut sample_times: Vec<u128> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let elapsed = time_once(&mut f, iters_per_sample);
        sample_times.push(elapsed.as_nanos() / u128::from(iters_per_sample));
    }
    sample_times.sort_unstable();
    let median = sample_times[sample_times.len() / 2];
    let low = sample_times[0];
    let high = sample_times[sample_times.len() - 1];
    RESULTS
        .lock()
        .expect("results lock")
        .push((name.to_string(), median));
    format!(
        "{name:<50} time: [{} {} {}]",
        format_ns(low),
        format_ns(median),
        format_ns(high)
    )
}

/// Serialize the recorded medians as a flat JSON object. Benchmark names are
/// ASCII identifiers plus `/`, but escape quotes/backslashes defensively.
fn results_json(results: &[(String, u128)]) -> String {
    let mut out = String::from("{\n");
    for (i, (name, median)) in results.iter().enumerate() {
        let escaped: String = name
            .chars()
            .flat_map(|c| match c {
                '"' | '\\' => vec!['\\', c],
                '\n' => vec!['\\', 'n'],
                _ => vec![c],
            })
            .collect();
        out.push_str(&format!("  \"{escaped}\": {median}"));
        out.push_str(if i + 1 < results.len() { ",\n" } else { "\n" });
    }
    out.push('}');
    out.push('\n');
    out
}

/// Record an externally measured median (in nanoseconds) under `name`, next
/// to the sampled benchmarks in `BENCH_<target>.json`. For hand-timed
/// measurements the sample loop cannot express — e.g. interleaved A/B rounds
/// where both sides must alternate within one timing pass.
pub fn record_measurement(name: &str, median_ns: u128) {
    RESULTS
        .lock()
        .expect("results lock")
        .push((name.to_string(), median_ns));
}

/// Write `BENCH_<target>.json` with the median nanoseconds of every benchmark
/// run so far. Called by `criterion_main!` after the groups finish; `target`
/// is the bench target's crate name. Honors `BENCH_JSON_DIR` (`-` disables).
pub fn write_results(target: &str) {
    let dir = std::env::var("BENCH_JSON_DIR").unwrap_or_else(|_| ".".to_string());
    if dir == "-" {
        return;
    }
    let results = RESULTS.lock().expect("results lock");
    if results.is_empty() {
        return;
    }
    let path = format!("{dir}/BENCH_{target}.json");
    match std::fs::write(&path, results_json(&results)) {
        Ok(()) => println!("wrote {path} ({} benchmark(s))", results.len()),
        Err(error) => eprintln!("could not write {path}: {error}"),
    }
}

fn format_ns(nanos: u128) -> String {
    if nanos >= 1_000_000_000 {
        format!("{:.4} s", nanos as f64 / 1e9)
    } else if nanos >= 1_000_000 {
        format!("{:.4} ms", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{:.4} µs", nanos as f64 / 1e3)
    } else {
        format!("{nanos:.4} ns")
    }
}

/// `std::hint::black_box`, re-exported under criterion's historical path.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            $crate::write_results(env!("CARGO_CRATE_NAME"));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_harness_runs_and_reports() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(15));
        let mut group = c.benchmark_group("shim");
        let mut runs = 0u64;
        group.bench_function("count", |b| b.iter(|| runs += 1));
        group.bench_with_input(BenchmarkId::new("with_input", 42), &42u64, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
        assert!(runs > 0);
    }

    #[test]
    fn results_are_recorded_and_serialized() {
        let mut c = Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(2));
        c.bench_function("shim_json/probe", |b| b.iter(|| black_box(1 + 1)));
        let results = RESULTS.lock().unwrap();
        let recorded: Vec<_> = results
            .iter()
            .filter(|(name, _)| name == "shim_json/probe")
            .collect();
        assert!(
            !recorded.is_empty(),
            "bench_function must record its median"
        );
        drop(results);
        let json = results_json(&[
            ("group/a".to_string(), 123u128),
            ("quote\"name\\x".to_string(), 7u128),
        ]);
        assert!(json.starts_with("{\n"));
        assert!(json.contains("\"group/a\": 123,"));
        assert!(json.contains("\"quote\\\"name\\\\x\": 7"));
        assert!(json.trim_end().ends_with('}'));
    }

    #[test]
    fn write_results_honors_disable_and_directory() {
        // `-` disables writing entirely (used by test runs).
        std::env::set_var("BENCH_JSON_DIR", "-");
        write_results("shimtest_disabled");
        assert!(!std::path::Path::new("BENCH_shimtest_disabled.json").exists());
        let dir = std::env::temp_dir().join(format!("criterion-shim-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::env::set_var("BENCH_JSON_DIR", &dir);
        RESULTS.lock().unwrap().push(("w/one".to_string(), 42));
        write_results("shimtest");
        let path = dir.join("BENCH_shimtest.json");
        let written = std::fs::read_to_string(&path).unwrap();
        assert!(written.contains("\"w/one\": 42"));
        std::env::remove_var("BENCH_JSON_DIR");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn format_ns_picks_sane_units() {
        assert!(format_ns(12).contains("ns"));
        assert!(format_ns(12_000).contains("µs"));
        assert!(format_ns(12_000_000).contains("ms"));
        assert!(format_ns(12_000_000_000).contains(" s"));
    }
}
