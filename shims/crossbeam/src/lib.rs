//! Offline shim for the subset of `crossbeam` used by this workspace.
//!
//! The build environment has no access to crates.io, so this crate provides
//! `crossbeam::channel::{unbounded, Sender, Receiver, TryRecvError}` with the
//! same semantics (clonable MPMC handles, disconnect detection) backed by an
//! `Arc<Mutex<VecDeque<T>>>`.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Mutex};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    impl<T> Shared<T> {
        fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<T>> {
            match self.queue.lock() {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            }
        }
    }

    /// The sending half of an unbounded channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of an unbounded channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty but senders still exist.
        Empty,
        /// The channel is empty and every sender has been dropped.
        Disconnected,
    }

    /// Create an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                shared: shared.clone(),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Push a value; fails only when every receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if self.shared.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(value));
            }
            self.shared.lock().push_back(value);
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Pop the oldest value without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut queue = self.shared.lock();
            match queue.pop_front() {
                Some(value) => Ok(value),
                None if self.shared.senders.load(Ordering::Acquire) == 0 => {
                    Err(TryRecvError::Disconnected)
                }
                None => Err(TryRecvError::Empty),
            }
        }

        /// Number of values currently buffered.
        pub fn len(&self) -> usize {
            self.shared.lock().len()
        }

        /// Whether the buffer is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::AcqRel);
            Sender {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.receivers.fetch_add(1, Ordering::AcqRel);
            Receiver {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            self.shared.senders.fetch_sub(1, Ordering::AcqRel);
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.receivers.fetch_sub(1, Ordering::AcqRel);
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl std::fmt::Display for TryRecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TryRecvError::Empty => f.write_str("receiving on an empty channel"),
                TryRecvError::Disconnected => f.write_str("receiving on a disconnected channel"),
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_order_and_len() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.len(), 2);
            assert_eq!(rx.try_recv(), Ok(1));
            assert_eq!(rx.try_recv(), Ok(2));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn disconnect_is_observed_on_both_halves() {
            let (tx, rx) = unbounded::<u8>();
            let tx2 = tx.clone();
            drop(tx);
            drop(tx2);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
            let (tx, rx) = unbounded();
            drop(rx);
            assert!(tx.send(1).is_err());
        }

        #[test]
        fn senders_work_across_threads() {
            let (tx, rx) = unbounded();
            let handle = std::thread::spawn(move || {
                for i in 0..100 {
                    tx.send(i).unwrap();
                }
            });
            handle.join().unwrap();
            assert_eq!((0..100).map(|_| rx.try_recv().unwrap()).sum::<i32>(), 4950);
        }
    }
}
