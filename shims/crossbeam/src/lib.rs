//! Offline shim for the subset of `crossbeam` used by this workspace.
//!
//! The build environment has no access to crates.io, so this crate provides
//! `crossbeam::channel::{unbounded, bounded, Sender, Receiver, ...}` with the
//! same semantics (clonable MPMC handles, disconnect detection, blocking and
//! non-blocking operations on both halves) backed by an
//! `Arc<Mutex<VecDeque<T>>>` plus two condition variables (`not_empty` wakes
//! blocked receivers, `not_full` wakes senders blocked on a bounded channel).

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        /// `None` = unbounded; `Some(cap)` = at most `cap` buffered values.
        capacity: Option<usize>,
        senders: AtomicUsize,
        receivers: AtomicUsize,
        not_empty: Condvar,
        not_full: Condvar,
    }

    impl<T> Shared<T> {
        fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<T>> {
            match self.queue.lock() {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            }
        }

        fn is_full(&self, queue: &VecDeque<T>) -> bool {
            self.capacity.is_some_and(|cap| queue.len() >= cap)
        }
    }

    /// The sending half of a channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of a channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    pub struct SendError<T>(pub T);

    /// Error returned by [`Sender::try_send`].
    pub enum TrySendError<T> {
        /// A bounded channel is at capacity; the value is handed back.
        Full(T),
        /// Every receiver has been dropped; the value is handed back.
        Disconnected(T),
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty but senders still exist.
        Empty,
        /// The channel is empty and every sender has been dropped.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv`]: the channel is empty and every
    /// sender has been dropped.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The timeout elapsed with the channel still empty.
        Timeout,
        /// The channel is empty and every sender has been dropped.
        Disconnected,
    }

    fn channel<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            capacity,
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (
            Sender {
                shared: shared.clone(),
            },
            Receiver { shared },
        )
    }

    /// Create an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        channel(None)
    }

    /// Create a bounded MPMC channel holding at most `capacity` values.
    ///
    /// Unlike upstream crossbeam, a zero capacity (rendezvous channel) is not
    /// supported by this shim; the capacity is clamped to at least 1.
    pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
        channel(Some(capacity.max(1)))
    }

    impl<T> Sender<T> {
        /// Push a value, blocking while a bounded channel is at capacity;
        /// fails only when every receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut queue = self.shared.lock();
            loop {
                if self.shared.receivers.load(Ordering::Acquire) == 0 {
                    return Err(SendError(value));
                }
                if !self.shared.is_full(&queue) {
                    queue.push_back(value);
                    drop(queue);
                    self.shared.not_empty.notify_one();
                    return Ok(());
                }
                queue = match self.shared.not_full.wait(queue) {
                    Ok(guard) => guard,
                    Err(poisoned) => poisoned.into_inner(),
                };
            }
        }

        /// Push a value without blocking; hands it back when the channel is
        /// full or every receiver is gone.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            let mut queue = self.shared.lock();
            if self.shared.receivers.load(Ordering::Acquire) == 0 {
                return Err(TrySendError::Disconnected(value));
            }
            if self.shared.is_full(&queue) {
                return Err(TrySendError::Full(value));
            }
            queue.push_back(value);
            drop(queue);
            self.shared.not_empty.notify_one();
            Ok(())
        }

        /// Number of values currently buffered.
        pub fn len(&self) -> usize {
            self.shared.lock().len()
        }

        /// Whether the buffer is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Receiver<T> {
        /// Pop the oldest value without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut queue = self.shared.lock();
            match queue.pop_front() {
                Some(value) => {
                    drop(queue);
                    self.shared.not_full.notify_one();
                    Ok(value)
                }
                None if self.shared.senders.load(Ordering::Acquire) == 0 => {
                    Err(TryRecvError::Disconnected)
                }
                None => Err(TryRecvError::Empty),
            }
        }

        /// Pop the oldest value, blocking until one arrives; fails once the
        /// channel is empty and every sender has been dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut queue = self.shared.lock();
            loop {
                if let Some(value) = queue.pop_front() {
                    drop(queue);
                    self.shared.not_full.notify_one();
                    return Ok(value);
                }
                if self.shared.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                queue = match self.shared.not_empty.wait(queue) {
                    Ok(guard) => guard,
                    Err(poisoned) => poisoned.into_inner(),
                };
            }
        }

        /// Pop the oldest value, blocking for at most `timeout`.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut queue = self.shared.lock();
            loop {
                if let Some(value) = queue.pop_front() {
                    drop(queue);
                    self.shared.not_full.notify_one();
                    return Ok(value);
                }
                if self.shared.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                let Some(remaining) = deadline
                    .checked_duration_since(now)
                    .filter(|d| !d.is_zero())
                else {
                    return Err(RecvTimeoutError::Timeout);
                };
                queue = match self.shared.not_empty.wait_timeout(queue, remaining) {
                    Ok((guard, _)) => guard,
                    Err(poisoned) => poisoned.into_inner().0,
                };
            }
        }

        /// Number of values currently buffered.
        pub fn len(&self) -> usize {
            self.shared.lock().len()
        }

        /// Whether the buffer is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::AcqRel);
            Sender {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.receivers.fetch_add(1, Ordering::AcqRel);
            Receiver {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last sender gone: take the queue lock so the count change
                // cannot race a receiver between its empty check and its
                // wait, then wake every blocked receiver to observe it.
                drop(self.shared.lock());
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            if self.shared.receivers.fetch_sub(1, Ordering::AcqRel) == 1 {
                drop(self.shared.lock());
                self.shared.not_full.notify_all();
            }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl<T> fmt::Debug for TrySendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TrySendError::Full(_) => f.write_str("Full(..)"),
                TrySendError::Disconnected(_) => f.write_str("Disconnected(..)"),
            }
        }
    }

    impl<T> fmt::Display for TrySendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TrySendError::Full(_) => f.write_str("sending on a full channel"),
                TrySendError::Disconnected(_) => f.write_str("sending on a disconnected channel"),
            }
        }
    }

    impl std::fmt::Display for TryRecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TryRecvError::Empty => f.write_str("receiving on an empty channel"),
                TryRecvError::Disconnected => f.write_str("receiving on a disconnected channel"),
            }
        }
    }

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl std::fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                RecvTimeoutError::Timeout => f.write_str("timed out waiting on an empty channel"),
                RecvTimeoutError::Disconnected => {
                    f.write_str("receiving on a disconnected channel")
                }
            }
        }
    }

    impl std::error::Error for RecvError {}
    impl std::error::Error for RecvTimeoutError {}
    impl std::error::Error for TryRecvError {}

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_order_and_len() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.len(), 2);
            assert_eq!(rx.try_recv(), Ok(1));
            assert_eq!(rx.try_recv(), Ok(2));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn disconnect_is_observed_on_both_halves() {
            let (tx, rx) = unbounded::<u8>();
            let tx2 = tx.clone();
            drop(tx);
            drop(tx2);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
            assert_eq!(rx.recv(), Err(RecvError));
            let (tx, rx) = unbounded();
            drop(rx);
            assert!(tx.send(1).is_err());
        }

        #[test]
        fn senders_work_across_threads() {
            let (tx, rx) = unbounded();
            let handle = std::thread::spawn(move || {
                for i in 0..100 {
                    tx.send(i).unwrap();
                }
            });
            handle.join().unwrap();
            assert_eq!((0..100).map(|_| rx.try_recv().unwrap()).sum::<i32>(), 4950);
        }

        #[test]
        fn bounded_try_send_reports_full() {
            let (tx, rx) = bounded(2);
            tx.try_send(1).unwrap();
            tx.try_send(2).unwrap();
            assert!(matches!(tx.try_send(3), Err(TrySendError::Full(3))));
            assert_eq!(rx.try_recv(), Ok(1));
            tx.try_send(3).unwrap();
            drop(rx);
            assert!(matches!(tx.try_send(4), Err(TrySendError::Disconnected(4))));
        }

        #[test]
        fn bounded_send_blocks_until_a_slot_frees() {
            let (tx, rx) = bounded(1);
            tx.send(1).unwrap();
            let producer = std::thread::spawn(move || tx.send(2).unwrap());
            // The producer is blocked on the full channel until this recv.
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            producer.join().unwrap();
        }

        #[test]
        fn recv_blocks_until_a_value_arrives() {
            let (tx, rx) = bounded(4);
            let consumer = std::thread::spawn(move || rx.recv().unwrap());
            std::thread::sleep(Duration::from_millis(5));
            tx.send(42).unwrap();
            assert_eq!(consumer.join().unwrap(), 42);
        }

        #[test]
        fn recv_unblocks_when_the_last_sender_drops() {
            let (tx, rx) = bounded::<u8>(4);
            let consumer = std::thread::spawn(move || rx.recv());
            std::thread::sleep(Duration::from_millis(5));
            drop(tx);
            assert_eq!(consumer.join().unwrap(), Err(RecvError));
        }

        #[test]
        fn recv_timeout_times_out_and_delivers() {
            let (tx, rx) = bounded(4);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Timeout)
            );
            tx.send(7).unwrap();
            assert_eq!(rx.recv_timeout(Duration::from_millis(5)), Ok(7));
            drop(tx);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn zero_capacity_is_clamped_to_one() {
            let (tx, rx) = bounded(0);
            tx.try_send(1).unwrap();
            assert!(matches!(tx.try_send(2), Err(TrySendError::Full(2))));
            assert_eq!(rx.try_recv(), Ok(1));
        }
    }
}
