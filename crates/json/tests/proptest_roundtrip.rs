//! Property-based tests: arbitrary JSON values survive serialize → parse.

use proptest::prelude::*;
use tw_json::{parse, parse_with_options, to_string, to_string_pretty, Map, ParseOptions, Value};

/// Strategy producing arbitrary JSON values of bounded depth/size.
fn arb_value() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        (-1_000_000i64..1_000_000).prop_map(Value::from),
        (-1.0e6f64..1.0e6).prop_map(|f| Value::from((f * 100.0).round() / 100.0)),
        "[a-zA-Z0-9 _\\-\"\\\\/\n\t€é😀]{0,12}".prop_map(Value::from),
    ];
    leaf.prop_recursive(4, 64, 8, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..8).prop_map(Value::Array),
            prop::collection::vec(("[a-z]{1,8}", inner), 0..8).prop_map(|pairs| {
                let mut map = Map::new();
                for (k, v) in pairs {
                    map.insert(k, v);
                }
                Value::Object(map)
            }),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn compact_round_trip(v in arb_value()) {
        let text = to_string(&v);
        let parsed = parse(&text).expect("serialized output must parse");
        prop_assert_eq!(parsed, v);
    }

    #[test]
    fn pretty_round_trip(v in arb_value()) {
        let text = to_string_pretty(&v);
        let parsed = parse(&text).expect("pretty output must parse");
        prop_assert_eq!(parsed, v);
    }

    #[test]
    fn serialized_output_is_strict(v in arb_value()) {
        // Output never relies on the relaxed extensions (comments/trailing commas).
        let text = to_string(&v);
        let strict = parse_with_options(&text, &ParseOptions::strict()).expect("strict parse");
        prop_assert_eq!(strict, v);
    }

    #[test]
    fn parser_never_panics_on_arbitrary_input(s in "\\PC{0,64}") {
        let _ = parse(&s);
    }

    #[test]
    fn node_count_is_positive_and_depth_bounded(v in arb_value()) {
        prop_assert!(v.node_count() >= 1);
        prop_assert!(v.depth() >= 1);
        prop_assert!(v.depth() <= 6);
    }
}
