//! # tw-json
//!
//! A small, dependency-free JSON library used throughout the Traffic Warehouse
//! reproduction. The paper's core design choice is that learning modules are
//! "easily editable JSON files that a non-game developer could use to create
//! new learning modules", so the JSON pipeline is a first-class substrate of
//! this repository rather than an external dependency.
//!
//! The implementation accepts standard RFC 8259 JSON plus two ergonomic
//! extensions that the paper's own listings rely on:
//!
//! * trailing commas in arrays and objects (the paper's `axis_labels` and
//!   `traffic_matrix` listings all end with a trailing comma), and
//! * `//` line comments, so educators can annotate module files.
//!
//! The serializer always emits strict RFC 8259 output.
//!
//! ```
//! use tw_json::{parse, Value};
//!
//! let v = parse(r#"{"name": "10x10 Template", "size": "10x10", "answers": ["0", "1", "2",],}"#).unwrap();
//! assert_eq!(v.get("name").and_then(Value::as_str), Some("10x10 Template"));
//! assert_eq!(v.get("answers").unwrap().as_array().unwrap().len(), 3);
//! ```

pub mod error;
pub mod number;
pub mod parse;
pub mod path;
pub mod ser;
pub mod value;

pub use error::{JsonError, Result};
pub use number::Number;
pub use parse::{parse, parse_with_options, ParseOptions};
pub use path::JsonPath;
pub use ser::{to_string, to_string_pretty, WriteOptions};
pub use value::{Map, Value};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_paper_template_header() {
        // The literal header fields from the paper's Section II listing.
        let src = r#"{
            "name":"10x10 Template",
            "size":"10x10",
            "author":"Chasen Milner",
            "axis_labels":[
                "WS1","WS2","WS3","SRV1",
                "EXT1","EXT2",
                "ADV1","ADV2","ADV3","ADV4",
            ],
        }"#;
        let v = parse(src).unwrap();
        assert_eq!(v.get("size").and_then(Value::as_str), Some("10x10"));
        let labels = v.get("axis_labels").unwrap().as_array().unwrap();
        assert_eq!(labels.len(), 10);
        assert_eq!(labels[6].as_str(), Some("ADV1"));
        // Output must be strict JSON and parse again to the same value.
        let out = to_string(&v);
        assert_eq!(parse(&out).unwrap(), v);
    }
}
