//! JSON number representation.
//!
//! Traffic-matrix cells are small non-negative integers (packet counts), but
//! module authors may also use floats (e.g. normalized traffic volumes), so
//! numbers preserve whether they were written as an integer or a float.

use std::cmp::Ordering;
use std::fmt;

/// A JSON number, either an integer (stored as `i64`) or a float (`f64`).
#[derive(Debug, Clone, Copy)]
pub enum Number {
    /// An integer literal without a fraction or exponent.
    Int(i64),
    /// Any literal with a fraction or exponent, or an integer outside `i64`.
    Float(f64),
}

impl Number {
    /// The value as `f64` (lossless for `Int` within 2^53).
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::Int(i) => i as f64,
            Number::Float(f) => f,
        }
    }

    /// The value as `i64` if it is an integer (or a float with zero fraction).
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::Int(i) => Some(i),
            Number::Float(f) => {
                if f.fract() == 0.0 && f >= i64::MIN as f64 && f <= i64::MAX as f64 {
                    Some(f as i64)
                } else {
                    None
                }
            }
        }
    }

    /// The value as `u64` if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        self.as_i64().and_then(|i| u64::try_from(i).ok())
    }

    /// The value as `usize` if it is a non-negative integer that fits.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().and_then(|u| usize::try_from(u).ok())
    }

    /// True when the number was written as an integer literal.
    pub fn is_int(&self) -> bool {
        matches!(self, Number::Int(_))
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Number::Int(a), Number::Int(b)) => a == b,
            _ => self.as_f64() == other.as_f64(),
        }
    }
}

impl PartialOrd for Number {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        self.as_f64().partial_cmp(&other.as_f64())
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Number::Int(i) => write!(f, "{i}"),
            Number::Float(x) => {
                if x.is_finite() {
                    // Ensure floats serialize with a decimal point or exponent so
                    // they re-parse as floats.
                    if x.fract() == 0.0 && x.abs() < 1e15 {
                        write!(f, "{x:.1}")
                    } else {
                        write!(f, "{x}")
                    }
                } else {
                    // JSON has no Inf/NaN; serialize as null-compatible 0 guard.
                    write!(f, "null")
                }
            }
        }
    }
}

impl From<i64> for Number {
    fn from(v: i64) -> Self {
        Number::Int(v)
    }
}
impl From<i32> for Number {
    fn from(v: i32) -> Self {
        Number::Int(v as i64)
    }
}
impl From<u32> for Number {
    fn from(v: u32) -> Self {
        Number::Int(v as i64)
    }
}
impl From<usize> for Number {
    fn from(v: usize) -> Self {
        match i64::try_from(v) {
            Ok(i) => Number::Int(i),
            Err(_) => Number::Float(v as f64),
        }
    }
}
impl From<f64> for Number {
    fn from(v: f64) -> Self {
        Number::Float(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_conversions() {
        let n = Number::from(42i64);
        assert_eq!(n.as_i64(), Some(42));
        assert_eq!(n.as_u64(), Some(42));
        assert_eq!(n.as_usize(), Some(42));
        assert_eq!(n.as_f64(), 42.0);
        assert!(n.is_int());
    }

    #[test]
    fn negative_int_is_not_u64() {
        let n = Number::from(-3i64);
        assert_eq!(n.as_i64(), Some(-3));
        assert_eq!(n.as_u64(), None);
    }

    #[test]
    fn float_with_zero_fraction_converts() {
        let n = Number::from(7.0);
        assert_eq!(n.as_i64(), Some(7));
        assert!(!n.is_int());
    }

    #[test]
    fn float_with_fraction_does_not_convert() {
        let n = Number::from(7.5);
        assert_eq!(n.as_i64(), None);
        assert_eq!(n.as_f64(), 7.5);
    }

    #[test]
    fn display_round_trips_kind() {
        assert_eq!(Number::from(3i64).to_string(), "3");
        assert_eq!(Number::from(3.0).to_string(), "3.0");
        assert_eq!(Number::from(2.5).to_string(), "2.5");
    }

    #[test]
    fn equality_across_kinds() {
        assert_eq!(Number::from(2i64), Number::from(2.0));
        assert_ne!(Number::from(2i64), Number::from(2.5));
        assert!(Number::from(1i64) < Number::from(1.5));
    }

    #[test]
    fn non_finite_serializes_as_null() {
        assert_eq!(Number::from(f64::NAN).to_string(), "null");
        assert_eq!(Number::from(f64::INFINITY).to_string(), "null");
    }
}
