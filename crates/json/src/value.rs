//! The JSON value model.

use crate::number::Number;
use std::fmt;

/// An object is an insertion-ordered list of key/value pairs.
///
/// Insertion order is preserved because learning-module files are written and
/// reviewed by hand ("it can be easily done so on printed paper and reviewed",
/// §II of the paper); re-serializing a module must not shuffle its fields.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// Create an empty object.
    pub fn new() -> Self {
        Map {
            entries: Vec::new(),
        }
    }

    /// Create an empty object with pre-allocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Map {
            entries: Vec::with_capacity(cap),
        }
    }

    /// Number of key/value pairs.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the object has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Get a value by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Get a mutable value by key.
    pub fn get_mut(&mut self, key: &str) -> Option<&mut Value> {
        self.entries
            .iter_mut()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// True when the key is present.
    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// Insert a key/value pair, replacing (in place) any existing value for the key.
    /// Returns the previous value if there was one.
    pub fn insert(&mut self, key: impl Into<String>, value: impl Into<Value>) -> Option<Value> {
        let key = key.into();
        let value = value.into();
        if let Some(slot) = self.get_mut(&key) {
            Some(std::mem::replace(slot, value))
        } else {
            self.entries.push((key, value));
            None
        }
    }

    /// Remove a key, returning its value if present.
    pub fn remove(&mut self, key: &str) -> Option<Value> {
        let idx = self.entries.iter().position(|(k, _)| k == key)?;
        Some(self.entries.remove(idx).1)
    }

    /// Iterate over `(key, value)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Iterate over keys in insertion order.
    pub fn keys(&self) -> impl Iterator<Item = &str> {
        self.entries.iter().map(|(k, _)| k.as_str())
    }

    /// Iterate over values in insertion order.
    pub fn values(&self) -> impl Iterator<Item = &Value> {
        self.entries.iter().map(|(_, v)| v)
    }
}

impl FromIterator<(String, Value)> for Map {
    fn from_iter<T: IntoIterator<Item = (String, Value)>>(iter: T) -> Self {
        let mut map = Map::new();
        for (k, v) in iter {
            map.insert(k, v);
        }
        map
    }
}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// The `null` literal.
    #[default]
    Null,
    /// `true` or `false`.
    Bool(bool),
    /// A number (integer or float).
    Number(Number),
    /// A string.
    String(String),
    /// An array of values.
    Array(Vec<Value>),
    /// An object (insertion-ordered map).
    Object(Map),
}

impl Value {
    /// Shorthand for looking up a key on an object value.
    ///
    /// Returns `None` when `self` is not an object or the key is absent.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// Shorthand for indexing into an array value.
    pub fn at(&self, index: usize) -> Option<&Value> {
        match self {
            Value::Array(a) => a.get(index),
            _ => None,
        }
    }

    /// The value as `&str`, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as `bool`, if it is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as `i64`, if it is an integral number.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// The value as `u64`, if it is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The value as `usize`, if it is a non-negative integral number that fits.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Value::Number(n) => n.as_usize(),
            _ => None,
        }
    }

    /// The value as `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The value as a slice of values, if it is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The value as a mutable vector, if it is an array.
    pub fn as_array_mut(&mut self) -> Option<&mut Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The value as an object map, if it is an object.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The value as a mutable object map, if it is an object.
    pub fn as_object_mut(&mut self) -> Option<&mut Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// True when the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// A short name for the value's type, used in error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// Deep count of nodes in this value (itself plus all descendants).
    ///
    /// Used by the module validator to enforce size limits on untrusted files.
    pub fn node_count(&self) -> usize {
        match self {
            Value::Array(a) => 1 + a.iter().map(Value::node_count).sum::<usize>(),
            Value::Object(m) => 1 + m.values().map(Value::node_count).sum::<usize>(),
            _ => 1,
        }
    }

    /// Maximum nesting depth of this value (a scalar has depth 1).
    pub fn depth(&self) -> usize {
        match self {
            Value::Array(a) => 1 + a.iter().map(Value::depth).max().unwrap_or(0),
            Value::Object(m) => 1 + m.values().map(Value::depth).max().unwrap_or(0),
            _ => 1,
        }
    }

    /// Interpret an array-of-arrays of numbers as a dense row-major `u32` grid.
    ///
    /// This is the exact shape of the paper's `traffic_matrix` and
    /// `traffic_matrix_colors` fields. Returns `None` if the value is not an
    /// array of arrays of non-negative integers.
    pub fn as_u32_grid(&self) -> Option<Vec<Vec<u32>>> {
        let rows = self.as_array()?;
        let mut grid = Vec::with_capacity(rows.len());
        for row in rows {
            let cells = row.as_array()?;
            let mut out = Vec::with_capacity(cells.len());
            for c in cells {
                let v = c.as_u64()?;
                out.push(u32::try_from(v).ok()?);
            }
            grid.push(out);
        }
        Some(grid)
    }

    /// Interpret an array of strings as a `Vec<String>`.
    pub fn as_string_list(&self) -> Option<Vec<String>> {
        let items = self.as_array()?;
        let mut out = Vec::with_capacity(items.len());
        for item in items {
            out.push(item.as_str()?.to_string());
        }
        Some(out)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&crate::ser::to_string(self))
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Number(Number::Int(v))
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Number(Number::Int(v as i64))
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::Number(Number::Int(v as i64))
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::Number(Number::from(v))
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Number(Number::Float(v))
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::String(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::String(v)
    }
}
impl From<Number> for Value {
    fn from(v: Number) -> Self {
        Value::Number(v)
    }
}
impl From<Map> for Value {
    fn from(v: Map) -> Self {
        Value::Object(v)
    }
}
impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Self {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}
impl<T: Into<Value> + Clone> From<&[T]> for Value {
    fn from(v: &[T]) -> Self {
        Value::Array(v.iter().cloned().map(Into::into).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_insertion_order() {
        let mut m = Map::new();
        m.insert("name", "Training");
        m.insert("size", "6x6");
        m.insert("author", "MIT");
        let keys: Vec<&str> = m.keys().collect();
        assert_eq!(keys, vec!["name", "size", "author"]);
    }

    #[test]
    fn map_insert_replaces_in_place() {
        let mut m = Map::new();
        m.insert("a", 1i64);
        m.insert("b", 2i64);
        let old = m.insert("a", 10i64);
        assert_eq!(old, Some(Value::from(1i64)));
        let keys: Vec<&str> = m.keys().collect();
        assert_eq!(keys, vec!["a", "b"], "replacement must not reorder keys");
        assert_eq!(m.get("a").unwrap().as_i64(), Some(10));
    }

    #[test]
    fn map_remove() {
        let mut m = Map::new();
        m.insert("x", 1i64);
        assert_eq!(m.remove("x").unwrap().as_i64(), Some(1));
        assert!(m.remove("x").is_none());
        assert!(m.is_empty());
    }

    #[test]
    fn value_accessors() {
        let v = Value::from(vec![1i64, 2, 3]);
        assert_eq!(v.at(1).unwrap().as_i64(), Some(2));
        assert_eq!(v.at(5), None);
        assert_eq!(v.type_name(), "array");
        assert!(Value::Null.is_null());
        assert_eq!(Value::from("hi").as_str(), Some("hi"));
        assert_eq!(Value::from(true).as_bool(), Some(true));
        assert_eq!(Value::from(2.5).as_f64(), Some(2.5));
    }

    #[test]
    fn u32_grid_extraction() {
        let v = Value::Array(vec![
            Value::from(vec![0i64, 1, 2]),
            Value::from(vec![2i64, 0, 1]),
        ]);
        let grid = v.as_u32_grid().unwrap();
        assert_eq!(grid, vec![vec![0, 1, 2], vec![2, 0, 1]]);
    }

    #[test]
    fn u32_grid_rejects_negative_and_non_numeric() {
        let neg = Value::Array(vec![Value::from(vec![-1i64])]);
        assert!(neg.as_u32_grid().is_none());
        let text = Value::Array(vec![Value::Array(vec![Value::from("x")])]);
        assert!(text.as_u32_grid().is_none());
    }

    #[test]
    fn string_list_extraction() {
        let v = Value::from(vec!["WS1", "WS2"]);
        assert_eq!(
            v.as_string_list().unwrap(),
            vec!["WS1".to_string(), "WS2".to_string()]
        );
        let mixed = Value::Array(vec![Value::from("WS1"), Value::from(1i64)]);
        assert!(mixed.as_string_list().is_none());
    }

    #[test]
    fn node_count_and_depth() {
        let mut obj = Map::new();
        obj.insert("a", Value::from(vec![1i64, 2]));
        obj.insert("b", Value::from("x"));
        let v = Value::Object(obj);
        // object + array + 2 numbers + string = 5
        assert_eq!(v.node_count(), 5);
        assert_eq!(v.depth(), 3);
        assert_eq!(Value::Null.depth(), 1);
    }
}
