//! Simple dotted-path queries into JSON documents.
//!
//! Validators and tests frequently need to reach into a module file
//! (`"question"`, `"traffic_matrix.3.7"`); `JsonPath` provides that without
//! repetitive `get(..).and_then(..)` chains and with good error messages.

use crate::error::{ErrorKind, JsonError, Result};
use crate::value::Value;

/// A parsed dotted path such as `traffic_matrix.3.7` or `answers.0`.
///
/// Segments are either object keys or array indices; a numeric segment is
/// tried as an array index first and falls back to an object key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonPath {
    segments: Vec<Segment>,
    source: String,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Segment {
    Key(String),
    Index(usize),
}

impl JsonPath {
    /// Parse a dotted path. An empty string addresses the root value.
    pub fn parse(path: &str) -> Self {
        let segments = if path.is_empty() {
            Vec::new()
        } else {
            path.split('.')
                .map(|seg| match seg.parse::<usize>() {
                    Ok(i) => Segment::Index(i),
                    Err(_) => Segment::Key(seg.to_string()),
                })
                .collect()
        };
        JsonPath {
            segments,
            source: path.to_string(),
        }
    }

    /// Number of segments in the path.
    pub fn len(&self) -> usize {
        self.segments.len()
    }

    /// True when the path addresses the root.
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// Resolve the path against a value, returning `None` when it is absent.
    pub fn lookup<'v>(&self, value: &'v Value) -> Option<&'v Value> {
        let mut current = value;
        for seg in &self.segments {
            current = match seg {
                Segment::Key(k) => current.get(k)?,
                Segment::Index(i) => match current {
                    Value::Array(items) => items.get(*i)?,
                    Value::Object(map) => map.get(&i.to_string())?,
                    _ => return None,
                },
            };
        }
        Some(current)
    }

    /// Resolve the path, producing a descriptive error when it is absent.
    pub fn require<'v>(&self, value: &'v Value) -> Result<&'v Value> {
        self.lookup(value).ok_or_else(|| {
            JsonError::new(ErrorKind::PathError(format!(
                "path {:?} not found in {} value",
                self.source,
                value.type_name()
            )))
        })
    }
}

/// Convenience wrapper: `get_path(v, "a.b.0")`.
pub fn get_path<'v>(value: &'v Value, path: &str) -> Option<&'v Value> {
    JsonPath::parse(path).lookup(value)
}

/// Convenience wrapper returning an error when the path is missing.
pub fn require_path<'v>(value: &'v Value, path: &str) -> Result<&'v Value> {
    JsonPath::parse(path).require(value)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;

    fn doc() -> Value {
        parse(
            r#"{
                "name": "DDoS",
                "traffic_matrix": [[0, 5], [7, 0]],
                "answers": ["0", "1", "2"],
                "meta": {"author": "MIT", "2": "numeric key"}
            }"#,
        )
        .unwrap()
    }

    #[test]
    fn lookup_keys_and_indices() {
        let d = doc();
        assert_eq!(get_path(&d, "name").unwrap().as_str(), Some("DDoS"));
        assert_eq!(
            get_path(&d, "traffic_matrix.0.1").unwrap().as_i64(),
            Some(5)
        );
        assert_eq!(
            get_path(&d, "traffic_matrix.1.0").unwrap().as_i64(),
            Some(7)
        );
        assert_eq!(get_path(&d, "answers.2").unwrap().as_str(), Some("2"));
        assert_eq!(get_path(&d, "meta.author").unwrap().as_str(), Some("MIT"));
    }

    #[test]
    fn numeric_segment_falls_back_to_object_key() {
        let d = doc();
        assert_eq!(
            get_path(&d, "meta.2").unwrap().as_str(),
            Some("numeric key")
        );
    }

    #[test]
    fn empty_path_is_root() {
        let d = doc();
        assert_eq!(get_path(&d, ""), Some(&d));
        assert!(JsonPath::parse("").is_empty());
        assert_eq!(JsonPath::parse("a.b").len(), 2);
    }

    #[test]
    fn missing_paths() {
        let d = doc();
        assert!(get_path(&d, "nope").is_none());
        assert!(get_path(&d, "traffic_matrix.9.9").is_none());
        assert!(get_path(&d, "name.0").is_none());
        let err = require_path(&d, "question").unwrap_err();
        assert!(err.to_string().contains("question"));
    }
}
