//! JSON serialization: compact and pretty printers.
//!
//! Output is always strict RFC 8259 (no trailing commas or comments), so a
//! module authored with the relaxed syntax re-serializes into a portable file.

use crate::value::Value;
use std::fmt::Write as _;

/// Options controlling pretty-printed output.
#[derive(Debug, Clone)]
pub struct WriteOptions {
    /// Number of spaces per indentation level.
    pub indent: usize,
    /// Emit numeric grids (arrays whose elements are all numbers) on a single
    /// line even in pretty mode, which keeps `traffic_matrix` rows readable —
    /// the paper stresses the matrix is "a list of lists to make it intuitive
    /// for an educator to type out exactly what the student will see".
    pub compact_numeric_rows: bool,
}

impl Default for WriteOptions {
    fn default() -> Self {
        WriteOptions {
            indent: 2,
            compact_numeric_rows: true,
        }
    }
}

/// Serialize a value into compact JSON.
pub fn to_string(value: &Value) -> String {
    let mut out = String::new();
    write_compact(value, &mut out);
    out
}

/// Serialize a value into human-readable, indented JSON.
pub fn to_string_pretty(value: &Value) -> String {
    to_string_pretty_with(value, &WriteOptions::default())
}

/// Serialize a value into indented JSON with explicit options.
pub fn to_string_pretty_with(value: &Value, options: &WriteOptions) -> String {
    let mut out = String::new();
    write_pretty(value, &mut out, options, 0);
    out
}

/// Escape a string into a JSON string literal (including surrounding quotes).
pub fn escape_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    write_escaped(s, &mut out);
    out
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{0008}' => out.push_str("\\b"),
            '\u{000C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_compact(value: &Value, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => {
            let _ = write!(out, "{n}");
        }
        Value::String(s) => write_escaped(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(item, out);
            }
            out.push(']');
        }
        Value::Object(map) => {
            out.push('{');
            for (i, (k, v)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(k, out);
                out.push(':');
                write_compact(v, out);
            }
            out.push('}');
        }
    }
}

fn is_numeric_row(value: &Value) -> bool {
    match value {
        Value::Array(items) => items.iter().all(|v| matches!(v, Value::Number(_))),
        _ => false,
    }
}

fn write_pretty(value: &Value, out: &mut String, options: &WriteOptions, level: usize) {
    match value {
        Value::Array(items) if !items.is_empty() => {
            if options.compact_numeric_rows && is_numeric_row(value) {
                write_compact(value, out);
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('\n');
                push_indent(out, options, level + 1);
                write_pretty(item, out, options, level + 1);
            }
            out.push('\n');
            push_indent(out, options, level);
            out.push(']');
        }
        Value::Object(map) if !map.is_empty() => {
            out.push('{');
            for (i, (k, v)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('\n');
                push_indent(out, options, level + 1);
                write_escaped(k, out);
                out.push_str(": ");
                write_pretty(v, out, options, level + 1);
            }
            out.push('\n');
            push_indent(out, options, level);
            out.push('}');
        }
        other => write_compact(other, out),
    }
}

fn push_indent(out: &mut String, options: &WriteOptions, level: usize) {
    for _ in 0..level * options.indent {
        out.push(' ');
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;
    use crate::value::{Map, Value};

    #[test]
    fn compact_round_trip() {
        let src = r#"{"name":"Training","labels":["WS1","ADV1"],"matrix":[[1,0],[0,2]],"active":true,"note":null}"#;
        let v = parse(src).unwrap();
        assert_eq!(to_string(&v), src);
    }

    #[test]
    fn escaping() {
        assert_eq!(escape_string("a\"b"), r#""a\"b""#);
        assert_eq!(escape_string("line\nbreak"), r#""line\nbreak""#);
        assert_eq!(
            escape_string("tab\tcontrol\u{0001}"),
            "\"tab\\tcontrol\\u0001\""
        );
        let v = Value::from("emoji 😀 stays");
        assert_eq!(parse(&to_string(&v)).unwrap(), v);
    }

    #[test]
    fn pretty_keeps_matrix_rows_on_one_line() {
        let src = r#"{"traffic_matrix":[[1,0,2],[0,1,0]],"name":"x"}"#;
        let v = parse(src).unwrap();
        let pretty = to_string_pretty(&v);
        assert!(
            pretty.contains("[1,0,2]"),
            "rows should stay compact:\n{pretty}"
        );
        assert!(pretty.contains("\n"), "top level should still be indented");
        assert_eq!(parse(&pretty).unwrap(), v);
    }

    #[test]
    fn pretty_expands_non_numeric_arrays() {
        let v = parse(r#"{"answers":["0","1","2"]}"#).unwrap();
        let pretty = to_string_pretty(&v);
        assert!(pretty.contains("\n    \"0\""), "{pretty}");
    }

    #[test]
    fn empty_containers() {
        let mut m = Map::new();
        m.insert("a", Value::Array(vec![]));
        m.insert("b", Value::Object(Map::new()));
        let v = Value::Object(m);
        assert_eq!(to_string(&v), r#"{"a":[],"b":{}}"#);
        let pretty = to_string_pretty(&v);
        assert_eq!(parse(&pretty).unwrap(), v);
    }

    #[test]
    fn pretty_indent_width_is_configurable() {
        let v = parse(r#"{"a": {"b": "c"}}"#).unwrap();
        let opts = WriteOptions {
            indent: 4,
            compact_numeric_rows: true,
        };
        let pretty = to_string_pretty_with(&v, &opts);
        assert!(pretty.contains("\n    \"a\""), "{pretty}");
        assert!(pretty.contains("\n        \"b\""), "{pretty}");
    }
}
