//! Recursive-descent JSON parser.
//!
//! Accepts RFC 8259 JSON, plus (by default) trailing commas and `//` line
//! comments, which the paper's own module listings use. Both extensions can be
//! disabled through [`ParseOptions`] for strict validation.

use crate::error::{ErrorKind, JsonError, Result};
use crate::number::Number;
use crate::value::{Map, Value};

/// Options controlling parser strictness and resource limits.
#[derive(Debug, Clone)]
pub struct ParseOptions {
    /// Allow a trailing comma before `]` or `}` (default `true`).
    pub allow_trailing_commas: bool,
    /// Allow `//` line comments (default `true`).
    pub allow_comments: bool,
    /// Reject documents whose nesting depth exceeds this limit (default 128).
    pub max_depth: usize,
    /// Reject objects containing duplicate keys (default `true`).
    ///
    /// Duplicate keys in a learning module are almost always an authoring
    /// mistake (e.g. two `traffic_matrix` fields), so they are rejected rather
    /// than silently last-one-wins.
    pub reject_duplicate_keys: bool,
}

impl Default for ParseOptions {
    fn default() -> Self {
        ParseOptions {
            allow_trailing_commas: true,
            allow_comments: true,
            max_depth: 128,
            reject_duplicate_keys: true,
        }
    }
}

impl ParseOptions {
    /// Strict RFC 8259 parsing: no trailing commas, no comments.
    pub fn strict() -> Self {
        ParseOptions {
            allow_trailing_commas: false,
            allow_comments: false,
            max_depth: 128,
            reject_duplicate_keys: true,
        }
    }
}

/// Parse a JSON document with default options.
pub fn parse(input: &str) -> Result<Value> {
    parse_with_options(input, &ParseOptions::default())
}

/// Parse a JSON document with explicit options.
pub fn parse_with_options(input: &str, options: &ParseOptions) -> Result<Value> {
    let mut p = Parser::new(input, options.clone());
    let value = p.parse_value(0)?;
    p.skip_ws()?;
    if !p.at_end() {
        return Err(p.error(ErrorKind::TrailingContent));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: usize,
    col: usize,
    options: ParseOptions,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str, options: ParseOptions) -> Self {
        Parser {
            bytes: input.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
            options,
        }
    }

    fn at_end(&self) -> bool {
        self.pos >= self.bytes.len()
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }

    fn error(&self, kind: ErrorKind) -> JsonError {
        JsonError::at(kind, self.line, self.col)
    }

    fn unexpected(&self, expected: &'static str) -> JsonError {
        match self.peek() {
            Some(b) => self.error(ErrorKind::UnexpectedChar(b as char, expected)),
            None => self.error(ErrorKind::UnexpectedEof),
        }
    }

    /// Skip whitespace and (if allowed) `//` comments.
    fn skip_ws(&mut self) -> Result<()> {
        loop {
            match self.peek() {
                Some(b' ') | Some(b'\t') | Some(b'\n') | Some(b'\r') => {
                    self.bump();
                }
                Some(b'/') if self.options.allow_comments => {
                    if self.bytes.get(self.pos + 1) == Some(&b'/') {
                        while let Some(b) = self.peek() {
                            if b == b'\n' {
                                break;
                            }
                            self.bump();
                        }
                    } else {
                        return Err(self.unexpected("a JSON value"));
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn expect(&mut self, byte: u8, expected: &'static str) -> Result<()> {
        if self.peek() == Some(byte) {
            self.bump();
            Ok(())
        } else {
            Err(self.unexpected(expected))
        }
    }

    fn parse_value(&mut self, depth: usize) -> Result<Value> {
        if depth > self.options.max_depth {
            return Err(self.error(ErrorKind::DepthLimitExceeded(self.options.max_depth)));
        }
        self.skip_ws()?;
        match self.peek() {
            Some(b'{') => self.parse_object(depth),
            Some(b'[') => self.parse_array(depth),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b't') | Some(b'f') => self.parse_bool(),
            Some(b'n') => self.parse_null(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(self.unexpected("a JSON value")),
        }
    }

    fn parse_object(&mut self, depth: usize) -> Result<Value> {
        self.expect(b'{', "'{'")?;
        let mut map = Map::new();
        loop {
            self.skip_ws()?;
            match self.peek() {
                Some(b'}') => {
                    self.bump();
                    return Ok(Value::Object(map));
                }
                Some(b'"') => {
                    let key = self.parse_string()?;
                    self.skip_ws()?;
                    self.expect(b':', "':'")?;
                    let value = self.parse_value(depth + 1)?;
                    if map.contains_key(&key) && self.options.reject_duplicate_keys {
                        return Err(self.error(ErrorKind::DuplicateKey(key)));
                    }
                    map.insert(key, value);
                    self.skip_ws()?;
                    match self.peek() {
                        Some(b',') => {
                            self.bump();
                            if !self.options.allow_trailing_commas {
                                self.skip_ws()?;
                                if self.peek() == Some(b'}') {
                                    return Err(self.unexpected("an object key"));
                                }
                            }
                        }
                        Some(b'}') => {}
                        _ => return Err(self.unexpected("',' or '}'")),
                    }
                }
                _ => return Err(self.unexpected("an object key or '}'")),
            }
        }
    }

    fn parse_array(&mut self, depth: usize) -> Result<Value> {
        self.expect(b'[', "'['")?;
        let mut items = Vec::new();
        loop {
            self.skip_ws()?;
            match self.peek() {
                Some(b']') => {
                    self.bump();
                    return Ok(Value::Array(items));
                }
                Some(_) => {
                    items.push(self.parse_value(depth + 1)?);
                    self.skip_ws()?;
                    match self.peek() {
                        Some(b',') => {
                            self.bump();
                            if !self.options.allow_trailing_commas {
                                self.skip_ws()?;
                                if self.peek() == Some(b']') {
                                    return Err(self.unexpected("a JSON value"));
                                }
                            }
                        }
                        Some(b']') => {}
                        _ => return Err(self.unexpected("',' or ']'")),
                    }
                }
                None => return Err(self.error(ErrorKind::UnexpectedEof)),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"', "'\"'")?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.error(ErrorKind::UnexpectedEof)),
                Some(b'"') => return Ok(out),
                Some(b'\\') => {
                    let esc = self
                        .bump()
                        .ok_or_else(|| self.error(ErrorKind::UnexpectedEof))?;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.parse_hex4()?;
                            if (0xD800..=0xDBFF).contains(&cp) {
                                // High surrogate: expect a low surrogate escape.
                                if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                    return Err(self.error(ErrorKind::InvalidUnicode(cp)));
                                }
                                let low = self.parse_hex4()?;
                                if !(0xDC00..=0xDFFF).contains(&low) {
                                    return Err(self.error(ErrorKind::InvalidUnicode(low)));
                                }
                                let combined = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
                                match char::from_u32(combined) {
                                    Some(c) => out.push(c),
                                    None => {
                                        return Err(self.error(ErrorKind::InvalidUnicode(combined)))
                                    }
                                }
                            } else if (0xDC00..=0xDFFF).contains(&cp) {
                                return Err(self.error(ErrorKind::InvalidUnicode(cp)));
                            } else {
                                match char::from_u32(cp) {
                                    Some(c) => out.push(c),
                                    None => return Err(self.error(ErrorKind::InvalidUnicode(cp))),
                                }
                            }
                        }
                        other => {
                            return Err(self
                                .error(ErrorKind::InvalidEscape(format!("\\{}", other as char))))
                        }
                    }
                }
                Some(b) if b < 0x20 => {
                    return Err(self.error(ErrorKind::UnexpectedChar(
                        b as char,
                        "escaped control character",
                    )))
                }
                Some(b) => {
                    // Re-assemble multi-byte UTF-8 sequences: the input came from a
                    // &str so it is valid UTF-8; copy continuation bytes verbatim.
                    if b < 0x80 {
                        out.push(b as char);
                    } else {
                        let start = self.pos - 1;
                        let width = utf8_width(b);
                        for _ in 1..width {
                            self.bump();
                        }
                        let end = (start + width).min(self.bytes.len());
                        out.push_str(&String::from_utf8_lossy(&self.bytes[start..end]));
                    }
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        let mut cp: u32 = 0;
        for _ in 0..4 {
            let b = self
                .bump()
                .ok_or_else(|| self.error(ErrorKind::UnexpectedEof))?;
            let digit = (b as char).to_digit(16).ok_or_else(|| {
                self.error(ErrorKind::InvalidEscape(format!(
                    "\\u with non-hex digit {}",
                    b as char
                )))
            })?;
            cp = cp * 16 + digit;
        }
        Ok(cp)
    }

    fn parse_bool(&mut self) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(b"true") {
            for _ in 0..4 {
                self.bump();
            }
            Ok(Value::Bool(true))
        } else if self.bytes[self.pos..].starts_with(b"false") {
            for _ in 0..5 {
                self.bump();
            }
            Ok(Value::Bool(false))
        } else {
            Err(self.error(ErrorKind::InvalidLiteral(self.literal_preview())))
        }
    }

    fn parse_null(&mut self) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(b"null") {
            for _ in 0..4 {
                self.bump();
            }
            Ok(Value::Null)
        } else {
            Err(self.error(ErrorKind::InvalidLiteral(self.literal_preview())))
        }
    }

    fn literal_preview(&self) -> String {
        let end = (self.pos + 8).min(self.bytes.len());
        String::from_utf8_lossy(&self.bytes[self.pos..end]).into_owned()
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.bump();
        }
        // Integer part.
        match self.peek() {
            Some(b'0') => {
                self.bump();
            }
            Some(c) if c.is_ascii_digit() => {
                while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                    self.bump();
                }
            }
            _ => return Err(self.unexpected("a digit")),
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.bump();
            if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return Err(self.unexpected("a digit after '.'"));
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.bump();
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.bump();
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.bump();
            }
            if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return Err(self.unexpected("a digit in exponent"));
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.bump();
            }
        }
        // Every byte consumed above is ASCII, so the slice is valid UTF-8;
        // a lossy view is identical and cannot panic.
        let text = String::from_utf8_lossy(&self.bytes[start..self.pos]);
        let text = text.as_ref();
        if is_float {
            text.parse::<f64>()
                .map(|f| Value::Number(Number::Float(f)))
                .map_err(|_| self.error(ErrorKind::InvalidNumber(text.to_string())))
        } else {
            match text.parse::<i64>() {
                Ok(i) => Ok(Value::Number(Number::Int(i))),
                // Overflowing integers fall back to float, as most parsers do.
                Err(_) => text
                    .parse::<f64>()
                    .map(|f| Value::Number(Number::Float(f)))
                    .map_err(|_| self.error(ErrorKind::InvalidNumber(text.to_string()))),
            }
        }
    }
}

fn utf8_width(first_byte: u8) -> usize {
    if first_byte >= 0xF0 {
        4
    } else if first_byte >= 0xE0 {
        3
    } else {
        2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Value {
        parse(s).unwrap()
    }

    #[test]
    fn parses_scalars() {
        assert_eq!(p("null"), Value::Null);
        assert_eq!(p("true"), Value::Bool(true));
        assert_eq!(p("false"), Value::Bool(false));
        assert_eq!(p("42").as_i64(), Some(42));
        assert_eq!(p("-7").as_i64(), Some(-7));
        assert_eq!(p("3.25").as_f64(), Some(3.25));
        assert_eq!(p("1e3").as_f64(), Some(1000.0));
        assert_eq!(p("-2.5E-1").as_f64(), Some(-0.25));
        assert_eq!(p(r#""hello""#).as_str(), Some("hello"));
    }

    #[test]
    fn parses_nested_structures() {
        let v = p(r#"{"a": [1, {"b": [true, null]}], "c": "d"}"#);
        assert_eq!(v.get("a").unwrap().at(0).unwrap().as_i64(), Some(1));
        assert_eq!(
            v.get("a").unwrap().at(1).unwrap().get("b").unwrap().at(1),
            Some(&Value::Null)
        );
        assert_eq!(v.get("c").unwrap().as_str(), Some("d"));
    }

    #[test]
    fn parses_string_escapes() {
        assert_eq!(p(r#""a\nb\t\"c\"\\""#).as_str(), Some("a\nb\t\"c\"\\"));
        assert_eq!(p(r#""Aé""#).as_str(), Some("Aé"));
        // Surrogate pair for U+1F600.
        assert_eq!(p(r#""😀""#).as_str(), Some("😀"));
        // Raw multi-byte UTF-8 passes through.
        assert_eq!(p(r#""héllo — ok""#).as_str(), Some("héllo — ok"));
    }

    #[test]
    fn rejects_lone_surrogate() {
        assert!(parse(r#""\ud83d""#).is_err());
        assert!(parse(r#""\udc00""#).is_err());
    }

    #[test]
    fn rejects_bad_escapes_and_control_chars() {
        assert!(parse(r#""\x41""#).is_err());
        assert!(parse("\"a\nb\"").is_err());
        assert!(parse(r#""\u00g1""#).is_err());
    }

    #[test]
    fn trailing_commas_allowed_by_default() {
        let v = p("[1, 2, 3,]");
        assert_eq!(v.as_array().unwrap().len(), 3);
        let v = p(r#"{"a": 1,}"#);
        assert_eq!(v.get("a").unwrap().as_i64(), Some(1));
    }

    #[test]
    fn strict_mode_rejects_trailing_commas_and_comments() {
        let opts = ParseOptions::strict();
        assert!(parse_with_options("[1, 2,]", &opts).is_err());
        assert!(parse_with_options("// c\n1", &opts).is_err());
        assert!(parse_with_options("[1, 2]", &opts).is_ok());
    }

    #[test]
    fn comments_allowed_by_default() {
        let v = p("// module header\n{\"a\": 1 // trailing\n}");
        assert_eq!(v.get("a").unwrap().as_i64(), Some(1));
    }

    #[test]
    fn rejects_trailing_content() {
        let err = parse("1 2").unwrap_err();
        assert_eq!(err.kind(), &ErrorKind::TrailingContent);
    }

    #[test]
    fn rejects_duplicate_keys() {
        let err = parse(r#"{"a": 1, "a": 2}"#).unwrap_err();
        assert!(matches!(err.kind(), ErrorKind::DuplicateKey(k) if k == "a"));
        let opts = ParseOptions {
            reject_duplicate_keys: false,
            ..ParseOptions::default()
        };
        let v = parse_with_options(r#"{"a": 1, "a": 2}"#, &opts).unwrap();
        assert_eq!(v.get("a").unwrap().as_i64(), Some(2));
    }

    #[test]
    fn rejects_deep_nesting() {
        let mut doc = String::new();
        for _ in 0..300 {
            doc.push('[');
        }
        doc.push('1');
        for _ in 0..300 {
            doc.push(']');
        }
        let err = parse(&doc).unwrap_err();
        assert!(matches!(err.kind(), ErrorKind::DepthLimitExceeded(_)));
    }

    #[test]
    fn error_positions_are_reported() {
        let err = parse("{\n  \"a\": ,\n}").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.column >= 8, "column was {}", err.column);
    }

    #[test]
    fn rejects_incomplete_documents() {
        for doc in [
            "{", "[", "[1,", "{\"a\":", "\"abc", "tru", "nul", "-", "1.", "1e",
        ] {
            assert!(parse(doc).is_err(), "should reject {doc:?}");
        }
    }

    #[test]
    fn rejects_leading_zero_followed_by_digits_as_trailing() {
        // "01" parses the 0 then finds trailing content, per RFC 8259 number grammar.
        assert!(parse("01").is_err());
    }

    #[test]
    fn huge_integer_falls_back_to_float() {
        let v = p("123456789012345678901234567890");
        assert!(v.as_f64().unwrap() > 1e29);
    }

    #[test]
    fn parses_paper_traffic_matrix_listing() {
        let src = r#"{
            "traffic_matrix":[
                [1,0,0,0,0,0,0,0,0,2],
                [0,1,0,0,0,0,0,0,2,0],
                [0,0,1,0,0,0,0,2,0,0],
                [0,0,0,1,0,0,2,0,0,0],
                [0,0,0,0,1,2,0,0,0,0],
                [0,0,0,0,2,1,0,0,0,0],
                [0,0,0,2,0,0,1,0,0,0],
                [0,0,2,0,0,0,0,1,0,0],
                [0,2,0,0,0,0,0,0,1,0],
                [2,0,0,0,0,0,0,0,0,1],
            ],
        }"#;
        let grid = p(src).get("traffic_matrix").unwrap().as_u32_grid().unwrap();
        assert_eq!(grid.len(), 10);
        assert_eq!(grid[0][9], 2);
        assert_eq!(grid[9][0], 2);
        assert!(grid.iter().all(|r| r.len() == 10));
    }
}
