//! Error type shared by the parser, serializer and path queries.

use std::fmt;

/// Result alias used throughout `tw-json`.
pub type Result<T> = std::result::Result<T, JsonError>;

/// An error produced while parsing or querying JSON.
///
/// Errors carry a line/column position (1-based) so an educator editing a
/// learning-module file by hand gets an actionable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    kind: ErrorKind,
    /// 1-based line of the offending character, 0 when not applicable.
    pub line: usize,
    /// 1-based column of the offending character, 0 when not applicable.
    pub column: usize,
}

/// The category of a [`JsonError`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ErrorKind {
    /// The document ended while a value was still being parsed.
    UnexpectedEof,
    /// An unexpected character was found; contains the character and what was expected.
    UnexpectedChar(char, &'static str),
    /// A number literal could not be parsed.
    InvalidNumber(String),
    /// A string literal contains an invalid escape sequence.
    InvalidEscape(String),
    /// A `\u` escape did not form a valid Unicode scalar value.
    InvalidUnicode(u32),
    /// A literal such as `true`/`false`/`null` was misspelled.
    InvalidLiteral(String),
    /// Trailing non-whitespace content after the top-level value.
    TrailingContent,
    /// Nesting depth exceeded [`super::ParseOptions::max_depth`].
    DepthLimitExceeded(usize),
    /// A duplicate object key was encountered and duplicates are rejected.
    DuplicateKey(String),
    /// A path query did not match the document shape.
    PathError(String),
    /// A type conversion (e.g. `as_u64` on a float) failed.
    TypeError(String),
}

impl JsonError {
    /// Construct an error at a known position.
    pub fn at(kind: ErrorKind, line: usize, column: usize) -> Self {
        JsonError { kind, line, column }
    }

    /// Construct an error with no position information.
    pub fn new(kind: ErrorKind) -> Self {
        JsonError {
            kind,
            line: 0,
            column: 0,
        }
    }

    /// The category of this error.
    pub fn kind(&self) -> &ErrorKind {
        &self.kind
    }

    /// True when the error is a positionless semantic error (path/type).
    pub fn is_semantic(&self) -> bool {
        matches!(self.kind, ErrorKind::PathError(_) | ErrorKind::TypeError(_))
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            ErrorKind::UnexpectedEof => write!(f, "unexpected end of input")?,
            ErrorKind::UnexpectedChar(c, expected) => {
                write!(f, "unexpected character {c:?}, expected {expected}")?
            }
            ErrorKind::InvalidNumber(s) => write!(f, "invalid number literal {s:?}")?,
            ErrorKind::InvalidEscape(s) => write!(f, "invalid escape sequence {s:?}")?,
            ErrorKind::InvalidUnicode(cp) => write!(f, "invalid unicode escape U+{cp:04X}")?,
            ErrorKind::InvalidLiteral(s) => write!(f, "invalid literal {s:?}")?,
            ErrorKind::TrailingContent => write!(f, "trailing content after JSON value")?,
            ErrorKind::DepthLimitExceeded(d) => write!(f, "nesting depth exceeds limit of {d}")?,
            ErrorKind::DuplicateKey(k) => write!(f, "duplicate object key {k:?}")?,
            ErrorKind::PathError(msg) => write!(f, "path error: {msg}")?,
            ErrorKind::TypeError(msg) => write!(f, "type error: {msg}")?,
        }
        if self.line > 0 {
            write!(f, " at line {} column {}", self.line, self.column)?;
        }
        Ok(())
    }
}

impl std::error::Error for JsonError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_position() {
        let e = JsonError::at(ErrorKind::TrailingContent, 3, 7);
        let msg = e.to_string();
        assert!(msg.contains("line 3"), "{msg}");
        assert!(msg.contains("column 7"), "{msg}");
    }

    #[test]
    fn display_without_position() {
        let e = JsonError::new(ErrorKind::TypeError("not a number".into()));
        assert!(!e.to_string().contains("line"));
        assert!(e.is_semantic());
    }

    #[test]
    fn kind_accessor() {
        let e = JsonError::new(ErrorKind::DuplicateKey("size".into()));
        assert_eq!(e.kind(), &ErrorKind::DuplicateKey("size".into()));
        assert!(!e.is_semantic());
    }
}
