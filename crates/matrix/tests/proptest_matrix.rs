//! Property-based tests over the matrix substrate's core invariants.

use proptest::prelude::*;
use tw_matrix::ops::{ewise_add, ewise_mul, mxm, mxv, reduce_all, reduce_cols, reduce_rows};
use tw_matrix::parallel::{par_mxm, par_mxv, par_reduce_all};
use tw_matrix::{CooMatrix, CsrMatrix, LabelSet, MatrixProfile, PlusTimes, TrafficMatrix};

/// Strategy for a small dense grid (n×n, n in 1..=12, values 0..15 as the paper suggests).
fn arb_grid() -> impl Strategy<Value = Vec<Vec<u32>>> {
    (1usize..=12)
        .prop_flat_map(|n| prop::collection::vec(prop::collection::vec(0u32..15, n..=n), n..=n))
}

fn arb_triples(n: usize) -> impl Strategy<Value = Vec<(usize, usize, u64)>> {
    prop::collection::vec((0..n, 0..n, 1u64..20), 0..(n * n))
}

fn csr_from(n: usize, triples: &[(usize, usize, u64)]) -> CsrMatrix<u64> {
    let mut coo = CooMatrix::new(n, n);
    for &(r, c, v) in triples {
        coo.push(r, c, v);
    }
    coo.to_csr()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn dense_grid_round_trips(grid in arb_grid()) {
        let labels = LabelSet::numeric(grid.len());
        let m = TrafficMatrix::from_grid(labels, &grid).unwrap();
        prop_assert_eq!(m.to_grid(), grid);
    }

    #[test]
    fn transpose_is_involution_and_preserves_totals(grid in arb_grid()) {
        let m = TrafficMatrix::from_grid(LabelSet::numeric(grid.len()), &grid).unwrap();
        let t = m.transpose();
        prop_assert_eq!(t.transpose(), m.clone());
        prop_assert_eq!(t.total_packets(), m.total_packets());
        prop_assert_eq!(t.out_degrees(), m.in_degrees());
        prop_assert_eq!(t.in_fanout(), m.out_fanout());
    }

    #[test]
    fn degrees_sum_to_total(grid in arb_grid()) {
        let m = TrafficMatrix::from_grid(LabelSet::numeric(grid.len()), &grid).unwrap();
        let out_sum: u64 = m.out_degrees().iter().sum();
        let in_sum: u64 = m.in_degrees().iter().sum();
        prop_assert_eq!(out_sum, m.total_packets());
        prop_assert_eq!(in_sum, m.total_packets());
    }

    #[test]
    fn dense_to_sparse_preserves_structure(grid in arb_grid()) {
        let m = TrafficMatrix::from_grid(LabelSet::numeric(grid.len()), &grid).unwrap();
        let csr = m.to_coo().to_csr();
        prop_assert_eq!(csr.nnz(), m.nonzero_count());
        for (r, c, v) in m.iter_nonzero() {
            prop_assert_eq!(csr.get(r, c), v);
        }
    }

    #[test]
    fn combine_is_commutative(grid_a in arb_grid(), grid_b in arb_grid()) {
        let n = grid_a.len().min(grid_b.len());
        let cut = |g: &Vec<Vec<u32>>| -> Vec<Vec<u32>> {
            g.iter().take(n).map(|row| row.iter().take(n).copied().collect()).collect()
        };
        let labels = LabelSet::numeric(n);
        let a = TrafficMatrix::from_grid(labels.clone(), &cut(&grid_a)).unwrap();
        let b = TrafficMatrix::from_grid(labels, &cut(&grid_b)).unwrap();
        prop_assert_eq!(a.combine(&b).unwrap(), b.combine(&a).unwrap());
    }

    #[test]
    fn profile_class_totals_sum_to_total_packets(grid in arb_grid()) {
        let n = grid.len();
        let labels = if n == 10 { LabelSet::paper_default_10() } else { LabelSet::numeric(n) };
        let m = TrafficMatrix::from_grid(labels, &grid).unwrap();
        let p = MatrixProfile::of(&m);
        let class_sum: u64 = p.packets_by_class.iter().sum();
        prop_assert_eq!(class_sum, m.total_packets());
    }

    #[test]
    fn coalesce_preserves_value_sums(n in 2usize..10, triples in arb_triples(9)) {
        let triples: Vec<_> = triples.into_iter().map(|(r, c, v)| (r % n, c % n, v)).collect();
        let total: u64 = triples.iter().map(|&(_, _, v)| v).sum();
        let mut coo = CooMatrix::new(n, n);
        for &(r, c, v) in &triples {
            coo.push(r, c, v);
        }
        coo.coalesce();
        let coalesced_total: u64 = coo.entries().iter().map(|&(_, _, v)| v).sum();
        prop_assert_eq!(coalesced_total, total);
        let csr = csr_from(n, &triples);
        prop_assert_eq!(reduce_all(&PlusTimes, &csr), total);
    }

    #[test]
    fn mxv_distributes_over_unit_vectors(triples in arb_triples(8)) {
        // A·e_j is the j-th column of A.
        let a = csr_from(8, &triples);
        for j in 0..8 {
            let mut e = vec![0u64; 8];
            e[j] = 1;
            let col = mxv(&PlusTimes, &a, &e).unwrap();
            for (r, value) in col.iter().enumerate() {
                prop_assert_eq!(*value, a.get(r, j));
            }
        }
    }

    #[test]
    fn reduce_rows_and_cols_agree_with_total(triples in arb_triples(10)) {
        let a = csr_from(10, &triples);
        let row_total: u64 = reduce_rows(&PlusTimes, &a).iter().sum();
        let col_total: u64 = reduce_cols(&PlusTimes, &a).iter().sum();
        prop_assert_eq!(row_total, col_total);
        prop_assert_eq!(row_total, reduce_all(&PlusTimes, &a));
    }

    #[test]
    fn ewise_add_total_is_sum_of_totals(ta in arb_triples(7), tb in arb_triples(7)) {
        let a = csr_from(7, &ta);
        let b = csr_from(7, &tb);
        let c = ewise_add(&PlusTimes, &a, &b).unwrap();
        prop_assert_eq!(
            reduce_all(&PlusTimes, &c),
            reduce_all(&PlusTimes, &a) + reduce_all(&PlusTimes, &b)
        );
    }

    #[test]
    fn ewise_mul_pattern_is_intersection(ta in arb_triples(7), tb in arb_triples(7)) {
        let a = csr_from(7, &ta);
        let b = csr_from(7, &tb);
        let c = ewise_mul(&PlusTimes, &a, &b).unwrap();
        for (r, col, v) in c.iter() {
            prop_assert!(a.get(r, col) > 0 && b.get(r, col) > 0);
            prop_assert_eq!(v, a.get(r, col) * b.get(r, col));
        }
    }

    #[test]
    fn mxm_transpose_identity(ta in arb_triples(6), tb in arb_triples(6)) {
        // (A·B)^T == B^T · A^T
        let a = csr_from(6, &ta);
        let b = csr_from(6, &tb);
        let left = mxm(&PlusTimes, &a, &b).unwrap().transpose();
        let right = mxm(&PlusTimes, &b.transpose(), &a.transpose()).unwrap();
        prop_assert_eq!(left, right);
    }

    #[test]
    fn parallel_kernels_match_serial(triples in arb_triples(12)) {
        let a = csr_from(12, &triples);
        let x: Vec<u64> = (0..12).map(|i| (i * 3 % 5) as u64).collect();
        prop_assert_eq!(par_mxv(&PlusTimes, &a, &x).unwrap(), mxv(&PlusTimes, &a, &x).unwrap());
        prop_assert_eq!(par_reduce_all(&PlusTimes, &a), reduce_all(&PlusTimes, &a));
        prop_assert_eq!(par_mxm(&PlusTimes, &a, &a).unwrap(), mxm(&PlusTimes, &a, &a).unwrap());
    }
}
