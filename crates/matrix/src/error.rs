//! Errors for matrix construction and operations.

use std::fmt;

/// Result alias for matrix operations.
pub type Result<T> = std::result::Result<T, MatrixError>;

/// Errors produced by matrix construction and operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MatrixError {
    /// Two operands have incompatible dimensions; contains a description.
    DimensionMismatch(String),
    /// A row or column index is out of bounds; contains (index, bound, axis).
    IndexOutOfBounds {
        index: usize,
        bound: usize,
        axis: &'static str,
    },
    /// A dense grid had ragged rows; contains (row, expected, actual).
    RaggedRows {
        row: usize,
        expected: usize,
        actual: usize,
    },
    /// The label list length does not match the matrix dimension.
    LabelCountMismatch { labels: usize, dimension: usize },
    /// A label appears more than once in a label set.
    DuplicateLabel(String),
    /// A matrix was empty where a non-empty one is required.
    Empty(&'static str),
}

impl fmt::Display for MatrixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MatrixError::DimensionMismatch(msg) => write!(f, "dimension mismatch: {msg}"),
            MatrixError::IndexOutOfBounds { index, bound, axis } => {
                write!(
                    f,
                    "{axis} index {index} out of bounds (dimension is {bound})"
                )
            }
            MatrixError::RaggedRows {
                row,
                expected,
                actual,
            } => write!(
                f,
                "ragged matrix: row {row} has {actual} columns but previous rows have {expected}"
            ),
            MatrixError::LabelCountMismatch { labels, dimension } => write!(
                f,
                "label count mismatch: {labels} axis labels for a dimension of {dimension}"
            ),
            MatrixError::DuplicateLabel(l) => write!(f, "duplicate axis label {l:?}"),
            MatrixError::Empty(what) => write!(f, "{what} must not be empty"),
        }
    }
}

impl std::error::Error for MatrixError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = MatrixError::IndexOutOfBounds {
            index: 12,
            bound: 10,
            axis: "row",
        };
        assert!(e.to_string().contains("row index 12"));
        let e = MatrixError::LabelCountMismatch {
            labels: 6,
            dimension: 10,
        };
        assert!(e.to_string().contains("6 axis labels"));
        let e = MatrixError::RaggedRows {
            row: 3,
            expected: 10,
            actual: 9,
        };
        assert!(e.to_string().contains("row 3"));
    }
}
