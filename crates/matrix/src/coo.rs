//! Coordinate-list (COO) sparse matrices.
//!
//! COO is the natural construction format for traffic matrices built from
//! packet streams: every observed packet contributes a `(source, destination,
//! count)` triple, and duplicate coordinates are summed when the matrix is
//! finalized — the "hypersparse traffic matrix construction" workflow the
//! paper's introduction cites.

use crate::csr::CsrMatrix;
use crate::error::{MatrixError, Result};

/// A sparse matrix stored as unordered `(row, col, value)` triples.
#[derive(Debug, Clone, PartialEq)]
pub struct CooMatrix<T> {
    rows: usize,
    cols: usize,
    entries: Vec<(usize, usize, T)>,
}

impl<T: Copy + PartialEq + std::ops::Add<Output = T> + Default> CooMatrix<T> {
    /// An empty matrix with the given shape.
    pub fn new(rows: usize, cols: usize) -> Self {
        CooMatrix {
            rows,
            cols,
            entries: Vec::new(),
        }
    }

    /// An empty matrix with pre-allocated space for `capacity` entries.
    pub fn with_capacity(rows: usize, cols: usize, capacity: usize) -> Self {
        CooMatrix {
            rows,
            cols,
            entries: Vec::with_capacity(capacity),
        }
    }

    /// The shape as `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Number of stored triples (including duplicates not yet coalesced).
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// True when no triples are stored.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Append a triple without bounds checking against existing duplicates.
    ///
    /// Panics in debug builds when the coordinates are out of range; use
    /// [`CooMatrix::try_push`] for checked insertion.
    pub fn push(&mut self, row: usize, col: usize, value: T) {
        debug_assert!(
            row < self.rows && col < self.cols,
            "coordinate out of range"
        );
        self.entries.push((row, col, value));
    }

    /// Append a triple, validating coordinates.
    pub fn try_push(&mut self, row: usize, col: usize, value: T) -> Result<()> {
        if row >= self.rows {
            return Err(MatrixError::IndexOutOfBounds {
                index: row,
                bound: self.rows,
                axis: "row",
            });
        }
        if col >= self.cols {
            return Err(MatrixError::IndexOutOfBounds {
                index: col,
                bound: self.cols,
                axis: "column",
            });
        }
        self.entries.push((row, col, value));
        Ok(())
    }

    /// The stored triples in insertion order.
    pub fn entries(&self) -> &[(usize, usize, T)] {
        &self.entries
    }

    /// Sum duplicate coordinates and drop entries equal to `T::default()`
    /// (zero for numeric types). Entries end up sorted by `(row, col)`.
    pub fn coalesce(&mut self) {
        if self.entries.is_empty() {
            return;
        }
        self.entries.sort_unstable_by_key(|&(r, c, _)| (r, c));
        let mut write = 0usize;
        for read in 0..self.entries.len() {
            if write > 0
                && self.entries[write - 1].0 == self.entries[read].0
                && self.entries[write - 1].1 == self.entries[read].1
            {
                let v = self.entries[write - 1].2 + self.entries[read].2;
                self.entries[write - 1].2 = v;
            } else {
                self.entries[write] = self.entries[read];
                write += 1;
            }
        }
        self.entries.truncate(write);
        self.entries.retain(|&(_, _, v)| v != T::default());
    }

    /// Convert to CSR, coalescing duplicates first.
    pub fn to_csr(mut self) -> CsrMatrix<T> {
        self.coalesce();
        CsrMatrix::from_sorted_coo(self.rows, self.cols, self.entries)
    }

    /// Coalesce and return the sorted, duplicate-free entry vector.
    ///
    /// This is the shard-local half of the blocked-COO merge used by the
    /// ingest pipeline: each shard coalesces independently (in parallel) and
    /// the sorted blocks are stitched together with
    /// [`CsrMatrix::from_row_disjoint_blocks`].
    pub fn into_sorted_entries(mut self) -> Vec<(usize, usize, T)> {
        self.coalesce();
        self.entries
    }

    /// Merge another COO matrix of the same shape into this one.
    pub fn extend_from(&mut self, other: &CooMatrix<T>) -> Result<()> {
        if self.shape() != other.shape() {
            return Err(MatrixError::DimensionMismatch(format!(
                "cannot merge {:?} into {:?}",
                other.shape(),
                self.shape()
            )));
        }
        self.entries.extend_from_slice(&other.entries);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_shape() {
        let mut m = CooMatrix::<u32>::with_capacity(4, 4, 8);
        m.push(0, 1, 3);
        m.push(2, 3, 1);
        assert_eq!(m.shape(), (4, 4));
        assert_eq!(m.nnz(), 2);
        assert!(!m.is_empty());
        assert_eq!(m.entries()[1], (2, 3, 1));
    }

    #[test]
    fn try_push_bounds() {
        let mut m = CooMatrix::<u32>::new(2, 3);
        assert!(m.try_push(1, 2, 1).is_ok());
        assert!(matches!(
            m.try_push(2, 0, 1),
            Err(MatrixError::IndexOutOfBounds { axis: "row", .. })
        ));
        assert!(matches!(
            m.try_push(0, 3, 1),
            Err(MatrixError::IndexOutOfBounds { axis: "column", .. })
        ));
    }

    #[test]
    fn coalesce_sums_duplicates_and_drops_zeros() {
        let mut m = CooMatrix::<i64>::new(3, 3);
        m.push(1, 1, 2);
        m.push(0, 0, 5);
        m.push(1, 1, 3);
        m.push(2, 2, 4);
        m.push(2, 2, -4); // cancels to zero, must be dropped
        m.coalesce();
        assert_eq!(m.entries(), &[(0, 0, 5), (1, 1, 5)]);
    }

    #[test]
    fn coalesce_empty_is_noop() {
        let mut m = CooMatrix::<u32>::new(3, 3);
        m.coalesce();
        assert!(m.is_empty());
    }

    #[test]
    fn extend_from_requires_same_shape() {
        let mut a = CooMatrix::<u32>::new(2, 2);
        let mut b = CooMatrix::<u32>::new(2, 2);
        b.push(0, 1, 9);
        a.extend_from(&b).unwrap();
        assert_eq!(a.nnz(), 1);
        let c = CooMatrix::<u32>::new(3, 2);
        assert!(a.extend_from(&c).is_err());
    }

    #[test]
    fn to_csr_round_trip_values() {
        let mut m = CooMatrix::<u32>::new(3, 4);
        m.push(0, 1, 2);
        m.push(2, 3, 7);
        m.push(0, 1, 1);
        let csr = m.to_csr();
        assert_eq!(csr.get(0, 1), 3);
        assert_eq!(csr.get(2, 3), 7);
        assert_eq!(csr.get(1, 1), 0);
        assert_eq!(csr.nnz(), 2);
    }
}
