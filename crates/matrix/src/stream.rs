//! Building traffic matrices from packet event streams.
//!
//! The paper's motivation cites GraphBLAS pipelines that construct traffic
//! matrices from streaming network telemetry ("anonymized high performance
//! streaming of network traffic"). This module provides the synthetic
//! equivalent: a packet-event type, a generator for realistic event mixes and
//! a windowed aggregator that turns an event stream into sparse matrices.

use crate::coo::CooMatrix;
use crate::csr::CsrMatrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One observed packet (or flow record) on the simulated network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketEvent {
    /// Anonymized source index.
    pub source: u32,
    /// Anonymized destination index.
    pub destination: u32,
    /// Number of packets represented by this event (flow aggregation).
    pub packets: u32,
    /// Timestamp in microseconds since the window epoch.
    pub timestamp_us: u64,
}

/// Sample uniformly from `0..pool` excluding `excluded`, keeping the
/// remaining candidates exactly uniform (shift-past-excluded trick). When
/// `excluded >= pool` the whole pool is valid and sampled uniformly.
///
/// Shared by the generators here and the `tw-ingest` scenario sources so the
/// subtle exclusion arithmetic lives in one place. Panics (empty range) when
/// the pool contains no valid candidate.
pub fn sample_excluding(rng: &mut StdRng, pool: u32, excluded: u32) -> u32 {
    if excluded >= pool {
        return rng.gen_range(0..pool);
    }
    let d = rng.gen_range(0..pool - 1);
    d + u32::from(d >= excluded)
}

/// Generate a synthetic event stream with a heavy-tailed endpoint distribution
/// (a few "supernode" servers receive most traffic, as in real networks).
///
/// `node_count` is the address space, `event_count` the number of events and
/// `seed` makes the stream reproducible.
pub fn synthetic_events(node_count: u32, event_count: usize, seed: u64) -> Vec<PacketEvent> {
    assert!(node_count >= 2, "need at least two nodes");
    let mut rng = StdRng::seed_from_u64(seed);
    let supernode_count = (node_count / 20).max(1);
    let mut events = Vec::with_capacity(event_count);
    for i in 0..event_count {
        // 70% of traffic goes to a supernode destination, sources are uniform.
        // Self-loops are excluded by sampling the destination from the chosen
        // pool *minus* the source (shift-past-source trick), which keeps the
        // remaining destinations exactly uniform. The old `(d + 1) % n`
        // rewrite folded the self-loop mass onto the next address, which
        // could silently promote an arbitrary node into the supernode set.
        let source = rng.gen_range(0..node_count);
        let supernode_roll = rng.gen_bool(0.7) && !(supernode_count == 1 && source == 0);
        let destination = if supernode_roll {
            sample_excluding(&mut rng, supernode_count, source)
        } else {
            sample_excluding(&mut rng, node_count, source)
        };
        events.push(PacketEvent {
            source,
            destination,
            packets: rng.gen_range(1..16),
            timestamp_us: i as u64 * 100 + rng.gen_range(0..100u64),
        });
    }
    events
}

/// Aggregates packet events into fixed-duration window matrices.
#[derive(Debug)]
pub struct StreamAggregator {
    node_count: usize,
    window_us: u64,
    current_window: u64,
    current: CooMatrix<u64>,
    completed: Vec<CsrMatrix<u64>>,
    total_events: u64,
}

impl StreamAggregator {
    /// Create an aggregator over `node_count` addresses with windows of
    /// `window_us` microseconds.
    pub fn new(node_count: usize, window_us: u64) -> Self {
        assert!(window_us > 0, "window must be positive");
        StreamAggregator {
            node_count,
            window_us,
            current_window: 0,
            current: CooMatrix::new(node_count, node_count),
            completed: Vec::new(),
            total_events: 0,
        }
    }

    /// Number of addresses per axis.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Total events ingested so far.
    pub fn total_events(&self) -> u64 {
        self.total_events
    }

    /// Ingest one event. Events must be fed in non-decreasing timestamp order;
    /// an event belonging to a later window finalizes the current one.
    pub fn ingest(&mut self, event: &PacketEvent) {
        let window = event.timestamp_us / self.window_us;
        while window > self.current_window {
            self.rotate();
        }
        self.current.push(
            event.source as usize,
            event.destination as usize,
            event.packets as u64,
        );
        self.total_events += 1;
    }

    /// Ingest a batch of events.
    pub fn ingest_all(&mut self, events: &[PacketEvent]) {
        for e in events {
            self.ingest(e);
        }
    }

    fn rotate(&mut self) {
        let full = std::mem::replace(
            &mut self.current,
            CooMatrix::new(self.node_count, self.node_count),
        );
        self.completed.push(full.to_csr());
        self.current_window += 1;
    }

    /// Finalize the in-progress window and return all window matrices.
    pub fn finish(mut self) -> Vec<CsrMatrix<u64>> {
        self.rotate();
        self.completed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::reduce_all;
    use crate::semiring::PlusTimes;

    #[test]
    fn synthetic_events_are_reproducible_and_valid() {
        let a = synthetic_events(100, 1000, 7);
        let b = synthetic_events(100, 1000, 7);
        assert_eq!(a, b);
        let c = synthetic_events(100, 1000, 8);
        assert_ne!(a, c);
        assert_eq!(a.len(), 1000);
        assert!(a.iter().all(|e| e.source < 100 && e.destination < 100));
        assert!(a.iter().all(|e| e.packets >= 1 && e.packets < 16));
        assert!(a.iter().all(|e| e.source != e.destination));
        // Timestamps are non-decreasing by construction.
        assert!(a.windows(2).all(|w| w[0].timestamp_us <= w[1].timestamp_us));
    }

    #[test]
    fn supernode_destinations_dominate() {
        let events = synthetic_events(200, 20_000, 42);
        let to_supernodes =
            events.iter().filter(|e| e.destination < 10).count() as f64 / events.len() as f64;
        assert!(
            to_supernodes > 0.5,
            "expected heavy-tailed destinations, got {to_supernodes}"
        );
    }

    #[test]
    fn non_supernode_destinations_are_unbiased() {
        // Regression for the old self-loop rewrite `(d + 1) % n`, which folded
        // the rejected self-loop mass onto one neighbouring address and could
        // promote it into an accidental supernode. After the fix, the 30%
        // uniform share must spread evenly over the non-supernode addresses.
        let node_count = 40u32;
        let supernode_count = (node_count / 20).max(1); // = 2
        let events = synthetic_events(node_count, 200_000, 9);
        let mut hits = vec![0u64; node_count as usize];
        for e in &events {
            hits[e.destination as usize] += 1;
        }
        let tail = &hits[supernode_count as usize..];
        let min = *tail.iter().min().unwrap() as f64;
        let max = *tail.iter().max().unwrap() as f64;
        assert!(
            min > 0.0,
            "every non-supernode address should receive traffic"
        );
        assert!(
            max / min < 1.5,
            "non-supernode destinations should be near-uniform, got min {min} max {max}"
        );
    }

    #[test]
    fn aggregator_windows_preserve_packet_totals() {
        let events = synthetic_events(50, 5_000, 3);
        let total_packets: u64 = events.iter().map(|e| e.packets as u64).sum();
        let mut agg = StreamAggregator::new(50, 50_000);
        agg.ingest_all(&events);
        assert_eq!(agg.total_events(), 5_000);
        assert_eq!(agg.node_count(), 50);
        let windows = agg.finish();
        assert!(!windows.is_empty());
        let recovered: u64 = windows.iter().map(|w| reduce_all(&PlusTimes, w)).sum();
        assert_eq!(recovered, total_packets);
    }

    #[test]
    fn aggregator_rotates_on_window_boundaries() {
        let mut agg = StreamAggregator::new(4, 1_000);
        agg.ingest(&PacketEvent {
            source: 0,
            destination: 1,
            packets: 2,
            timestamp_us: 10,
        });
        agg.ingest(&PacketEvent {
            source: 1,
            destination: 2,
            packets: 3,
            timestamp_us: 2_500,
        });
        agg.ingest(&PacketEvent {
            source: 2,
            destination: 3,
            packets: 1,
            timestamp_us: 3_100,
        });
        let windows = agg.finish();
        // Windows 0..=3 exist (0, 1 empty, 2, 3).
        assert_eq!(windows.len(), 4);
        assert_eq!(windows[0].get(0, 1), 2);
        assert_eq!(windows[1].nnz(), 0);
        assert_eq!(windows[2].get(1, 2), 3);
        assert_eq!(windows[3].get(2, 3), 1);
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_panics() {
        let _ = StreamAggregator::new(4, 0);
    }
}
