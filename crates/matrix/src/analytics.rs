//! Traffic-matrix analytics: the vocabulary the learning modules teach.
//!
//! The paper's topology module teaches students to recognize isolated links,
//! single links, and internal/external supernodes; the attack and DDoS modules
//! teach cross-space traffic blocks. These functions compute those features
//! from a matrix so the quiz engine, the pattern classifier and the benchmarks
//! can check that a generated pattern actually exhibits the structure it
//! claims to show.

use crate::dense::TrafficMatrix;
use crate::labels::NodeClass;

/// Degree statistics for one matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct DegreeSummary {
    /// Packets sent per node (row sums).
    pub out_packets: Vec<u64>,
    /// Packets received per node (column sums).
    pub in_packets: Vec<u64>,
    /// Distinct destinations per node.
    pub out_fanout: Vec<usize>,
    /// Distinct sources per node.
    pub in_fanout: Vec<usize>,
    /// Maximum fanout (max of in/out) per node.
    pub max_fanout: Vec<usize>,
}

impl DegreeSummary {
    /// Compute the summary for a matrix.
    pub fn of(matrix: &TrafficMatrix) -> Self {
        let out_packets = matrix.out_degrees();
        let in_packets = matrix.in_degrees();
        let out_fanout = matrix.out_fanout();
        let in_fanout = matrix.in_fanout();
        let max_fanout = out_fanout
            .iter()
            .zip(in_fanout.iter())
            .map(|(&o, &i)| o.max(i))
            .collect();
        DegreeSummary {
            out_packets,
            in_packets,
            out_fanout,
            in_fanout,
            max_fanout,
        }
    }

    /// Indices of nodes whose fanout is at least `threshold` — the paper calls
    /// these supernodes. Threshold is a count of distinct peers.
    pub fn supernodes(&self, threshold: usize) -> Vec<usize> {
        self.max_fanout
            .iter()
            .enumerate()
            .filter(|(_, &f)| f >= threshold)
            .map(|(i, _)| i)
            .collect()
    }
}

/// Classification of one non-zero link relative to the security spaces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LinkClass {
    /// Both endpoints inside the defended (blue) network.
    IntraBlue,
    /// Both endpoints in grey space.
    IntraGrey,
    /// Both endpoints in adversary (red) space.
    IntraRed,
    /// Blue → grey or grey → blue (the network border).
    BlueGreyBorder,
    /// Blue → red or red → blue (defended network touching the adversary).
    BlueRedContact,
    /// Grey → red or red → grey.
    GreyRedContact,
    /// A node sending traffic to itself.
    SelfLoop,
}

impl LinkClass {
    /// Classify a link given the classes of its endpoints.
    pub fn classify(source: NodeClass, destination: NodeClass, is_self: bool) -> LinkClass {
        if is_self {
            return LinkClass::SelfLoop;
        }
        use LinkClass::*;
        match (space(source), space(destination)) {
            (Space::Blue, Space::Blue) => IntraBlue,
            (Space::Grey, Space::Grey) => IntraGrey,
            (Space::Red, Space::Red) => IntraRed,
            (Space::Blue, Space::Grey) | (Space::Grey, Space::Blue) => BlueGreyBorder,
            (Space::Blue, Space::Red) | (Space::Red, Space::Blue) => BlueRedContact,
            (Space::Grey, Space::Red) | (Space::Red, Space::Grey) => GreyRedContact,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Space {
    Blue,
    Grey,
    Red,
}

fn space(class: NodeClass) -> Space {
    if class.is_blue() {
        Space::Blue
    } else if class.is_red() {
        Space::Red
    } else {
        Space::Grey
    }
}

/// A structural profile of one traffic matrix: everything the learning
/// modules ask students to read off the picture.
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixProfile {
    /// Matrix dimension.
    pub dimension: usize,
    /// Total packets.
    pub total_packets: u64,
    /// Count of non-zero cells.
    pub nonzero_links: usize,
    /// Count of self-loop cells (diagonal non-zeros).
    pub self_loops: usize,
    /// Whether the non-zero pattern is symmetric.
    pub symmetric: bool,
    /// Degree summary.
    pub degrees: DegreeSummary,
    /// Per-class packet totals keyed by [`LinkClass`], in a fixed order:
    /// `[IntraBlue, IntraGrey, IntraRed, BlueGreyBorder, BlueRedContact, GreyRedContact, SelfLoop]`.
    pub packets_by_class: [u64; 7],
    /// Indices of isolated pairs: nodes exchanging traffic exclusively with one
    /// peer (the paper's "isolated links" topology).
    pub isolated_pairs: Vec<(usize, usize)>,
    /// Supernode indices at the default threshold (fanout ≥ 3).
    pub supernodes: Vec<usize>,
}

/// Default fanout threshold above which a node counts as a supernode.
pub const SUPERNODE_FANOUT_THRESHOLD: usize = 3;

impl MatrixProfile {
    /// Analyze a matrix.
    pub fn of(matrix: &TrafficMatrix) -> Self {
        let degrees = DegreeSummary::of(matrix);
        let classes = matrix.labels().classes();
        let mut packets_by_class = [0u64; 7];
        let mut self_loops = 0usize;
        for (r, c, v) in matrix.iter_nonzero() {
            let class = LinkClass::classify(classes[r], classes[c], r == c);
            packets_by_class[class_slot(class)] += v as u64;
            if r == c {
                self_loops += 1;
            }
        }
        let isolated_pairs = find_isolated_pairs(matrix, &degrees);
        let supernodes = degrees.supernodes(SUPERNODE_FANOUT_THRESHOLD);
        MatrixProfile {
            dimension: matrix.dimension(),
            total_packets: matrix.total_packets(),
            nonzero_links: matrix.nonzero_count(),
            self_loops,
            symmetric: matrix.is_symmetric(),
            degrees,
            packets_by_class,
            isolated_pairs,
            supernodes,
        }
    }

    /// Packets for one link class.
    pub fn packets_for(&self, class: LinkClass) -> u64 {
        self.packets_by_class[class_slot(class)]
    }

    /// True when any traffic touches adversary space.
    pub fn has_red_contact(&self) -> bool {
        self.packets_for(LinkClass::BlueRedContact) > 0
            || self.packets_for(LinkClass::GreyRedContact) > 0
            || self.packets_for(LinkClass::IntraRed) > 0
    }
}

fn class_slot(class: LinkClass) -> usize {
    match class {
        LinkClass::IntraBlue => 0,
        LinkClass::IntraGrey => 1,
        LinkClass::IntraRed => 2,
        LinkClass::BlueGreyBorder => 3,
        LinkClass::BlueRedContact => 4,
        LinkClass::GreyRedContact => 5,
        LinkClass::SelfLoop => 6,
    }
}

/// Find pairs `(a, b)` with `a < b` where `a` and `b` exchange traffic (in
/// either direction) and neither node communicates with any third node.
fn find_isolated_pairs(matrix: &TrafficMatrix, degrees: &DegreeSummary) -> Vec<(usize, usize)> {
    let n = matrix.dimension();
    let mut pairs = Vec::new();
    for a in 0..n {
        for b in (a + 1)..n {
            let ab = matrix.get(a, b).unwrap_or(0);
            let ba = matrix.get(b, a).unwrap_or(0);
            if ab == 0 && ba == 0 {
                continue;
            }
            // Every peer of a and of b must be within {a, b}.
            let a_exclusive = peers_within(matrix, a, &[a, b]);
            let b_exclusive = peers_within(matrix, b, &[a, b]);
            if a_exclusive && b_exclusive && degrees.max_fanout[a] > 0 && degrees.max_fanout[b] > 0
            {
                pairs.push((a, b));
            }
        }
    }
    pairs
}

fn peers_within(matrix: &TrafficMatrix, node: usize, allowed: &[usize]) -> bool {
    let n = matrix.dimension();
    for other in 0..n {
        let touches =
            matrix.get(node, other).unwrap_or(0) > 0 || matrix.get(other, node).unwrap_or(0) > 0;
        if touches && !allowed.contains(&other) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::labels::LabelSet;

    fn paper_template() -> TrafficMatrix {
        let mut grid = vec![vec![0u32; 10]; 10];
        for i in 0..10 {
            grid[i][i] = 1;
            grid[i][9 - i] = 2;
        }
        TrafficMatrix::from_grid(LabelSet::paper_default_10(), &grid).unwrap()
    }

    #[test]
    fn degree_summary_and_supernodes() {
        let mut m = TrafficMatrix::zeros_numeric(6);
        // Node 0 talks to 1,2,3,4 → supernode; others have fanout ≤ 2.
        for dst in 1..5 {
            m.set(0, dst, 1).unwrap();
        }
        let d = DegreeSummary::of(&m);
        assert_eq!(d.out_packets[0], 4);
        assert_eq!(d.out_fanout[0], 4);
        assert_eq!(d.in_fanout[1], 1);
        assert_eq!(d.max_fanout[0], 4);
        assert_eq!(d.supernodes(3), vec![0]);
        assert_eq!(d.supernodes(5), Vec::<usize>::new());
    }

    #[test]
    fn link_classification_covers_spaces() {
        use NodeClass::*;
        assert_eq!(
            LinkClass::classify(Workstation, Server, false),
            LinkClass::IntraBlue
        );
        assert_eq!(
            LinkClass::classify(External, External, false),
            LinkClass::IntraGrey
        );
        assert_eq!(
            LinkClass::classify(Adversary, Adversary, false),
            LinkClass::IntraRed
        );
        assert_eq!(
            LinkClass::classify(Workstation, External, false),
            LinkClass::BlueGreyBorder
        );
        assert_eq!(
            LinkClass::classify(External, Server, false),
            LinkClass::BlueGreyBorder
        );
        assert_eq!(
            LinkClass::classify(Workstation, Adversary, false),
            LinkClass::BlueRedContact
        );
        assert_eq!(
            LinkClass::classify(Adversary, Server, false),
            LinkClass::BlueRedContact
        );
        assert_eq!(
            LinkClass::classify(External, Adversary, false),
            LinkClass::GreyRedContact
        );
        assert_eq!(
            LinkClass::classify(Workstation, Workstation, true),
            LinkClass::SelfLoop
        );
    }

    #[test]
    fn profile_of_paper_template() {
        let m = paper_template();
        let p = MatrixProfile::of(&m);
        assert_eq!(p.dimension, 10);
        assert_eq!(p.total_packets, 30);
        assert_eq!(p.nonzero_links, 20);
        assert_eq!(p.self_loops, 10);
        assert!(p.symmetric);
        assert!(p.has_red_contact());
        // The anti-diagonal blue↔adv contacts: rows 0-3 ↔ cols 6-9 both directions, 2 packets each.
        assert_eq!(p.packets_for(LinkClass::BlueRedContact), 16);
        assert_eq!(p.packets_for(LinkClass::SelfLoop), 10);
        assert_eq!(p.packets_for(LinkClass::IntraBlue), 0);
        // EXT1↔EXT2 anti-diagonal contact is intra-grey.
        assert_eq!(p.packets_for(LinkClass::IntraGrey), 4);
    }

    #[test]
    fn isolated_pairs_detected() {
        let mut m = TrafficMatrix::zeros_numeric(6);
        m.set(0, 1, 2).unwrap();
        m.set(1, 0, 2).unwrap();
        m.set(2, 3, 1).unwrap();
        // Node 4 talks to 5 but 5 also talks to 0 → not isolated.
        m.set(4, 5, 1).unwrap();
        m.set(5, 0, 1).unwrap();
        let p = MatrixProfile::of(&m);
        assert!(
            !p.isolated_pairs.contains(&(0, 1)),
            "0 has a third peer (5→0)"
        );
        assert!(p.isolated_pairs.contains(&(2, 3)));
        assert!(!p.isolated_pairs.contains(&(4, 5)));
    }

    #[test]
    fn empty_matrix_profile() {
        let m = TrafficMatrix::zeros_numeric(4);
        let p = MatrixProfile::of(&m);
        assert_eq!(p.total_packets, 0);
        assert_eq!(p.nonzero_links, 0);
        assert!(!p.has_red_contact());
        assert!(p.isolated_pairs.is_empty());
        assert!(p.supernodes.is_empty());
        assert!(p.symmetric);
    }
}
