//! GraphBLAS-lite operations over CSR matrices.
//!
//! These are serial reference kernels; [`crate::parallel`] provides
//! rayon-parallel versions of the row-parallel ones. The set mirrors the core
//! GraphBLAS primitives the paper's references build on: matrix-vector and
//! matrix-matrix multiply over a semiring, element-wise add/multiply,
//! reductions, transpose and sub-matrix extraction.

use crate::csr::CsrMatrix;
use crate::error::{MatrixError, Result};
use crate::semiring::Semiring;

/// Sparse matrix × dense vector over a semiring: `y[r] = ⊕_c mul(A[r,c], x[c])`.
pub fn mxv<T, S>(semiring: &S, a: &CsrMatrix<T>, x: &[T]) -> Result<Vec<T>>
where
    T: Copy + Default + PartialEq,
    S: Semiring<T>,
{
    if x.len() != a.cols() {
        return Err(MatrixError::DimensionMismatch(format!(
            "mxv: matrix has {} columns but vector has {} entries",
            a.cols(),
            x.len()
        )));
    }
    let mut y = Vec::with_capacity(a.rows());
    for r in 0..a.rows() {
        let mut acc = semiring.zero();
        for (c, v) in a.row(r) {
            acc = semiring.add(acc, semiring.mul(v, x[c]));
        }
        y.push(acc);
    }
    Ok(y)
}

/// Dense vector × sparse matrix over a semiring: `y[c] = ⊕_r mul(x[r], A[r,c])`.
pub fn vxm<T, S>(semiring: &S, x: &[T], a: &CsrMatrix<T>) -> Result<Vec<T>>
where
    T: Copy + Default + PartialEq,
    S: Semiring<T>,
{
    if x.len() != a.rows() {
        return Err(MatrixError::DimensionMismatch(format!(
            "vxm: matrix has {} rows but vector has {} entries",
            a.rows(),
            x.len()
        )));
    }
    let mut y = vec![semiring.zero(); a.cols()];
    for (r, &xr) in x.iter().enumerate() {
        for (c, v) in a.row(r) {
            y[c] = semiring.add(y[c], semiring.mul(xr, v));
        }
    }
    Ok(y)
}

/// Sparse matrix × sparse matrix over a semiring (row-by-row Gustavson).
pub fn mxm<T, S>(semiring: &S, a: &CsrMatrix<T>, b: &CsrMatrix<T>) -> Result<CsrMatrix<T>>
where
    T: Copy + Default + PartialEq,
    S: Semiring<T>,
{
    if a.cols() != b.rows() {
        return Err(MatrixError::DimensionMismatch(format!(
            "mxm: left has {} columns but right has {} rows",
            a.cols(),
            b.rows()
        )));
    }
    let mut triples = Vec::new();
    let mut accumulator: Vec<Option<T>> = vec![None; b.cols()];
    let mut touched: Vec<usize> = Vec::new();
    for r in 0..a.rows() {
        for (k, av) in a.row(r) {
            for (c, bv) in b.row(k) {
                let contribution = semiring.mul(av, bv);
                match accumulator[c] {
                    Some(existing) => accumulator[c] = Some(semiring.add(existing, contribution)),
                    None => {
                        accumulator[c] = Some(contribution);
                        touched.push(c);
                    }
                }
            }
        }
        touched.sort_unstable();
        for &c in &touched {
            if let Some(v) = accumulator[c].take() {
                if !semiring.is_zero(v) {
                    triples.push((r, c, v));
                }
            }
        }
        touched.clear();
    }
    Ok(CsrMatrix::from_sorted_triples(a.rows(), b.cols(), &triples))
}

/// Element-wise "add" (union of patterns) of two same-shape matrices.
pub fn ewise_add<T, S>(semiring: &S, a: &CsrMatrix<T>, b: &CsrMatrix<T>) -> Result<CsrMatrix<T>>
where
    T: Copy + Default + PartialEq,
    S: Semiring<T>,
{
    if a.shape() != b.shape() {
        return Err(MatrixError::DimensionMismatch(format!(
            "ewise_add: shapes {:?} and {:?} differ",
            a.shape(),
            b.shape()
        )));
    }
    let mut triples = Vec::with_capacity(a.nnz() + b.nnz());
    for r in 0..a.rows() {
        let mut ia = a.row(r).peekable();
        let mut ib = b.row(r).peekable();
        loop {
            match (ia.peek().copied(), ib.peek().copied()) {
                (Some((ca, va)), Some((cb, vb))) => {
                    if ca == cb {
                        let v = semiring.add(va, vb);
                        if !semiring.is_zero(v) {
                            triples.push((r, ca, v));
                        }
                        ia.next();
                        ib.next();
                    } else if ca < cb {
                        triples.push((r, ca, va));
                        ia.next();
                    } else {
                        triples.push((r, cb, vb));
                        ib.next();
                    }
                }
                (Some((ca, va)), None) => {
                    triples.push((r, ca, va));
                    ia.next();
                }
                (None, Some((cb, vb))) => {
                    triples.push((r, cb, vb));
                    ib.next();
                }
                (None, None) => break,
            }
        }
    }
    Ok(CsrMatrix::from_sorted_triples(a.rows(), a.cols(), &triples))
}

/// Element-wise "multiply" (intersection of patterns) of two same-shape matrices.
pub fn ewise_mul<T, S>(semiring: &S, a: &CsrMatrix<T>, b: &CsrMatrix<T>) -> Result<CsrMatrix<T>>
where
    T: Copy + Default + PartialEq,
    S: Semiring<T>,
{
    if a.shape() != b.shape() {
        return Err(MatrixError::DimensionMismatch(format!(
            "ewise_mul: shapes {:?} and {:?} differ",
            a.shape(),
            b.shape()
        )));
    }
    let mut triples = Vec::new();
    for r in 0..a.rows() {
        let mut ia = a.row(r).peekable();
        let mut ib = b.row(r).peekable();
        while let (Some(&(ca, va)), Some(&(cb, vb))) = (ia.peek(), ib.peek()) {
            if ca == cb {
                let v = semiring.mul(va, vb);
                if !semiring.is_zero(v) {
                    triples.push((r, ca, v));
                }
                ia.next();
                ib.next();
            } else if ca < cb {
                ia.next();
            } else {
                ib.next();
            }
        }
    }
    Ok(CsrMatrix::from_sorted_triples(a.rows(), a.cols(), &triples))
}

/// Reduce every row to a scalar with the semiring's additive operation.
pub fn reduce_rows<T, S>(semiring: &S, a: &CsrMatrix<T>) -> Vec<T>
where
    T: Copy + Default + PartialEq,
    S: Semiring<T>,
{
    (0..a.rows())
        .map(|r| {
            a.row(r)
                .fold(semiring.zero(), |acc, (_, v)| semiring.add(acc, v))
        })
        .collect()
}

/// Reduce every column to a scalar with the semiring's additive operation.
pub fn reduce_cols<T, S>(semiring: &S, a: &CsrMatrix<T>) -> Vec<T>
where
    T: Copy + Default + PartialEq,
    S: Semiring<T>,
{
    let mut out = vec![semiring.zero(); a.cols()];
    for (_, c, v) in a.iter() {
        out[c] = semiring.add(out[c], v);
    }
    out
}

/// Reduce the whole matrix to one scalar.
pub fn reduce_all<T, S>(semiring: &S, a: &CsrMatrix<T>) -> T
where
    T: Copy + Default + PartialEq,
    S: Semiring<T>,
{
    a.iter()
        .fold(semiring.zero(), |acc, (_, _, v)| semiring.add(acc, v))
}

/// Extract the sub-matrix selecting `row_idx` rows and `col_idx` columns
/// (GraphBLAS `extract`). Output row `i` corresponds to `row_idx[i]`.
pub fn extract<T>(a: &CsrMatrix<T>, row_idx: &[usize], col_idx: &[usize]) -> Result<CsrMatrix<T>>
where
    T: Copy + Default + PartialEq,
{
    for &r in row_idx {
        if r >= a.rows() {
            return Err(MatrixError::IndexOutOfBounds {
                index: r,
                bound: a.rows(),
                axis: "row",
            });
        }
    }
    for &c in col_idx {
        if c >= a.cols() {
            return Err(MatrixError::IndexOutOfBounds {
                index: c,
                bound: a.cols(),
                axis: "column",
            });
        }
    }
    // Map original column -> new position.
    let mut col_map = vec![usize::MAX; a.cols()];
    for (new, &old) in col_idx.iter().enumerate() {
        col_map[old] = new;
    }
    let mut triples = Vec::new();
    for (new_r, &old_r) in row_idx.iter().enumerate() {
        let mut row: Vec<(usize, T)> = a
            .row(old_r)
            .filter_map(|(c, v)| {
                let new_c = col_map[c];
                (new_c != usize::MAX).then_some((new_c, v))
            })
            .collect();
        row.sort_unstable_by_key(|&(c, _)| c);
        for (c, v) in row {
            triples.push((new_r, c, v));
        }
    }
    Ok(CsrMatrix::from_sorted_triples(
        row_idx.len(),
        col_idx.len(),
        &triples,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semiring::{MinPlus, OrAnd, PlusTimes};

    fn sample() -> CsrMatrix<u64> {
        // [1 0 2]
        // [0 3 0]
        // [4 0 0]
        CsrMatrix::from_dense(&[vec![1u64, 0, 2], vec![0, 3, 0], vec![4, 0, 0]]).unwrap()
    }

    #[test]
    fn mxv_plus_times() {
        let a = sample();
        let y = mxv(&PlusTimes, &a, &[1u64, 10, 100]).unwrap();
        assert_eq!(y, vec![201, 30, 4]);
        assert!(mxv(&PlusTimes, &a, &[1u64, 2]).is_err());
    }

    #[test]
    fn vxm_is_transpose_mxv() {
        let a = sample();
        let x = vec![1u64, 10, 100];
        let y1 = vxm(&PlusTimes, &x, &a).unwrap();
        let y2 = mxv(&PlusTimes, &a.transpose(), &x).unwrap();
        assert_eq!(y1, y2);
        assert!(vxm(&PlusTimes, &[1u64], &a).is_err());
    }

    #[test]
    fn mxm_matches_dense_multiplication() {
        let a = sample();
        let b = CsrMatrix::from_dense(&[vec![0u64, 1, 0], vec![2, 0, 0], vec![0, 0, 3]]).unwrap();
        let c = mxm(&PlusTimes, &a, &b).unwrap();
        // Dense check.
        let ad = a.to_dense();
        let bd = b.to_dense();
        for (r, ad_row) in ad.iter().enumerate() {
            for col in 0..3 {
                let expect: u64 = ad_row
                    .iter()
                    .zip(&bd)
                    .map(|(av, bd_row)| av * bd_row[col])
                    .sum();
                assert_eq!(c.get(r, col), expect, "mismatch at ({r},{col})");
            }
        }
        let bad = CsrMatrix::<u64>::empty(4, 4);
        assert!(mxm(&PlusTimes, &a, &bad).is_err());
    }

    #[test]
    fn mxm_boolean_reachability() {
        // Path 0→1→2 exists; squared adjacency should reveal the 2-hop edge 0→2.
        let a = CsrMatrix::from_dense(&[
            vec![false, true, false],
            vec![false, false, true],
            vec![false, false, false],
        ])
        .unwrap();
        let a2 = mxm(&OrAnd, &a, &a).unwrap();
        assert!(a2.get(0, 2));
        assert!(!a2.get(0, 1));
        assert_eq!(a2.nnz(), 1);
    }

    #[test]
    fn ewise_add_unions_patterns() {
        let a = sample();
        let b = CsrMatrix::from_dense(&[vec![0u64, 5, 0], vec![0, 1, 0], vec![0, 0, 7]]).unwrap();
        let c = ewise_add(&PlusTimes, &a, &b).unwrap();
        assert_eq!(c.get(0, 1), 5);
        assert_eq!(c.get(1, 1), 4);
        assert_eq!(c.get(2, 2), 7);
        assert_eq!(c.get(0, 0), 1);
        assert_eq!(c.nnz(), 6);
        assert!(ewise_add(&PlusTimes, &a, &CsrMatrix::<u64>::empty(2, 2)).is_err());
    }

    #[test]
    fn ewise_mul_intersects_patterns() {
        let a = sample();
        let b = CsrMatrix::from_dense(&[vec![10u64, 0, 0], vec![0, 2, 0], vec![0, 0, 9]]).unwrap();
        let c = ewise_mul(&PlusTimes, &a, &b).unwrap();
        assert_eq!(c.get(0, 0), 10);
        assert_eq!(c.get(1, 1), 6);
        assert_eq!(c.nnz(), 2, "only overlapping cells survive");
        assert!(ewise_mul(&PlusTimes, &a, &CsrMatrix::<u64>::empty(2, 2)).is_err());
    }

    #[test]
    fn reductions() {
        let a = sample();
        assert_eq!(reduce_rows(&PlusTimes, &a), vec![3, 3, 4]);
        assert_eq!(reduce_cols(&PlusTimes, &a), vec![5, 3, 2]);
        assert_eq!(reduce_all(&PlusTimes, &a), 10);
        let empty = CsrMatrix::<u64>::empty(2, 2);
        assert_eq!(reduce_all(&PlusTimes, &empty), 0);
    }

    #[test]
    fn min_plus_single_step_relaxation() {
        // Distances: direct edge 0→2 costs 10, path through 1 costs 3+4=7.
        let inf = f64::INFINITY;
        let a = CsrMatrix::from_sorted_triples(3, 3, &[(0, 1, 3.0f64), (0, 2, 10.0), (1, 2, 4.0)]);
        let dist0 = vec![0.0, inf, inf];
        // One relaxation step: dist1[c] = min_r (dist0[r] + A[r,c]).
        let dist1 = vxm(&MinPlus, &dist0, &a).unwrap();
        assert_eq!(dist1[1], 3.0);
        assert_eq!(dist1[2], 10.0);
        // Second step finds the cheaper 2-hop path.
        let mut best = dist1.clone();
        let dist2 = vxm(&MinPlus, &dist1, &a).unwrap();
        for (b, d) in best.iter_mut().zip(dist2) {
            *b = b.min(d);
        }
        assert_eq!(best[2], 7.0);
    }

    #[test]
    fn extract_submatrix() {
        let a = sample();
        let sub = extract(&a, &[0, 2], &[0, 2]).unwrap();
        assert_eq!(sub.shape(), (2, 2));
        assert_eq!(sub.get(0, 0), 1);
        assert_eq!(sub.get(0, 1), 2);
        assert_eq!(sub.get(1, 0), 4);
        assert_eq!(sub.get(1, 1), 0);
        assert!(extract(&a, &[5], &[0]).is_err());
        assert!(extract(&a, &[0], &[5]).is_err());
        // Column permutation is honoured.
        let perm = extract(&a, &[0], &[2, 0]).unwrap();
        assert_eq!(perm.get(0, 0), 2);
        assert_eq!(perm.get(0, 1), 1);
    }
}
