//! The labelled dense traffic matrix used by learning modules and the game.
//!
//! Module matrices are small (the paper ships 6×6 and 10×10 templates) and
//! dense storage keeps them trivially indexable by the warehouse scene, which
//! needs one pallet per cell regardless of value.

use crate::color::{CellColor, ColorMatrix};
use crate::coo::CooMatrix;
use crate::error::{MatrixError, Result};
use crate::labels::LabelSet;

/// A square, labelled, dense traffic matrix with packet counts as values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrafficMatrix {
    labels: LabelSet,
    values: Vec<u32>,
}

impl TrafficMatrix {
    /// An all-zero matrix with the given labels.
    pub fn zeros(labels: LabelSet) -> Self {
        let n = labels.len();
        TrafficMatrix {
            labels,
            values: vec![0; n * n],
        }
    }

    /// An all-zero matrix with numeric labels `0..n`.
    pub fn zeros_numeric(n: usize) -> Self {
        TrafficMatrix::zeros(LabelSet::numeric(n))
    }

    /// Build from a row-major grid (the module-file `traffic_matrix` encoding)
    /// and a label set. The grid must be square and match the label count.
    pub fn from_grid(labels: LabelSet, grid: &[Vec<u32>]) -> Result<Self> {
        let n = labels.len();
        if grid.len() != n {
            return Err(MatrixError::LabelCountMismatch {
                labels: n,
                dimension: grid.len(),
            });
        }
        let mut values = Vec::with_capacity(n * n);
        for (r, row) in grid.iter().enumerate() {
            if row.len() != n {
                return Err(MatrixError::RaggedRows {
                    row: r,
                    expected: n,
                    actual: row.len(),
                });
            }
            values.extend_from_slice(row);
        }
        Ok(TrafficMatrix { labels, values })
    }

    /// Matrix dimension (rows == columns == label count).
    pub fn dimension(&self) -> usize {
        self.labels.len()
    }

    /// The axis labels.
    pub fn labels(&self) -> &LabelSet {
        &self.labels
    }

    /// Replace the labels (must have the same length).
    pub fn set_labels(&mut self, labels: LabelSet) -> Result<()> {
        if labels.len() != self.dimension() {
            return Err(MatrixError::LabelCountMismatch {
                labels: labels.len(),
                dimension: self.dimension(),
            });
        }
        self.labels = labels;
        Ok(())
    }

    /// The packet count at `(row, col)`; `None` when out of bounds.
    pub fn get(&self, row: usize, col: usize) -> Option<u32> {
        let n = self.dimension();
        if row < n && col < n {
            Some(self.values[row * n + col])
        } else {
            None
        }
    }

    /// The packet count between two labelled nodes.
    pub fn get_by_label(&self, source: &str, destination: &str) -> Option<u32> {
        let row = self.labels.index_of(source)?;
        let col = self.labels.index_of(destination)?;
        self.get(row, col)
    }

    /// Set the packet count at `(row, col)`.
    pub fn set(&mut self, row: usize, col: usize, value: u32) -> Result<()> {
        let n = self.dimension();
        if row >= n {
            return Err(MatrixError::IndexOutOfBounds {
                index: row,
                bound: n,
                axis: "row",
            });
        }
        if col >= n {
            return Err(MatrixError::IndexOutOfBounds {
                index: col,
                bound: n,
                axis: "column",
            });
        }
        self.values[row * n + col] = value;
        Ok(())
    }

    /// Add to the packet count at `(row, col)` (saturating).
    pub fn add(&mut self, row: usize, col: usize, delta: u32) -> Result<()> {
        let current = self.get(row, col).ok_or(MatrixError::IndexOutOfBounds {
            index: row.max(col),
            bound: self.dimension(),
            axis: "row/column",
        })?;
        self.set(row, col, current.saturating_add(delta))
    }

    /// Row-major export, matching the module-file encoding.
    pub fn to_grid(&self) -> Vec<Vec<u32>> {
        let n = self.dimension();
        (0..n)
            .map(|r| self.values[r * n..(r + 1) * n].to_vec())
            .collect()
    }

    /// Total packets in the matrix.
    pub fn total_packets(&self) -> u64 {
        self.values.iter().map(|&v| v as u64).sum()
    }

    /// Number of non-zero cells.
    pub fn nonzero_count(&self) -> usize {
        self.values.iter().filter(|&&v| v > 0).count()
    }

    /// The largest cell value. The paper notes values under 15 display well.
    pub fn max_value(&self) -> u32 {
        self.values.iter().copied().max().unwrap_or(0)
    }

    /// Density: non-zero cells / total cells.
    pub fn density(&self) -> f64 {
        let n = self.dimension();
        if n == 0 {
            return 0.0;
        }
        self.nonzero_count() as f64 / (n * n) as f64
    }

    /// Out-degree (row sum) of every node, in packets.
    pub fn out_degrees(&self) -> Vec<u64> {
        let n = self.dimension();
        (0..n)
            .map(|r| {
                self.values[r * n..(r + 1) * n]
                    .iter()
                    .map(|&v| v as u64)
                    .sum()
            })
            .collect()
    }

    /// In-degree (column sum) of every node, in packets.
    pub fn in_degrees(&self) -> Vec<u64> {
        let n = self.dimension();
        let mut degrees = vec![0u64; n];
        for row in self.values.chunks_exact(n) {
            for (degree, value) in degrees.iter_mut().zip(row) {
                *degree += *value as u64;
            }
        }
        degrees
    }

    /// Out-fanout (count of distinct destinations) of every node.
    pub fn out_fanout(&self) -> Vec<usize> {
        let n = self.dimension();
        (0..n)
            .map(|r| (0..n).filter(|&c| self.values[r * n + c] > 0).count())
            .collect()
    }

    /// In-fanout (count of distinct sources) of every node.
    pub fn in_fanout(&self) -> Vec<usize> {
        let n = self.dimension();
        (0..n)
            .map(|c| (0..n).filter(|&r| self.values[r * n + c] > 0).count())
            .collect()
    }

    /// Iterate over non-zero `(row, col, value)` triples in row-major order.
    pub fn iter_nonzero(&self) -> impl Iterator<Item = (usize, usize, u32)> + '_ {
        let n = self.dimension();
        (0..n * n).filter_map(move |i| {
            let v = self.values[i];
            if v > 0 {
                Some((i / n, i % n, v))
            } else {
                None
            }
        })
    }

    /// The transposed matrix (traffic in the reverse direction).
    pub fn transpose(&self) -> TrafficMatrix {
        let n = self.dimension();
        let mut out = TrafficMatrix::zeros(self.labels.clone());
        for r in 0..n {
            for c in 0..n {
                out.values[c * n + r] = self.values[r * n + c];
            }
        }
        out
    }

    /// Element-wise saturating sum of two matrices with identical labels.
    ///
    /// Learning modules use this to combine individual attack stages into one
    /// composite picture ("they could all be combined together").
    pub fn combine(&self, other: &TrafficMatrix) -> Result<TrafficMatrix> {
        if self.labels != other.labels {
            return Err(MatrixError::DimensionMismatch(format!(
                "cannot combine a {}x{0} matrix with a {}x{1} matrix with different labels",
                self.dimension(),
                other.dimension()
            )));
        }
        let mut out = self.clone();
        for (dst, src) in out.values.iter_mut().zip(other.values.iter()) {
            *dst = dst.saturating_add(*src);
        }
        Ok(out)
    }

    /// True when the matrix is symmetric (undirected traffic).
    pub fn is_symmetric(&self) -> bool {
        let n = self.dimension();
        (0..n).all(|r| (0..n).all(|c| self.values[r * n + c] == self.values[c * n + r]))
    }

    /// Packets whose source and destination are both in the index set `nodes`.
    pub fn subgraph_total(&self, nodes: &[usize]) -> u64 {
        let mut total = 0u64;
        for &r in nodes {
            for &c in nodes {
                if let Some(v) = self.get(r, c) {
                    total += v as u64;
                }
            }
        }
        total
    }

    /// Packets from any node in `sources` to any node in `destinations`.
    pub fn block_total(&self, sources: &[usize], destinations: &[usize]) -> u64 {
        let mut total = 0u64;
        for &r in sources {
            for &c in destinations {
                if let Some(v) = self.get(r, c) {
                    total += v as u64;
                }
            }
        }
        total
    }

    /// Convert to a sparse COO matrix (dropping explicit zeros).
    pub fn to_coo(&self) -> CooMatrix<u32> {
        let mut coo = CooMatrix::new(self.dimension(), self.dimension());
        for (r, c, v) in self.iter_nonzero() {
            coo.push(r, c, v);
        }
        coo
    }

    /// The default color plane derived from the labels (blue/red quadrants).
    pub fn default_colors(&self) -> ColorMatrix {
        ColorMatrix::from_label_classes(&self.labels)
    }

    /// Render the matrix as a compact ASCII table with axis labels, the same
    /// orientation as the paper's 2-D view (rows = sources, columns = destinations).
    pub fn to_ascii(&self) -> String {
        self.to_ascii_with_colors(None)
    }

    /// Like [`TrafficMatrix::to_ascii`], with an optional color plane: colored
    /// cells are suffixed with the color glyph.
    pub fn to_ascii_with_colors(&self, colors: Option<&ColorMatrix>) -> String {
        let n = self.dimension();
        let label_w = self.labels.max_label_width().max(2);
        let cell_w = 4;
        let mut out = String::new();
        // Header row.
        out.push_str(&" ".repeat(label_w + 1));
        for c in 0..n {
            let label = self.labels.get(c).unwrap_or("?");
            out.push_str(&format!("{label:>cell_w$}"));
        }
        out.push('\n');
        for r in 0..n {
            let label = self.labels.get(r).unwrap_or("?");
            out.push_str(&format!("{label:>label_w$} "));
            for c in 0..n {
                let v = self.values[r * n + c];
                let glyph = colors
                    .and_then(|cm| cm.get(r, c))
                    .filter(|color| *color != CellColor::Grey)
                    .map(|color| color.glyph());
                match (v, glyph) {
                    (0, None) => out.push_str(&format!("{:>cell_w$}", ".")),
                    (0, Some(g)) => out.push_str(&format!("{:>cell_w$}", g)),
                    (v, None) => out.push_str(&format!("{v:>cell_w$}")),
                    (v, Some(g)) => out.push_str(&format!("{:>cell_w$}", format!("{v}{g}"))),
                }
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The 10×10 traffic matrix from the paper's template listing: ones on the
    /// diagonal and a 2-packet anti-diagonal.
    pub(crate) fn paper_template_matrix() -> TrafficMatrix {
        let mut grid = vec![vec![0u32; 10]; 10];
        for i in 0..10 {
            grid[i][i] = 1;
            grid[i][9 - i] = 2;
        }
        TrafficMatrix::from_grid(LabelSet::paper_default_10(), &grid).unwrap()
    }

    #[test]
    fn from_grid_and_accessors() {
        let m = paper_template_matrix();
        assert_eq!(m.dimension(), 10);
        assert_eq!(m.get(0, 0), Some(1));
        assert_eq!(m.get(0, 9), Some(2));
        assert_eq!(m.get(10, 0), None);
        // The question from the paper: "How many packets did WS1 send to ADV4?" → 2.
        assert_eq!(m.get_by_label("WS1", "ADV4"), Some(2));
        assert_eq!(m.get_by_label("WS1", "NOPE"), None);
        assert_eq!(m.total_packets(), 10 + 20);
        assert_eq!(m.nonzero_count(), 20);
        assert_eq!(m.max_value(), 2);
        assert!((m.density() - 0.20).abs() < 1e-9);
    }

    #[test]
    fn rejects_ragged_and_mislabelled_grids() {
        let labels = LabelSet::paper_default_6();
        assert!(TrafficMatrix::from_grid(labels.clone(), &vec![vec![0u32; 6]; 5]).is_err());
        let mut ragged = vec![vec![0u32; 6]; 6];
        ragged[3] = vec![0; 5];
        assert!(TrafficMatrix::from_grid(labels, &ragged).is_err());
    }

    #[test]
    fn set_add_and_bounds() {
        let mut m = TrafficMatrix::zeros_numeric(4);
        m.set(1, 2, 5).unwrap();
        m.add(1, 2, 3).unwrap();
        assert_eq!(m.get(1, 2), Some(8));
        assert!(m.set(4, 0, 1).is_err());
        assert!(m.set(0, 4, 1).is_err());
        assert!(m.add(9, 9, 1).is_err());
        m.set(0, 0, u32::MAX).unwrap();
        m.add(0, 0, 10).unwrap();
        assert_eq!(m.get(0, 0), Some(u32::MAX), "add must saturate");
    }

    #[test]
    fn degrees_and_fanout() {
        let m = paper_template_matrix();
        let out = m.out_degrees();
        let inn = m.in_degrees();
        assert_eq!(out, vec![3u64; 10]);
        assert_eq!(inn, vec![3u64; 10]);
        assert_eq!(m.out_fanout(), vec![2usize; 10]);
        assert_eq!(m.in_fanout(), vec![2usize; 10]);
    }

    #[test]
    fn transpose_and_symmetry() {
        let m = paper_template_matrix();
        assert!(m.is_symmetric());
        assert_eq!(m.transpose(), m);
        let mut asym = TrafficMatrix::zeros_numeric(3);
        asym.set(0, 1, 7).unwrap();
        assert!(!asym.is_symmetric());
        assert_eq!(asym.transpose().get(1, 0), Some(7));
        assert_eq!(asym.transpose().get(0, 1), Some(0));
    }

    #[test]
    fn combine_saturates_and_checks_labels() {
        let m = paper_template_matrix();
        let doubled = m.combine(&m).unwrap();
        assert_eq!(doubled.get(0, 0), Some(2));
        assert_eq!(doubled.total_packets(), 2 * m.total_packets());
        let other = TrafficMatrix::zeros_numeric(10);
        assert!(m.combine(&other).is_err(), "labels differ");
    }

    #[test]
    fn block_and_subgraph_totals() {
        let m = paper_template_matrix();
        let labels = m.labels().clone();
        // Blue→red traffic in the template: rows 0-3, cols 6-9 anti-diagonal 2s.
        assert_eq!(
            m.block_total(&labels.blue_indices(), &labels.red_indices()),
            8
        );
        assert_eq!(m.subgraph_total(&labels.blue_indices()), 4); // diagonal ones
        assert_eq!(m.subgraph_total(&[]), 0);
    }

    #[test]
    fn to_grid_round_trips() {
        let m = paper_template_matrix();
        let grid = m.to_grid();
        let rebuilt = TrafficMatrix::from_grid(m.labels().clone(), &grid).unwrap();
        assert_eq!(rebuilt, m);
    }

    #[test]
    fn to_coo_drops_zeros() {
        let m = paper_template_matrix();
        let coo = m.to_coo();
        assert_eq!(coo.nnz(), 20);
        assert_eq!(coo.shape(), (10, 10));
    }

    #[test]
    fn ascii_view_contains_labels_and_values() {
        let m = paper_template_matrix();
        let text = m.to_ascii();
        assert!(text.contains("WS1"));
        assert!(text.contains("ADV4"));
        assert!(text.lines().count() == 11);
        let colored = m.to_ascii_with_colors(Some(&m.default_colors()));
        assert!(
            colored.contains("2r"),
            "blue→adv cells should carry the red glyph:\n{colored}"
        );
    }

    #[test]
    fn iter_nonzero_matches_counts() {
        let m = paper_template_matrix();
        let triples: Vec<_> = m.iter_nonzero().collect();
        assert_eq!(triples.len(), m.nonzero_count());
        assert!(triples.contains(&(0, 9, 2)));
        assert!(triples.contains(&(5, 5, 1)));
    }

    #[test]
    fn set_labels_validates_length() {
        let mut m = TrafficMatrix::zeros_numeric(6);
        assert!(m.set_labels(LabelSet::paper_default_6()).is_ok());
        assert!(m.set_labels(LabelSet::paper_default_10()).is_err());
        assert_eq!(m.labels().get(0), Some("WS1"));
    }
}
