//! Rayon-parallel kernels.
//!
//! The serial kernels in [`crate::ops`] are the reference implementations;
//! these parallel versions exist for the scaling experiment (DESIGN.md E-S2),
//! which reproduces the shape of the paper's motivating claim that matrix
//! methods scale to very large traffic volumes. All parallel functions are
//! bit-for-bit equivalent to their serial counterparts (verified by tests and
//! property tests), because row partitions are independent.

use crate::coo::CooMatrix;
use crate::csr::CsrMatrix;
use crate::error::{MatrixError, Result};
use crate::semiring::Semiring;
use crate::stream::PacketEvent;
use rayon::prelude::*;

/// Parallel sparse matrix × dense vector (row-parallel).
pub fn par_mxv<T, S>(semiring: &S, a: &CsrMatrix<T>, x: &[T]) -> Result<Vec<T>>
where
    T: Copy + Default + PartialEq + Send + Sync,
    S: Semiring<T> + Sync,
{
    if x.len() != a.cols() {
        return Err(MatrixError::DimensionMismatch(format!(
            "par_mxv: matrix has {} columns but vector has {} entries",
            a.cols(),
            x.len()
        )));
    }
    Ok((0..a.rows())
        .into_par_iter()
        .map(|r| {
            let mut acc = semiring.zero();
            for (c, v) in a.row(r) {
                acc = semiring.add(acc, semiring.mul(v, x[c]));
            }
            acc
        })
        .collect())
}

/// Parallel row reduction.
pub fn par_reduce_rows<T, S>(semiring: &S, a: &CsrMatrix<T>) -> Vec<T>
where
    T: Copy + Default + PartialEq + Send + Sync,
    S: Semiring<T> + Sync,
{
    (0..a.rows())
        .into_par_iter()
        .map(|r| {
            a.row(r)
                .fold(semiring.zero(), |acc, (_, v)| semiring.add(acc, v))
        })
        .collect()
}

/// Parallel whole-matrix reduction.
pub fn par_reduce_all<T, S>(semiring: &S, a: &CsrMatrix<T>) -> T
where
    T: Copy + Default + PartialEq + Send + Sync,
    S: Semiring<T> + Sync,
{
    par_reduce_rows(semiring, a)
        .into_par_iter()
        .reduce(|| semiring.zero(), |x, y| semiring.add(x, y))
}

/// Parallel sparse matrix × sparse matrix (row-parallel Gustavson).
pub fn par_mxm<T, S>(semiring: &S, a: &CsrMatrix<T>, b: &CsrMatrix<T>) -> Result<CsrMatrix<T>>
where
    T: Copy + Default + PartialEq + Send + Sync,
    S: Semiring<T> + Sync,
{
    if a.cols() != b.rows() {
        return Err(MatrixError::DimensionMismatch(format!(
            "par_mxm: left has {} columns but right has {} rows",
            a.cols(),
            b.rows()
        )));
    }
    let row_results: Vec<Vec<(usize, usize, T)>> = (0..a.rows())
        .into_par_iter()
        .map(|r| {
            let mut accumulator: Vec<Option<T>> = vec![None; b.cols()];
            let mut touched: Vec<usize> = Vec::new();
            for (k, av) in a.row(r) {
                for (c, bv) in b.row(k) {
                    let contribution = semiring.mul(av, bv);
                    match accumulator[c] {
                        Some(existing) => {
                            accumulator[c] = Some(semiring.add(existing, contribution))
                        }
                        None => {
                            accumulator[c] = Some(contribution);
                            touched.push(c);
                        }
                    }
                }
            }
            touched.sort_unstable();
            touched
                .into_iter()
                .filter_map(|c| {
                    let v = accumulator[c].take()?;
                    (!semiring.is_zero(v)).then_some((r, c, v))
                })
                .collect()
        })
        .collect();
    let triples: Vec<(usize, usize, T)> = row_results.into_iter().flatten().collect();
    Ok(CsrMatrix::from_sorted_triples(a.rows(), b.cols(), &triples))
}

/// Build a traffic matrix from packet events in parallel: events are sharded,
/// each shard builds a COO matrix, and the shards are merged and coalesced.
///
/// Equivalent to pushing every event into one [`CooMatrix`] serially.
pub fn par_matrix_from_events(node_count: usize, events: &[PacketEvent]) -> CsrMatrix<u64> {
    let shard_size = (events.len() / rayon::current_num_threads().max(1)).max(1024);
    let shards: Vec<CooMatrix<u64>> = events
        .par_chunks(shard_size)
        .map(|chunk| {
            let mut coo = CooMatrix::with_capacity(node_count, node_count, chunk.len());
            for e in chunk {
                coo.push(e.source as usize, e.destination as usize, e.packets as u64);
            }
            coo
        })
        .collect();
    let mut merged = CooMatrix::with_capacity(node_count, node_count, events.len());
    for shard in &shards {
        merged
            .extend_from(shard)
            // tw-analyze: allow(no-panic-in-lib, "every shard was constructed with the same node_count as the aggregate")
            .expect("shards share the aggregate shape");
    }
    merged.to_csr()
}

/// Serial reference for [`par_matrix_from_events`], used by tests and benches.
pub fn serial_matrix_from_events(node_count: usize, events: &[PacketEvent]) -> CsrMatrix<u64> {
    let mut coo = CooMatrix::with_capacity(node_count, node_count, events.len());
    for e in events {
        coo.push(e.source as usize, e.destination as usize, e.packets as u64);
    }
    coo.to_csr()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{mxm, mxv, reduce_all, reduce_rows};
    use crate::semiring::PlusTimes;
    use crate::stream::synthetic_events;

    fn random_sparse(n: usize, nnz: usize, seed: u64) -> CsrMatrix<u64> {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let mut coo = CooMatrix::new(n, n);
        for _ in 0..nnz {
            coo.push(
                rng.gen_range(0..n),
                rng.gen_range(0..n),
                rng.gen_range(1..10u64),
            );
        }
        coo.to_csr()
    }

    #[test]
    fn par_mxv_matches_serial() {
        let a = random_sparse(200, 3000, 1);
        let x: Vec<u64> = (0..200).map(|i| (i % 7) as u64).collect();
        assert_eq!(
            par_mxv(&PlusTimes, &a, &x).unwrap(),
            mxv(&PlusTimes, &a, &x).unwrap()
        );
        assert!(par_mxv(&PlusTimes, &a, &x[..10]).is_err());
    }

    #[test]
    fn par_reductions_match_serial() {
        let a = random_sparse(150, 2000, 2);
        assert_eq!(par_reduce_rows(&PlusTimes, &a), reduce_rows(&PlusTimes, &a));
        assert_eq!(par_reduce_all(&PlusTimes, &a), reduce_all(&PlusTimes, &a));
    }

    #[test]
    fn par_mxm_matches_serial() {
        let a = random_sparse(80, 800, 3);
        let b = random_sparse(80, 800, 4);
        let serial = mxm(&PlusTimes, &a, &b).unwrap();
        let parallel = par_mxm(&PlusTimes, &a, &b).unwrap();
        assert_eq!(serial, parallel);
        let mismatched = CsrMatrix::<u64>::empty(81, 81);
        assert!(par_mxm(&PlusTimes, &a, &mismatched).is_err());
    }

    #[test]
    fn par_event_construction_matches_serial() {
        let events = synthetic_events(64, 50_000, 5);
        let serial = serial_matrix_from_events(64, &events);
        let parallel = par_matrix_from_events(64, &events);
        assert_eq!(serial, parallel);
        assert_eq!(
            reduce_all(&PlusTimes, &parallel),
            events.iter().map(|e| e.packets as u64).sum::<u64>()
        );
    }

    #[test]
    fn par_event_construction_handles_tiny_inputs() {
        let events = synthetic_events(8, 3, 6);
        let parallel = par_matrix_from_events(8, &events);
        assert_eq!(parallel, serial_matrix_from_events(8, &events));
        let empty: Vec<PacketEvent> = Vec::new();
        assert_eq!(par_matrix_from_events(8, &empty).nnz(), 0);
    }
}
