//! Cell color planes.
//!
//! The paper's `traffic_matrix_colors` field assigns every matrix cell one of
//! three colors — grey (0), blue (1) or red (2) — "an important aid for
//! illustrating important cybersecurity concepts such as internal networks
//! (blue) and adversarial networks (red)".

use crate::error::{MatrixError, Result};
use crate::labels::LabelSet;

/// The color of one traffic-matrix cell, as encoded in module files.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CellColor {
    /// Neutral / grey space (code 0). The default.
    #[default]
    Grey,
    /// Defended / blue space (code 1).
    Blue,
    /// Adversarial / red space (code 2).
    Red,
}

impl CellColor {
    /// Decode the paper's numeric color code. Unknown codes map to `None`;
    /// the game renders unknown codes with a black "error" material, which the
    /// caller can model by treating `None` specially.
    pub fn from_code(code: u32) -> Option<CellColor> {
        match code {
            0 => Some(CellColor::Grey),
            1 => Some(CellColor::Blue),
            2 => Some(CellColor::Red),
            _ => None,
        }
    }

    /// Encode back to the numeric code used in module files.
    pub fn code(&self) -> u32 {
        match self {
            CellColor::Grey => 0,
            CellColor::Blue => 1,
            CellColor::Red => 2,
        }
    }

    /// A one-character glyph used by the ASCII views (`.` grey, `b` blue, `r` red).
    pub fn glyph(&self) -> char {
        match self {
            CellColor::Grey => '.',
            CellColor::Blue => 'b',
            CellColor::Red => 'r',
        }
    }
}

/// A square matrix of cell colors, parallel to a traffic matrix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColorMatrix {
    dimension: usize,
    cells: Vec<CellColor>,
}

impl ColorMatrix {
    /// An all-grey color matrix of the given dimension.
    pub fn grey(dimension: usize) -> Self {
        ColorMatrix {
            dimension,
            cells: vec![CellColor::Grey; dimension * dimension],
        }
    }

    /// Build from a row-major grid of color codes (the module-file encoding).
    /// Unknown codes are rejected.
    pub fn from_codes(grid: &[Vec<u32>]) -> Result<Self> {
        let dimension = grid.len();
        let mut cells = Vec::with_capacity(dimension * dimension);
        for (r, row) in grid.iter().enumerate() {
            if row.len() != dimension {
                return Err(MatrixError::RaggedRows {
                    row: r,
                    expected: dimension,
                    actual: row.len(),
                });
            }
            for &code in row {
                let color = CellColor::from_code(code).ok_or_else(|| {
                    MatrixError::DimensionMismatch(format!("invalid color code {code} in row {r}"))
                })?;
                cells.push(color);
            }
        }
        Ok(ColorMatrix { dimension, cells })
    }

    /// Matrix dimension (rows == columns).
    pub fn dimension(&self) -> usize {
        self.dimension
    }

    /// The color at `(row, col)`.
    pub fn get(&self, row: usize, col: usize) -> Option<CellColor> {
        if row < self.dimension && col < self.dimension {
            Some(self.cells[row * self.dimension + col])
        } else {
            None
        }
    }

    /// Set the color at `(row, col)`.
    pub fn set(&mut self, row: usize, col: usize, color: CellColor) -> Result<()> {
        if row >= self.dimension {
            return Err(MatrixError::IndexOutOfBounds {
                index: row,
                bound: self.dimension,
                axis: "row",
            });
        }
        if col >= self.dimension {
            return Err(MatrixError::IndexOutOfBounds {
                index: col,
                bound: self.dimension,
                axis: "column",
            });
        }
        self.cells[row * self.dimension + col] = color;
        Ok(())
    }

    /// Fill the rectangle `rows × cols` with a color (inclusive index lists).
    pub fn fill_block(&mut self, rows: &[usize], cols: &[usize], color: CellColor) -> Result<()> {
        for &r in rows {
            for &c in cols {
                self.set(r, c, color)?;
            }
        }
        Ok(())
    }

    /// Encode back into the module-file grid representation.
    pub fn to_codes(&self) -> Vec<Vec<u32>> {
        (0..self.dimension)
            .map(|r| {
                (0..self.dimension)
                    .map(|c| self.cells[r * self.dimension + c].code())
                    .collect()
            })
            .collect()
    }

    /// Count of cells with each color, as (grey, blue, red).
    pub fn counts(&self) -> (usize, usize, usize) {
        let mut counts = (0usize, 0usize, 0usize);
        for c in &self.cells {
            match c {
                CellColor::Grey => counts.0 += 1,
                CellColor::Blue => counts.1 += 1,
                CellColor::Red => counts.2 += 1,
            }
        }
        counts
    }

    /// The standard color plane the paper's figures use: cells whose source
    /// *and* destination are blue-space nodes are blue, cells touching an
    /// adversary node are red, everything else grey.
    ///
    /// This matches the 10×10 template listing in §II, where the blue block is
    /// the adversary-rows × blue-columns quadrant and the red block is the
    /// blue-rows × adversary-columns quadrant.
    pub fn from_label_classes(labels: &LabelSet) -> Self {
        let n = labels.len();
        let mut m = ColorMatrix::grey(n);
        let blue = labels.blue_indices();
        let red = labels.red_indices();
        // Traffic *to* adversary space (blue rows × red columns) is flagged red.
        m.fill_block(&blue, &red, CellColor::Red)
            // tw-analyze: allow(no-panic-in-lib, "blue/red indices come from the same LabelSet that sized the matrix")
            .expect("indices are in range");
        // Traffic *from* adversary space into blue space is shown on blue pallets.
        m.fill_block(&red, &blue, CellColor::Blue)
            // tw-analyze: allow(no-panic-in-lib, "blue/red indices come from the same LabelSet that sized the matrix")
            .expect("indices are in range");
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_round_trip() {
        for code in 0..3 {
            assert_eq!(CellColor::from_code(code).unwrap().code(), code);
        }
        assert_eq!(CellColor::from_code(3), None);
        assert_eq!(CellColor::default(), CellColor::Grey);
    }

    #[test]
    fn from_codes_matches_paper_template() {
        // The color grid from the paper's 10×10 template listing.
        let mut grid = vec![vec![0u32; 10]; 10];
        for row in grid.iter_mut().take(4) {
            row[6..10].fill(2);
        }
        for row in grid.iter_mut().skip(6) {
            row[0..4].fill(1);
        }
        let m = ColorMatrix::from_codes(&grid).unwrap();
        assert_eq!(m.get(0, 6), Some(CellColor::Red));
        assert_eq!(m.get(9, 3), Some(CellColor::Blue));
        assert_eq!(m.get(4, 4), Some(CellColor::Grey));
        assert_eq!(m.counts(), (100 - 32, 16, 16));
        assert_eq!(m.to_codes(), grid);
        // And the label-class constructor reproduces exactly this plane.
        let derived = ColorMatrix::from_label_classes(&LabelSet::paper_default_10());
        assert_eq!(derived, m);
    }

    #[test]
    fn rejects_bad_grids() {
        assert!(ColorMatrix::from_codes(&[vec![0, 1], vec![0]]).is_err());
        assert!(ColorMatrix::from_codes(&[vec![0, 9], vec![0, 0]]).is_err());
    }

    #[test]
    fn set_and_bounds() {
        let mut m = ColorMatrix::grey(3);
        assert_eq!(m.dimension(), 3);
        m.set(1, 2, CellColor::Red).unwrap();
        assert_eq!(m.get(1, 2), Some(CellColor::Red));
        assert!(m.set(3, 0, CellColor::Blue).is_err());
        assert!(m.set(0, 3, CellColor::Blue).is_err());
        assert_eq!(m.get(5, 5), None);
    }

    #[test]
    fn glyphs_are_distinct() {
        let glyphs = [
            CellColor::Grey.glyph(),
            CellColor::Blue.glyph(),
            CellColor::Red.glyph(),
        ];
        assert_eq!(
            glyphs
                .iter()
                .collect::<std::collections::HashSet<_>>()
                .len(),
            3
        );
    }
}
