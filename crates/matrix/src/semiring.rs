//! Semirings for GraphBLAS-style matrix operations.
//!
//! The GraphBLAS standard the paper's introduction cites expresses graph
//! algorithms as matrix operations over configurable semirings. A semiring
//! provides an "addition" (the reduction combining contributions to one output
//! cell, with an identity) and a "multiplication" (combining a matrix entry
//! with a vector/matrix entry).

/// A semiring over element type `T`.
pub trait Semiring<T: Copy> {
    /// Identity of the additive operation (e.g. `0` for plus, `-inf` for max).
    fn zero(&self) -> T;
    /// The additive (reduction) operation.
    fn add(&self, a: T, b: T) -> T;
    /// The multiplicative (combination) operation.
    fn mul(&self, a: T, b: T) -> T;
    /// True when a value equals the additive identity, allowing it to be
    /// dropped from sparse results.
    fn is_zero(&self, a: T) -> bool;
}

/// The conventional arithmetic semiring `(+, ×, 0)`: packet counting,
/// multi-hop traffic volume.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlusTimes;

impl Semiring<u64> for PlusTimes {
    fn zero(&self) -> u64 {
        0
    }
    fn add(&self, a: u64, b: u64) -> u64 {
        a.saturating_add(b)
    }
    fn mul(&self, a: u64, b: u64) -> u64 {
        a.saturating_mul(b)
    }
    fn is_zero(&self, a: u64) -> bool {
        a == 0
    }
}

impl Semiring<f64> for PlusTimes {
    fn zero(&self) -> f64 {
        0.0
    }
    fn add(&self, a: f64, b: f64) -> f64 {
        a + b
    }
    fn mul(&self, a: f64, b: f64) -> f64 {
        a * b
    }
    fn is_zero(&self, a: f64) -> bool {
        a == 0.0
    }
}

/// The boolean semiring `(∨, ∧, false)`: reachability / "is there any traffic".
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OrAnd;

impl Semiring<bool> for OrAnd {
    fn zero(&self) -> bool {
        false
    }
    fn add(&self, a: bool, b: bool) -> bool {
        a || b
    }
    fn mul(&self, a: bool, b: bool) -> bool {
        a && b
    }
    fn is_zero(&self, a: bool) -> bool {
        !a
    }
}

/// The tropical min-plus semiring `(min, +, +inf)`: shortest paths (hop/latency).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MinPlus;

impl Semiring<f64> for MinPlus {
    fn zero(&self) -> f64 {
        f64::INFINITY
    }
    fn add(&self, a: f64, b: f64) -> f64 {
        a.min(b)
    }
    fn mul(&self, a: f64, b: f64) -> f64 {
        a + b
    }
    fn is_zero(&self, a: f64) -> bool {
        a == f64::INFINITY
    }
}

/// The max-plus semiring `(max, +, -inf)`: critical paths / widest cumulative load.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MaxPlus;

impl Semiring<f64> for MaxPlus {
    fn zero(&self) -> f64 {
        f64::NEG_INFINITY
    }
    fn add(&self, a: f64, b: f64) -> f64 {
        a.max(b)
    }
    fn mul(&self, a: f64, b: f64) -> f64 {
        a + b
    }
    fn is_zero(&self, a: f64) -> bool {
        a == f64::NEG_INFINITY
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plus_times_u64_saturates() {
        let s = PlusTimes;
        assert_eq!(Semiring::<u64>::zero(&s), 0);
        assert_eq!(s.add(2u64, 3), 5);
        assert_eq!(s.mul(4u64, 5), 20);
        assert_eq!(s.add(u64::MAX, 1), u64::MAX);
        assert_eq!(s.mul(u64::MAX, 2), u64::MAX);
        assert!(Semiring::<u64>::is_zero(&s, 0));
        assert!(!Semiring::<u64>::is_zero(&s, 7));
    }

    #[test]
    fn plus_times_f64() {
        let s = PlusTimes;
        assert_eq!(s.add(0.5f64, 0.25), 0.75);
        assert_eq!(s.mul(0.5f64, 4.0), 2.0);
        assert!(Semiring::<f64>::is_zero(&s, 0.0));
    }

    #[test]
    fn or_and_is_reachability() {
        let s = OrAnd;
        assert!(!s.zero());
        assert!(s.add(true, false));
        assert!(!s.mul(true, false));
        assert!(s.mul(true, true));
        assert!(s.is_zero(false));
    }

    #[test]
    fn min_plus_is_shortest_path_algebra() {
        let s = MinPlus;
        assert_eq!(s.zero(), f64::INFINITY);
        assert_eq!(s.add(3.0, 5.0), 3.0);
        assert_eq!(s.mul(3.0, 5.0), 8.0);
        // Identity laws.
        assert_eq!(s.add(s.zero(), 4.0), 4.0);
        assert!(s.is_zero(s.zero()));
    }

    #[test]
    fn max_plus_identities() {
        let s = MaxPlus;
        assert_eq!(s.add(s.zero(), 4.0), 4.0);
        assert_eq!(s.add(2.0, 7.0), 7.0);
        assert_eq!(s.mul(2.0, 7.0), 9.0);
        assert!(s.is_zero(f64::NEG_INFINITY));
    }
}
