//! # tw-matrix
//!
//! Traffic-matrix substrate for the Traffic Warehouse reproduction.
//!
//! The paper defines a network traffic matrix as an adjacency matrix
//! `A(i, j) = v` whose vertices are sources and destinations on a computer
//! network and whose value is the number of packets (or bytes) sent from
//! source `i` to destination `j`. The game itself manipulates tiny 6×6 and
//! 10×10 matrices, but the concepts it teaches come from the GraphBLAS-style
//! analytics the paper's introduction cites (anonymized real-time analysis of
//! terabit-scale traffic), so this crate provides both:
//!
//! * [`dense::TrafficMatrix`] — the small, labelled, dense matrices that
//!   learning modules display, with color planes for blue/grey/red space;
//! * [`coo::CooMatrix`] / [`csr::CsrMatrix`] — sparse formats for large
//!   matrices built from packet event streams;
//! * [`semiring`] / [`ops`] — GraphBLAS-lite operations (`mxm`, `mxv`,
//!   element-wise, reduce, transpose, extract) over configurable semirings;
//! * [`analytics`] — the network-analytics vocabulary the learning modules
//!   teach (degrees, supernodes, isolated links, link classification);
//! * [`parallel`] — rayon-parallel construction and analytics paths used by
//!   the scaling benchmarks.

pub mod analytics;
pub mod color;
pub mod coo;
pub mod csr;
pub mod dense;
pub mod error;
pub mod labels;
pub mod ops;
pub mod parallel;
pub mod semiring;
pub mod stream;

pub use analytics::{DegreeSummary, LinkClass, MatrixProfile};
pub use color::{CellColor, ColorMatrix};
pub use coo::CooMatrix;
pub use csr::CsrMatrix;
pub use dense::TrafficMatrix;
pub use error::{MatrixError, Result};
pub use labels::{LabelSet, NodeClass};
pub use semiring::{MaxPlus, MinPlus, OrAnd, PlusTimes, Semiring};
pub use stream::{PacketEvent, StreamAggregator};
