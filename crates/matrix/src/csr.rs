//! Compressed sparse row (CSR) matrices.
//!
//! CSR is the workhorse format for the analytics side of the reproduction:
//! row-oriented traversal makes `mxv`, row reduction and degree computation a
//! single contiguous scan per row, which also parallelizes cleanly across rows.

use crate::error::{MatrixError, Result};

/// A sparse matrix in compressed sparse row format.
#[derive(Debug, PartialEq)]
pub struct CsrMatrix<T> {
    rows: usize,
    cols: usize,
    /// `row_ptr[r]..row_ptr[r+1]` indexes the entries of row `r`.
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<T>,
}

impl<T: Clone> Clone for CsrMatrix<T> {
    fn clone(&self) -> Self {
        CsrMatrix {
            rows: self.rows,
            cols: self.cols,
            row_ptr: self.row_ptr.clone(),
            col_idx: self.col_idx.clone(),
            values: self.values.clone(),
        }
    }

    /// Clones into `self`'s existing array allocations (`Vec::clone_from`),
    /// so repeatedly refreshing a matrix from a same-sized source — the
    /// delta-decode base in `tw-ingest`'s `DecodeScratch` — allocates
    /// nothing once the buffers have reached their high-water mark.
    fn clone_from(&mut self, source: &Self) {
        self.rows = source.rows;
        self.cols = source.cols;
        self.row_ptr.clone_from(&source.row_ptr);
        self.col_idx.clone_from(&source.col_idx);
        self.values.clone_from(&source.values);
    }
}

impl<T: Copy + Default + PartialEq> CsrMatrix<T> {
    /// An empty matrix with the given shape.
    pub fn empty(rows: usize, cols: usize) -> Self {
        CsrMatrix {
            rows,
            cols,
            row_ptr: vec![0; rows + 1],
            col_idx: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Build from triples that are already sorted by `(row, col)` with no
    /// duplicates (the post-condition of [`crate::coo::CooMatrix::coalesce`]).
    pub fn from_sorted_triples(rows: usize, cols: usize, triples: &[(usize, usize, T)]) -> Self {
        let mut row_ptr = vec![0usize; rows + 1];
        for &(r, _, _) in triples {
            row_ptr[r + 1] += 1;
        }
        for r in 0..rows {
            row_ptr[r + 1] += row_ptr[r];
        }
        let mut col_idx = Vec::with_capacity(triples.len());
        let mut values = Vec::with_capacity(triples.len());
        for &(_, c, v) in triples {
            col_idx.push(c);
            values.push(v);
        }
        CsrMatrix {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Build from already-coalesced entries, consuming the vector.
    ///
    /// This is the hot-path constructor for the streaming ingest pipeline:
    /// the caller guarantees the entries are sorted by `(row, col)` with no
    /// duplicate coordinates (the post-condition of
    /// [`crate::coo::CooMatrix::coalesce`]), so the CSR arrays are filled in
    /// one pass with no re-sort and no intermediate copy of the triples.
    pub fn from_sorted_coo(rows: usize, cols: usize, entries: Vec<(usize, usize, T)>) -> Self {
        debug_assert!(
            entries
                .windows(2)
                .all(|w| (w[0].0, w[0].1) < (w[1].0, w[1].1)),
            "from_sorted_coo requires entries sorted by (row, col) with no duplicates"
        );
        let mut row_ptr = vec![0usize; rows + 1];
        for &(r, _, _) in &entries {
            row_ptr[r + 1] += 1;
        }
        for r in 0..rows {
            row_ptr[r + 1] += row_ptr[r];
        }
        let mut col_idx = Vec::with_capacity(entries.len());
        let mut values = Vec::with_capacity(entries.len());
        for (_, c, v) in entries {
            col_idx.push(c);
            values.push(v);
        }
        CsrMatrix {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Merge per-shard COO blocks whose row sets are pairwise disjoint into
    /// one CSR matrix, without a global sort.
    ///
    /// Each block must be internally sorted by `(row, col)` with no duplicate
    /// coordinates (again the [`crate::coo::CooMatrix::coalesce`]
    /// post-condition). Because no row appears in more than one block, every
    /// row's run of entries comes from exactly one block and is already in
    /// column order, so the merged matrix is built with a counting pass plus
    /// a single placement pass — `O(nnz + rows)` instead of
    /// `O(nnz log nnz)`. This is the serial-equivalence keystone of the
    /// sharded ingest accumulator: the result is identical to pushing every
    /// entry into one [`crate::coo::CooMatrix`] and calling
    /// [`crate::coo::CooMatrix::to_csr`].
    pub fn from_row_disjoint_blocks(
        rows: usize,
        cols: usize,
        blocks: Vec<Vec<(usize, usize, T)>>,
    ) -> Self {
        Self::from_row_disjoint_blocks_into(rows, cols, &blocks, Vec::new(), Vec::new(), Vec::new())
    }

    /// [`CsrMatrix::from_row_disjoint_blocks`], but borrowing the blocks and
    /// building into caller-provided array storage.
    ///
    /// This is the rotation-recycling constructor for the streaming ingest
    /// pipeline: the blocks stay with the caller (so their capacity survives
    /// the window), and `row_ptr`/`col_idx`/`values` are cleared and refilled
    /// in place — hand back the arrays of a consumed matrix (via
    /// [`CsrMatrix::into_raw_parts`]) and a steady stream of same-shaped
    /// windows allocates nothing once every buffer reaches its high-water
    /// mark. The contract on the blocks is identical to
    /// [`CsrMatrix::from_row_disjoint_blocks`]: each internally sorted by
    /// `(row, col)` with no duplicates, row sets pairwise disjoint.
    pub fn from_row_disjoint_blocks_into(
        rows: usize,
        cols: usize,
        blocks: &[Vec<(usize, usize, T)>],
        mut row_ptr: Vec<usize>,
        mut col_idx: Vec<usize>,
        mut values: Vec<T>,
    ) -> Self {
        #[cfg(debug_assertions)]
        {
            let mut owner = vec![usize::MAX; rows];
            for (b, block) in blocks.iter().enumerate() {
                debug_assert!(
                    block.windows(2).all(|w| (w[0].0, w[0].1) < (w[1].0, w[1].1)),
                    "from_row_disjoint_blocks requires each block sorted by (row, col) with no duplicates"
                );
                for &(r, _, _) in block {
                    debug_assert!(
                        owner[r] == usize::MAX || owner[r] == b,
                        "from_row_disjoint_blocks requires pairwise-disjoint row sets (row {r} appears in blocks {} and {b})",
                        owner[r]
                    );
                    owner[r] = b;
                }
            }
        }
        let nnz: usize = blocks.iter().map(Vec::len).sum();
        row_ptr.clear();
        row_ptr.resize(rows + 1, 0);
        for block in blocks {
            for &(r, _, _) in block {
                row_ptr[r + 1] += 1;
            }
        }
        for r in 0..rows {
            row_ptr[r + 1] += row_ptr[r];
        }
        col_idx.clear();
        col_idx.resize(nnz, 0);
        values.clear();
        values.resize(nnz, T::default());
        // Row sets are disjoint across blocks and each block is sorted, so
        // one row's complete run comes from exactly one block, contiguous and
        // already in column order — each run copies straight into its
        // `row_ptr[r]..row_ptr[r + 1]` slot with no per-row cursor array.
        for block in blocks {
            let mut i = 0;
            while i < block.len() {
                let row = block[i].0;
                let run_start = i;
                while i < block.len() && block[i].0 == row {
                    i += 1;
                }
                let slot = row_ptr[row];
                for (slot, &(_, c, v)) in (slot..).zip(&block[run_start..i]) {
                    col_idx[slot] = c;
                    values[slot] = v;
                }
            }
        }
        CsrMatrix {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// [`CsrMatrix::from_row_disjoint_blocks_into`] over *packed* blocks:
    /// each entry is `(row << 32 | col, value)` instead of a
    /// `(row, col, value)` triple.
    ///
    /// The packed key is the ingest accumulator's native shard-entry format,
    /// so its coalesce passes emit blocks without unpacking — and each block
    /// element is 16 bytes instead of 24, which the rotation hot path reads
    /// twice (count pass + placement pass). The contract is the triple
    /// constructor's, restated on keys: each block sorted by key with no
    /// duplicates, row sets pairwise disjoint across blocks, and every
    /// `row`/`col` half must fit the matrix shape.
    pub fn from_row_disjoint_packed_blocks_into(
        rows: usize,
        cols: usize,
        blocks: &[Vec<(u64, T)>],
        mut row_ptr: Vec<usize>,
        mut col_idx: Vec<usize>,
        mut values: Vec<T>,
    ) -> Self {
        #[cfg(debug_assertions)]
        {
            let mut owner = vec![usize::MAX; rows];
            for (b, block) in blocks.iter().enumerate() {
                debug_assert!(
                    block.windows(2).all(|w| w[0].0 < w[1].0),
                    "from_row_disjoint_packed_blocks requires each block sorted by key with no duplicates"
                );
                for &(key, _) in block {
                    let r = (key >> 32) as usize;
                    debug_assert!(
                        owner[r] == usize::MAX || owner[r] == b,
                        "from_row_disjoint_packed_blocks requires pairwise-disjoint row sets (row {r} appears in blocks {} and {b})",
                        owner[r]
                    );
                    owner[r] = b;
                }
            }
        }
        let nnz: usize = blocks.iter().map(Vec::len).sum();
        row_ptr.clear();
        row_ptr.resize(rows + 1, 0);
        for block in blocks {
            for &(key, _) in block {
                row_ptr[(key >> 32) as usize + 1] += 1;
            }
        }
        for r in 0..rows {
            row_ptr[r + 1] += row_ptr[r];
        }
        col_idx.clear();
        col_idx.resize(nnz, 0);
        values.clear();
        values.resize(nnz, T::default());
        // As in the triple constructor: one row's complete run lives in
        // exactly one block, contiguous and already column-ordered, so it
        // copies straight into its `row_ptr[r]..row_ptr[r + 1]` slot.
        for block in blocks {
            let mut i = 0;
            while i < block.len() {
                let row = block[i].0 >> 32;
                let run_start = i;
                while i < block.len() && block[i].0 >> 32 == row {
                    i += 1;
                }
                let slot = row_ptr[row as usize];
                for (slot, &(key, v)) in (slot..).zip(&block[run_start..i]) {
                    col_idx[slot] = (key & 0xFFFF_FFFF) as usize;
                    values[slot] = v;
                }
            }
        }
        CsrMatrix {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Build directly from pre-assembled CSR arrays.
    ///
    /// This is the zero-copy constructor for decoders (the `tw-ingest`
    /// window codec) that already produce the arrays in CSR layout: no
    /// intermediate triple buffer, no counting pass. Structural invariants
    /// are validated in O(rows + nnz): `row_ptr` must be monotone from `0`
    /// to `nnz` with `rows + 1` entries, `col_idx`/`values` must have equal
    /// length, and every column index must be in bounds. Column *ordering*
    /// within a row is the caller's contract (checked in debug builds), as
    /// in [`CsrMatrix::from_sorted_coo`].
    pub fn from_raw_parts(
        rows: usize,
        cols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<usize>,
        values: Vec<T>,
    ) -> Result<Self> {
        if row_ptr.len() != rows + 1
            || col_idx.len() != values.len()
            || row_ptr.first() != Some(&0)
            || row_ptr.last() != Some(&col_idx.len())
            || row_ptr.windows(2).any(|w| w[0] > w[1])
        {
            return Err(MatrixError::DimensionMismatch(format!(
                "row_ptr ({} entries, last {:?}) does not describe {} rows with {} stored entries",
                row_ptr.len(),
                row_ptr.last(),
                rows,
                col_idx.len()
            )));
        }
        if let Some(&bad) = col_idx.iter().find(|&&c| c >= cols) {
            return Err(MatrixError::IndexOutOfBounds {
                index: bad,
                bound: cols,
                axis: "column",
            });
        }
        #[cfg(debug_assertions)]
        for r in 0..rows {
            debug_assert!(
                col_idx[row_ptr[r]..row_ptr[r + 1]]
                    .windows(2)
                    .all(|w| w[0] < w[1]),
                "from_raw_parts requires strictly increasing columns within row {r}"
            );
        }
        Ok(CsrMatrix {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        })
    }

    /// Build from a dense row-major grid, dropping `T::default()` entries.
    pub fn from_dense(grid: &[Vec<T>]) -> Result<Self> {
        let rows = grid.len();
        let cols = grid.first().map(|r| r.len()).unwrap_or(0);
        let mut triples = Vec::new();
        for (r, row) in grid.iter().enumerate() {
            if row.len() != cols {
                return Err(MatrixError::RaggedRows {
                    row: r,
                    expected: cols,
                    actual: row.len(),
                });
            }
            for (c, &v) in row.iter().enumerate() {
                if v != T::default() {
                    triples.push((r, c, v));
                }
            }
        }
        Ok(Self::from_sorted_triples(rows, cols, &triples))
    }

    /// The shape as `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored (non-zero) entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// The value at `(row, col)`, or `T::default()` when not stored.
    pub fn get(&self, row: usize, col: usize) -> T {
        if row >= self.rows {
            return T::default();
        }
        let (start, end) = (self.row_ptr[row], self.row_ptr[row + 1]);
        // Column indices within a row are sorted; binary search.
        match self.col_idx[start..end].binary_search(&col) {
            Ok(offset) => self.values[start + offset],
            Err(_) => T::default(),
        }
    }

    /// The `(column, value)` pairs of one row.
    pub fn row(&self, row: usize) -> impl Iterator<Item = (usize, T)> + '_ {
        let (start, end) = if row < self.rows {
            (self.row_ptr[row], self.row_ptr[row + 1])
        } else {
            (0, 0)
        };
        self.col_idx[start..end]
            .iter()
            .copied()
            .zip(self.values[start..end].iter().copied())
    }

    /// Number of stored entries in one row.
    pub fn row_nnz(&self, row: usize) -> usize {
        if row < self.rows {
            self.row_ptr[row + 1] - self.row_ptr[row]
        } else {
            0
        }
    }

    /// Iterate over all `(row, col, value)` triples in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, T)> + '_ {
        (0..self.rows).flat_map(move |r| self.row(r).map(move |(c, v)| (r, c, v)))
    }

    /// Internal row pointer array (exposed for parallel kernels and tests).
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// Internal column index array.
    pub fn col_indices(&self) -> &[usize] {
        &self.col_idx
    }

    /// Internal value array.
    pub fn values(&self) -> &[T] {
        &self.values
    }

    /// The transpose (CSC of the original, re-expressed as CSR).
    pub fn transpose(&self) -> CsrMatrix<T> {
        let mut triples: Vec<(usize, usize, T)> = self.iter().map(|(r, c, v)| (c, r, v)).collect();
        triples.sort_unstable_by_key(|&(r, c, _)| (r, c));
        CsrMatrix::from_sorted_triples(self.cols, self.rows, &triples)
    }

    /// Convert back to a dense row-major grid.
    pub fn to_dense(&self) -> Vec<Vec<T>> {
        let mut grid = vec![vec![T::default(); self.cols]; self.rows];
        for (r, c, v) in self.iter() {
            grid[r][c] = v;
        }
        grid
    }

    /// Decompose into `(rows, cols, row_ptr, col_idx, values)`, the inverse
    /// of [`CsrMatrix::from_raw_parts`].
    ///
    /// This is the recycling half of the zero-copy decode loop: a consumer
    /// that is done with a decoded window hands its arrays back (e.g. to
    /// `tw-ingest`'s `DecodeScratch`) so the next decode builds into them
    /// instead of allocating.
    pub fn into_raw_parts(self) -> (usize, usize, Vec<usize>, Vec<usize>, Vec<T>) {
        (
            self.rows,
            self.cols,
            self.row_ptr,
            self.col_idx,
            self.values,
        )
    }

    /// The sparse cell changes that turn `self` into `other`.
    ///
    /// Changes are `(row, col, Some(new_value))` for cells stored in `other`
    /// with a value `self` does not store there, and `(row, col, None)` for
    /// cells stored in `self` but not in `other`. The list is sorted by
    /// `(row, col)` — exactly the contract [`CsrMatrix::apply_delta`]
    /// expects, so `self.apply_delta(&self.diff(other))` reconstructs
    /// `other` cell for cell (including stored `T::default()` values, which
    /// survive as `Some(default)` upserts rather than collapsing into
    /// deletes).
    ///
    /// Both matrices must have the same shape.
    pub fn diff(&self, other: &CsrMatrix<T>) -> Result<Vec<(usize, usize, Option<T>)>> {
        if self.shape() != other.shape() {
            return Err(MatrixError::DimensionMismatch(format!(
                "diff requires equal shapes, got {:?} and {:?}",
                self.shape(),
                other.shape()
            )));
        }
        let mut changes = Vec::new();
        for r in 0..self.rows {
            let (a_start, a_end) = (self.row_ptr[r], self.row_ptr[r + 1]);
            let (b_start, b_end) = (other.row_ptr[r], other.row_ptr[r + 1]);
            let (mut a, mut b) = (a_start, b_start);
            while a < a_end || b < b_end {
                let ac = self.col_idx.get(a).copied().filter(|_| a < a_end);
                let bc = other.col_idx.get(b).copied().filter(|_| b < b_end);
                match (ac, bc) {
                    (Some(ca), Some(cb)) if ca == cb => {
                        if self.values[a] != other.values[b] {
                            changes.push((r, ca, Some(other.values[b])));
                        }
                        a += 1;
                        b += 1;
                    }
                    (Some(ca), Some(cb)) if ca < cb => {
                        changes.push((r, ca, None));
                        a += 1;
                    }
                    (Some(_), Some(cb)) => {
                        changes.push((r, cb, Some(other.values[b])));
                        b += 1;
                    }
                    (Some(ca), None) => {
                        changes.push((r, ca, None));
                        a += 1;
                    }
                    (None, Some(cb)) => {
                        changes.push((r, cb, Some(other.values[b])));
                        b += 1;
                    }
                    (None, None) => unreachable!("loop condition"),
                }
            }
        }
        Ok(changes)
    }

    /// Apply sparse cell changes (the output of [`CsrMatrix::diff`]),
    /// producing the patched matrix.
    ///
    /// `Some(v)` upserts a cell, `None` deletes it (deleting an absent cell
    /// is a no-op). Changes must be sorted strictly by `(row, col)` and in
    /// bounds.
    pub fn apply_delta(&self, changes: &[(usize, usize, Option<T>)]) -> Result<CsrMatrix<T>> {
        let (mut row_ptr, mut col_idx, mut values) = (Vec::new(), Vec::new(), Vec::new());
        self.apply_delta_into(changes, &mut row_ptr, &mut col_idx, &mut values)?;
        Ok(CsrMatrix {
            rows: self.rows,
            cols: self.cols,
            row_ptr,
            col_idx,
            values,
        })
    }

    /// [`CsrMatrix::apply_delta`], but building into caller-provided arrays.
    ///
    /// The arrays are cleared and refilled with a valid CSR layout for the
    /// patched matrix (`self` shape), reusing their allocations — this is
    /// the zero-allocation half of the delta-decode hot path; pass the
    /// result to [`CsrMatrix::from_raw_parts`] to finish. The merge is one
    /// ordered pass over `self` and the change list, `O(nnz + changes)`.
    pub fn apply_delta_into(
        &self,
        changes: &[(usize, usize, Option<T>)],
        row_ptr: &mut Vec<usize>,
        col_idx: &mut Vec<usize>,
        values: &mut Vec<T>,
    ) -> Result<()> {
        for w in changes.windows(2) {
            if (w[0].0, w[0].1) >= (w[1].0, w[1].1) {
                return Err(MatrixError::DimensionMismatch(format!(
                    "delta changes must be sorted strictly by (row, col); \
                     ({}, {}) does not precede ({}, {})",
                    w[0].0, w[0].1, w[1].0, w[1].1
                )));
            }
        }
        for &(r, c, _) in changes {
            if r >= self.rows {
                return Err(MatrixError::IndexOutOfBounds {
                    index: r,
                    bound: self.rows,
                    axis: "row",
                });
            }
            if c >= self.cols {
                return Err(MatrixError::IndexOutOfBounds {
                    index: c,
                    bound: self.cols,
                    axis: "column",
                });
            }
        }
        row_ptr.clear();
        col_idx.clear();
        values.clear();
        row_ptr.reserve(self.rows + 1);
        col_idx.reserve(self.col_idx.len() + changes.len());
        values.reserve(self.values.len() + changes.len());
        row_ptr.push(0);
        let mut next = 0usize;
        for r in 0..self.rows {
            let end = self.row_ptr[r + 1];
            let mut base = self.row_ptr[r];
            while next < changes.len() && changes[next].0 == r {
                let (_, c, change) = changes[next];
                while base < end && self.col_idx[base] < c {
                    col_idx.push(self.col_idx[base]);
                    values.push(self.values[base]);
                    base += 1;
                }
                if base < end && self.col_idx[base] == c {
                    base += 1; // superseded by the change
                }
                if let Some(v) = change {
                    col_idx.push(c);
                    values.push(v);
                }
                next += 1;
            }
            while base < end {
                col_idx.push(self.col_idx[base]);
                values.push(self.values[base]);
                base += 1;
            }
            row_ptr.push(col_idx.len());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrMatrix<u32> {
        // 3x4:
        // [0 2 0 1]
        // [0 0 0 0]
        // [5 0 3 0]
        CsrMatrix::from_dense(&[vec![0, 2, 0, 1], vec![0, 0, 0, 0], vec![5, 0, 3, 0]]).unwrap()
    }

    #[test]
    fn shape_and_nnz() {
        let m = sample();
        assert_eq!(m.shape(), (3, 4));
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 4);
        assert_eq!(m.nnz(), 4);
        assert_eq!(m.row_nnz(0), 2);
        assert_eq!(m.row_nnz(1), 0);
        assert_eq!(m.row_nnz(2), 2);
        assert_eq!(m.row_nnz(99), 0);
    }

    #[test]
    fn get_and_row_iteration() {
        let m = sample();
        assert_eq!(m.get(0, 1), 2);
        assert_eq!(m.get(0, 0), 0);
        assert_eq!(m.get(2, 0), 5);
        assert_eq!(m.get(99, 0), 0);
        let row0: Vec<_> = m.row(0).collect();
        assert_eq!(row0, vec![(1, 2), (3, 1)]);
        assert_eq!(m.row(1).count(), 0);
        assert_eq!(m.row(7).count(), 0);
    }

    #[test]
    fn iter_and_to_dense_round_trip() {
        let m = sample();
        let dense = m.to_dense();
        assert_eq!(
            dense,
            vec![vec![0, 2, 0, 1], vec![0, 0, 0, 0], vec![5, 0, 3, 0]]
        );
        let rebuilt = CsrMatrix::from_dense(&dense).unwrap();
        assert_eq!(rebuilt, m);
        assert_eq!(m.iter().count(), 4);
    }

    #[test]
    fn transpose_swaps_coordinates() {
        let m = sample();
        let t = m.transpose();
        assert_eq!(t.shape(), (4, 3));
        assert_eq!(t.get(1, 0), 2);
        assert_eq!(t.get(0, 2), 5);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn from_sorted_coo_matches_from_sorted_triples() {
        let triples = vec![(0usize, 1usize, 2u32), (0, 3, 1), (2, 0, 5), (2, 2, 3)];
        let by_ref = CsrMatrix::from_sorted_triples(3, 4, &triples);
        let by_move = CsrMatrix::from_sorted_coo(3, 4, triples);
        assert_eq!(by_ref, by_move);
        assert_eq!(by_move, sample());
        let empty = CsrMatrix::<u32>::from_sorted_coo(3, 4, Vec::new());
        assert_eq!(empty.nnz(), 0);
        assert_eq!(empty.shape(), (3, 4));
    }

    #[test]
    fn row_disjoint_blocks_merge_like_a_global_sort() {
        // Rows 0 and 2 live in one block, row 1 in another; block order is
        // deliberately not row order.
        let block_a = vec![(1usize, 0usize, 7u32), (1, 3, 9)];
        let block_b = vec![(0usize, 1usize, 2u32), (0, 3, 1), (2, 0, 5), (2, 2, 3)];
        let merged = CsrMatrix::from_row_disjoint_blocks(3, 4, vec![block_a, block_b]);
        let mut all = vec![
            (0, 1, 2),
            (0, 3, 1),
            (1, 0, 7),
            (1, 3, 9),
            (2, 0, 5),
            (2, 2, 3),
        ];
        all.sort_unstable_by_key(|&(r, c, _)| (r, c));
        assert_eq!(merged, CsrMatrix::from_sorted_triples(3, 4, &all));
        let none: Vec<Vec<(usize, usize, u32)>> = Vec::new();
        assert_eq!(CsrMatrix::from_row_disjoint_blocks(2, 2, none).nnz(), 0);
        assert_eq!(
            CsrMatrix::<u32>::from_row_disjoint_blocks(0, 0, vec![Vec::new()]).shape(),
            (0, 0)
        );
    }

    #[test]
    fn row_disjoint_blocks_into_reuses_storage() {
        let block_a = vec![(1usize, 0usize, 7u32), (1, 3, 9)];
        let block_b = vec![(0usize, 1usize, 2u32), (0, 3, 1), (2, 0, 5), (2, 2, 3)];
        let by_value =
            CsrMatrix::from_row_disjoint_blocks(3, 4, vec![block_a.clone(), block_b.clone()]);
        // Dirty, over-sized recycled arrays: the builder must clear and
        // refill them, and the blocks stay with the caller.
        let blocks = vec![block_a, block_b];
        let recycled = CsrMatrix::from_row_disjoint_blocks_into(
            3,
            4,
            &blocks,
            vec![99usize; 32],
            vec![77usize; 32],
            vec![42u32; 32],
        );
        assert_eq!(recycled, by_value);
        assert_eq!(blocks.len(), 2, "blocks survive for the next window");
        // Empty input still produces a valid empty matrix.
        let empty =
            CsrMatrix::<u32>::from_row_disjoint_blocks_into(2, 2, &[], vec![5; 9], vec![], vec![]);
        assert_eq!(empty.nnz(), 0);
        assert_eq!(empty.row_ptr(), &[0, 0, 0]);
    }

    #[test]
    fn from_raw_parts_builds_and_validates() {
        let m = sample();
        let rebuilt = CsrMatrix::from_raw_parts(
            3,
            4,
            m.row_ptr().to_vec(),
            m.col_indices().to_vec(),
            m.values().to_vec(),
        )
        .unwrap();
        assert_eq!(rebuilt, m);
        let empty = CsrMatrix::<u32>::from_raw_parts(2, 2, vec![0, 0, 0], vec![], vec![]).unwrap();
        assert_eq!(empty.nnz(), 0);

        // Wrong row_ptr length, non-monotone row_ptr, bad terminal, length
        // mismatch, and out-of-bounds columns are all rejected.
        assert!(CsrMatrix::<u32>::from_raw_parts(3, 4, vec![0, 1], vec![0], vec![1]).is_err());
        assert!(CsrMatrix::<u32>::from_raw_parts(2, 4, vec![0, 2, 1], vec![0], vec![1]).is_err());
        assert!(CsrMatrix::<u32>::from_raw_parts(1, 4, vec![0, 2], vec![0], vec![1]).is_err());
        assert!(CsrMatrix::<u32>::from_raw_parts(1, 4, vec![0, 1], vec![0], vec![1, 2]).is_err());
        assert_eq!(
            CsrMatrix::<u32>::from_raw_parts(1, 4, vec![0, 1], vec![9], vec![1]).unwrap_err(),
            MatrixError::IndexOutOfBounds {
                index: 9,
                bound: 4,
                axis: "column"
            }
        );
    }

    #[test]
    fn from_dense_rejects_ragged() {
        assert!(CsrMatrix::<u32>::from_dense(&[vec![1, 2], vec![3]]).is_err());
    }

    #[test]
    fn empty_matrix() {
        let m = CsrMatrix::<u32>::empty(5, 5);
        assert_eq!(m.nnz(), 0);
        assert_eq!(m.get(2, 2), 0);
        assert_eq!(m.iter().count(), 0);
        let m0 = CsrMatrix::<u32>::empty(0, 0);
        assert_eq!(m0.shape(), (0, 0));
    }

    #[test]
    fn internal_arrays_are_consistent() {
        let m = sample();
        assert_eq!(m.row_ptr(), &[0, 2, 2, 4]);
        assert_eq!(m.col_indices(), &[1, 3, 0, 2]);
        assert_eq!(m.values(), &[2, 1, 5, 3]);
    }

    #[test]
    fn raw_parts_round_trip() {
        let m = sample();
        let (rows, cols, row_ptr, col_idx, values) = m.clone().into_raw_parts();
        assert_eq!((rows, cols), (3, 4));
        let rebuilt = CsrMatrix::from_raw_parts(rows, cols, row_ptr, col_idx, values).unwrap();
        assert_eq!(rebuilt, m);
    }

    #[test]
    fn clone_from_reuses_buffers() {
        let m = sample();
        let mut target = CsrMatrix::<u32>::empty(3, 4);
        // Warm the target's buffers, then refresh from a different source:
        // the arrays must match without growing fresh allocations (observable
        // here only as correctness; the no-alloc property is capacity reuse).
        target.clone_from(&m);
        assert_eq!(target, m);
        let empty = CsrMatrix::<u32>::empty(2, 2);
        target.clone_from(&empty);
        assert_eq!(target, empty);
    }

    #[test]
    fn diff_and_apply_delta_round_trip() {
        let a = sample();
        // [0 2 0 1]      [0 2 0 0]   cell (0,3) deleted,
        // [0 0 0 0]  ->  [0 7 0 0]   cell (1,1) added,
        // [5 0 3 0]      [5 0 4 0]   cell (2,2) changed.
        let b =
            CsrMatrix::from_dense(&[vec![0, 2, 0, 0], vec![0, 7, 0, 0], vec![5, 0, 4, 0]]).unwrap();
        let changes = a.diff(&b).unwrap();
        assert_eq!(
            changes,
            vec![(0, 3, None), (1, 1, Some(7)), (2, 2, Some(4))]
        );
        assert_eq!(a.apply_delta(&changes).unwrap(), b);
        // The reverse diff restores the original.
        let back = b.diff(&a).unwrap();
        assert_eq!(b.apply_delta(&back).unwrap(), a);
        // An empty diff is the identity.
        assert_eq!(a.diff(&a).unwrap(), vec![]);
        assert_eq!(a.apply_delta(&[]).unwrap(), a);
    }

    #[test]
    fn diff_preserves_stored_defaults() {
        // A stored zero is a real entry, distinct from an absent cell: the
        // diff must carry it as an upsert, not a delete.
        let a = CsrMatrix::from_sorted_triples(2, 2, &[(0usize, 0usize, 5u32)]);
        let b = CsrMatrix::from_sorted_triples(2, 2, &[(0usize, 0usize, 0u32)]);
        let changes = a.diff(&b).unwrap();
        assert_eq!(changes, vec![(0, 0, Some(0))]);
        let patched = a.apply_delta(&changes).unwrap();
        assert_eq!(patched, b);
        assert_eq!(patched.nnz(), 1, "the stored zero survives");
    }

    #[test]
    fn apply_delta_into_reuses_buffers() {
        let a = sample();
        let b =
            CsrMatrix::from_dense(&[vec![1, 0, 0, 1], vec![0, 0, 2, 0], vec![5, 0, 3, 9]]).unwrap();
        let changes = a.diff(&b).unwrap();
        let (mut rp, mut ci, mut vs) = (vec![9usize; 50], vec![7usize; 50], vec![1u32; 50]);
        a.apply_delta_into(&changes, &mut rp, &mut ci, &mut vs)
            .unwrap();
        let rebuilt = CsrMatrix::from_raw_parts(3, 4, rp, ci, vs).unwrap();
        assert_eq!(rebuilt, b);
    }

    #[test]
    fn apply_delta_rejects_bad_changes() {
        let a = sample();
        // Unsorted, duplicate, and out-of-bounds change lists are rejected.
        assert!(a.apply_delta(&[(1, 1, Some(1)), (0, 0, Some(1))]).is_err());
        assert!(a.apply_delta(&[(0, 0, Some(1)), (0, 0, None)]).is_err());
        assert_eq!(
            a.apply_delta(&[(3, 0, Some(1))]).unwrap_err(),
            MatrixError::IndexOutOfBounds {
                index: 3,
                bound: 3,
                axis: "row"
            }
        );
        assert_eq!(
            a.apply_delta(&[(0, 4, Some(1))]).unwrap_err(),
            MatrixError::IndexOutOfBounds {
                index: 4,
                bound: 4,
                axis: "column"
            }
        );
        // Shape-mismatched diffs are rejected before any work.
        assert!(a.diff(&CsrMatrix::<u32>::empty(2, 2)).is_err());
        // Deleting an absent cell is a harmless no-op.
        assert_eq!(a.apply_delta(&[(1, 2, None)]).unwrap(), a);
    }
}
