//! Axis labels and node classification.
//!
//! The paper uses a single list of axis labels applied to both axes, with a
//! naming convention that encodes the security role of each node: work
//! stations (`WS`), servers (`SRV`), external/grey-space hosts (`EXT`) and
//! adversary/red-space hosts (`ADV`). "Shorter all caps labels are easier to
//! view in the game."

use crate::error::{MatrixError, Result};

/// The security-space classification of a node, inferred from its label prefix.
///
/// The learning modules color traffic by whether it involves the student's own
/// network (blue space), neutral external networks (grey space) or adversary
/// networks (red space); node classes are the vertex-level version of that.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeClass {
    /// A workstation inside the defended (blue) network, label prefix `WS`.
    Workstation,
    /// A server inside the defended (blue) network, label prefix `SRV`.
    Server,
    /// An external, neutral (grey space) host, label prefix `EXT`.
    External,
    /// An adversary-controlled (red space) host, label prefix `ADV`.
    Adversary,
    /// Any label that does not follow the WS/SRV/EXT/ADV convention.
    Other,
}

impl NodeClass {
    /// Infer the class from a label using the paper's prefix convention.
    pub fn from_label(label: &str) -> NodeClass {
        let upper = label.to_ascii_uppercase();
        if upper.starts_with("WS") {
            NodeClass::Workstation
        } else if upper.starts_with("SRV") {
            NodeClass::Server
        } else if upper.starts_with("EXT") {
            NodeClass::External
        } else if upper.starts_with("ADV") {
            NodeClass::Adversary
        } else {
            NodeClass::Other
        }
    }

    /// True when the node belongs to the defended "blue space".
    pub fn is_blue(&self) -> bool {
        matches!(self, NodeClass::Workstation | NodeClass::Server)
    }

    /// True when the node is adversary-controlled "red space".
    pub fn is_red(&self) -> bool {
        matches!(self, NodeClass::Adversary)
    }

    /// True when the node is neutral "grey space".
    pub fn is_grey(&self) -> bool {
        matches!(self, NodeClass::External | NodeClass::Other)
    }
}

/// An ordered set of axis labels, applied to both rows and columns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LabelSet {
    labels: Vec<String>,
}

impl LabelSet {
    /// Create a label set, rejecting duplicates and empty labels.
    pub fn new<S: Into<String>>(labels: impl IntoIterator<Item = S>) -> Result<Self> {
        let labels: Vec<String> = labels.into_iter().map(Into::into).collect();
        if labels.is_empty() {
            return Err(MatrixError::Empty("label set"));
        }
        for (i, label) in labels.iter().enumerate() {
            if label.is_empty() {
                return Err(MatrixError::DuplicateLabel(String::new()));
            }
            if labels[..i].contains(label) {
                return Err(MatrixError::DuplicateLabel(label.clone()));
            }
        }
        Ok(LabelSet { labels })
    }

    /// Numeric labels `"0" .. "n-1"`, the graph-theory default in the paper's
    /// formal definition ("i and j are chosen from pre-fixed initial segments
    /// of the positive integers").
    pub fn numeric(n: usize) -> Self {
        LabelSet {
            labels: (0..n).map(|i| i.to_string()).collect(),
        }
    }

    /// The default 10-node labelling used by most of the paper's figures:
    /// `WS1-WS3, SRV1, EXT1-EXT2, ADV1-ADV4`.
    pub fn paper_default_10() -> Self {
        LabelSet::new([
            "WS1", "WS2", "WS3", "SRV1", "EXT1", "EXT2", "ADV1", "ADV2", "ADV3", "ADV4",
        ])
        // tw-analyze: allow(no-panic-in-lib, "the paper-default label literals are validated by the labels unit tests")
        .expect("static labels are valid")
    }

    /// A 6-node labelling matching the 6×6 template: `WS1-WS2, SRV1, EXT1, ADV1-ADV2`.
    pub fn paper_default_6() -> Self {
        LabelSet::new(["WS1", "WS2", "SRV1", "EXT1", "ADV1", "ADV2"])
            // tw-analyze: allow(no-panic-in-lib, "the paper-default label literals are validated by the labels unit tests")
            .expect("static labels are valid")
    }

    /// Number of labels (the matrix dimension).
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True when there are no labels.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// The label at `index`, if in range.
    pub fn get(&self, index: usize) -> Option<&str> {
        self.labels.get(index).map(String::as_str)
    }

    /// The index of a label, if present.
    pub fn index_of(&self, label: &str) -> Option<usize> {
        self.labels.iter().position(|l| l == label)
    }

    /// All labels in order.
    pub fn labels(&self) -> &[String] {
        &self.labels
    }

    /// The inferred [`NodeClass`] of each label, in order.
    pub fn classes(&self) -> Vec<NodeClass> {
        self.labels
            .iter()
            .map(|l| NodeClass::from_label(l))
            .collect()
    }

    /// Indices of all labels with the given class.
    pub fn indices_of_class(&self, class: NodeClass) -> Vec<usize> {
        self.labels
            .iter()
            .enumerate()
            .filter(|(_, l)| NodeClass::from_label(l) == class)
            .map(|(i, _)| i)
            .collect()
    }

    /// Indices of blue-space nodes (workstations and servers).
    pub fn blue_indices(&self) -> Vec<usize> {
        self.labels
            .iter()
            .enumerate()
            .filter(|(_, l)| NodeClass::from_label(l).is_blue())
            .map(|(i, _)| i)
            .collect()
    }

    /// Indices of red-space nodes (adversaries).
    pub fn red_indices(&self) -> Vec<usize> {
        self.indices_of_class(NodeClass::Adversary)
    }

    /// Indices of grey-space nodes (external and unclassified).
    pub fn grey_indices(&self) -> Vec<usize> {
        self.labels
            .iter()
            .enumerate()
            .filter(|(_, l)| NodeClass::from_label(l).is_grey())
            .map(|(i, _)| i)
            .collect()
    }

    /// The length of the longest label, used for layout in views and reports.
    pub fn max_label_width(&self) -> usize {
        self.labels
            .iter()
            .map(|l| l.chars().count())
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_follow_paper_convention() {
        assert_eq!(NodeClass::from_label("WS1"), NodeClass::Workstation);
        assert_eq!(NodeClass::from_label("ws2"), NodeClass::Workstation);
        assert_eq!(NodeClass::from_label("SRV1"), NodeClass::Server);
        assert_eq!(NodeClass::from_label("EXT2"), NodeClass::External);
        assert_eq!(NodeClass::from_label("ADV4"), NodeClass::Adversary);
        assert_eq!(NodeClass::from_label("7"), NodeClass::Other);
        assert!(NodeClass::Workstation.is_blue());
        assert!(NodeClass::Server.is_blue());
        assert!(NodeClass::Adversary.is_red());
        assert!(NodeClass::External.is_grey());
        assert!(NodeClass::Other.is_grey());
    }

    #[test]
    fn paper_default_10_matches_listing() {
        let l = LabelSet::paper_default_10();
        assert_eq!(l.len(), 10);
        assert_eq!(l.get(0), Some("WS1"));
        assert_eq!(l.get(3), Some("SRV1"));
        assert_eq!(l.get(6), Some("ADV1"));
        assert_eq!(l.blue_indices(), vec![0, 1, 2, 3]);
        assert_eq!(l.grey_indices(), vec![4, 5]);
        assert_eq!(l.red_indices(), vec![6, 7, 8, 9]);
    }

    #[test]
    fn paper_default_6_shape() {
        let l = LabelSet::paper_default_6();
        assert_eq!(l.len(), 6);
        assert_eq!(l.blue_indices(), vec![0, 1, 2]);
        assert_eq!(l.grey_indices(), vec![3]);
        assert_eq!(l.red_indices(), vec![4, 5]);
    }

    #[test]
    fn numeric_labels() {
        let l = LabelSet::numeric(4);
        assert_eq!(l.labels(), &["0", "1", "2", "3"]);
        assert_eq!(l.index_of("2"), Some(2));
        assert!(l.classes().iter().all(|c| *c == NodeClass::Other));
    }

    #[test]
    fn rejects_duplicates_and_empty() {
        assert!(LabelSet::new(["WS1", "WS1"]).is_err());
        assert!(LabelSet::new(Vec::<String>::new()).is_err());
        assert!(LabelSet::new(["WS1", ""]).is_err());
    }

    #[test]
    fn lookup_and_width() {
        let l = LabelSet::paper_default_10();
        assert_eq!(l.index_of("ADV3"), Some(8));
        assert_eq!(l.index_of("NOPE"), None);
        assert_eq!(l.max_label_width(), 4);
        assert!(!l.is_empty());
    }
}
