//! The packet-count legibility model (experiment E-S1).
//!
//! The paper reports an empirical authoring limit: "While there is no hard
//! limit in code, through testing it has been found that fewer than 15 packets
//! between any source and destination displays well." In the warehouse
//! metaphor each packet is a box stacked on the cell's pallet; boxes are laid
//! out in a 4×4 footprint and start stacking into a second layer once the
//! footprint is full, at which point boxes in lower layers are hidden from the
//! top-down view and the count can no longer be read off the screen.

/// Boxes per pallet layer (a 4×4 footprint).
pub const BOXES_PER_LAYER: usize = 16;

/// The display limit the paper reports (packets per cell).
pub const DISPLAY_LIMIT: u32 = 15;

/// The position of box `index` (0-based) within a pallet's stack, as
/// `(column, layer, row)` in box units. Boxes fill a layer row-major before
/// starting the next layer.
pub fn stack_layout(index: usize) -> (usize, usize, usize) {
    let layer = index / BOXES_PER_LAYER;
    let within = index % BOXES_PER_LAYER;
    (within % 4, layer, within / 4)
}

/// The number of boxes visible from directly above when `count` boxes are
/// stacked: one per occupied footprint position.
pub fn visible_from_above(count: u32) -> u32 {
    count.min(BOXES_PER_LAYER as u32)
}

/// The legibility score of a cell holding `count` packets: the fraction of
/// boxes that remain individually visible in the top-down view. 1.0 means the
/// student can count every packet; below 1.0 some packets are occluded.
pub fn legibility_score(count: u32) -> f64 {
    if count == 0 {
        return 1.0;
    }
    visible_from_above(count) as f64 / count as f64
}

/// The legibility of the worst cell in a matrix.
pub fn matrix_legibility(matrix: &tw_matrix::TrafficMatrix) -> f64 {
    matrix
        .iter_nonzero()
        .map(|(_, _, v)| legibility_score(v))
        .fold(1.0, f64::min)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tw_matrix::TrafficMatrix;

    #[test]
    fn layout_fills_a_layer_before_stacking() {
        assert_eq!(stack_layout(0), (0, 0, 0));
        assert_eq!(stack_layout(3), (3, 0, 0));
        assert_eq!(stack_layout(4), (0, 0, 1));
        assert_eq!(stack_layout(15), (3, 0, 3));
        assert_eq!(stack_layout(16), (0, 1, 0));
        assert_eq!(stack_layout(33), (1, 2, 0));
    }

    #[test]
    fn counts_below_the_paper_limit_are_fully_legible() {
        for count in 0..=DISPLAY_LIMIT {
            assert_eq!(
                legibility_score(count),
                1.0,
                "count {count} should be fully legible"
            );
        }
    }

    #[test]
    fn counts_above_the_footprint_lose_legibility_monotonically() {
        let scores: Vec<f64> = (17..40).map(legibility_score).collect();
        assert!(scores[0] < 1.0);
        assert!(
            scores.windows(2).all(|w| w[1] <= w[0]),
            "legibility must not increase with count"
        );
        assert!((legibility_score(32) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn matrix_legibility_is_the_worst_cell() {
        let mut m = TrafficMatrix::zeros_numeric(4);
        m.set(0, 1, 5).unwrap();
        m.set(2, 3, 32).unwrap();
        assert!((matrix_legibility(&m) - 0.5).abs() < 1e-12);
        let empty = TrafficMatrix::zeros_numeric(4);
        assert_eq!(matrix_legibility(&empty), 1.0);
    }

    #[test]
    fn visible_boxes_saturate_at_the_footprint() {
        assert_eq!(visible_from_above(3), 3);
        assert_eq!(visible_from_above(16), 16);
        assert_eq!(visible_from_above(100), 16);
    }
}
