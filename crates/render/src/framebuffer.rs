//! The render target: an RGB color buffer plus a depth buffer.

/// An RGB + depth framebuffer.
#[derive(Debug, Clone)]
pub struct Framebuffer {
    width: usize,
    height: usize,
    /// RGB triples in `[0, 1]`, row-major.
    color: Vec<[f64; 3]>,
    /// Depth values; smaller is closer. Initialized to +inf.
    depth: Vec<f64>,
}

impl Framebuffer {
    /// A black framebuffer of the given size.
    pub fn new(width: usize, height: usize) -> Self {
        Framebuffer {
            width,
            height,
            color: vec![[0.0; 3]; width * height],
            depth: vec![f64::INFINITY; width * height],
        }
    }

    /// Buffer width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Buffer height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Clear to a background color and reset depth.
    pub fn clear(&mut self, rgb: [f64; 3]) {
        for c in &mut self.color {
            *c = rgb;
        }
        for d in &mut self.depth {
            *d = f64::INFINITY;
        }
    }

    /// The color at a pixel (black when out of range).
    pub fn pixel(&self, x: usize, y: usize) -> [f64; 3] {
        if x < self.width && y < self.height {
            self.color[y * self.width + x]
        } else {
            [0.0; 3]
        }
    }

    /// The depth at a pixel (+inf when out of range or unwritten).
    pub fn depth_at(&self, x: usize, y: usize) -> f64 {
        if x < self.width && y < self.height {
            self.depth[y * self.width + x]
        } else {
            f64::INFINITY
        }
    }

    /// Write a pixel if it passes the depth test.
    pub fn set_pixel(&mut self, x: usize, y: usize, depth: f64, rgb: [f64; 3]) -> bool {
        if x >= self.width || y >= self.height {
            return false;
        }
        let idx = y * self.width + x;
        if depth < self.depth[idx] {
            self.depth[idx] = depth;
            self.color[idx] = rgb;
            true
        } else {
            false
        }
    }

    /// Write a pixel unconditionally (used by the 2-D view, which has no depth).
    pub fn set_pixel_flat(&mut self, x: usize, y: usize, rgb: [f64; 3]) {
        if x < self.width && y < self.height {
            let idx = y * self.width + x;
            self.color[idx] = rgb;
            self.depth[idx] = 0.0;
        }
    }

    /// Number of pixels that have been written (depth < +inf).
    pub fn covered_pixels(&self) -> usize {
        self.depth.iter().filter(|d| d.is_finite()).count()
    }

    /// Serialize as a binary PPM (P6) image.
    pub fn to_ppm(&self) -> Vec<u8> {
        let mut out = format!("P6\n{} {}\n255\n", self.width, self.height).into_bytes();
        for c in &self.color {
            for channel in c {
                out.push((channel.clamp(0.0, 1.0) * 255.0).round() as u8);
            }
        }
        out
    }

    /// Render as ASCII art: one character per pixel, darker luminance → denser
    /// glyph. Used by tests and the figure harness so views can be asserted on
    /// and embedded in EXPERIMENTS.md without image tooling.
    pub fn to_ascii(&self) -> String {
        const RAMP: &[u8] = b" .:-=+*#%@";
        let mut out = String::with_capacity((self.width + 1) * self.height);
        for y in 0..self.height {
            for x in 0..self.width {
                let [r, g, b] = self.pixel(x, y);
                let luminance = (0.2126 * r + 0.7152 * g + 0.0722 * b).clamp(0.0, 1.0);
                let idx = (luminance * (RAMP.len() - 1) as f64).round() as usize;
                out.push(RAMP[idx] as char);
            }
            out.push('\n');
        }
        out
    }

    /// Downsample by integer factor (averaging), used to produce small ASCII
    /// previews of large renders.
    pub fn downsample(&self, factor: usize) -> Framebuffer {
        let factor = factor.max(1);
        let w = (self.width / factor).max(1);
        let h = (self.height / factor).max(1);
        let mut out = Framebuffer::new(w, h);
        for y in 0..h {
            for x in 0..w {
                let mut acc = [0.0f64; 3];
                let mut count = 0usize;
                for sy in 0..factor {
                    for sx in 0..factor {
                        let px = self.pixel(x * factor + sx, y * factor + sy);
                        acc[0] += px[0];
                        acc[1] += px[1];
                        acc[2] += px[2];
                        count += 1;
                    }
                }
                out.set_pixel_flat(
                    x,
                    y,
                    [
                        acc[0] / count as f64,
                        acc[1] / count as f64,
                        acc[2] / count as f64,
                    ],
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn depth_test() {
        let mut fb = Framebuffer::new(4, 4);
        assert!(fb.set_pixel(1, 1, 5.0, [1.0, 0.0, 0.0]));
        assert!(
            !fb.set_pixel(1, 1, 6.0, [0.0, 1.0, 0.0]),
            "farther fragment must be rejected"
        );
        assert!(
            fb.set_pixel(1, 1, 2.0, [0.0, 0.0, 1.0]),
            "closer fragment must win"
        );
        assert_eq!(fb.pixel(1, 1), [0.0, 0.0, 1.0]);
        assert_eq!(fb.depth_at(1, 1), 2.0);
        assert_eq!(fb.covered_pixels(), 1);
        assert!(!fb.set_pixel(10, 10, 0.0, [1.0; 3]));
    }

    #[test]
    fn clear_resets_color_and_depth() {
        let mut fb = Framebuffer::new(2, 2);
        fb.set_pixel(0, 0, 1.0, [1.0; 3]);
        fb.clear([0.1, 0.2, 0.3]);
        assert_eq!(fb.pixel(0, 0), [0.1, 0.2, 0.3]);
        assert_eq!(fb.covered_pixels(), 0);
    }

    #[test]
    fn ppm_header_and_size() {
        let fb = Framebuffer::new(3, 2);
        let ppm = fb.to_ppm();
        assert!(ppm.starts_with(b"P6\n3 2\n255\n"));
        assert_eq!(ppm.len(), 11 + 3 * 2 * 3);
    }

    #[test]
    fn ascii_uses_denser_glyphs_for_brighter_pixels() {
        let mut fb = Framebuffer::new(2, 1);
        fb.set_pixel_flat(0, 0, [0.0; 3]);
        fb.set_pixel_flat(1, 0, [1.0, 1.0, 1.0]);
        let ascii = fb.to_ascii();
        assert_eq!(ascii, " @\n");
        assert_eq!(fb.width(), 2);
        assert_eq!(fb.height(), 1);
    }

    #[test]
    fn downsample_averages() {
        let mut fb = Framebuffer::new(4, 4);
        fb.clear([0.0; 3]);
        // One white 2x2 block in the top-left quadrant.
        for y in 0..2 {
            for x in 0..2 {
                fb.set_pixel_flat(x, y, [1.0; 3]);
            }
        }
        let small = fb.downsample(2);
        assert_eq!(small.width(), 2);
        assert_eq!(small.pixel(0, 0), [1.0, 1.0, 1.0]);
        assert_eq!(small.pixel(1, 1), [0.0, 0.0, 0.0]);
    }
}
