//! Cameras: the top-down 2-D view and the orbiting 3-D view.

/// The projection used by a camera.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Projection {
    /// Orthographic projection with the given half-extent of the view volume.
    Orthographic { half_extent: f64 },
    /// Perspective projection with the given vertical field of view in radians.
    Perspective { fov_y: f64 },
}

/// A simple look-at camera.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Camera {
    /// Camera position in world space.
    pub eye: [f64; 3],
    /// The point the camera looks at.
    pub target: [f64; 3],
    /// The up direction.
    pub up: [f64; 3],
    /// Projection parameters.
    pub projection: Projection,
}

/// The rotation step applied per Q/E key press, in radians (15°).
pub const ROTATE_STEP: f64 = std::f64::consts::PI / 12.0;

impl Camera {
    /// The 2-D view: an orthographic camera looking straight down at the
    /// centre of a warehouse floor spanning `extent × extent` world units.
    pub fn top_down(extent: f64) -> Self {
        Camera {
            eye: [extent / 2.0, extent * 2.0, extent / 2.0],
            target: [extent / 2.0, 0.0, extent / 2.0],
            // Looking straight down, so "up" on screen maps to -z (row 0 at the top).
            up: [0.0, 0.0, -1.0],
            projection: Projection::Orthographic {
                half_extent: extent * 0.55,
            },
        }
    }

    /// The 3-D view: a perspective camera orbiting the floor centre at the
    /// given yaw angle (radians). Yaw 0 looks from the front-right corner.
    pub fn orbit(extent: f64, yaw: f64) -> Self {
        let centre = [extent / 2.0, 0.0, extent / 2.0];
        let radius = extent * 1.4;
        let height = extent * 0.9;
        let eye = [
            centre[0] + radius * yaw.cos(),
            height,
            centre[2] + radius * yaw.sin(),
        ];
        Camera {
            eye,
            target: centre,
            up: [0.0, 1.0, 0.0],
            projection: Projection::Perspective {
                fov_y: 50f64.to_radians(),
            },
        }
    }

    /// The orbit camera after `steps` presses of E (positive) or Q (negative).
    pub fn orbit_steps(extent: f64, steps: i32) -> Self {
        Self::orbit(extent, steps as f64 * ROTATE_STEP)
    }

    /// Transform a world-space point into view space (x right, y up, z depth
    /// away from the camera).
    pub fn view_transform(&self, point: [f64; 3]) -> [f64; 3] {
        let forward = normalize(sub(self.target, self.eye));
        let right = normalize(cross(forward, self.up));
        let true_up = cross(right, forward);
        let rel = sub(point, self.eye);
        [dot(rel, right), dot(rel, true_up), dot(rel, forward)]
    }

    /// Project a world-space point to normalized device coordinates
    /// `([-1,1], [-1,1])` plus depth. Returns `None` when the point is behind
    /// the camera (perspective only).
    pub fn project(&self, point: [f64; 3]) -> Option<([f64; 2], f64)> {
        let view = self.view_transform(point);
        match self.projection {
            Projection::Orthographic { half_extent } => {
                Some(([view[0] / half_extent, view[1] / half_extent], view[2]))
            }
            Projection::Perspective { fov_y } => {
                if view[2] <= 1e-6 {
                    return None;
                }
                let scale = 1.0 / (fov_y / 2.0).tan();
                Some((
                    [view[0] * scale / view[2], view[1] * scale / view[2]],
                    view[2],
                ))
            }
        }
    }

    /// Map normalized device coordinates to pixel coordinates for a buffer.
    pub fn ndc_to_pixel(ndc: [f64; 2], width: usize, height: usize) -> [f64; 2] {
        [
            (ndc[0] * 0.5 + 0.5) * (width.saturating_sub(1)) as f64,
            (1.0 - (ndc[1] * 0.5 + 0.5)) * (height.saturating_sub(1)) as f64,
        ]
    }
}

pub(crate) fn sub(a: [f64; 3], b: [f64; 3]) -> [f64; 3] {
    [a[0] - b[0], a[1] - b[1], a[2] - b[2]]
}

pub(crate) fn cross(a: [f64; 3], b: [f64; 3]) -> [f64; 3] {
    [
        a[1] * b[2] - a[2] * b[1],
        a[2] * b[0] - a[0] * b[2],
        a[0] * b[1] - a[1] * b[0],
    ]
}

pub(crate) fn dot(a: [f64; 3], b: [f64; 3]) -> f64 {
    a[0] * b[0] + a[1] * b[1] + a[2] * b[2]
}

pub(crate) fn normalize(v: [f64; 3]) -> [f64; 3] {
    let len = dot(v, v).sqrt();
    if len == 0.0 {
        [0.0; 3]
    } else {
        [v[0] / len, v[1] / len, v[2] / len]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn top_down_camera_sees_the_floor_centre_at_the_image_centre() {
        let cam = Camera::top_down(10.0);
        let (ndc, depth) = cam.project([5.0, 0.0, 5.0]).unwrap();
        assert!(ndc[0].abs() < 1e-9 && ndc[1].abs() < 1e-9);
        assert!(depth > 0.0);
        // A corner of the floor lands inside the view volume.
        let (corner, _) = cam.project([0.0, 0.0, 0.0]).unwrap();
        assert!(corner[0].abs() <= 1.0 && corner[1].abs() <= 1.0);
    }

    #[test]
    fn top_down_row_zero_is_at_the_top_of_the_image() {
        let cam = Camera::top_down(10.0);
        // Smaller z (row 0) should project to larger NDC y (top of the image).
        let (near_row0, _) = cam.project([5.0, 0.0, 1.0]).unwrap();
        let (near_row9, _) = cam.project([5.0, 0.0, 9.0]).unwrap();
        assert!(near_row0[1] > near_row9[1]);
    }

    #[test]
    fn orbit_rotation_moves_the_eye_but_keeps_the_target() {
        let a = Camera::orbit_steps(10.0, 0);
        let b = Camera::orbit_steps(10.0, 2);
        assert_eq!(a.target, b.target);
        assert_ne!(a.eye, b.eye);
        // A full 24-step revolution returns to the start (within rounding).
        let full = Camera::orbit_steps(10.0, 24);
        for (x, y) in a.eye.iter().zip(full.eye.iter()) {
            assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn perspective_discards_points_behind_the_camera() {
        let cam = Camera::orbit(10.0, 0.0);
        let behind = [cam.eye[0] + 100.0, cam.eye[1], cam.eye[2]];
        assert!(cam.project(behind).is_none());
        assert!(cam.project(cam.target).is_some());
    }

    #[test]
    fn ndc_to_pixel_maps_corners() {
        assert_eq!(Camera::ndc_to_pixel([-1.0, 1.0], 101, 51), [0.0, 0.0]);
        assert_eq!(Camera::ndc_to_pixel([1.0, -1.0], 101, 51), [100.0, 50.0]);
        let centre = Camera::ndc_to_pixel([0.0, 0.0], 101, 51);
        assert_eq!(centre, [50.0, 25.0]);
    }

    #[test]
    fn view_transform_depth_increases_away_from_camera() {
        let cam = Camera::top_down(10.0);
        let high = cam.view_transform([5.0, 5.0, 5.0]);
        let low = cam.view_transform([5.0, 0.0, 5.0]);
        assert!(
            low[2] > high[2],
            "points farther below the camera have larger depth"
        );
    }
}
