//! # tw-render
//!
//! A headless software renderer standing in for Godot's viewport.
//!
//! The paper's figures are screenshots of two views of the warehouse: the
//! top-down 2-D view the student starts in ("how they would generally see a
//! matrix in a spreadsheet, a textbook, or a presentation") and the rotatable
//! 3-D view entered with the spacebar. This crate regenerates both views
//! without a GPU:
//!
//! * [`framebuffer::Framebuffer`] — an RGB + depth buffer with PPM and ASCII
//!   output (the ASCII output is what tests and benches assert against);
//! * [`camera::Camera`] — the top-down orthographic camera and the orbiting
//!   perspective camera with the Q/E rotation steps;
//! * [`raster`] — depth-tested triangle rasterization with simple directional
//!   shading;
//! * [`scene::RenderScene`] — a list of placed voxel meshes;
//! * [`view2d`] — the spreadsheet-style matrix view;
//! * [`legibility`] — the packet-count legibility model behind the paper's
//!   "fewer than 15 packets … displays well" guidance (experiment E-S1).

pub mod camera;
pub mod framebuffer;
pub mod legibility;
pub mod raster;
pub mod scene;
pub mod view2d;

pub use camera::{Camera, Projection};
pub use framebuffer::Framebuffer;
pub use legibility::{legibility_score, stack_layout, DISPLAY_LIMIT};
pub use scene::{PlacedMesh, RenderScene};
pub use view2d::render_matrix_2d;
