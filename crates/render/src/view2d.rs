//! The 2-D (spreadsheet-style) matrix view.
//!
//! "When the student starts the game they are first shown a network traffic
//! matrix in a top-down 2D view. This view is how they would generally see a
//! matrix in a spreadsheet, a textbook, or a presentation." The 2-D view is a
//! direct cell raster: each matrix cell becomes a square whose brightness
//! scales with the packet count and whose hue follows the color plane.

use crate::framebuffer::Framebuffer;
use tw_matrix::{CellColor, ColorMatrix, TrafficMatrix};

/// Pixels per matrix cell in the 2-D view.
pub const CELL_PIXELS: usize = 8;

/// Render a matrix (and optional color plane) into a fresh framebuffer.
///
/// Layout: row 0 at the top, column 0 at the left — the same orientation as
/// the paper's 2-D screenshots and the `to_ascii` text view.
pub fn render_matrix_2d(matrix: &TrafficMatrix, colors: Option<&ColorMatrix>) -> Framebuffer {
    let n = matrix.dimension();
    let size = n * CELL_PIXELS;
    let mut fb = Framebuffer::new(size.max(1), size.max(1));
    fb.clear([0.10, 0.10, 0.12]);
    let max_value = matrix.max_value().max(1) as f64;

    for row in 0..n {
        for col in 0..n {
            let value = matrix.get(row, col).unwrap_or(0) as f64;
            let cell_color = colors
                .and_then(|c| c.get(row, col))
                .unwrap_or(CellColor::Grey);
            let base = match cell_color {
                CellColor::Grey => [0.72, 0.72, 0.72],
                CellColor::Blue => [0.25, 0.45, 0.9],
                CellColor::Red => [0.9, 0.25, 0.25],
            };
            // Empty cells show a faint tint of the plane color; filled cells
            // brighten with the packet count.
            let intensity = if value == 0.0 {
                0.12
            } else {
                0.35 + 0.65 * (value / max_value)
            };
            let rgb = [
                base[0] * intensity,
                base[1] * intensity,
                base[2] * intensity,
            ];
            fill_cell(&mut fb, row, col, rgb);
        }
    }
    fb
}

fn fill_cell(fb: &mut Framebuffer, row: usize, col: usize, rgb: [f64; 3]) {
    let y0 = row * CELL_PIXELS;
    let x0 = col * CELL_PIXELS;
    for y in y0..y0 + CELL_PIXELS {
        for x in x0..x0 + CELL_PIXELS {
            // One-pixel grid line on the top/left edge of each cell.
            let is_grid = y == y0 || x == x0;
            let color = if is_grid { [0.05, 0.05, 0.06] } else { rgb };
            fb.set_pixel_flat(x, y, color);
        }
    }
}

/// Mean brightness of the pixels belonging to one cell, used by tests to check
/// that packet counts are visually distinguishable.
pub fn cell_brightness(fb: &Framebuffer, row: usize, col: usize) -> f64 {
    let y0 = row * CELL_PIXELS + 1;
    let x0 = col * CELL_PIXELS + 1;
    let mut total = 0.0;
    let mut count = 0usize;
    for y in y0..row * CELL_PIXELS + CELL_PIXELS {
        for x in x0..col * CELL_PIXELS + CELL_PIXELS {
            let [r, g, b] = fb.pixel(x, y);
            total += (r + g + b) / 3.0;
            count += 1;
        }
    }
    if count == 0 {
        0.0
    } else {
        total / count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tw_matrix::LabelSet;

    fn template() -> (TrafficMatrix, ColorMatrix) {
        let labels = LabelSet::paper_default_10();
        let mut m = TrafficMatrix::zeros(labels.clone());
        for i in 0..10 {
            m.set(i, i, 1).unwrap();
            m.set(i, 9 - i, 2).unwrap();
        }
        let colors = ColorMatrix::from_label_classes(&labels);
        (m, colors)
    }

    #[test]
    fn buffer_size_matches_the_matrix() {
        let (m, _) = template();
        let fb = render_matrix_2d(&m, None);
        assert_eq!(fb.width(), 10 * CELL_PIXELS);
        assert_eq!(fb.height(), 10 * CELL_PIXELS);
    }

    #[test]
    fn filled_cells_are_brighter_than_empty_ones() {
        let (m, _) = template();
        let fb = render_matrix_2d(&m, None);
        let filled = cell_brightness(&fb, 0, 0);
        let heavier = cell_brightness(&fb, 0, 9);
        let empty = cell_brightness(&fb, 0, 5);
        assert!(filled > empty, "filled {filled} vs empty {empty}");
        assert!(
            heavier > filled,
            "2-packet cell must be brighter than 1-packet cell"
        );
    }

    #[test]
    fn color_plane_tints_cells() {
        let (m, colors) = template();
        let fb = render_matrix_2d(&m, Some(&colors));
        // Cell (0,9) is in the red quadrant and holds 2 packets: red dominant.
        let y = CELL_PIXELS / 2;
        let x = 9 * CELL_PIXELS + CELL_PIXELS / 2;
        let [r, g, b] = fb.pixel(x, y);
        assert!(r > g && r > b);
        // Cell (9,0) is in the blue quadrant: blue dominant.
        let [r2, _, b2] = fb.pixel(CELL_PIXELS / 2, 9 * CELL_PIXELS + CELL_PIXELS / 2);
        assert!(b2 > r2);
    }

    #[test]
    fn one_by_one_matrix_renders() {
        let m = TrafficMatrix::zeros_numeric(1);
        let fb = render_matrix_2d(&m, None);
        assert_eq!(fb.width(), CELL_PIXELS);
    }
}
