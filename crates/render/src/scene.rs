//! A renderable scene: placed voxel meshes drawn through a camera.

use crate::camera::Camera;
use crate::framebuffer::Framebuffer;
use crate::raster::draw_triangle;
use tw_voxel::{greedy_mesh, Mesh, Palette, VoxelGrid};

/// One mesh instance placed in the world.
#[derive(Debug, Clone)]
pub struct PlacedMesh {
    /// The mesh geometry (in model units).
    pub mesh: Mesh,
    /// World-space translation applied to every vertex.
    pub translation: [f64; 3],
    /// Uniform scale applied before translation.
    pub scale: f64,
}

impl PlacedMesh {
    /// Place a voxel grid's mesh at a translation with a uniform scale.
    pub fn from_grid(grid: &VoxelGrid, translation: [f64; 3], scale: f64) -> Self {
        PlacedMesh {
            mesh: greedy_mesh(grid),
            translation,
            scale,
        }
    }
}

/// A list of placed meshes.
#[derive(Debug, Clone, Default)]
pub struct RenderScene {
    /// The placed meshes, drawn in order (depth testing resolves overlap).
    pub meshes: Vec<PlacedMesh>,
}

impl RenderScene {
    /// An empty scene.
    pub fn new() -> Self {
        RenderScene::default()
    }

    /// Add a placed mesh.
    pub fn add(&mut self, placed: PlacedMesh) {
        self.meshes.push(placed);
    }

    /// Total triangle count across the scene.
    pub fn triangle_count(&self) -> usize {
        self.meshes.iter().map(|m| m.mesh.quads.len() * 2).sum()
    }

    /// Render the scene into a framebuffer through a camera, clearing to the
    /// warehouse background color first.
    pub fn render(&self, camera: &Camera, fb: &mut Framebuffer) {
        fb.clear([0.12, 0.12, 0.14]);
        for placed in &self.meshes {
            for tri in placed.mesh.triangles() {
                let transformed = tri.vertices.map(|v| {
                    [
                        v[0] * placed.scale + placed.translation[0],
                        v[1] * placed.scale + placed.translation[1],
                        v[2] * placed.scale + placed.translation[2],
                    ]
                });
                let material = Palette::color(tri.color);
                draw_triangle(
                    fb,
                    camera,
                    transformed,
                    tri.normal,
                    [material.r, material.g, material.b],
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tw_voxel::{box_asset, pallet_asset};

    #[test]
    fn placed_meshes_render_into_the_buffer() {
        let mut scene = RenderScene::new();
        scene.add(PlacedMesh::from_grid(
            &pallet_asset(tw_voxel::palette::ACCENT_BLUE),
            [0.0, 0.0, 0.0],
            0.1,
        ));
        scene.add(PlacedMesh::from_grid(&box_asset(), [0.2, 0.3, 0.2], 0.1));
        assert!(scene.triangle_count() > 12);

        let camera = Camera::top_down(1.0);
        let mut fb = Framebuffer::new(48, 48);
        scene.render(&camera, &mut fb);
        assert!(fb.covered_pixels() > 50, "covered {}", fb.covered_pixels());
    }

    #[test]
    fn rotating_the_orbit_camera_changes_the_image() {
        let mut scene = RenderScene::new();
        scene.add(PlacedMesh::from_grid(&box_asset(), [0.0, 0.0, 0.0], 0.25));
        scene.add(PlacedMesh::from_grid(&box_asset(), [3.0, 0.0, 0.0], 0.25));
        let mut a = Framebuffer::new(32, 32);
        let mut b = Framebuffer::new(32, 32);
        scene.render(&Camera::orbit_steps(4.0, 0), &mut a);
        scene.render(&Camera::orbit_steps(4.0, 3), &mut b);
        assert_ne!(
            a.to_ascii(),
            b.to_ascii(),
            "Q/E rotation must change the view"
        );
    }

    #[test]
    fn empty_scene_renders_background_only() {
        let scene = RenderScene::new();
        let mut fb = Framebuffer::new(8, 8);
        scene.render(&Camera::top_down(1.0), &mut fb);
        assert_eq!(fb.covered_pixels(), 0);
        assert_eq!(scene.triangle_count(), 0);
    }
}
