//! Triangle rasterization with depth testing and flat directional shading.

use crate::camera::{dot, normalize, Camera};
use crate::framebuffer::Framebuffer;

/// The directional light used for flat shading (normalized at use site).
const LIGHT_DIR: [f64; 3] = [0.4, 1.0, 0.3];
/// Ambient term so faces pointing away from the light stay visible.
const AMBIENT: f64 = 0.35;

/// Rasterize one triangle given in world space.
///
/// `color` is the base RGB; the face normal modulates it with a simple
/// Lambertian term. Triangles behind the camera are skipped.
pub fn draw_triangle(
    fb: &mut Framebuffer,
    camera: &Camera,
    vertices: [[f64; 3]; 3],
    normal: [f64; 3],
    color: [f64; 3],
) {
    let mut projected = [[0.0f64; 2]; 3];
    let mut depths = [0.0f64; 3];
    for (i, v) in vertices.iter().enumerate() {
        match camera.project(*v) {
            Some((ndc, depth)) => {
                projected[i] = Camera::ndc_to_pixel(ndc, fb.width(), fb.height());
                depths[i] = depth;
            }
            None => return,
        }
    }

    // Flat shading from the face normal.
    let n = normalize(normal);
    let l = normalize(LIGHT_DIR);
    let diffuse = dot(n, l).max(0.0);
    let intensity = (AMBIENT + (1.0 - AMBIENT) * diffuse).min(1.0);
    let shaded = [
        color[0] * intensity,
        color[1] * intensity,
        color[2] * intensity,
    ];

    // Bounding box clipped to the framebuffer.
    let min_x = projected
        .iter()
        .map(|p| p[0])
        .fold(f64::INFINITY, f64::min)
        .floor()
        .max(0.0) as usize;
    let max_x = projected
        .iter()
        .map(|p| p[0])
        .fold(f64::NEG_INFINITY, f64::max)
        .ceil()
        .min((fb.width() - 1) as f64) as usize;
    let min_y = projected
        .iter()
        .map(|p| p[1])
        .fold(f64::INFINITY, f64::min)
        .floor()
        .max(0.0) as usize;
    let max_y = projected
        .iter()
        .map(|p| p[1])
        .fold(f64::NEG_INFINITY, f64::max)
        .ceil()
        .min((fb.height() - 1) as f64) as usize;
    if min_x > max_x || min_y > max_y {
        return;
    }

    let area = edge(projected[0], projected[1], projected[2]);
    if area.abs() < 1e-12 {
        return; // Degenerate triangle.
    }

    for y in min_y..=max_y {
        for x in min_x..=max_x {
            let p = [x as f64 + 0.5, y as f64 + 0.5];
            let w0 = edge(projected[1], projected[2], p) / area;
            let w1 = edge(projected[2], projected[0], p) / area;
            let w2 = edge(projected[0], projected[1], p) / area;
            // Accept both windings so callers need not back-face cull.
            let inside =
                (w0 >= 0.0 && w1 >= 0.0 && w2 >= 0.0) || (w0 <= 0.0 && w1 <= 0.0 && w2 <= 0.0);
            if inside {
                let depth = w0 * depths[0] + w1 * depths[1] + w2 * depths[2];
                fb.set_pixel(x, y, depth, shaded);
            }
        }
    }
}

fn edge(a: [f64; 2], b: [f64; 2], p: [f64; 2]) -> f64 {
    (b[0] - a[0]) * (p[1] - a[1]) - (b[1] - a[1]) * (p[0] - a[0])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triangle_covers_pixels_and_respects_depth() {
        let cam = Camera::top_down(10.0);
        let mut fb = Framebuffer::new(32, 32);
        fb.clear([0.0; 3]);
        // A floor-plane triangle covering roughly half the view.
        draw_triangle(
            &mut fb,
            &cam,
            [[0.0, 0.0, 0.0], [10.0, 0.0, 0.0], [0.0, 0.0, 10.0]],
            [0.0, 1.0, 0.0],
            [1.0, 1.0, 1.0],
        );
        let covered_floor = fb.covered_pixels();
        assert!(covered_floor > 100, "covered {covered_floor}");

        // A smaller triangle *above* the floor (closer to the top-down camera)
        // must overwrite; one below must not.
        draw_triangle(
            &mut fb,
            &cam,
            [[1.0, 2.0, 1.0], [3.0, 2.0, 1.0], [1.0, 2.0, 3.0]],
            [0.0, 1.0, 0.0],
            [1.0, 0.0, 0.0],
        );
        let has_red = (0..32).any(|y| {
            (0..32).any(|x| {
                let p = fb.pixel(x, y);
                p[0] > 0.3 && p[1] < 0.2
            })
        });
        assert!(has_red, "the elevated triangle must be visible");
    }

    #[test]
    fn degenerate_and_behind_camera_triangles_are_skipped() {
        let cam = Camera::orbit(10.0, 0.0);
        let mut fb = Framebuffer::new(16, 16);
        // Degenerate (zero area).
        draw_triangle(
            &mut fb,
            &cam,
            [[1.0, 0.0, 1.0]; 3],
            [0.0, 1.0, 0.0],
            [1.0; 3],
        );
        assert_eq!(fb.covered_pixels(), 0);
        // Behind the camera.
        let behind = [cam.eye[0] + 50.0, cam.eye[1], cam.eye[2]];
        draw_triangle(
            &mut fb,
            &cam,
            [behind, behind, behind],
            [0.0, 1.0, 0.0],
            [1.0; 3],
        );
        assert_eq!(fb.covered_pixels(), 0);
    }

    #[test]
    fn shading_darkens_faces_pointing_away_from_the_light() {
        let cam = Camera::top_down(4.0);
        let mut up = Framebuffer::new(16, 16);
        let mut down = Framebuffer::new(16, 16);
        let verts = [[0.0, 0.0, 0.0], [4.0, 0.0, 0.0], [0.0, 0.0, 4.0]];
        draw_triangle(&mut up, &cam, verts, [0.0, 1.0, 0.0], [1.0; 3]);
        draw_triangle(&mut down, &cam, verts, [0.0, -1.0, 0.0], [1.0; 3]);
        let brightness = |fb: &Framebuffer| -> f64 {
            let mut total = 0.0;
            for y in 0..16 {
                for x in 0..16 {
                    total += fb.pixel(x, y)[1];
                }
            }
            total
        };
        assert!(brightness(&up) > brightness(&down));
        assert!(brightness(&down) > 0.0, "ambient keeps back faces visible");
    }
}
