//! Property tests for the classroom broadcast hub's equivalence guarantee:
//! for ANY scenario, shard count and subscriber count, driving the stream
//! once through a [`Broadcaster`] delivers every subscriber — including one
//! joining at an arbitrary offset mid-broadcast — a window suffix that is
//! cell-for-cell identical to a serial `Pipeline::run` of the same seeded
//! scenario.

use proptest::prelude::*;
use tw_game::{BroadcastConfig, Broadcaster, StartOffset, Subscription};
use tw_ingest::{Pipeline, PipelineConfig, Scenario, WindowReport};

fn pipeline(scenario: Scenario, nodes: u32, seed: u64, shards: usize) -> Pipeline {
    let config = PipelineConfig {
        window_us: 50_000,
        batch_size: 2_048,
        shard_count: shards,
        reorder_horizon_us: 0,
        ..Default::default()
    };
    Pipeline::new(scenario.source(nodes, seed), config)
}

fn arb_scenario() -> impl Strategy<Value = Scenario> {
    (0usize..Scenario::all().len()).prop_map(|i| Scenario::all()[i])
}

/// The received suffix must equal the serial reference from `start` on,
/// cell-for-cell (`elapsed` is wall-clock and excluded; everything else in
/// the stats is deterministic per seed).
fn assert_suffix(
    reference: &[WindowReport],
    subscription: &Subscription,
    start: usize,
) -> Result<(), TestCaseError> {
    let received = subscription.drain();
    let expected = &reference[start.min(reference.len())..];
    prop_assert_eq!(
        received.len(),
        expected.len(),
        "subscriber from window {} got the wrong window count",
        start
    );
    for (reference, received) in expected.iter().zip(&received) {
        prop_assert_eq!(&reference.matrix, &received.matrix);
        prop_assert_eq!(reference.stats.window_index, received.stats.window_index);
        prop_assert_eq!(reference.stats.events, received.stats.events);
        prop_assert_eq!(reference.stats.packets, received.stats.packets);
        prop_assert_eq!(reference.stats.nnz, received.stats.nnz);
        prop_assert_eq!(reference.stats.dropped_late, received.stats.dropped_late);
    }
    prop_assert!(
        subscription.recv().is_none(),
        "the subscription must be closed once drained"
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// N >= 8 on-time subscribers plus one late joiner at a random offset
    /// all observe the serial stream (the late joiner: its suffix), for
    /// arbitrary scenario/shard/subscriber counts.
    #[test]
    fn every_subscriber_observes_the_serial_stream(
        scenario in arb_scenario(),
        nodes in 40u32..140,
        seed in any::<u64>(),
        shards in 1usize..5,
        windows in 2usize..6,
        subscribers in 8usize..13,
        late_join in 0usize..6,
    ) {
        // Serial reference: one pull-based run, no broadcast involved.
        let reference = pipeline(scenario, nodes, seed, shards).run(windows);
        prop_assert_eq!(reference.len(), windows, "scenario sources are unbounded");

        // Broadcast run over an identically-seeded pipeline. Capacities are
        // sized so nothing can drop: equivalence, not lag, is under test.
        let mut caster = Broadcaster::new(BroadcastConfig {
            channel_capacity: windows.max(1),
            ring_capacity: windows.max(1),
        });
        let on_time: Vec<Subscription> = (0..subscribers)
            .map(|_| caster.subscribe(StartOffset::Origin))
            .collect();

        // Broadcast the first `late_at` windows, then join late mid-stream.
        let late_at = late_join.min(windows);
        let mut stream = pipeline(scenario, nodes, seed, shards);
        for _ in 0..late_at {
            prop_assert!(caster.step(&mut stream).unwrap().is_some());
        }
        let late = caster.subscribe(StartOffset::Window(late_at as u64));
        while caster.handle().windows_broadcast() < windows as u64 {
            prop_assert!(caster.step(&mut stream).unwrap().is_some());
        }
        let summary = caster.close();
        prop_assert_eq!(summary.windows, windows as u64);
        prop_assert_eq!(summary.subscribers, subscribers + 1);

        for subscription in &on_time {
            assert_suffix(&reference, subscription, 0)?;
            prop_assert_eq!(subscription.delivered(), windows as u64);
            prop_assert_eq!(subscription.dropped(), 0);
            prop_assert_eq!(subscription.missed(), 0);
        }
        // The late joiner caught up from the ring: the identical suffix.
        assert_suffix(&reference, &late, late_at)?;
        prop_assert_eq!(late.missed(), 0, "the ring held every broadcast window");
    }

    /// With a ring smaller than the head start, the late joiner still gets a
    /// contiguous, cell-identical suffix — and the head windows it can no
    /// longer receive are accounted as missed, never silently skipped.
    #[test]
    fn small_rings_account_for_missed_windows(
        scenario in arb_scenario(),
        nodes in 40u32..100,
        seed in any::<u64>(),
        windows in 3usize..6,
        ring in 1usize..3,
    ) {
        let reference = pipeline(scenario, nodes, seed, 2).run(windows);
        let mut caster = Broadcaster::new(BroadcastConfig {
            channel_capacity: windows,
            ring_capacity: ring,
        });
        let mut stream = pipeline(scenario, nodes, seed, 2);
        // Broadcast everything, then join asking for the origin.
        for _ in 0..windows {
            prop_assert!(caster.step(&mut stream).unwrap().is_some());
        }
        let sub = caster.subscribe(StartOffset::Origin);
        caster.close();
        let ring_start = windows - ring.min(windows);
        assert_suffix(&reference, &sub, ring_start)?;
        prop_assert_eq!(sub.missed(), ring_start as u64);
    }
}
