//! # tw-game
//!
//! The Traffic Warehouse game itself, assembled on top of the substrate
//! crates: the stylized shipping warehouse where "each entry in the traffic
//! matrix is represented as a grid of shipping pallets on the warehouse floor
//! that can be loaded with boxes (packets) to be shipped".
//!
//! * [`warehouse`] — builds the scene tree for a learning module (floor,
//!   pallets, boxes, axis labels, data node, camera) and the corresponding
//!   render scene;
//! * [`controller`] — the native port of the paper's "Pallet and label
//!   controller" GDScript (ready-time label assignment, pallet color toggle);
//! * [`view`] — the 2-D/3-D view state driven by the spacebar and Q/E keys;
//! * [`level`] — one loaded module: scene + controller + view + question;
//! * [`training`] — the built-in training level (paper Fig. 5);
//! * [`live`] — live ingest windows coarsened onto the warehouse floor
//!   (the scene re-pallets per tumbling window);
//! * [`broadcast`] — the classroom hub: one
//!   [`WindowStream`](tw_ingest::WindowStream) driven once and fanned out to
//!   N subscribed sessions over bounded channels, with late-joiner catch-up
//!   and per-subscriber lag accounting;
//! * [`session`] — the game state machine walking a module bundle;
//! * [`telemetry`] — the event stream used for the future-work outcome
//!   measurement the paper calls for (bounded, drop-oldest).

pub mod broadcast;
pub mod controller;
pub mod level;
pub mod live;
pub mod session;
pub mod telemetry;
pub mod training;
pub mod view;
pub mod warehouse;

pub use broadcast::{
    BroadcastConfig, BroadcastHandle, BroadcastHub, BroadcastSummary, Broadcaster, CatchupRewrite,
    HubHandle, HubSubscription, RosterTotals, StartOffset, SubscriberReport, Subscription,
};
pub use controller::PalletLabelController;
pub use level::Level;
pub use live::{coarsen_window, LiveWarehouse};
pub use session::{GamePhase, GameSession};
pub use telemetry::{TelemetryEvent, TelemetryHub, DEFAULT_TELEMETRY_CAPACITY};
pub use training::{TrainingLevel, TrainingStep};
pub use view::{ViewMode, ViewState};
pub use warehouse::WarehouseScene;
