//! Classroom broadcast serving: one window stream fanned out to many
//! sessions.
//!
//! The paper's premise is a *classroom* inspecting the same traffic-matrix
//! scenario together. Before this module, one [`Pipeline`] fed exactly one
//! consumer via pull-based `next_window()`; the [`Broadcaster`] inverts that
//! seam: it drives any [`WindowStream`] **once** and pushes each
//! [`WindowReport`] — wrapped in an [`Arc`], so fan-out cost is a pointer
//! clone per student, not a matrix copy — over bounded crossbeam channels to
//! every subscribed session.
//!
//! * **Late joiners** catch up from a bounded ring of the most recent
//!   windows: a student connecting mid-scenario receives the ring suffix
//!   from their requested offset immediately, and anything older than the
//!   ring is counted as `missed` rather than silently skipped.
//! * **Slow consumers** never stall the class: when a subscriber's bounded
//!   channel is full, that window is dropped *for that subscriber only* and
//!   counted (`dropped`), with a [`TelemetryEvent::SubscriberLagged`] event
//!   for the educator dashboard.
//! * **Detach is clean**: dropping a [`Subscription`] disconnects its
//!   channel; the broadcaster notices on the next delivery, retires the
//!   slot, and reports its final counters.
//!
//! The hub is deliberately synchronous and lock-based (one mutex around the
//! subscriber table and ring): broadcasting is O(subscribers) pointer sends
//! per window, and every blocking wait lives in the channels, not the lock.
//!
//! The hub is generic over its payload: [`BroadcastHub<T>`] fans out any
//! cheaply clonable item tagged with a window index. [`Broadcaster`] (the
//! in-process classroom, `T = Arc<WindowReport>`) is one instantiation; the
//! network serving tier in `tw-serve` is another (`T = Arc<[u8]>`, windows
//! encoded **once** and the same frame bytes fanned out to every TCP
//! connection). Both share the ring catch-up, lag-drop and roster
//! accounting verified here.

use crate::telemetry::{TelemetryEvent, TelemetryHub};
use crossbeam::channel::{bounded, Receiver, Sender, TrySendError};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use tw_ingest::{StreamError, WindowReport, WindowStream};
use tw_metrics::{Counter, Gauge, Histogram, MetricsRegistry, StageTimer};

/// Pre-resolved metric handles for the fan-out stage, all under the
/// `broadcast.` prefix. `None` on the hub disables every update.
#[derive(Clone, Debug)]
struct HubMetrics {
    /// `broadcast.windows`: payloads broadcast so far.
    windows: Counter,
    /// `broadcast.delivered` / `.dropped` / `.missed`: roster-wide totals,
    /// updated at the same points as the per-subscriber shared counters.
    delivered: Counter,
    dropped: Counter,
    missed: Counter,
    /// `broadcast.fanout_ns`: time to enqueue one window to every subscriber.
    fanout_ns: Histogram,
    /// `broadcast.queue_depth`: per-subscriber channel occupancy, sampled
    /// after each fan-out (one observation per subscriber per window).
    queue_depth: Histogram,
    /// `broadcast.ring_occupancy`: catch-up ring fill level.
    ring_occupancy: Gauge,
    /// `broadcast.subscribers`: currently attached subscribers.
    subscribers: Gauge,
}

impl HubMetrics {
    fn new(registry: &MetricsRegistry) -> Self {
        HubMetrics {
            windows: registry.counter("broadcast.windows"),
            delivered: registry.counter("broadcast.delivered"),
            dropped: registry.counter("broadcast.dropped"),
            missed: registry.counter("broadcast.missed"),
            fanout_ns: registry.histogram("broadcast.fanout_ns"),
            queue_depth: registry.histogram("broadcast.queue_depth"),
            ring_occupancy: registry.gauge("broadcast.ring_occupancy"),
            subscribers: registry.gauge("broadcast.subscribers"),
        }
    }
}

/// Tuning knobs for a [`Broadcaster`].
#[derive(Debug, Clone)]
pub struct BroadcastConfig {
    /// Bounded depth of each subscriber's window channel; a subscriber more
    /// than this many windows behind starts dropping (and counting) them.
    pub channel_capacity: usize,
    /// Recent windows retained for late-joiner catch-up.
    pub ring_capacity: usize,
}

impl Default for BroadcastConfig {
    fn default() -> Self {
        BroadcastConfig {
            channel_capacity: 64,
            ring_capacity: 32,
        }
    }
}

/// Where in the stream a new subscriber wants to start.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StartOffset {
    /// From the first window of the scenario (windows that already left the
    /// catch-up ring are counted as missed).
    Origin,
    /// From the next window broadcast after subscribing.
    Live,
    /// From the given window index, catching up from the ring where possible.
    Window(u64),
}

/// Per-subscriber counters, shared between the hub and the [`Subscription`].
#[derive(Debug, Default)]
struct SharedCounters {
    delivered: AtomicU64,
    dropped: AtomicU64,
    missed: AtomicU64,
}

/// One subscriber's final accounting, as reported in a [`BroadcastSummary`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubscriberReport {
    /// The subscriber's id (assigned in subscription order from 0).
    pub id: usize,
    /// The window index the subscriber asked to start from.
    pub start_window: u64,
    /// Windows enqueued to the subscriber's channel.
    pub delivered: u64,
    /// Windows dropped because the subscriber's channel was full.
    pub dropped: u64,
    /// Wanted windows that had already left the catch-up ring at join time.
    pub missed: u64,
    /// Whether the subscriber detached before the broadcast closed (its
    /// receiving half was dropped mid-broadcast). Counters freeze at the
    /// detach, so window conservation is only guaranteed for subscribers
    /// that stayed to the end.
    pub left_early: bool,
}

impl SubscriberReport {
    /// Every window this subscriber accounted for, one way or another:
    /// `delivered + dropped + missed`. For a subscriber that stayed to the
    /// end this equals the windows broadcast past its start offset — the
    /// conservation law [`BroadcastSummary::conservation_error`] checks.
    pub fn accounted(&self) -> u64 {
        self.delivered + self.dropped + self.missed
    }
}

/// Roster-wide totals over every subscriber of a broadcast, summed in one
/// place so the classroom CLI, the serving tier and tests agree on the
/// arithmetic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RosterTotals {
    /// Windows enqueued across all subscribers.
    pub delivered: u64,
    /// Windows dropped (full channel) across all subscribers.
    pub dropped: u64,
    /// Windows missed (left the ring before join) across all subscribers.
    pub missed: u64,
}

/// The outcome of a finished broadcast.
#[derive(Debug, Clone)]
pub struct BroadcastSummary {
    /// Windows broadcast before the stream ended (or the cap was reached).
    pub windows: u64,
    /// Subscribers that ever joined.
    pub subscribers: usize,
    /// Final per-subscriber accounting, in subscription order.
    pub reports: Vec<SubscriberReport>,
}

impl BroadcastSummary {
    /// Sum the per-subscriber counters into roster-wide totals.
    pub fn totals(&self) -> RosterTotals {
        let mut totals = RosterTotals::default();
        for r in &self.reports {
            totals.delivered += r.delivered;
            totals.dropped += r.dropped;
            totals.missed += r.missed;
        }
        totals
    }

    /// Check the conservation law: every subscriber that stayed to the end
    /// accounted for exactly the windows broadcast past its start offset
    /// (`delivered + dropped + missed == windows - start_window`). Returns a
    /// description of the first violation, or `None` when the books balance.
    /// Early leavers are skipped — their counters froze at the detach.
    pub fn conservation_error(&self) -> Option<String> {
        for r in &self.reports {
            if r.left_early {
                continue;
            }
            let wanted = self.windows.saturating_sub(r.start_window);
            if r.accounted() != wanted {
                return Some(format!(
                    "subscriber {} accounted {} window(s) (delivered {} + dropped {} + \
                     missed {}) but the broadcast served {} past its start w{}",
                    r.id,
                    r.accounted(),
                    r.delivered,
                    r.dropped,
                    r.missed,
                    wanted,
                    r.start_window
                ));
            }
        }
        None
    }
}

struct Slot<T> {
    id: usize,
    start_window: u64,
    sender: Sender<T>,
    counters: Arc<SharedCounters>,
    detached: bool,
}

impl<T> Slot<T> {
    fn report(&self, left_early: bool) -> SubscriberReport {
        SubscriberReport {
            id: self.id,
            start_window: self.start_window,
            delivered: self.counters.delivered.load(Ordering::Relaxed),
            dropped: self.counters.dropped.load(Ordering::Relaxed),
            missed: self.counters.missed.load(Ordering::Relaxed),
            left_early,
        }
    }
}

/// Rewrites the catch-up sequence a joining subscriber receives from the
/// ring. Called with the ring's `(window index, payload)` entries (oldest
/// first) and the join's requested start window; returns the entries to
/// deliver instead. The serving tier uses this to materialize a key frame
/// when the ring holds delta-encoded windows a joiner could not decode
/// mid-chain. Contract: returned indices are strictly increasing, all
/// `>= start_window`, and form a suffix of the broadcast stream — the hub
/// counts everything between `start_window` and the first returned index
/// as missed, exactly like ring fall-off on the default path.
pub type CatchupRewrite<T> = Arc<dyn Fn(&[(u64, T)], u64) -> Vec<(u64, T)> + Send + Sync>;

struct HubState<T: Clone> {
    config: BroadcastConfig,
    telemetry: Option<TelemetryHub>,
    metrics: Option<HubMetrics>,
    /// Optional join-time rewrite of the ring suffix (see [`CatchupRewrite`]).
    catchup_rewrite: Option<CatchupRewrite<T>>,
    /// Recent payloads with the window index each one carries. The index
    /// rides alongside the payload because an encoded frame (unlike a
    /// `WindowReport`) cannot answer for its own position in the stream.
    ring: VecDeque<(u64, T)>,
    /// The index the next broadcast window will carry (== windows broadcast
    /// so far, since window indices are consecutive from 0).
    next_index: u64,
    closed: bool,
    next_id: usize,
    active: Vec<Slot<T>>,
    /// Reports of subscribers that already detached.
    finished: Vec<SubscriberReport>,
}

impl<T: Clone> HubState<T> {
    fn publish(&self, event: TelemetryEvent) {
        if let Some(hub) = &self.telemetry {
            hub.publish(event);
        }
    }

    /// First window index the ring still holds (= `next_index` when empty).
    fn ring_start(&self) -> u64 {
        self.ring
            .front()
            .map(|(index, _)| *index)
            .unwrap_or(self.next_index)
    }

    fn subscribe(&mut self, offset: StartOffset) -> HubSubscription<T> {
        let id = self.next_id;
        self.next_id += 1;
        let start_window = match offset {
            StartOffset::Origin => 0,
            StartOffset::Live => self.next_index,
            StartOffset::Window(index) => index,
        };
        let (sender, receiver) = bounded(self.config.channel_capacity);
        let counters = Arc::new(SharedCounters::default());
        // With a rewrite hook, the hook decides the catch-up sequence (and
        // thereby what counts as missed); materialize it before the slot so
        // the ring can be borrowed contiguously.
        let rewritten = self
            .catchup_rewrite
            .clone()
            .map(|rewrite| rewrite(self.ring.make_contiguous(), start_window));
        // Windows the subscriber wanted but that already left the ring (or
        // that the rewrite declined to reconstruct).
        let missed = match &rewritten {
            None => self.ring_start().saturating_sub(start_window),
            Some(entries) => entries
                .first()
                .map(|(index, _)| index.saturating_sub(start_window))
                .unwrap_or_else(|| self.next_index.saturating_sub(start_window)),
        };
        counters.missed.store(missed, Ordering::Relaxed);
        if let Some(m) = &self.metrics {
            m.missed.add(missed);
        }
        let mut slot = Slot {
            id,
            start_window,
            sender,
            counters: counters.clone(),
            detached: false,
        };
        // Catch up from the ring: everything at or past the requested start.
        let mut caught_up = 0u64;
        match &rewritten {
            None => {
                for (index, item) in self.ring.iter().filter(|(i, _)| *i >= start_window) {
                    deliver(
                        &mut slot,
                        *index,
                        item,
                        self.telemetry.as_ref(),
                        self.metrics.as_ref(),
                    );
                    caught_up += 1;
                }
            }
            Some(entries) => {
                for (index, item) in entries {
                    deliver(
                        &mut slot,
                        *index,
                        item,
                        self.telemetry.as_ref(),
                        self.metrics.as_ref(),
                    );
                    caught_up += 1;
                }
            }
        }
        self.publish(TelemetryEvent::SubscriberJoined {
            subscriber: id,
            start_window,
            caught_up,
            missed,
        });
        if self.closed || slot.detached {
            // Joining a finished broadcast still yields the ring suffix; the
            // slot is retired immediately so its sender drops and the
            // subscription sees disconnect after draining.
            self.finished.push(slot.report(slot.detached));
        } else {
            self.active.push(slot);
        }
        if let Some(m) = &self.metrics {
            m.subscribers.set(self.active.len() as i64);
        }
        HubSubscription {
            id,
            start_window,
            receiver,
            counters,
        }
    }

    fn broadcast(&mut self, index: u64, item: T) -> u64 {
        self.ring.push_back((index, item.clone()));
        while self.ring.len() > self.config.ring_capacity {
            self.ring.pop_front();
        }
        let telemetry = self.telemetry.clone();
        let metrics = self.metrics.clone();
        {
            let _fanout = StageTimer::start(metrics.as_ref().map(|m| &m.fanout_ns));
            for slot in &mut self.active {
                // A subscriber that asked to start in the future receives
                // nothing (and counts nothing) until its start window arrives.
                if index >= slot.start_window {
                    deliver(slot, index, &item, telemetry.as_ref(), metrics.as_ref());
                }
            }
        }
        if let Some(m) = &metrics {
            m.windows.inc();
            m.ring_occupancy.set(self.ring.len() as i64);
            // One queue-depth sample per subscriber per window: how far each
            // consumer is running behind right after the fan-out.
            for slot in &self.active {
                m.queue_depth.observe(slot.sender.len() as u64);
            }
        }
        self.retire_detached();
        if let Some(m) = &metrics {
            m.subscribers.set(self.active.len() as i64);
        }
        self.next_index = index + 1;
        index
    }

    fn retire_detached(&mut self) {
        if self.active.iter().any(|s| s.detached) {
            let slots = std::mem::take(&mut self.active);
            for slot in slots {
                if slot.detached {
                    let report = slot.report(true);
                    self.publish(TelemetryEvent::SubscriberDetached {
                        subscriber: report.id,
                        delivered: report.delivered,
                        dropped: report.dropped,
                    });
                    self.finished.push(report);
                } else {
                    self.active.push(slot);
                }
            }
        }
    }

    fn close(&mut self) -> BroadcastSummary {
        if !self.closed {
            self.closed = true;
            // Dropping each sender disconnects its channel: subscribers
            // drain what is buffered, then see the end of the stream. Every
            // still-attached subscriber detaches here, and says so on
            // telemetry just like an early leaver would.
            let slots = std::mem::take(&mut self.active);
            for slot in slots {
                let report = slot.report(slot.detached);
                self.publish(TelemetryEvent::SubscriberDetached {
                    subscriber: report.id,
                    delivered: report.delivered,
                    dropped: report.dropped,
                });
                self.finished.push(report);
            }
            self.publish(TelemetryEvent::BroadcastClosed {
                windows: self.next_index,
                subscribers: self.next_id,
            });
            if let Some(m) = &self.metrics {
                m.subscribers.set(0);
            }
        }
        let mut reports = self.finished.clone();
        reports.sort_by_key(|r| r.id);
        BroadcastSummary {
            windows: self.next_index,
            subscribers: self.next_id,
            reports,
        }
    }
}

/// Enqueue one window to one subscriber, with lag accounting.
fn deliver<T: Clone>(
    slot: &mut Slot<T>,
    index: u64,
    item: &T,
    telemetry: Option<&TelemetryHub>,
    metrics: Option<&HubMetrics>,
) {
    if slot.detached {
        return;
    }
    match slot.sender.try_send(item.clone()) {
        Ok(()) => {
            slot.counters.delivered.fetch_add(1, Ordering::Relaxed);
            if let Some(m) = metrics {
                m.delivered.inc();
            }
        }
        Err(TrySendError::Full(_)) => {
            let dropped = slot.counters.dropped.fetch_add(1, Ordering::Relaxed) + 1;
            if let Some(m) = metrics {
                m.dropped.inc();
            }
            if let Some(hub) = telemetry {
                hub.publish(TelemetryEvent::SubscriberLagged {
                    subscriber: slot.id,
                    window_index: index,
                    dropped,
                });
            }
        }
        Err(TrySendError::Disconnected(_)) => {
            slot.detached = true;
        }
    }
}

/// A handle for subscribing to (and observing) a broadcast from any thread.
pub struct HubHandle<T: Clone> {
    state: Arc<Mutex<HubState<T>>>,
}

/// The in-process classroom handle (`T = Arc<WindowReport>`).
pub type BroadcastHandle = HubHandle<Arc<WindowReport>>;

impl<T: Clone> Clone for HubHandle<T> {
    fn clone(&self) -> Self {
        HubHandle {
            state: self.state.clone(),
        }
    }
}

impl<T: Clone> HubHandle<T> {
    fn lock(&self) -> MutexGuard<'_, HubState<T>> {
        match self.state.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Subscribe a new consumer starting at `offset`. Works before, during
    /// and after the broadcast; ring catch-up is delivered immediately.
    pub fn subscribe(&self, offset: StartOffset) -> HubSubscription<T> {
        self.lock().subscribe(offset)
    }

    /// Windows broadcast so far.
    pub fn windows_broadcast(&self) -> u64 {
        self.lock().next_index
    }

    /// Whether the broadcast has closed.
    pub fn is_closed(&self) -> bool {
        self.lock().closed
    }

    /// Currently attached subscribers.
    pub fn subscriber_count(&self) -> usize {
        self.lock().active.len()
    }

    /// Subscribers that ever joined (attached or not).
    pub fn subscribers_joined(&self) -> usize {
        self.lock().next_id
    }
}

impl<T: Clone> std::fmt::Debug for HubHandle<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("HubHandle { .. }")
    }
}

/// The hub that fans one indexed payload stream out to N subscribers.
///
/// `T` is whatever one broadcast window costs a pointer clone to share:
/// `Arc<WindowReport>` for the in-process classroom (see [`Broadcaster`]),
/// `Arc<[u8]>` for the encoded wire frames of the `tw-serve` network tier.
pub struct BroadcastHub<T: Clone> {
    state: Arc<Mutex<HubState<T>>>,
}

/// The hub that drives one [`WindowStream`] and fans it out to N subscribers.
pub type Broadcaster = BroadcastHub<Arc<WindowReport>>;

impl<T: Clone> BroadcastHub<T> {
    /// A hub with the given configuration and no telemetry.
    pub fn new(config: BroadcastConfig) -> Self {
        Self::build(config, None, None)
    }

    /// A hub publishing subscriber lifecycle and lag events to the given
    /// telemetry hub.
    pub fn with_telemetry(config: BroadcastConfig, telemetry: TelemetryHub) -> Self {
        Self::build(config, Some(telemetry), None)
    }

    /// A hub with optional telemetry *and* optional metrics: fan-out timing,
    /// roster-wide delivered/dropped/missed counters, queue-depth samples,
    /// and ring/subscriber gauges land on `registry` under `broadcast.*`.
    pub fn with_instrumentation(
        config: BroadcastConfig,
        telemetry: Option<TelemetryHub>,
        registry: Option<&MetricsRegistry>,
    ) -> Self {
        Self::build(config, telemetry, registry)
    }

    fn build(
        config: BroadcastConfig,
        telemetry: Option<TelemetryHub>,
        registry: Option<&MetricsRegistry>,
    ) -> Self {
        assert!(
            config.channel_capacity >= 1,
            "subscriber channels need capacity"
        );
        assert!(
            config.ring_capacity >= 1,
            "the catch-up ring needs capacity"
        );
        BroadcastHub {
            state: Arc::new(Mutex::new(HubState {
                config,
                telemetry,
                metrics: registry.map(HubMetrics::new),
                catchup_rewrite: None,
                ring: VecDeque::new(),
                next_index: 0,
                closed: false,
                next_id: 0,
                active: Vec::new(),
                finished: Vec::new(),
            })),
        }
    }

    /// A clonable handle for subscribing from other threads.
    pub fn handle(&self) -> HubHandle<T> {
        HubHandle {
            state: self.state.clone(),
        }
    }

    /// Install a join-time rewrite of the catch-up ring suffix (see
    /// [`CatchupRewrite`]). Without one, joiners receive the raw ring
    /// entries at or past their start window — the behavior every
    /// full-window broadcast keeps. Install before subscribers join whose
    /// catch-up should be rewritten; joins already served are unaffected.
    pub fn set_catchup_rewrite(
        &self,
        rewrite: impl Fn(&[(u64, T)], u64) -> Vec<(u64, T)> + Send + Sync + 'static,
    ) {
        self.lock().catchup_rewrite = Some(Arc::new(rewrite));
    }

    /// Subscribe a consumer (convenience for [`HubHandle::subscribe`]).
    pub fn subscribe(&self, offset: StartOffset) -> HubSubscription<T> {
        self.handle().subscribe(offset)
    }

    /// Broadcast one payload carrying the given window index.
    ///
    /// Indices must be consecutive from 0 (the contract every
    /// [`WindowStream`] already honors) for missed/ring accounting to be
    /// exact. Publishing on a closed hub is a no-op. Returns the index.
    pub fn publish_window(&self, index: u64, item: T) -> u64 {
        let mut state = self.lock();
        if state.closed {
            return index;
        }
        state.broadcast(index, item)
    }

    /// Close the broadcast: every subscriber channel disconnects once
    /// drained. Idempotent; returns the (final) summary.
    pub fn close(&mut self) -> BroadcastSummary {
        self.lock().close()
    }

    fn lock(&self) -> MutexGuard<'_, HubState<T>> {
        match self.state.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl Broadcaster {
    /// Pull one window from the stream and broadcast it; `Ok(None)` once the
    /// stream is exhausted (which closes the broadcast) or the broadcast is
    /// already closed. Returns the broadcast window's index otherwise.
    pub fn step(&mut self, stream: &mut dyn WindowStream) -> Result<Option<u64>, StreamError> {
        if self.handle().is_closed() {
            return Ok(None);
        }
        match stream.next_window() {
            Ok(Some(report)) => {
                let index = report.stats.window_index;
                let mut state = self.lock();
                Ok(Some(state.broadcast(index, Arc::new(report))))
            }
            Ok(None) => {
                self.close();
                Ok(None)
            }
            Err(e) => {
                // Close so blocked subscribers unblock instead of hanging on
                // a broadcast that will never produce another window.
                self.close();
                Err(e)
            }
        }
    }

    /// Drive the stream to exhaustion (or `max_windows`), then close the
    /// broadcast and return the final per-subscriber accounting.
    pub fn run(
        &mut self,
        stream: &mut dyn WindowStream,
        max_windows: usize,
    ) -> Result<BroadcastSummary, StreamError> {
        let mut broadcast = 0usize;
        while broadcast < max_windows {
            match self.step(stream)? {
                Some(_) => broadcast += 1,
                None => break,
            }
        }
        Ok(self.close())
    }
}

/// Dropping the hub closes it unconditionally (idempotent), so subscribers
/// blocked in `recv()` always unblock — even when a panic or an early return
/// skips the explicit [`BroadcastHub::close`] (surviving [`HubHandle`]
/// clones keep the channel senders alive otherwise).
impl<T: Clone> Drop for BroadcastHub<T> {
    fn drop(&mut self) {
        self.lock().close();
    }
}

impl<T: Clone> std::fmt::Debug for BroadcastHub<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = self.lock();
        f.debug_struct("BroadcastHub")
            .field("windows", &state.next_index)
            .field("subscribers", &state.active.len())
            .field("closed", &state.closed)
            .finish()
    }
}

/// One subscriber's receiving end of a broadcast.
///
/// Dropping the subscription detaches it: the hub retires the slot on its
/// next delivery attempt. Counters are shared with the hub, so they remain
/// readable (and final) after the broadcast closes.
#[derive(Debug)]
pub struct HubSubscription<T> {
    id: usize,
    start_window: u64,
    receiver: Receiver<T>,
    counters: Arc<SharedCounters>,
}

/// The in-process classroom subscription (`T = Arc<WindowReport>`).
pub type Subscription = HubSubscription<Arc<WindowReport>>;

impl<T> HubSubscription<T> {
    /// The subscriber id the hub assigned (subscription order from 0).
    pub fn id(&self) -> usize {
        self.id
    }

    /// The window index this subscription asked to start from.
    pub fn start_window(&self) -> u64 {
        self.start_window
    }

    /// Block until the next window arrives; `None` once the broadcast has
    /// closed and everything buffered has been received.
    pub fn recv(&self) -> Option<T> {
        self.receiver.recv().ok()
    }

    /// The next window, if one is already buffered.
    pub fn try_recv(&self) -> Option<T> {
        self.receiver.try_recv().ok()
    }

    /// Drain every currently buffered window.
    pub fn drain(&self) -> Vec<T> {
        let mut out = Vec::new();
        while let Some(report) = self.try_recv() {
            out.push(report);
        }
        out
    }

    /// Windows the hub enqueued to this subscription.
    pub fn delivered(&self) -> u64 {
        self.counters.delivered.load(Ordering::Relaxed)
    }

    /// Windows the hub dropped because this subscription's channel was full.
    pub fn dropped(&self) -> u64 {
        self.counters.dropped.load(Ordering::Relaxed)
    }

    /// Wanted windows that had already left the ring when this subscription
    /// joined.
    pub fn missed(&self) -> u64 {
        self.counters.missed.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tw_ingest::{Pipeline, PipelineConfig, Scenario};

    fn ddos_pipeline(windows_us: u64) -> Pipeline {
        let config = PipelineConfig {
            window_us: windows_us,
            batch_size: 4_096,
            shard_count: 2,
            reorder_horizon_us: 0,
            ..Default::default()
        };
        Pipeline::new(Scenario::Ddos.source(128, 7), config)
    }

    fn roomy() -> BroadcastConfig {
        BroadcastConfig {
            channel_capacity: 64,
            ring_capacity: 64,
        }
    }

    #[test]
    fn every_subscriber_sees_the_identical_stream() {
        let mut reference = ddos_pipeline(50_000);
        let reference = reference.run(4);

        let mut caster = Broadcaster::new(roomy());
        let subs: Vec<Subscription> = (0..3)
            .map(|_| caster.subscribe(StartOffset::Origin))
            .collect();
        let mut stream = ddos_pipeline(50_000);
        let summary = caster.run(&mut stream, 4).unwrap();
        assert_eq!(summary.windows, 4);
        assert_eq!(summary.subscribers, 3);
        for sub in &subs {
            let received = sub.drain();
            assert_eq!(received.len(), 4);
            assert_eq!(sub.delivered(), 4);
            assert_eq!(sub.dropped(), 0);
            assert_eq!(sub.missed(), 0);
            for (reference, received) in reference.iter().zip(&received) {
                assert_eq!(reference.matrix, received.matrix, "cell-for-cell");
                // Everything but the wall-clock elapsed is deterministic
                // across two runs of the same seeded scenario.
                assert_eq!(reference.stats.window_index, received.stats.window_index);
                assert_eq!(reference.stats.events, received.stats.events);
                assert_eq!(reference.stats.packets, received.stats.packets);
                assert_eq!(reference.stats.nnz, received.stats.nnz);
            }
            assert!(sub.recv().is_none(), "closed after drain");
        }
        assert_eq!(summary.conservation_error(), None);
    }

    #[test]
    fn late_joiner_catches_up_from_the_ring() {
        let mut stream = ddos_pipeline(50_000);
        let mut caster = Broadcaster::new(roomy());
        let early = caster.subscribe(StartOffset::Origin);
        // Broadcast two windows, then join late asking for window 1.
        caster.step(&mut stream).unwrap();
        caster.step(&mut stream).unwrap();
        let late = caster.subscribe(StartOffset::Window(1));
        let live = caster.subscribe(StartOffset::Live);
        caster.step(&mut stream).unwrap();
        caster.close();

        let early: Vec<u64> = early.drain().iter().map(|r| r.stats.window_index).collect();
        let late_seen: Vec<u64> = late.drain().iter().map(|r| r.stats.window_index).collect();
        let live_seen: Vec<u64> = live.drain().iter().map(|r| r.stats.window_index).collect();
        assert_eq!(early, vec![0, 1, 2]);
        assert_eq!(late_seen, vec![1, 2], "ring caught the late joiner up");
        assert_eq!(live_seen, vec![2], "live join sees only the future");
        assert_eq!(late.missed(), 0);
    }

    #[test]
    fn future_start_offsets_skip_earlier_windows() {
        let mut caster = Broadcaster::new(roomy());
        let sub = caster.subscribe(StartOffset::Window(2));
        let mut stream = ddos_pipeline(50_000);
        caster.run(&mut stream, 4).unwrap();
        let seen: Vec<u64> = sub.drain().iter().map(|r| r.stats.window_index).collect();
        assert_eq!(seen, vec![2, 3], "windows before the start are skipped");
        assert_eq!(sub.delivered(), 2);
        assert_eq!(sub.dropped(), 0, "skipped windows are not drops");
        assert_eq!(sub.missed(), 0, "nor misses");
    }

    #[test]
    fn windows_older_than_the_ring_are_counted_missed() {
        let mut stream = ddos_pipeline(50_000);
        let mut caster = Broadcaster::new(BroadcastConfig {
            channel_capacity: 8,
            ring_capacity: 2,
        });
        for _ in 0..4 {
            caster.step(&mut stream).unwrap();
        }
        // Ring now holds windows {2, 3}; an Origin joiner wanted 0..=3.
        let sub = caster.subscribe(StartOffset::Origin);
        let seen: Vec<u64> = sub.drain().iter().map(|r| r.stats.window_index).collect();
        assert_eq!(seen, vec![2, 3]);
        assert_eq!(sub.missed(), 2, "windows 0 and 1 already left the ring");
        caster.close();
    }

    #[test]
    fn slow_subscribers_drop_with_accounting_instead_of_stalling() {
        let telemetry = TelemetryHub::new();
        let mut caster = Broadcaster::with_telemetry(
            BroadcastConfig {
                channel_capacity: 2,
                ring_capacity: 8,
            },
            telemetry.clone(),
        );
        let slow = caster.subscribe(StartOffset::Origin);
        let mut stream = ddos_pipeline(50_000);
        let summary = caster.run(&mut stream, 5).unwrap();
        assert_eq!(summary.windows, 5);
        // Capacity 2 and nobody draining: 2 delivered, 3 dropped.
        assert_eq!(slow.delivered(), 2);
        assert_eq!(slow.dropped(), 3);
        assert_eq!(summary.reports[0].dropped, 3);
        let lag_events = telemetry
            .drain()
            .into_iter()
            .filter(|e| matches!(e, TelemetryEvent::SubscriberLagged { .. }))
            .count();
        assert_eq!(lag_events, 3, "every drop surfaced on telemetry");
        // The windows that did arrive are the oldest (head-of-line), in order.
        let seen: Vec<u64> = slow.drain().iter().map(|r| r.stats.window_index).collect();
        assert_eq!(seen, vec![0, 1]);
        // Drops still conserve: 2 delivered + 3 dropped == 5 windows.
        assert_eq!(summary.conservation_error(), None);
    }

    #[test]
    fn dropped_subscription_detaches_cleanly() {
        let telemetry = TelemetryHub::new();
        let mut caster = Broadcaster::with_telemetry(roomy(), telemetry.clone());
        let keep = caster.subscribe(StartOffset::Origin);
        let leave = caster.subscribe(StartOffset::Origin);
        let mut stream = ddos_pipeline(50_000);
        caster.step(&mut stream).unwrap();
        assert_eq!(caster.handle().subscriber_count(), 2);
        drop(leave);
        // The hub notices on the next delivery and retires the slot.
        caster.step(&mut stream).unwrap();
        assert_eq!(caster.handle().subscriber_count(), 1);
        let summary = caster.close();
        assert_eq!(summary.subscribers, 2);
        let detached = summary.reports.iter().find(|r| r.id == 1).unwrap();
        assert_eq!(detached.delivered, 1, "got window 0 before leaving");
        assert!(
            detached.left_early,
            "mid-broadcast detach is an early leave"
        );
        assert!(telemetry
            .drain()
            .iter()
            .any(|e| matches!(e, TelemetryEvent::SubscriberDetached { subscriber: 1, .. })));
        assert_eq!(keep.drain().len(), 2);
        let stayed = summary.reports.iter().find(|r| r.id == 0).unwrap();
        assert!(!stayed.left_early);
        // Conservation skips the early leaver but still holds for the class.
        assert_eq!(summary.conservation_error(), None);
    }

    #[test]
    fn subscribing_after_close_yields_the_ring_suffix_then_disconnect() {
        let mut caster = Broadcaster::new(roomy());
        let mut stream = ddos_pipeline(50_000);
        caster.run(&mut stream, 3).unwrap();
        assert!(caster.handle().is_closed());
        let sub = caster.subscribe(StartOffset::Window(1));
        let seen: Vec<u64> = sub.drain().iter().map(|r| r.stats.window_index).collect();
        assert_eq!(seen, vec![1, 2]);
        assert!(sub.recv().is_none());
    }

    #[test]
    fn threaded_consumers_all_receive_every_window() {
        let mut caster = Broadcaster::new(roomy());
        let subs: Vec<Subscription> = (0..8)
            .map(|_| caster.subscribe(StartOffset::Origin))
            .collect();
        let handle = caster.handle();
        std::thread::scope(|scope| {
            let consumers: Vec<_> = subs
                .into_iter()
                .map(|sub| {
                    scope.spawn(move || {
                        let mut indices = Vec::new();
                        while let Some(report) = sub.recv() {
                            indices.push(report.stats.window_index);
                        }
                        indices
                    })
                })
                .collect();
            let mut stream = ddos_pipeline(50_000);
            let summary = caster.run(&mut stream, 6).unwrap();
            assert_eq!(summary.windows, 6);
            for consumer in consumers {
                assert_eq!(consumer.join().unwrap(), vec![0, 1, 2, 3, 4, 5]);
            }
        });
        assert!(handle.is_closed());
        assert_eq!(handle.windows_broadcast(), 6);
    }

    #[test]
    fn telemetry_reports_joins_and_close() {
        let telemetry = TelemetryHub::new();
        let mut caster = Broadcaster::with_telemetry(roomy(), telemetry.clone());
        let _sub = caster.subscribe(StartOffset::Origin);
        let mut stream = ddos_pipeline(50_000);
        caster.run(&mut stream, 2).unwrap();
        let events = telemetry.drain();
        assert!(events.iter().any(|e| matches!(
            e,
            TelemetryEvent::SubscriberJoined {
                subscriber: 0,
                start_window: 0,
                ..
            }
        )));
        assert!(events.iter().any(|e| matches!(
            e,
            TelemetryEvent::BroadcastClosed {
                windows: 2,
                subscribers: 1
            }
        )));
        // A subscriber still attached at close detaches (and reports) too.
        assert!(events.iter().any(|e| matches!(
            e,
            TelemetryEvent::SubscriberDetached {
                subscriber: 0,
                delivered: 2,
                ..
            }
        )));
    }

    #[test]
    fn dropping_the_broadcaster_closes_the_hub() {
        let caster = Broadcaster::new(roomy());
        let sub = caster.subscribe(StartOffset::Origin);
        let handle = caster.handle();
        // No explicit close(): the Drop impl must unblock subscribers even
        // though `handle` keeps the hub state alive.
        drop(caster);
        assert!(handle.is_closed());
        assert!(sub.recv().is_none(), "recv unblocks on drop-close");
    }

    #[test]
    fn step_after_close_is_a_no_op() {
        let mut caster = Broadcaster::new(roomy());
        let mut stream = ddos_pipeline(50_000);
        caster.run(&mut stream, 1).unwrap();
        assert_eq!(caster.step(&mut stream).unwrap(), None);
        let again = caster.close();
        assert_eq!(again.windows, 1);
    }

    #[test]
    fn frame_payloads_fan_out_the_same_bytes_to_everyone() {
        // The serving-tier instantiation: encoded frames, shared by pointer.
        let mut hub: BroadcastHub<Arc<[u8]>> = BroadcastHub::new(roomy());
        let subs: Vec<HubSubscription<Arc<[u8]>>> =
            (0..3).map(|_| hub.subscribe(StartOffset::Origin)).collect();
        let frames: Vec<Arc<[u8]>> = (0u8..4).map(|i| Arc::from(vec![i; 8])).collect();
        for (i, frame) in frames.iter().enumerate() {
            hub.publish_window(i as u64, frame.clone());
        }
        let summary = hub.close();
        assert_eq!(summary.windows, 4);
        for sub in &subs {
            let received = sub.drain();
            assert_eq!(received.len(), 4);
            for (frame, got) in frames.iter().zip(&received) {
                assert!(Arc::ptr_eq(frame, got), "fan-out shares, never copies");
            }
        }
        assert_eq!(summary.conservation_error(), None);
    }

    #[test]
    fn frame_payload_lag_drop_is_deterministic() {
        // Nothing drains the channel, so capacity bounds delivery exactly:
        // the first `capacity` frames are delivered, every later one drops.
        let hub: BroadcastHub<Arc<[u8]>> = BroadcastHub::new(BroadcastConfig {
            channel_capacity: 1,
            ring_capacity: 8,
        });
        let stalled = hub.subscribe(StartOffset::Origin);
        for i in 0..5u64 {
            hub.publish_window(i, Arc::from(vec![0u8; 4]));
        }
        assert_eq!(stalled.delivered(), 1);
        assert_eq!(stalled.dropped(), 4);
    }

    #[test]
    fn publish_after_close_is_a_no_op() {
        let mut hub: BroadcastHub<Arc<[u8]>> = BroadcastHub::new(roomy());
        let sub = hub.subscribe(StartOffset::Origin);
        hub.publish_window(0, Arc::from(vec![1u8]));
        hub.close();
        hub.publish_window(1, Arc::from(vec![2u8]));
        assert_eq!(sub.drain().len(), 1, "post-close publishes go nowhere");
        assert_eq!(hub.handle().windows_broadcast(), 1);
    }

    #[test]
    fn roster_totals_sum_every_counter_once() {
        let mut caster = Broadcaster::new(BroadcastConfig {
            channel_capacity: 2,
            ring_capacity: 2,
        });
        let _slow = caster.subscribe(StartOffset::Origin);
        let mut stream = ddos_pipeline(50_000);
        for _ in 0..4 {
            caster.step(&mut stream).unwrap();
        }
        // Joins after the ring slid: missed counts too.
        let _late = caster.subscribe(StartOffset::Origin);
        caster.step(&mut stream).unwrap();
        let summary = caster.run(&mut stream, 1).unwrap();
        let totals = summary.totals();
        assert_eq!(
            totals.delivered,
            summary.reports.iter().map(|r| r.delivered).sum::<u64>()
        );
        assert_eq!(
            totals.dropped,
            summary.reports.iter().map(|r| r.dropped).sum::<u64>()
        );
        assert_eq!(
            totals.missed,
            summary.reports.iter().map(|r| r.missed).sum::<u64>()
        );
        // Slow subscriber dropped, late subscriber missed — and the books
        // still balance for both.
        assert!(totals.dropped > 0);
        assert!(totals.missed > 0);
        assert_eq!(summary.conservation_error(), None);
    }

    #[test]
    fn instrumented_hub_counters_match_the_summary() {
        let registry = MetricsRegistry::new();
        let mut caster = Broadcaster::with_instrumentation(
            BroadcastConfig {
                channel_capacity: 2,
                ring_capacity: 2,
            },
            None,
            Some(&registry),
        );
        let _slow = caster.subscribe(StartOffset::Origin);
        let mut stream = ddos_pipeline(50_000);
        for _ in 0..4 {
            caster.step(&mut stream).unwrap();
        }
        // Joins after the ring slid, so misses land on the registry too.
        let _late = caster.subscribe(StartOffset::Origin);
        let summary = caster.run(&mut stream, 2).unwrap();
        let totals = summary.totals();
        let snapshot = registry.snapshot();
        assert_eq!(snapshot.counter("broadcast.windows"), summary.windows);
        assert_eq!(snapshot.counter("broadcast.delivered"), totals.delivered);
        assert_eq!(snapshot.counter("broadcast.dropped"), totals.dropped);
        assert_eq!(snapshot.counter("broadcast.missed"), totals.missed);
        assert!(totals.dropped > 0, "the slow subscriber lagged");
        assert!(totals.missed > 0, "the late joiner missed the ring");
        assert_eq!(
            snapshot.histogram("broadcast.fanout_ns").unwrap().count,
            summary.windows
        );
        assert!(snapshot.histogram("broadcast.queue_depth").unwrap().count > 0);
        assert_eq!(snapshot.gauge("broadcast.subscribers"), 0, "closed");
        assert!(snapshot.gauge("broadcast.ring_occupancy") > 0);
    }

    #[test]
    fn catchup_rewrite_replaces_the_ring_suffix_for_joiners() {
        // The serving tier's shape: the ring holds payloads a joiner cannot
        // use mid-chain, so a rewrite materializes a fresh head entry and
        // passes the rest through. Entries it declines count as missed.
        let hub: BroadcastHub<Arc<[u8]>> = BroadcastHub::new(BroadcastConfig {
            channel_capacity: 8,
            ring_capacity: 8,
        });
        for i in 0..5u64 {
            hub.publish_window(i, Arc::from(vec![i as u8; 2]));
        }
        hub.set_catchup_rewrite(|ring, start| {
            // Skip up to the requested start, then replace the first
            // delivered entry with a rewritten payload.
            let mut out: Vec<(u64, Arc<[u8]>)> =
                ring.iter().filter(|(i, _)| *i >= start).cloned().collect();
            if let Some((_, payload)) = out.first_mut() {
                *payload = Arc::from(vec![0xAAu8; 2]);
            }
            out
        });
        let sub = hub.subscribe(StartOffset::Window(2));
        let frames = sub.drain();
        assert_eq!(frames.len(), 3, "windows 2, 3, 4");
        assert_eq!(frames[0].as_ref(), &[0xAA, 0xAA], "head was rewritten");
        assert_eq!(frames[1].as_ref(), &[3, 3], "tail passes through");
        assert_eq!(sub.missed(), 0);

        // A rewrite that starts later than asked books the gap as missed,
        // and an empty rewrite books the whole wanted range.
        hub.set_catchup_rewrite(|ring, start| {
            ring.iter()
                .filter(|(i, _)| *i >= start.max(4))
                .cloned()
                .collect()
        });
        let partial = hub.subscribe(StartOffset::Window(1));
        assert_eq!(partial.drain().len(), 1, "only window 4");
        assert_eq!(partial.missed(), 3, "windows 1..=3 were declined");
        hub.set_catchup_rewrite(|_, _| Vec::new());
        let none = hub.subscribe(StartOffset::Origin);
        assert!(none.drain().is_empty());
        assert_eq!(none.missed(), 5, "all five broadcast windows");
    }

    #[test]
    fn catchup_rewrite_keeps_the_conservation_law() {
        let mut hub: BroadcastHub<Arc<[u8]>> = BroadcastHub::new(BroadcastConfig {
            channel_capacity: 8,
            ring_capacity: 4,
        });
        hub.set_catchup_rewrite(|ring, start| {
            ring.iter().filter(|(i, _)| *i >= start).cloned().collect()
        });
        for i in 0..6u64 {
            hub.publish_window(i, Arc::from(vec![0u8]));
        }
        // Ring holds 2..=5; an Origin joiner gets those, misses 0 and 1,
        // then receives 6 and 7 live.
        let sub = hub.subscribe(StartOffset::Origin);
        for i in 6..8u64 {
            hub.publish_window(i, Arc::from(vec![0u8]));
        }
        let summary = hub.close();
        assert_eq!(sub.drain().len(), 6);
        assert_eq!(summary.conservation_error(), None);
    }

    #[test]
    fn conservation_error_pinpoints_a_cooked_report() {
        let mut caster = Broadcaster::new(roomy());
        let _sub = caster.subscribe(StartOffset::Origin);
        let mut stream = ddos_pipeline(50_000);
        let mut summary = caster.run(&mut stream, 3).unwrap();
        assert_eq!(summary.conservation_error(), None);
        summary.reports[0].delivered += 1;
        let err = summary
            .conservation_error()
            .expect("books no longer balance");
        assert!(err.contains("subscriber 0"), "{err}");
        // An early leaver with the same cooked counters is exempt.
        summary.reports[0].left_early = true;
        assert_eq!(summary.conservation_error(), None);
    }
}
