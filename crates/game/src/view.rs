//! The 2-D/3-D view state and its controls.
//!
//! "When the student starts the game they are first shown a network traffic
//! matrix in a top-down 2D view. … The student has the ability to go into a 3D
//! mode by pressing the spacebar key. The student can rotate the view using
//! the Q and E keys."

use tw_engine::input::{Action, InputEvent, InputMap};
use tw_render::Camera;

/// Which of the two views is active.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ViewMode {
    /// The spreadsheet-style top-down view (the starting view).
    #[default]
    TwoD,
    /// The rotatable warehouse view.
    ThreeD,
}

/// The complete view state of a level.
#[derive(Debug, Clone)]
pub struct ViewState {
    /// Current view mode.
    pub mode: ViewMode,
    /// Number of Q/E rotation steps applied (positive = E/clockwise).
    pub rotation_steps: i32,
    /// Whether pallet colors are toggled on.
    pub colors_on: bool,
    /// How many packets have been placed so far (`None` = all; used by the
    /// training level's placement walk-through).
    pub packets_placed: Option<usize>,
    input: InputMap,
}

impl Default for ViewState {
    fn default() -> Self {
        Self::new()
    }
}

impl ViewState {
    /// The starting state: 2-D view, no rotation, default pallet materials.
    pub fn new() -> Self {
        ViewState {
            mode: ViewMode::TwoD,
            rotation_steps: 0,
            colors_on: false,
            packets_placed: None,
            input: InputMap::new(),
        }
    }

    /// Toggle between 2-D and 3-D (the spacebar).
    pub fn toggle_mode(&mut self) {
        self.mode = match self.mode {
            ViewMode::TwoD => ViewMode::ThreeD,
            ViewMode::ThreeD => ViewMode::TwoD,
        };
    }

    /// Rotate the 3-D view. Rotation in the 2-D view is ignored, as the paper's
    /// top-down view has no rotation control.
    pub fn rotate(&mut self, steps: i32) {
        if self.mode == ViewMode::ThreeD {
            self.rotation_steps += steps;
        }
    }

    /// Toggle pallet colors (the on-screen button / C key).
    pub fn toggle_colors(&mut self) {
        self.colors_on = !self.colors_on;
    }

    /// Apply a raw input event; returns the action it mapped to, if any.
    /// Answer-selection and navigation actions are returned but not applied
    /// here — they belong to the session state machine.
    pub fn handle_input(&mut self, event: InputEvent) -> Option<Action> {
        let action = self.input.translate(event)?;
        match action {
            Action::ToggleView => self.toggle_mode(),
            Action::RotateLeft => self.rotate(-1),
            Action::RotateRight => self.rotate(1),
            Action::ToggleColors => self.toggle_colors(),
            Action::ChooseAnswer(_) | Action::Advance | Action::Back => {}
        }
        Some(action)
    }

    /// The camera for the current view over a floor of the given extent.
    pub fn camera(&self, extent: f64) -> Camera {
        match self.mode {
            ViewMode::TwoD => Camera::top_down(extent),
            ViewMode::ThreeD => Camera::orbit_steps(extent, self.rotation_steps),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tw_engine::input::Key;

    #[test]
    fn starts_in_2d_with_default_materials() {
        let v = ViewState::new();
        assert_eq!(v.mode, ViewMode::TwoD);
        assert!(!v.colors_on);
        assert_eq!(v.rotation_steps, 0);
        assert_eq!(v.packets_placed, None);
    }

    #[test]
    fn spacebar_toggles_and_qe_rotate_only_in_3d() {
        let mut v = ViewState::new();
        v.handle_input(InputEvent::Pressed(Key::Q));
        assert_eq!(v.rotation_steps, 0, "rotation is ignored in the 2-D view");
        v.handle_input(InputEvent::Pressed(Key::Space));
        assert_eq!(v.mode, ViewMode::ThreeD);
        v.handle_input(InputEvent::Pressed(Key::E));
        v.handle_input(InputEvent::Pressed(Key::E));
        v.handle_input(InputEvent::Pressed(Key::Q));
        assert_eq!(v.rotation_steps, 1);
        v.handle_input(InputEvent::Pressed(Key::Space));
        assert_eq!(v.mode, ViewMode::TwoD);
    }

    #[test]
    fn color_toggle_and_answer_actions() {
        let mut v = ViewState::new();
        assert_eq!(
            v.handle_input(InputEvent::Pressed(Key::C)),
            Some(Action::ToggleColors)
        );
        assert!(v.colors_on);
        v.toggle_colors();
        assert!(!v.colors_on);
        // Answer keys are reported but do not mutate the view.
        assert_eq!(
            v.handle_input(InputEvent::Pressed(Key::Digit(2))),
            Some(Action::ChooseAnswer(1))
        );
        assert_eq!(v.handle_input(InputEvent::Released(Key::C)), None);
    }

    #[test]
    fn camera_selection_follows_the_mode() {
        let mut v = ViewState::new();
        let top = v.camera(10.0);
        v.toggle_mode();
        v.rotate(2);
        let orbit = v.camera(10.0);
        assert_ne!(top.eye, orbit.eye);
        assert!(matches!(
            top.projection,
            tw_render::Projection::Orthographic { .. }
        ));
        assert!(matches!(
            orbit.projection,
            tw_render::Projection::Perspective { .. }
        ));
    }
}
