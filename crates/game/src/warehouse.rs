//! Building the warehouse scene for a learning module.
//!
//! The scene tree mirrors the structure visible in the paper's Figs. 2 and 4:
//! a `Data` node holding the parsed module file, a `Pallet and label
//! controller` node with `X`, `Y` and `Pallets` children, one pallet node per
//! matrix cell and one label node per axis entry (each label node's second
//! child is the text label, matching the `get_child(1).text` access in the
//! paper's script).

// tw-analyze: allow-file(no-panic-in-lib, "scene construction from vetted module data; every expect proves a shape the module validators already enforced, and the scene builders are exercised by the warehouse tests")
use crate::view::ViewState;
use tw_engine::{Node, NodeId, NodeKind, SceneTree, Variant};
use tw_module::LearningModule;
use tw_render::{stack_layout, Camera, Framebuffer, PlacedMesh, RenderScene};
use tw_voxel::{box_asset, floor_tile, label_board, pallet_asset, Palette};

/// World units per matrix cell.
pub const CELL_SIZE: f64 = 1.0;
/// Uniform scale applied to the 8-voxel pallet/floor assets so they fit a cell.
const PALLET_SCALE: f64 = CELL_SIZE / 9.0;
/// Uniform scale applied to the 4-voxel box asset.
const BOX_SCALE: f64 = CELL_SIZE / 22.0;

/// A built warehouse scene: the scene tree plus the ids of its key nodes.
#[derive(Debug)]
pub struct WarehouseScene {
    /// The scene tree.
    pub tree: SceneTree,
    /// The `Data` node holding the module contents.
    pub data: NodeId,
    /// The `Pallet and label controller` node.
    pub controller: NodeId,
    /// The `X` axis-label parent node.
    pub x_axis: NodeId,
    /// The `Y` axis-label parent node.
    pub y_axis: NodeId,
    /// The `Pallets` parent node.
    pub pallets: NodeId,
    /// The camera node.
    pub camera: NodeId,
    module: LearningModule,
}

impl WarehouseScene {
    /// Build the scene for a module.
    pub fn build(module: &LearningModule) -> Self {
        let n = module.dimension();
        let mut tree = SceneTree::new(&module.name);

        // Data node: the parsed module file, stored as node properties the way
        // Godot stores the JSON dictionary.
        let data = tree
            .spawn(tree.root(), "Data", NodeKind::Data)
            .expect("fresh tree");
        {
            let node = tree.node_mut(data).expect("data node exists");
            node.set("name", module.name.as_str());
            node.set("author", module.author.as_str());
            node.set(
                "axis_labels",
                Variant::Array(
                    module
                        .matrix
                        .labels()
                        .labels()
                        .iter()
                        .map(|l| Variant::from(l.as_str()))
                        .collect(),
                ),
            );
            node.set("traffic_matrix", grid_variant(&module.matrix.to_grid()));
            node.set(
                "traffic_matrix_colors",
                grid_variant(&module.colors.to_codes()),
            );
            node.set("has_question", module.has_question());
        }

        let camera = tree
            .spawn(tree.root(), "Camera3D", NodeKind::Camera3D)
            .expect("fresh tree");

        // Floor.
        let floor = tree
            .spawn(tree.root(), "Floor", NodeKind::Node3D)
            .expect("fresh tree");
        for row in 0..n {
            for col in 0..n {
                let id = tree
                    .spawn(
                        floor,
                        &format!("Tile_{row}_{col}"),
                        NodeKind::MeshInstance3D,
                    )
                    .expect("unique tile names");
                let node = tree.node_mut(id).expect("tile exists");
                node.set(
                    "position",
                    Variant::Vector3(col as f64 * CELL_SIZE, 0.0, row as f64 * CELL_SIZE),
                );
                node.add_to_group("floor");
            }
        }

        // Controller with X, Y and Pallets children.
        let controller = tree
            .spawn(tree.root(), "Pallet and label controller", NodeKind::Node3D)
            .expect("fresh tree");
        {
            let node = tree.node_mut(controller).expect("controller exists");
            node.export_with("pallets_are_colored", false);
        }
        let x_axis = tree
            .spawn(controller, "X", NodeKind::Node3D)
            .expect("fresh tree");
        let y_axis = tree
            .spawn(controller, "Y", NodeKind::Node3D)
            .expect("fresh tree");
        for (axis, axis_name) in [(x_axis, "X"), (y_axis, "Y")] {
            for i in 0..n {
                let holder = tree
                    .spawn(axis, &format!("{axis_name}Label{i}"), NodeKind::Node3D)
                    .expect("unique label names");
                // Child 0: the board mesh; child 1: the text label (the paper's
                // script reads `get_child(1).text`).
                tree.spawn(holder, "Board", NodeKind::MeshInstance3D)
                    .expect("unique");
                let text = tree
                    .spawn(holder, "Text", NodeKind::Label3D)
                    .expect("unique");
                tree.node_mut(text).expect("text exists").set("text", "");
            }
        }
        // Wire the exported node references like the Inspector assignment in Fig. 3.
        {
            let node = tree.node_mut(controller).expect("controller exists");
            node.export_with("x_axis", Variant::NodeRef(x_axis.0));
            node.export_with("y_axis", Variant::NodeRef(y_axis.0));
        }

        // Pallets: one per matrix cell, row-major, each with a mesh child whose
        // `material_override` the controller toggles, plus one box child per packet.
        let pallets = tree
            .spawn(controller, "Pallets", NodeKind::Node3D)
            .expect("fresh tree");
        {
            let node = tree.node_mut(controller).expect("controller exists");
            node.export_with("pallets", Variant::NodeRef(pallets.0));
        }
        for row in 0..n {
            for col in 0..n {
                let pallet = tree
                    .spawn(pallets, &format!("Pallet_{row}_{col}"), NodeKind::Node3D)
                    .expect("unique pallet names");
                {
                    let node = tree.node_mut(pallet).expect("pallet exists");
                    node.set(
                        "position",
                        Variant::Vector3(col as f64 * CELL_SIZE, 0.0, row as f64 * CELL_SIZE),
                    );
                    node.set("row", row);
                    node.set("col", col);
                    node.add_to_group("pallets");
                }
                let mesh = tree
                    .spawn(pallet, "Mesh", NodeKind::MeshInstance3D)
                    .expect("unique");
                tree.node_mut(mesh)
                    .expect("mesh exists")
                    .set("material_override", "pallet_default_material");
                let packets = module.matrix.get(row, col).unwrap_or(0);
                for p in 0..packets {
                    let b = tree
                        .spawn(pallet, &format!("Box_{p}"), NodeKind::MeshInstance3D)
                        .expect("unique box names");
                    let node = tree.node_mut(b).expect("box exists");
                    node.set("packet_index", p as usize);
                    node.add_to_group("boxes");
                }
            }
        }

        WarehouseScene {
            tree,
            data,
            controller,
            x_axis,
            y_axis,
            pallets,
            camera,
            module: module.clone(),
        }
    }

    /// The module the scene was built from.
    pub fn module(&self) -> &LearningModule {
        &self.module
    }

    /// The matrix dimension.
    pub fn dimension(&self) -> usize {
        self.module.dimension()
    }

    /// The world-space extent of the warehouse floor.
    pub fn extent(&self) -> f64 {
        self.dimension() as f64 * CELL_SIZE
    }

    /// The pallet node for a cell.
    pub fn pallet_at(&self, row: usize, col: usize) -> Option<NodeId> {
        self.tree
            .child_by_name(self.pallets, &format!("Pallet_{row}_{col}"))
    }

    /// Total number of packet boxes in the scene.
    pub fn total_boxes(&self) -> usize {
        self.tree.nodes_in_group("boxes").len()
    }

    /// Build the render scene. `colored` selects whether pallets use their
    /// color-plane accent (the toggle button state); `packets_placed` limits
    /// how many boxes are shown, in row-major packet order (`None` = all),
    /// which is how the training level animates packet placement.
    pub fn render_scene(&self, colored: bool, packets_placed: Option<usize>) -> RenderScene {
        let n = self.dimension();
        let mut scene = RenderScene::new();
        let floor = floor_tile();
        let box_grid = box_asset();
        let mut placed_budget = packets_placed.unwrap_or(usize::MAX);

        for row in 0..n {
            for col in 0..n {
                let origin = [col as f64 * CELL_SIZE, 0.0, row as f64 * CELL_SIZE];
                scene.add(PlacedMesh::from_grid(&floor, origin, PALLET_SCALE));
                let code = self
                    .module
                    .colors
                    .get(row, col)
                    .map(|c| c.code())
                    .unwrap_or(0);
                let accent = if colored {
                    Palette::accent_for_code(code)
                } else {
                    tw_voxel::palette::ACCENT_GREEN
                };
                let pallet = pallet_asset(accent);
                let pallet_origin = [origin[0], 0.05, origin[2]];
                scene.add(PlacedMesh::from_grid(&pallet, pallet_origin, PALLET_SCALE));

                let packets = self.module.matrix.get(row, col).unwrap_or(0) as usize;
                let deck_height = 3.0 * PALLET_SCALE + 0.05;
                for p in 0..packets {
                    if placed_budget == 0 {
                        break;
                    }
                    placed_budget -= 1;
                    let (bx, layer, bz) = stack_layout(p);
                    let box_world = 4.0 * BOX_SCALE;
                    let position = [
                        origin[0] + 0.08 + bx as f64 * (box_world + 0.01),
                        deck_height + layer as f64 * (box_world + 0.005),
                        origin[2] + 0.08 + bz as f64 * (box_world + 0.01),
                    ];
                    scene.add(PlacedMesh::from_grid(&box_grid, position, BOX_SCALE));
                }
            }
        }

        // Axis label boards along the two axes.
        let board = label_board();
        for i in 0..n {
            scene.add(PlacedMesh::from_grid(
                &board,
                [i as f64 * CELL_SIZE, 0.0, -1.2 * CELL_SIZE],
                PALLET_SCALE,
            ));
            scene.add(PlacedMesh::from_grid(
                &board,
                [-1.2 * CELL_SIZE, 0.0, i as f64 * CELL_SIZE],
                PALLET_SCALE,
            ));
        }
        scene
    }

    /// Render the warehouse through the camera described by a view state.
    pub fn render(&self, view: &ViewState, width: usize, height: usize) -> Framebuffer {
        let scene = self.render_scene(view.colors_on, view.packets_placed);
        let camera: Camera = view.camera(self.extent());
        let mut fb = Framebuffer::new(width, height);
        scene.render(&camera, &mut fb);
        fb
    }
}

fn grid_variant(grid: &[Vec<u32>]) -> Variant {
    Variant::Array(
        grid.iter()
            .map(|row| Variant::Array(row.iter().map(|&v| Variant::from(v as i64)).collect()))
            .collect(),
    )
}

/// Convenience: spawn a bare `Node` tree mirroring the training level of the
/// paper's Fig. 2 (used by the figure harness without building a full module).
pub fn fig2_scene_tree() -> SceneTree {
    let module = crate::training::training_module();
    let scene = WarehouseScene::build(&module);
    scene.tree
}

/// Re-export of [`Node`] construction for downstream scene surgery in examples.
pub fn make_node(name: &str, kind: NodeKind) -> Node {
    Node::new(name, kind)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tw_module::template_10x10;

    #[test]
    fn scene_tree_matches_the_paper_structure() {
        let module = template_10x10();
        let scene = WarehouseScene::build(&module);
        let tree = &scene.tree;
        // Root children: Data, Camera3D, Floor, controller.
        assert_eq!(tree.children(tree.root()).unwrap().len(), 4);
        // The controller has X, Y and Pallets children.
        let kids = tree.children(scene.controller).unwrap();
        assert_eq!(kids.len(), 3);
        assert_eq!(tree.node(scene.x_axis).unwrap().name, "X");
        // 10 label holders per axis, each with Board + Text children.
        assert_eq!(tree.children(scene.x_axis).unwrap().len(), 10);
        let holder = tree.children(scene.y_axis).unwrap()[0];
        let holder_children = tree.children(holder).unwrap();
        assert_eq!(holder_children.len(), 2);
        assert_eq!(
            tree.node(holder_children[1]).unwrap().kind,
            NodeKind::Label3D
        );
        // 100 pallets, one per cell; template has 30 packets → 30 box nodes.
        assert_eq!(tree.children(scene.pallets).unwrap().len(), 100);
        assert_eq!(scene.total_boxes(), 30);
        assert_eq!(tree.nodes_in_group("pallets").len(), 100);
        // The controller exports the references the Inspector shows in Fig. 3.
        let controller = tree.node(scene.controller).unwrap();
        assert_eq!(
            controller.exported(),
            &["pallets_are_colored", "x_axis", "y_axis", "pallets"]
        );
    }

    #[test]
    fn data_node_holds_the_module_dictionary() {
        let module = template_10x10();
        let scene = WarehouseScene::build(&module);
        let data = scene.tree.node(scene.data).unwrap();
        assert_eq!(data.get("name").unwrap().as_str(), Some("10x10 Template"));
        let labels = data.get("axis_labels").unwrap().as_array().unwrap();
        assert_eq!(labels.len(), 10);
        assert_eq!(labels[6].as_str(), Some("ADV1"));
        let colors = data
            .get("traffic_matrix_colors")
            .unwrap()
            .as_array()
            .unwrap();
        assert_eq!(colors.len(), 10);
        assert_eq!(colors[0].as_array().unwrap()[9].as_int(), Some(2));
        // The controller can reach the Data node via the paper's "../Data" path.
        assert_eq!(
            scene.tree.get_node(scene.controller, "../Data").unwrap(),
            scene.data
        );
    }

    #[test]
    fn pallet_lookup_and_extent() {
        let module = template_10x10();
        let scene = WarehouseScene::build(&module);
        assert!(scene.pallet_at(3, 7).is_some());
        assert!(scene.pallet_at(10, 0).is_none());
        assert_eq!(scene.extent(), 10.0);
        assert_eq!(scene.dimension(), 10);
        assert_eq!(scene.module().name, "10x10 Template");
    }

    #[test]
    fn render_scene_box_counts_follow_packet_placement() {
        let module = template_10x10();
        let scene = WarehouseScene::build(&module);
        let full = scene.render_scene(false, None);
        let empty = scene.render_scene(false, Some(0));
        let partial = scene.render_scene(false, Some(10));
        // Every packet box adds meshes; fewer placed packets → fewer meshes.
        assert!(full.meshes.len() > partial.meshes.len());
        assert!(partial.meshes.len() > empty.meshes.len());
        // Floor + pallets + labels are always present.
        assert!(empty.meshes.len() >= 100 * 2);
    }

    #[test]
    fn rendering_produces_non_empty_images_in_both_views() {
        let module = tw_module::template_6x6();
        let scene = WarehouseScene::build(&module);
        let view2d = ViewState::new();
        let fb = scene.render(&view2d, 64, 64);
        assert!(
            fb.covered_pixels() > 500,
            "2-D view covered {}",
            fb.covered_pixels()
        );
        let mut view3d = ViewState::new();
        view3d.toggle_mode();
        let fb3 = scene.render(&view3d, 64, 64);
        assert!(
            fb3.covered_pixels() > 300,
            "3-D view covered {}",
            fb3.covered_pixels()
        );
        assert_ne!(fb.to_ascii(), fb3.to_ascii());
    }

    #[test]
    fn fig2_tree_prints_like_the_figure() {
        let text = fig2_scene_tree().print_tree();
        assert!(text.contains("Pallet and label controller"));
        assert!(text.contains("Data"));
        assert!(text.contains("Camera3D"));
    }
}
