//! One playable level: a learning module loaded into the warehouse.

use crate::controller::PalletLabelController;
use crate::view::ViewState;
use crate::warehouse::WarehouseScene;
use tw_engine::input::{Action, InputEvent};
use tw_engine::TreeError;
use tw_module::LearningModule;
use tw_quiz::{PresentedQuestion, QuestionOutcome, ShuffleSeed};
use tw_render::Framebuffer;

/// A learning module loaded into a scene, with its view state and question.
#[derive(Debug)]
pub struct Level {
    /// The built warehouse scene.
    pub scene: WarehouseScene,
    /// The pallet/label controller after `_ready()`.
    pub controller: PalletLabelController,
    /// The current view state.
    pub view: ViewState,
    question: Option<PresentedQuestion>,
    answered: Option<QuestionOutcome>,
}

impl Level {
    /// Load a module: build the scene, run the controller's ready logic and
    /// shuffle the question with the given seed.
    pub fn load(module: &LearningModule, shuffle_seed: u64) -> Result<Self, TreeError> {
        let mut scene = WarehouseScene::build(module);
        let controller = PalletLabelController::ready(&mut scene.tree, scene.controller)?;
        let question = module
            .question
            .as_ref()
            .map(|q| PresentedQuestion::present(q, ShuffleSeed(shuffle_seed)));
        Ok(Level {
            scene,
            controller,
            view: ViewState::new(),
            question,
            answered: None,
        })
    }

    /// The module's name.
    pub fn name(&self) -> &str {
        &self.scene.module().name
    }

    /// The shuffled question, if the module has one.
    pub fn question(&self) -> Option<&PresentedQuestion> {
        self.question.as_ref()
    }

    /// The outcome of the student's answer, if they have answered.
    pub fn outcome(&self) -> Option<QuestionOutcome> {
        self.answered
    }

    /// Answer the question by display index. Returns `Skipped` for
    /// question-less modules; repeated answers keep the first outcome.
    pub fn answer(&mut self, display_index: usize) -> QuestionOutcome {
        if let Some(existing) = self.answered {
            return existing;
        }
        let outcome = match &self.question {
            Some(q) if q.is_correct(display_index) => QuestionOutcome::Correct,
            Some(_) => QuestionOutcome::Incorrect,
            None => QuestionOutcome::Skipped,
        };
        self.answered = Some(outcome);
        outcome
    }

    /// Handle an input event: view actions are applied to the view state, and
    /// the color toggle also runs the controller's material swap so the scene
    /// tree stays in sync with what is rendered.
    pub fn handle_input(&mut self, event: InputEvent) -> Result<Option<Action>, TreeError> {
        let action = self.view.handle_input(event);
        if let Some(Action::ToggleColors) = action {
            self.controller.change_pallet_color(&mut self.scene.tree)?;
        }
        Ok(action)
    }

    /// Render the level at the current view state.
    pub fn render(&self, width: usize, height: usize) -> Framebuffer {
        self.scene.render(&self.view, width, height)
    }

    /// Render the 2-D spreadsheet view directly (used for figure generation
    /// regardless of the current mode).
    pub fn render_matrix_view(&self) -> Framebuffer {
        let module = self.scene.module();
        let colors = if self.view.colors_on {
            Some(&module.colors)
        } else {
            None
        };
        tw_render::render_matrix_2d(&module.matrix, colors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tw_engine::input::Key;
    use tw_module::template_10x10;

    #[test]
    fn load_presents_a_shuffled_question() {
        let level = Level::load(&template_10x10(), 5).unwrap();
        assert_eq!(level.name(), "10x10 Template");
        let q = level.question().unwrap();
        assert_eq!(q.option_count(), 3);
        assert_eq!(q.correct_answer(), "2");
        assert!(level.outcome().is_none());
    }

    #[test]
    fn answering_is_idempotent() {
        let mut level = Level::load(&template_10x10(), 5).unwrap();
        let correct_index = level.question().unwrap().correct_index;
        assert_eq!(level.answer(correct_index), QuestionOutcome::Correct);
        // A second (different) answer does not change the recorded outcome.
        let wrong = (correct_index + 1) % 3;
        assert_eq!(level.answer(wrong), QuestionOutcome::Correct);
        assert_eq!(level.outcome(), Some(QuestionOutcome::Correct));
    }

    #[test]
    fn question_less_modules_skip() {
        let mut module = template_10x10();
        module.question = None;
        let mut level = Level::load(&module, 0).unwrap();
        assert!(level.question().is_none());
        assert_eq!(level.answer(0), QuestionOutcome::Skipped);
    }

    #[test]
    fn color_toggle_input_updates_both_view_and_scene_tree() {
        let mut level = Level::load(&template_10x10(), 1).unwrap();
        assert_eq!(
            level
                .controller
                .pallet_material(&level.scene.tree, 6)
                .unwrap(),
            "pallet_default_material"
        );
        level.handle_input(InputEvent::Pressed(Key::C)).unwrap();
        assert!(level.view.colors_on);
        assert_eq!(
            level
                .controller
                .pallet_material(&level.scene.tree, 6)
                .unwrap(),
            "pallet_material_r"
        );
        level.handle_input(InputEvent::Pressed(Key::C)).unwrap();
        assert_eq!(
            level
                .controller
                .pallet_material(&level.scene.tree, 6)
                .unwrap(),
            "pallet_default_material"
        );
    }

    #[test]
    fn rendering_both_views_and_the_matrix_view() {
        let mut level = Level::load(&tw_module::template_6x6(), 2).unwrap();
        let flat = level.render_matrix_view();
        assert!(flat.width() > 0);
        let before = level.render(48, 48).to_ascii();
        level.handle_input(InputEvent::Pressed(Key::Space)).unwrap();
        level.handle_input(InputEvent::Pressed(Key::E)).unwrap();
        let after = level.render(48, 48).to_ascii();
        assert_ne!(before, after);
    }
}
