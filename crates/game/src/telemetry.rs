//! Gameplay telemetry.
//!
//! The paper's future work calls for "measuring the outcome and effect on the
//! student"; the telemetry hub is the hook for that: every significant game
//! event is published on a channel that an educator dashboard (or, here, the
//! classroom simulator in `tw-sim`) can consume without coupling to the game
//! loop.

use crossbeam::channel::{unbounded, Receiver, Sender};

/// A gameplay event.
#[derive(Debug, Clone, PartialEq)]
pub enum TelemetryEvent {
    /// A bundle was opened; contains the bundle name and module count.
    BundleLoaded { name: String, modules: usize },
    /// A module was presented; contains its index and name.
    ModuleStarted { index: usize, name: String },
    /// The student toggled between the 2-D and 3-D views.
    ViewToggled { now_3d: bool },
    /// The student rotated the 3-D view; contains the new step count.
    ViewRotated { steps: i32 },
    /// The student toggled pallet colors.
    ColorsToggled { now_colored: bool },
    /// The student answered the module's question.
    Answered { module_index: usize, correct: bool },
    /// The module was completed (question answered or skipped).
    ModuleCompleted { index: usize },
    /// The whole bundle was completed; contains the final correct/answered counts.
    SessionCompleted { correct: usize, answered: usize },
    /// A live ingest window re-palleted the warehouse scene.
    LiveWindow {
        window_index: u64,
        events: u64,
        nnz: usize,
    },
}

/// A telemetry publisher/consumer pair backed by an unbounded channel.
#[derive(Debug, Clone)]
pub struct TelemetryHub {
    sender: Sender<TelemetryEvent>,
    receiver: Receiver<TelemetryEvent>,
}

impl Default for TelemetryHub {
    fn default() -> Self {
        Self::new()
    }
}

impl TelemetryHub {
    /// Create a hub.
    pub fn new() -> Self {
        let (sender, receiver) = unbounded();
        TelemetryHub { sender, receiver }
    }

    /// Publish an event (never blocks).
    pub fn publish(&self, event: TelemetryEvent) {
        // The receiver half lives as long as self, so send cannot fail.
        let _ = self.sender.send(event);
    }

    /// A sender handle that can be moved to another thread.
    pub fn sender(&self) -> Sender<TelemetryEvent> {
        self.sender.clone()
    }

    /// Drain every event published so far.
    pub fn drain(&self) -> Vec<TelemetryEvent> {
        let mut events = Vec::new();
        while let Ok(event) = self.receiver.try_recv() {
            events.push(event);
        }
        events
    }

    /// Number of events waiting to be drained.
    pub fn pending(&self) -> usize {
        self.receiver.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publish_and_drain_in_order() {
        let hub = TelemetryHub::new();
        hub.publish(TelemetryEvent::BundleLoaded {
            name: "DDoS".into(),
            modules: 4,
        });
        hub.publish(TelemetryEvent::ModuleStarted {
            index: 0,
            name: "C2".into(),
        });
        assert_eq!(hub.pending(), 2);
        let events = hub.drain();
        assert_eq!(events.len(), 2);
        assert!(
            matches!(events[0], TelemetryEvent::BundleLoaded { ref name, modules: 4 } if name == "DDoS")
        );
        assert_eq!(hub.pending(), 0);
        assert!(hub.drain().is_empty());
    }

    #[test]
    fn senders_work_across_threads() {
        let hub = TelemetryHub::new();
        let sender = hub.sender();
        let handle = std::thread::spawn(move || {
            for i in 0..10 {
                sender
                    .send(TelemetryEvent::ModuleCompleted { index: i })
                    .unwrap();
            }
        });
        handle.join().unwrap();
        assert_eq!(hub.drain().len(), 10);
    }
}
