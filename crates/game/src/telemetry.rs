//! Gameplay telemetry.
//!
//! The paper's future work calls for "measuring the outcome and effect on the
//! student"; the telemetry hub is the hook for that: every significant game
//! event is published on a channel that an educator dashboard (or, here, the
//! classroom simulator in `tw-sim`) can consume without coupling to the game
//! loop.
//!
//! The hub's channel is **bounded** with a drop-oldest policy: a dashboard
//! that stops draining can never grow the game's memory without bound.
//! When the buffer is full, [`TelemetryHub::publish`] discards the *oldest*
//! buffered event to make room for the new one (the most recent events are
//! the ones an educator reconnecting mid-lesson needs) and counts the loss
//! in [`TelemetryHub::dropped`].

use crossbeam::channel::{bounded, Receiver, Sender, TrySendError};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Default event buffer capacity (see [`TelemetryHub::with_capacity`]).
pub const DEFAULT_TELEMETRY_CAPACITY: usize = 1024;

/// A gameplay event.
#[derive(Debug, Clone, PartialEq)]
pub enum TelemetryEvent {
    /// A bundle was opened; contains the bundle name and module count.
    BundleLoaded { name: String, modules: usize },
    /// A module was presented; contains its index and name.
    ModuleStarted { index: usize, name: String },
    /// The student toggled between the 2-D and 3-D views.
    ViewToggled { now_3d: bool },
    /// The student rotated the 3-D view; contains the new step count.
    ViewRotated { steps: i32 },
    /// The student toggled pallet colors.
    ColorsToggled { now_colored: bool },
    /// The student answered the module's question.
    Answered { module_index: usize, correct: bool },
    /// The module was completed (question answered or skipped).
    ModuleCompleted { index: usize },
    /// The whole bundle was completed; contains the final correct/answered counts.
    SessionCompleted { correct: usize, answered: usize },
    /// A live ingest window re-palleted the warehouse scene.
    LiveWindow {
        window_index: u64,
        events: u64,
        nnz: usize,
    },
    /// A student session subscribed to a window broadcast; `missed` counts
    /// wanted windows that had already left the catch-up ring.
    SubscriberJoined {
        subscriber: usize,
        start_window: u64,
        caught_up: u64,
        missed: u64,
    },
    /// A subscriber's channel was full when a window was broadcast, so the
    /// window was dropped for that subscriber; `dropped` is its running total.
    SubscriberLagged {
        subscriber: usize,
        window_index: u64,
        dropped: u64,
    },
    /// A subscriber detached (its receiving half was dropped) or the
    /// broadcast closed while it was still attached.
    SubscriberDetached {
        subscriber: usize,
        delivered: u64,
        dropped: u64,
    },
    /// The broadcast finished; contains the window count and how many
    /// subscribers ever joined.
    BroadcastClosed { windows: u64, subscribers: usize },
    /// A remote peer connected to the serving tier and was subscribed; the
    /// subscriber id ties later `Subscriber*` events back to the address.
    PeerConnected { subscriber: usize, peer: String },
}

/// A telemetry publisher/consumer pair backed by a bounded channel with a
/// drop-oldest overflow policy.
#[derive(Debug, Clone)]
pub struct TelemetryHub {
    sender: Sender<TelemetryEvent>,
    receiver: Receiver<TelemetryEvent>,
    /// Events discarded by the drop-oldest policy; shared by every clone of
    /// this hub.
    dropped: Arc<AtomicU64>,
}

impl Default for TelemetryHub {
    fn default() -> Self {
        Self::new()
    }
}

impl TelemetryHub {
    /// Create a hub buffering up to [`DEFAULT_TELEMETRY_CAPACITY`] events.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_TELEMETRY_CAPACITY)
    }

    /// Create a hub buffering up to `capacity` events (at least 1). When the
    /// buffer is full the oldest buffered event is discarded — and counted —
    /// to admit the new one.
    pub fn with_capacity(capacity: usize) -> Self {
        let (sender, receiver) = bounded(capacity.max(1));
        TelemetryHub {
            sender,
            receiver,
            dropped: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Publish an event (never blocks). On a full buffer the oldest buffered
    /// event is dropped to make room, and the drop is counted.
    pub fn publish(&self, event: TelemetryEvent) {
        let mut event = event;
        loop {
            match self.sender.try_send(event) {
                Ok(()) => return,
                Err(TrySendError::Full(back)) => {
                    // Drop-oldest: evict the head and retry. Another consumer
                    // may race the eviction; either way a slot opens up (or
                    // the queue empties), so this loop terminates.
                    if self.receiver.try_recv().is_ok() {
                        self.dropped.fetch_add(1, Ordering::Relaxed);
                    }
                    event = back;
                }
                // The receiver half lives as long as self, so this is
                // unreachable; drop the event rather than panic if a future
                // refactor changes that.
                Err(TrySendError::Disconnected(_)) => return,
            }
        }
    }

    /// Drain every event published so far.
    pub fn drain(&self) -> Vec<TelemetryEvent> {
        let mut events = Vec::new();
        while let Ok(event) = self.receiver.try_recv() {
            events.push(event);
        }
        events
    }

    /// Number of events waiting to be drained.
    pub fn pending(&self) -> usize {
        self.receiver.len()
    }

    /// Total events discarded by the drop-oldest overflow policy since the
    /// hub was created (shared across clones).
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publish_and_drain_in_order() {
        let hub = TelemetryHub::new();
        hub.publish(TelemetryEvent::BundleLoaded {
            name: "DDoS".into(),
            modules: 4,
        });
        hub.publish(TelemetryEvent::ModuleStarted {
            index: 0,
            name: "C2".into(),
        });
        assert_eq!(hub.pending(), 2);
        let events = hub.drain();
        assert_eq!(events.len(), 2);
        assert!(
            matches!(events[0], TelemetryEvent::BundleLoaded { ref name, modules: 4 } if name == "DDoS")
        );
        assert_eq!(hub.pending(), 0);
        assert!(hub.drain().is_empty());
        assert_eq!(hub.dropped(), 0);
    }

    #[test]
    fn publishers_work_across_threads() {
        // A hub clone is the cross-thread publishing handle; unlike a raw
        // channel sender it preserves the drop-oldest policy (publish never
        // blocks, even against a stopped consumer).
        let hub = TelemetryHub::with_capacity(4);
        let publisher = hub.clone();
        let handle = std::thread::spawn(move || {
            for i in 0..10 {
                publisher.publish(TelemetryEvent::ModuleCompleted { index: i });
            }
        });
        handle.join().unwrap();
        assert_eq!(hub.drain().len(), 4, "bounded even from another thread");
        assert_eq!(hub.dropped(), 6);
    }

    #[test]
    fn full_buffer_drops_the_oldest_and_counts_it() {
        let hub = TelemetryHub::with_capacity(3);
        for i in 0..8 {
            hub.publish(TelemetryEvent::ModuleCompleted { index: i });
        }
        // Capacity 3: the 8 publishes kept only the newest 3 events.
        assert_eq!(hub.pending(), 3);
        assert_eq!(hub.dropped(), 5);
        let events = hub.drain();
        assert_eq!(
            events,
            vec![
                TelemetryEvent::ModuleCompleted { index: 5 },
                TelemetryEvent::ModuleCompleted { index: 6 },
                TelemetryEvent::ModuleCompleted { index: 7 },
            ],
            "the newest events survive"
        );
        // Clones share the dropped counter.
        let clone = hub.clone();
        assert_eq!(clone.dropped(), 5);
    }

    #[test]
    fn slow_consumer_memory_stays_bounded() {
        let hub = TelemetryHub::with_capacity(16);
        for i in 0..10_000 {
            hub.publish(TelemetryEvent::LiveWindow {
                window_index: i,
                events: 1,
                nnz: 1,
            });
        }
        assert_eq!(hub.pending(), 16, "buffer never exceeds its capacity");
        assert_eq!(hub.dropped(), 10_000 - 16);
        // The retained suffix is the newest windows, in order.
        let events = hub.drain();
        assert!(
            matches!(events[0], TelemetryEvent::LiveWindow { window_index, .. } if window_index == 10_000 - 16)
        );
    }
}
