//! Live ingest windows on the warehouse floor.
//!
//! The paper teaches with small, legible matrices; the ingest pipeline
//! produces hypersparse thousand-node windows. This module bridges the two:
//! each [`WindowReport`] is coarsened onto the display dimension (block sums
//! over contiguous address ranges, rescaled under the paper's 15-packet
//! display guidance) and the warehouse scene is rebuilt — re-palleted — so a
//! class can watch a scenario unfold window by window.

use crate::broadcast::Subscription;
use crate::warehouse::WarehouseScene;
use tw_ingest::{IngestStats, StreamError, WindowReport, WindowStream};
use tw_matrix::{CsrMatrix, LabelSet, TrafficMatrix};
use tw_module::ModuleBuilder;

/// The paper's display guidance: "fewer than 15 packets between any source
/// and destination displays well".
const DISPLAY_PACKET_LIMIT: u64 = 14;

/// Coarsen a window matrix onto `dimension` display nodes.
///
/// Address `a` of an `n`-node window maps to display block `a·dimension/n`;
/// block sums are then rescaled so the hottest cell shows
/// [`DISPLAY_PACKET_LIMIT`] packets (non-zero cells never round down to
/// zero, so a single scan probe still lights its pallet).
pub fn coarsen_window(matrix: &CsrMatrix<u64>, dimension: usize) -> TrafficMatrix {
    assert!(dimension >= 1, "display dimension must be positive");
    let n = matrix.rows().max(1);
    // Block sums and the rescale run in u128: a block can absorb up to n²
    // u64 cells, and the rescale multiplies by DISPLAY_PACKET_LIMIT — both
    // overflow u64 for packet counts as low as u64::MAX / 14.
    let mut grid = vec![vec![0u128; dimension]; dimension];
    for (r, c, v) in matrix.iter() {
        let br = (r * dimension / n).min(dimension - 1);
        let bc = (c * dimension / n).min(dimension - 1);
        grid[br][bc] += u128::from(v);
    }
    let max = grid.iter().flatten().copied().max().unwrap_or(0);
    let scaled: Vec<Vec<u32>> = grid
        .iter()
        .map(|row| {
            row.iter()
                .map(|&v| {
                    if v == 0 {
                        0
                    } else if max <= u128::from(DISPLAY_PACKET_LIMIT) {
                        v as u32
                    } else {
                        ((v * u128::from(DISPLAY_PACKET_LIMIT)) / max).max(1) as u32
                    }
                })
                .collect()
        })
        .collect();
    let labels = if dimension == 10 {
        LabelSet::paper_default_10()
    } else {
        LabelSet::numeric(dimension)
    };
    // tw-analyze: allow(no-panic-in-lib, "scaled is built above as dimension x dimension, so from_grid cannot reject it")
    TrafficMatrix::from_grid(labels, &scaled).expect("coarsened grid is square")
}

/// A warehouse scene that re-pallets itself on every ingest window.
#[derive(Debug)]
pub struct LiveWarehouse {
    dimension: usize,
    scene: Option<WarehouseScene>,
    windows_seen: u64,
    last_stats: Option<IngestStats>,
}

impl LiveWarehouse {
    /// A live view with `dimension`×`dimension` display pallets (10 matches
    /// the paper's blue/grey/red labelling).
    pub fn new(dimension: usize) -> Self {
        assert!(dimension >= 1, "display dimension must be positive");
        LiveWarehouse {
            dimension,
            scene: None,
            windows_seen: 0,
            last_stats: None,
        }
    }

    /// The display dimension.
    pub fn dimension(&self) -> usize {
        self.dimension
    }

    /// Windows received so far.
    pub fn windows_seen(&self) -> u64 {
        self.windows_seen
    }

    /// Statistics of the most recent window.
    pub fn last_stats(&self) -> Option<&IngestStats> {
        self.last_stats.as_ref()
    }

    /// The current warehouse scene (absent until the first window arrives).
    pub fn scene(&self) -> Option<&WarehouseScene> {
        self.scene.as_ref()
    }

    /// Apply one window: coarsen the matrix and rebuild the scene.
    pub fn on_window(&mut self, report: &WindowReport) {
        let display = coarsen_window(&report.matrix, self.dimension);
        let name = format!("live window {}", report.stats.window_index);
        let labels = display.labels().labels().to_vec();
        let module = ModuleBuilder::new(&name, "tw-ingest")
            .labels(labels)
            // tw-analyze: allow(no-panic-in-lib, "labels come from LabelSet constructors that already validated them")
            .expect("display labels are valid")
            .matrix(display)
            // tw-analyze: allow(no-panic-in-lib, "the matrix was built from these exact labels two lines up")
            .expect("labels were just taken from the matrix")
            .build();
        self.scene = Some(WarehouseScene::build(&module));
        self.windows_seen += 1;
        self.last_stats = Some(report.stats.clone());
    }

    /// Drive any [`WindowStream`] (a live `Pipeline`, a replay, a paced
    /// replay) for up to `max_windows`, re-palleting per window; returns the
    /// stats of every window received.
    pub fn follow<S: WindowStream + ?Sized>(
        &mut self,
        stream: &mut S,
        max_windows: usize,
    ) -> Result<Vec<IngestStats>, StreamError> {
        let mut stats = Vec::new();
        while stats.len() < max_windows {
            let Some(report) = stream.next_window()? else {
                break;
            };
            self.on_window(&report);
            stats.push(report.stats);
        }
        Ok(stats)
    }

    /// Consume a broadcast [`Subscription`] until the broadcast closes (or
    /// `max_windows` arrive), re-palleting per window; returns the stats of
    /// every window received. Blocks between windows like a student's screen
    /// would.
    pub fn follow_subscription(
        &mut self,
        subscription: &Subscription,
        max_windows: usize,
    ) -> Vec<IngestStats> {
        let mut stats = Vec::new();
        while stats.len() < max_windows {
            let Some(report) = subscription.recv() else {
                break;
            };
            self.on_window(&report);
            stats.push(report.stats.clone());
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::GameSession;
    use crate::telemetry::TelemetryEvent;
    use tw_ingest::{Pipeline, PipelineConfig, Scenario};
    use tw_module::ModuleBundle;

    fn ddos_pipeline() -> Pipeline {
        let config = PipelineConfig {
            window_us: 50_000,
            batch_size: 4_096,
            shard_count: 2,
            reorder_horizon_us: 0,
            ..Default::default()
        };
        Pipeline::new(Scenario::Ddos.source(500, 5), config)
    }

    #[test]
    fn coarsening_preserves_structure_and_display_limit() {
        let mut pipeline = ddos_pipeline();
        let report = pipeline.next_window().unwrap();
        let display = coarsen_window(&report.matrix, 10);
        assert_eq!(display.dimension(), 10);
        assert!(display.max_value() <= DISPLAY_PACKET_LIMIT as u32);
        assert!(display.total_packets() > 0);
        // The scaled Fig. 9 victim block (addresses 150..200 of 500) lands in
        // display column 3, which the flood makes the hottest column.
        let col_sums: Vec<u64> = (0..10)
            .map(|c| (0..10).map(|r| u64::from(display.get(r, c).unwrap())).sum())
            .collect();
        let hottest = col_sums
            .iter()
            .enumerate()
            .max_by_key(|&(_, v)| *v)
            .unwrap()
            .0;
        assert_eq!(hottest, 3, "column sums: {col_sums:?}");
    }

    #[test]
    fn live_warehouse_repallets_per_window() {
        let mut live = LiveWarehouse::new(10);
        assert!(live.scene().is_none());
        let mut pipeline = ddos_pipeline();
        let stats = live.follow(&mut pipeline, 3).unwrap();
        assert_eq!(stats.len(), 3);
        assert_eq!(live.windows_seen(), 3);
        assert_eq!(live.dimension(), 10);
        assert_eq!(live.last_stats().unwrap().window_index, 2);
        let scene = live.scene().expect("scene built");
        // The scene really is palleted from the live window: its data node
        // carries the live module name.
        let name = scene.tree.node(scene.data).unwrap().get("name").unwrap();
        assert_eq!(format!("{name}"), "live window 2");
    }

    #[test]
    fn coarsening_survives_u64_boundary_packet_counts() {
        // A single cell at u64::MAX: the old u64 rescale computed
        // v * 14 before dividing, overflowing for any v > u64::MAX / 14
        // (debug panic, wrong pallet colors in release).
        let hot = CsrMatrix::from_dense(&[vec![u64::MAX, 0], vec![0, 3]]).unwrap();
        let display = coarsen_window(&hot, 2);
        assert_eq!(display.get(0, 0).unwrap(), DISPLAY_PACKET_LIMIT as u32);
        // Tiny non-zero cells never round down to zero.
        assert_eq!(display.get(1, 1).unwrap(), 1);

        // Two u64::MAX cells coarsened into one block: the block sum itself
        // overflows u64 and must accumulate in u128.
        let sum_overflow = CsrMatrix::from_dense(&[
            vec![u64::MAX, u64::MAX, 0, 0],
            vec![0, 0, 0, 0],
            vec![0, 0, 0, 0],
            vec![0, 0, 0, 1],
        ])
        .unwrap();
        let display = coarsen_window(&sum_overflow, 2);
        assert_eq!(display.get(0, 0).unwrap(), DISPLAY_PACKET_LIMIT as u32);
        assert_eq!(display.get(1, 1).unwrap(), 1);

        // Exactly at the old overflow boundary, one packet apart.
        for v in [
            u64::MAX / DISPLAY_PACKET_LIMIT,
            u64::MAX / DISPLAY_PACKET_LIMIT + 1,
        ] {
            let m = CsrMatrix::from_dense(&[vec![v, 0], vec![0, 1]]).unwrap();
            let display = coarsen_window(&m, 2);
            assert_eq!(
                display.get(0, 0).unwrap(),
                DISPLAY_PACKET_LIMIT as u32,
                "v = {v}"
            );
        }
    }

    #[test]
    fn non_paper_dimensions_use_numeric_labels() {
        let mut pipeline = ddos_pipeline();
        let report = pipeline.next_window().unwrap();
        let display = coarsen_window(&report.matrix, 5);
        assert_eq!(display.dimension(), 5);
        let mut live = LiveWarehouse::new(5);
        live.on_window(&report);
        assert_eq!(live.windows_seen(), 1);
        assert!(live.scene().is_some());
    }

    #[test]
    fn session_subscribes_to_live_windows() {
        let mut session = GameSession::start(ModuleBundle::new("live"), 1).unwrap();
        session.telemetry().drain();
        session.subscribe_live(10);
        let mut pipeline = ddos_pipeline();
        for _ in 0..2 {
            let report = pipeline.next_window().unwrap();
            session.ingest_window(&report);
        }
        let live = session.live().expect("subscribed");
        assert_eq!(live.windows_seen(), 2);
        assert!(live.scene().is_some());
        let events = session.telemetry().drain();
        let live_events: Vec<_> = events
            .iter()
            .filter(|e| matches!(e, TelemetryEvent::LiveWindow { .. }))
            .collect();
        assert_eq!(live_events.len(), 2);
        assert!(matches!(
            live_events[0],
            TelemetryEvent::LiveWindow {
                window_index: 0,
                ..
            }
        ));
    }

    #[test]
    fn follow_accepts_any_window_stream() {
        use tw_ingest::{ArchiveRecorder, RecordingMeta, ReplaySource};
        // Record two windows, then follow the replay through the same
        // `follow` entry point as the live pipeline.
        let mut pipeline = ddos_pipeline();
        let mut recorder = ArchiveRecorder::new(RecordingMeta {
            scenario: "ddos".to_string(),
            seed: 5,
            node_count: 500,
            window_us: 50_000,
            keyframe_every: 0,
        });
        for report in pipeline.run(2) {
            recorder.record(&report).unwrap();
        }
        let bytes = recorder.finish().unwrap();
        let mut replay = ReplaySource::parse(&bytes).unwrap();
        let mut live = LiveWarehouse::new(10);
        let stats = live.follow(&mut replay, usize::MAX).unwrap();
        assert_eq!(stats.len(), 2);
        assert_eq!(live.windows_seen(), 2);
        assert!(live.scene().is_some());
    }

    #[test]
    fn follow_subscription_consumes_a_broadcast() {
        use crate::broadcast::{BroadcastConfig, Broadcaster, StartOffset};
        let mut caster = Broadcaster::new(BroadcastConfig::default());
        let sub = caster.subscribe(StartOffset::Origin);
        let mut pipeline = ddos_pipeline();
        caster.run(&mut pipeline, 3).unwrap();
        let mut live = LiveWarehouse::new(10);
        let stats = live.follow_subscription(&sub, usize::MAX);
        assert_eq!(stats.len(), 3);
        assert_eq!(live.windows_seen(), 3);
        assert_eq!(live.last_stats().unwrap().window_index, 2);
    }

    #[test]
    fn unsubscribed_session_ignores_windows() {
        let mut session = GameSession::start(ModuleBundle::new("idle"), 1).unwrap();
        let mut pipeline = ddos_pipeline();
        let report = pipeline.next_window().unwrap();
        session.ingest_window(&report);
        assert!(session.live().is_none());
    }
}
