//! The built-in training level (paper Fig. 5).
//!
//! "There is a single built-in module in Traffic Warehouse and that is the
//! training level. This module walks the player through what a traffic matrix
//! is, how to read one, how it is of value to them, and how it will be
//! represented in the game environment. The training module also provides a
//! space for the player to learn the controls of the game without needing to
//! load in a learning module."

// tw-analyze: allow-file(no-panic-in-lib, "training levels are built from the static paper-default labels already validated by their own constructors")
use crate::level::Level;
use crate::view::ViewMode;
use tw_engine::TreeError;
use tw_module::{LearningModule, ModuleBuilder};
use tw_render::Framebuffer;

/// The walk-through steps, matching the three panels of Fig. 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrainingStep {
    /// Fig. 5a — reading the matrix in the top-down 2-D view.
    Read2D,
    /// Fig. 5b — exploring the warehouse in the 3-D view.
    Explore3D,
    /// Fig. 5c — placing the packets (boxes) onto the pallets.
    PlacePackets,
    /// The walk-through is complete; the player can load learning modules.
    Complete,
}

/// The built-in training module: a small 6×6 matrix whose values are easy to
/// read, with an introductory question.
pub fn training_module() -> LearningModule {
    ModuleBuilder::new("Training: Reading a Traffic Matrix", "Traffic Warehouse")
        .labels(["WS1", "WS2", "SRV1", "EXT1", "ADV1", "ADV2"])
        .expect("static labels")
        .traffic("WS1", "SRV1", 3)
        .expect("valid labels")
        .traffic("WS2", "SRV1", 2)
        .expect("valid labels")
        .traffic("SRV1", "EXT1", 1)
        .expect("valid labels")
        .traffic("EXT1", "WS1", 1)
        .expect("valid labels")
        .traffic("ADV1", "ADV2", 2)
        .expect("valid labels")
        .question("How many packets did WS1 send to SRV1?", ["1", "2", "3"], 2)
        .hint("Each box on a pallet is one packet; the pallet's row is the source and its column is the destination.")
        .build()
}

/// The training level: a [`Level`] plus the walk-through step machine and the
/// packet-placement animation state.
#[derive(Debug)]
pub struct TrainingLevel {
    /// The underlying level.
    pub level: Level,
    step: TrainingStep,
    packets_placed: usize,
    total_packets: usize,
}

impl TrainingLevel {
    /// Start the training level.
    pub fn start() -> Result<Self, TreeError> {
        let module = training_module();
        let total_packets = module.matrix.total_packets() as usize;
        let mut level = Level::load(&module, 0)?;
        // The walk-through begins with no packets placed.
        level.view.packets_placed = Some(0);
        Ok(TrainingLevel {
            level,
            step: TrainingStep::Read2D,
            packets_placed: 0,
            total_packets,
        })
    }

    /// The current walk-through step.
    pub fn step(&self) -> TrainingStep {
        self.step
    }

    /// Packets placed so far out of the module's total.
    pub fn placement_progress(&self) -> (usize, usize) {
        (self.packets_placed, self.total_packets)
    }

    /// Advance the walk-through: 2-D reading → 3-D exploration → packet
    /// placement → complete. Entering the 3-D step switches the view mode.
    pub fn advance_step(&mut self) {
        self.step = match self.step {
            TrainingStep::Read2D => {
                if self.level.view.mode == ViewMode::TwoD {
                    self.level.view.toggle_mode();
                }
                TrainingStep::Explore3D
            }
            TrainingStep::Explore3D => TrainingStep::PlacePackets,
            TrainingStep::PlacePackets => {
                // Completing the placement step places any remaining packets.
                self.packets_placed = self.total_packets;
                self.level.view.packets_placed = None;
                TrainingStep::Complete
            }
            TrainingStep::Complete => TrainingStep::Complete,
        };
    }

    /// Place the next packet box onto its pallet (the Fig. 5c interaction).
    /// Returns how many packets are now placed. Only meaningful during the
    /// placement step, but safe to call at any time.
    pub fn place_next_packet(&mut self) -> usize {
        if self.packets_placed < self.total_packets {
            self.packets_placed += 1;
            self.level.view.packets_placed = Some(self.packets_placed);
        }
        if self.packets_placed == self.total_packets {
            self.level.view.packets_placed = None;
        }
        self.packets_placed
    }

    /// True when every packet has been placed.
    pub fn all_packets_placed(&self) -> bool {
        self.packets_placed == self.total_packets
    }

    /// The instruction text shown for the current step.
    pub fn instruction(&self) -> &'static str {
        match self.step {
            TrainingStep::Read2D => {
                "This is a traffic matrix. Each row is a source, each column is a destination, and the number in a cell is how many packets were sent."
            }
            TrainingStep::Explore3D => {
                "Press the spacebar to enter the warehouse. Each cell is a pallet on the floor; rotate the view with Q and E."
            }
            TrainingStep::PlacePackets => {
                "Place one box on a pallet for every packet in the matrix. When every box is placed the warehouse shows the whole matrix."
            }
            TrainingStep::Complete => {
                "Training complete. Load a learning module to analyze real traffic patterns."
            }
        }
    }

    /// Render the three Fig. 5 panels: (a) 2-D view, (b) 3-D view, (c) 3-D view
    /// with all packets placed.
    pub fn render_figure_panels(&mut self, size: usize) -> [Framebuffer; 3] {
        let module = training_module();
        // Panel (a): the 2-D matrix view.
        let panel_a = tw_render::render_matrix_2d(&module.matrix, Some(&module.colors));
        // Panel (b): the 3-D view with no packets placed yet.
        let mut view_b = crate::view::ViewState::new();
        view_b.toggle_mode();
        view_b.packets_placed = Some(0);
        let panel_b = self.level.scene.render(&view_b, size, size);
        // Panel (c): the 3-D view with every packet placed.
        let mut view_c = crate::view::ViewState::new();
        view_c.toggle_mode();
        let panel_c = self.level.scene.render(&view_c, size, size);
        [panel_a, panel_b, panel_c]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tw_module::validate;

    #[test]
    fn training_module_is_valid_and_small() {
        let module = training_module();
        assert!(validate(&module).is_valid());
        assert_eq!(module.dimension(), 6);
        assert_eq!(module.matrix.get_by_label("WS1", "SRV1"), Some(3));
        assert_eq!(
            module.question.as_ref().unwrap().correct_answer(),
            Some("3")
        );
        assert!(module.hint.is_some());
    }

    #[test]
    fn walk_through_steps_in_order() {
        let mut training = TrainingLevel::start().unwrap();
        assert_eq!(training.step(), TrainingStep::Read2D);
        assert_eq!(training.level.view.mode, ViewMode::TwoD);
        training.advance_step();
        assert_eq!(training.step(), TrainingStep::Explore3D);
        assert_eq!(training.level.view.mode, ViewMode::ThreeD);
        training.advance_step();
        assert_eq!(training.step(), TrainingStep::PlacePackets);
        training.advance_step();
        assert_eq!(training.step(), TrainingStep::Complete);
        assert!(training.all_packets_placed());
        training.advance_step();
        assert_eq!(
            training.step(),
            TrainingStep::Complete,
            "complete is terminal"
        );
    }

    #[test]
    fn packet_placement_progresses_one_box_at_a_time() {
        let mut training = TrainingLevel::start().unwrap();
        let (placed, total) = training.placement_progress();
        assert_eq!(placed, 0);
        assert_eq!(total, 9);
        for expected in 1..=total {
            assert_eq!(training.place_next_packet(), expected);
        }
        assert!(training.all_packets_placed());
        // Placing beyond the total is a no-op.
        assert_eq!(training.place_next_packet(), total);
    }

    #[test]
    fn instructions_change_per_step() {
        let mut training = TrainingLevel::start().unwrap();
        let mut seen = vec![training.instruction()];
        for _ in 0..3 {
            training.advance_step();
            seen.push(training.instruction());
        }
        seen.dedup();
        assert_eq!(seen.len(), 4, "each step has its own instruction");
    }

    #[test]
    fn figure_panels_differ_as_in_fig5() {
        let mut training = TrainingLevel::start().unwrap();
        let [a, b, c] = training.render_figure_panels(64);
        // Panel (a) is the flat matrix view, a different size than the 3-D panels.
        assert_ne!(a.width(), b.width());
        // Panels (b) and (c) differ because (c) has the boxes placed.
        assert_ne!(b.to_ascii(), c.to_ascii());
        assert!(c.covered_pixels() >= b.covered_pixels());
    }
}
