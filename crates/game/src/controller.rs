//! The "Pallet and label controller": a native port of the GDScript shown in
//! the paper's implementation section.
//!
//! The original script (attached to the controller node) does three things:
//!
//! 1. in `_ready()`, pull `traffic_matrix_colors` from the pre-loaded JSON in
//!    the `Data` node and flatten it into `pallet_color_array`;
//! 2. `set_labels()`: copy `axis_labels` onto the X and Y label nodes, with
//!    error messages when the label counts disagree;
//! 3. `change_pallet_color()`: toggle every pallet mesh's `material_override`
//!    between the default material and the per-cell color material, using a
//!    `match` with a black fallback for unknown codes.
//!
//! This port performs the same steps against the headless scene tree, so its
//! observable effects (node properties, error strings) can be asserted in
//! tests and compared against the `tw-script` interpretation of the original
//! GDScript.

use tw_engine::{NodeId, SceneTree, TreeError, Variant};

/// Material resource names, mirroring the preloaded `.tres` materials in the
/// paper's script.
pub const MATERIAL_DEFAULT: &str = "pallet_default_material";
/// Red material (color code 2).
pub const MATERIAL_RED: &str = "pallet_material_r";
/// Blue material (color code 1).
pub const MATERIAL_BLUE: &str = "pallet_material_b";
/// Green/grey material (color code 0).
pub const MATERIAL_GREEN: &str = "pallet_material_g";
/// Black fallback material (unknown codes).
pub const MATERIAL_BLACK: &str = "pallet_material_black";

/// The controller state after `_ready()`.
#[derive(Debug)]
pub struct PalletLabelController {
    /// The controller node this "script" is attached to.
    pub node: NodeId,
    data: NodeId,
    x_axis: NodeId,
    y_axis: NodeId,
    pallets: NodeId,
    pallet_color_array: Vec<i64>,
    /// Error messages produced by `printerr` calls, kept for inspection.
    pub errors: Vec<String>,
}

impl PalletLabelController {
    /// Attach the controller to its node and run the `_ready()` logic:
    /// resolve `$"../Data"`, flatten `traffic_matrix_colors`, then `set_labels()`.
    pub fn ready(tree: &mut SceneTree, controller: NodeId) -> Result<Self, TreeError> {
        // @onready var level_data : Node3D = $"../Data"
        let data = tree.get_node(controller, "../Data")?;
        // Exported node references assigned in the Inspector.
        let x_axis = node_ref(tree, controller, "x_axis")?;
        let y_axis = node_ref(tree, controller, "y_axis")?;
        let pallets = node_ref(tree, controller, "pallets")?;

        // for array in level_data.data["traffic_matrix_colors"]: pallet_color_array += array
        let mut pallet_color_array = Vec::new();
        if let Some(Variant::Array(rows)) = tree.node(data)?.get("traffic_matrix_colors").cloned() {
            for row in rows {
                if let Variant::Array(cells) = row {
                    for cell in cells {
                        pallet_color_array.push(cell.as_int().unwrap_or(-1));
                    }
                }
            }
        }

        let mut controller_state = PalletLabelController {
            node: controller,
            data,
            x_axis,
            y_axis,
            pallets,
            pallet_color_array,
            errors: Vec::new(),
        };
        controller_state.set_labels(tree)?;
        Ok(controller_state)
    }

    /// The flattened pallet color codes (row-major).
    pub fn pallet_color_array(&self) -> &[i64] {
        &self.pallet_color_array
    }

    /// The `set_labels()` function from the paper: copy `axis_labels` onto the
    /// text child of every X and Y label holder, with the two error checks.
    pub fn set_labels(&mut self, tree: &mut SceneTree) -> Result<(), TreeError> {
        let y_labels = tree.children(self.y_axis)?;
        let x_labels = tree.children(self.x_axis)?;
        let axis_labels: Vec<String> = match tree.node(self.data)?.get("axis_labels") {
            Some(Variant::Array(items)) => items
                .iter()
                .filter_map(|v| v.as_str().map(str::to_string))
                .collect(),
            _ => Vec::new(),
        };

        if y_labels.len() != x_labels.len() {
            self.errors
                .push("Number of y labels does not match number of x labels!".to_string());
            return Ok(());
        }
        if axis_labels.len() != y_labels.len() {
            self.errors
                .push("Level data does not match number of labels!".to_string());
            return Ok(());
        }
        for (c, label) in axis_labels.iter().enumerate() {
            // y_labels[c].get_child(1).text = label (child 1 is the Text node).
            let y_text = tree.children(y_labels[c])?.get(1).copied();
            let x_text = tree.children(x_labels[c])?.get(1).copied();
            if let Some(id) = y_text {
                tree.node_mut(id)?.set("text", label.as_str());
            }
            if let Some(id) = x_text {
                tree.node_mut(id)?.set("text", label.as_str());
            }
        }
        Ok(())
    }

    /// The `change_pallet_color()` toggle from the paper.
    ///
    /// When pallets are currently colored, reset every pallet mesh to the
    /// default material; otherwise assign each pallet the material matching its
    /// color code (0 → green, 1 → blue, 2 → red, anything else → black).
    pub fn change_pallet_color(&mut self, tree: &mut SceneTree) -> Result<(), TreeError> {
        let pallets_are_colored = tree
            .node(self.node)?
            .get("pallets_are_colored")
            .and_then(Variant::as_bool)
            .unwrap_or(false);
        let pallet_nodes = tree.children(self.pallets)?;

        if pallets_are_colored {
            for &pallet in &pallet_nodes {
                if let Some(&mesh) = tree.children(pallet)?.first() {
                    tree.node_mut(mesh)?
                        .set("material_override", MATERIAL_DEFAULT);
                }
            }
            tree.node_mut(self.node)?.set("pallets_are_colored", false);
        } else {
            for (c, color) in self.pallet_color_array.iter().enumerate() {
                let Some(&pallet) = pallet_nodes.get(c) else {
                    break;
                };
                let material = match color {
                    0 => MATERIAL_GREEN,
                    1 => MATERIAL_BLUE,
                    2 => MATERIAL_RED,
                    _ => MATERIAL_BLACK,
                };
                if let Some(&mesh) = tree.children(pallet)?.first() {
                    tree.node_mut(mesh)?.set("material_override", material);
                }
            }
            tree.node_mut(self.node)?.set("pallets_are_colored", true);
        }
        Ok(())
    }

    /// The material currently applied to the pallet at flat index `i`.
    pub fn pallet_material(&self, tree: &SceneTree, i: usize) -> Option<String> {
        let pallet = *tree.children(self.pallets).ok()?.get(i)?;
        let mesh = *tree.children(pallet).ok()?.first()?;
        tree.node(mesh)
            .ok()?
            .get("material_override")?
            .as_str()
            .map(str::to_string)
    }
}

fn node_ref(tree: &SceneTree, node: NodeId, property: &str) -> Result<NodeId, TreeError> {
    let id = tree
        .node(node)?
        .get(property)
        .and_then(Variant::as_node_ref)
        .ok_or_else(|| TreeError::PathNotFound {
            path: format!("exported property {property:?}"),
            failed_segment: property.to_string(),
        })?;
    let resolved = NodeId(id);
    tree.node(resolved)?;
    Ok(resolved)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::warehouse::WarehouseScene;
    use tw_engine::NodeKind;
    use tw_module::template_10x10;

    fn ready_scene() -> (WarehouseScene, PalletLabelController) {
        let module = template_10x10();
        let mut scene = WarehouseScene::build(&module);
        let controller = PalletLabelController::ready(&mut scene.tree, scene.controller).unwrap();
        (scene, controller)
    }

    #[test]
    fn ready_flattens_the_color_array_like_the_script() {
        let (_, controller) = ready_scene();
        assert_eq!(controller.pallet_color_array().len(), 100);
        // Row 0, cols 6..10 are red (2); row 6, cols 0..4 are blue (1).
        assert_eq!(controller.pallet_color_array()[6], 2);
        assert_eq!(controller.pallet_color_array()[60], 1);
        assert_eq!(controller.pallet_color_array()[44], 0);
        assert!(controller.errors.is_empty());
    }

    #[test]
    fn set_labels_writes_the_axis_labels_to_both_axes() {
        let (scene, _) = ready_scene();
        let tree = &scene.tree;
        let x_holders = tree.children(scene.x_axis).unwrap();
        let y_holders = tree.children(scene.y_axis).unwrap();
        for (i, expected) in [
            "WS1", "WS2", "WS3", "SRV1", "EXT1", "EXT2", "ADV1", "ADV2", "ADV3", "ADV4",
        ]
        .iter()
        .enumerate()
        {
            for holders in [&x_holders, &y_holders] {
                let text_node = tree.children(holders[i]).unwrap()[1];
                assert_eq!(
                    tree.node(text_node).unwrap().get("text").unwrap().as_str(),
                    Some(*expected)
                );
            }
        }
    }

    #[test]
    fn set_labels_reports_mismatches_via_printerr() {
        let module = template_10x10();
        let mut scene = WarehouseScene::build(&module);
        // Remove one Y label holder to break the count match.
        let victim = scene.tree.children(scene.y_axis).unwrap()[9];
        scene.tree.remove(victim).unwrap();
        let controller = PalletLabelController::ready(&mut scene.tree, scene.controller).unwrap();
        assert_eq!(
            controller.errors,
            vec!["Number of y labels does not match number of x labels!"]
        );

        // Now remove one from each axis so counts match each other but not the data.
        let mut scene = WarehouseScene::build(&module);
        for axis in [scene.x_axis, scene.y_axis] {
            let victim = scene.tree.children(axis).unwrap()[9];
            scene.tree.remove(victim).unwrap();
        }
        let controller = PalletLabelController::ready(&mut scene.tree, scene.controller).unwrap();
        assert_eq!(
            controller.errors,
            vec!["Level data does not match number of labels!"]
        );
    }

    #[test]
    fn change_pallet_color_toggles_materials_per_cell() {
        let (mut scene, mut controller) = ready_scene();
        // Initially every pallet mesh carries the default material.
        assert_eq!(
            controller.pallet_material(&scene.tree, 0).unwrap(),
            MATERIAL_DEFAULT
        );

        controller.change_pallet_color(&mut scene.tree).unwrap();
        // Cell (0,6) is red space → red material; (6,0) is blue; (4,4) grey → green.
        assert_eq!(
            controller.pallet_material(&scene.tree, 6).unwrap(),
            MATERIAL_RED
        );
        assert_eq!(
            controller.pallet_material(&scene.tree, 60).unwrap(),
            MATERIAL_BLUE
        );
        assert_eq!(
            controller.pallet_material(&scene.tree, 44).unwrap(),
            MATERIAL_GREEN
        );
        assert_eq!(
            scene
                .tree
                .node(scene.controller)
                .unwrap()
                .get("pallets_are_colored")
                .unwrap()
                .as_bool(),
            Some(true)
        );

        // Toggling again restores the default everywhere.
        controller.change_pallet_color(&mut scene.tree).unwrap();
        for i in [0usize, 6, 44, 60, 99] {
            assert_eq!(
                controller.pallet_material(&scene.tree, i).unwrap(),
                MATERIAL_DEFAULT
            );
        }
        assert_eq!(
            scene
                .tree
                .node(scene.controller)
                .unwrap()
                .get("pallets_are_colored")
                .unwrap()
                .as_bool(),
            Some(false)
        );
    }

    #[test]
    fn unknown_color_codes_fall_back_to_black() {
        let module = template_10x10();
        let mut scene = WarehouseScene::build(&module);
        // Corrupt one color code in the Data node before ready() runs.
        let data = scene.data;
        let mut rows = match scene
            .tree
            .node(data)
            .unwrap()
            .get("traffic_matrix_colors")
            .cloned()
        {
            Some(Variant::Array(rows)) => rows,
            _ => panic!("colors missing"),
        };
        if let Variant::Array(cells) = &mut rows[0] {
            cells[0] = Variant::Int(7);
        }
        scene
            .tree
            .node_mut(data)
            .unwrap()
            .set("traffic_matrix_colors", Variant::Array(rows));

        let mut controller =
            PalletLabelController::ready(&mut scene.tree, scene.controller).unwrap();
        controller.change_pallet_color(&mut scene.tree).unwrap();
        assert_eq!(
            controller.pallet_material(&scene.tree, 0).unwrap(),
            MATERIAL_BLACK
        );
    }

    #[test]
    fn ready_fails_without_a_data_sibling() {
        let mut tree = SceneTree::new("Broken level");
        let controller = tree
            .spawn(tree.root(), "Pallet and label controller", NodeKind::Node3D)
            .unwrap();
        assert!(PalletLabelController::ready(&mut tree, controller).is_err());
    }
}
