//! The game session: walking a module bundle from start to finish.
//!
//! "Traffic Warehouse will take the zip file and load each of the JSON files
//! contained in it and present them sequentially one at a time."

use crate::broadcast::Subscription;
use crate::level::Level;
use crate::live::LiveWarehouse;
use crate::telemetry::{TelemetryEvent, TelemetryHub};
use tw_engine::input::{Action, InputEvent};
use tw_engine::TreeError;
use tw_ingest::WindowReport;
use tw_module::ModuleBundle;
use tw_quiz::{QuestionOutcome, SessionScore};

/// Where the session currently is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GamePhase {
    /// A module is on screen and the student is exploring it.
    Exploring,
    /// The module's question has been answered; waiting to advance.
    Answered,
    /// Every module has been completed.
    Finished,
}

/// A play-through of one module bundle.
#[derive(Debug)]
pub struct GameSession {
    bundle: ModuleBundle,
    seed: u64,
    current_index: usize,
    current_level: Option<Level>,
    phase: GamePhase,
    score: SessionScore,
    telemetry: TelemetryHub,
    live: Option<LiveWarehouse>,
    broadcast: Option<Subscription>,
}

impl GameSession {
    /// Start a session over a bundle. The seed drives per-module answer shuffles.
    pub fn start(bundle: ModuleBundle, seed: u64) -> Result<Self, TreeError> {
        let telemetry = TelemetryHub::new();
        telemetry.publish(TelemetryEvent::BundleLoaded {
            name: bundle.name.clone(),
            modules: bundle.len(),
        });
        let mut session = GameSession {
            bundle,
            seed,
            current_index: 0,
            current_level: None,
            phase: GamePhase::Finished,
            score: SessionScore::default(),
            telemetry,
            live: None,
            broadcast: None,
        };
        session.load_current()?;
        Ok(session)
    }

    fn load_current(&mut self) -> Result<(), TreeError> {
        if self.current_index >= self.bundle.len() {
            self.current_level = None;
            self.phase = GamePhase::Finished;
            self.telemetry.publish(TelemetryEvent::SessionCompleted {
                correct: self.score.correct,
                answered: self.score.answered(),
            });
            return Ok(());
        }
        let module = &self.bundle.modules()[self.current_index];
        let shuffle_seed = self
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(self.current_index as u64);
        self.current_level = Some(Level::load(module, shuffle_seed)?);
        self.phase = GamePhase::Exploring;
        self.telemetry.publish(TelemetryEvent::ModuleStarted {
            index: self.current_index,
            name: module.name.clone(),
        });
        Ok(())
    }

    /// The current phase.
    pub fn phase(&self) -> GamePhase {
        self.phase
    }

    /// The index of the module currently on screen.
    pub fn current_index(&self) -> usize {
        self.current_index
    }

    /// The level currently on screen, if the session is not finished.
    pub fn current_level(&self) -> Option<&Level> {
        self.current_level.as_ref()
    }

    /// Mutable access to the current level (for rendering with view changes).
    pub fn current_level_mut(&mut self) -> Option<&mut Level> {
        self.current_level.as_mut()
    }

    /// The running score.
    pub fn score(&self) -> &SessionScore {
        &self.score
    }

    /// The telemetry hub (drain it to observe events).
    pub fn telemetry(&self) -> &TelemetryHub {
        &self.telemetry
    }

    /// True when every module has been completed.
    pub fn is_finished(&self) -> bool {
        self.phase == GamePhase::Finished
    }

    /// Subscribe this session to live ingest windows: each
    /// [`WindowReport`] passed to [`GameSession::ingest_window`] re-pallets
    /// a live warehouse scene with `dimension`×`dimension` display pallets.
    pub fn subscribe_live(&mut self, dimension: usize) {
        self.live = Some(LiveWarehouse::new(dimension));
    }

    /// The live warehouse view, if subscribed.
    pub fn live(&self) -> Option<&LiveWarehouse> {
        self.live.as_ref()
    }

    /// Join a classroom broadcast: windows pushed by the
    /// [`Broadcaster`](crate::broadcast::Broadcaster) behind `subscription`
    /// re-pallet this session's live warehouse (`dimension`×`dimension`
    /// display pallets). The session owns the subscription handle — it no
    /// longer needs (or sees) the pipeline that produces the windows.
    pub fn join_broadcast(&mut self, dimension: usize, subscription: Subscription) {
        self.subscribe_live(dimension);
        self.broadcast = Some(subscription);
    }

    /// The joined broadcast subscription, if any.
    pub fn subscription(&self) -> Option<&Subscription> {
        self.broadcast.as_ref()
    }

    /// Ingest every window already buffered on the joined subscription
    /// without blocking; returns how many were applied.
    pub fn poll_broadcast(&mut self) -> usize {
        let Some(subscription) = self.broadcast.take() else {
            return 0;
        };
        let mut applied = 0;
        while let Some(report) = subscription.try_recv() {
            self.ingest_window(&report);
            applied += 1;
        }
        self.broadcast = Some(subscription);
        applied
    }

    /// Follow the joined broadcast until it closes (or `max_windows`
    /// arrive), blocking between windows; returns how many were applied.
    /// A session that never joined returns 0 immediately.
    pub fn follow_broadcast(&mut self, max_windows: usize) -> usize {
        let Some(subscription) = self.broadcast.take() else {
            return 0;
        };
        let mut applied = 0;
        while applied < max_windows {
            let Some(report) = subscription.recv() else {
                break;
            };
            self.ingest_window(&report);
            applied += 1;
        }
        self.broadcast = Some(subscription);
        applied
    }

    /// Deliver one ingest window to the live view (no-op when not
    /// subscribed) and publish it on the telemetry stream.
    pub fn ingest_window(&mut self, report: &WindowReport) {
        let Some(live) = self.live.as_mut() else {
            return;
        };
        live.on_window(report);
        self.telemetry.publish(TelemetryEvent::LiveWindow {
            window_index: report.stats.window_index,
            events: report.stats.events,
            nnz: report.stats.nnz,
        });
    }

    /// Answer the current module's question by display index.
    pub fn answer(&mut self, display_index: usize) -> Option<QuestionOutcome> {
        if self.phase != GamePhase::Exploring {
            return None;
        }
        let level = self.current_level.as_mut()?;
        let outcome = level.answer(display_index);
        self.score.record(outcome);
        self.telemetry.publish(TelemetryEvent::Answered {
            module_index: self.current_index,
            correct: outcome == QuestionOutcome::Correct,
        });
        self.phase = GamePhase::Answered;
        Some(outcome)
    }

    /// Skip the current module's question (open-discussion mode) and move on.
    pub fn skip(&mut self) -> Result<(), TreeError> {
        if self.phase == GamePhase::Finished {
            return Ok(());
        }
        self.score.record(QuestionOutcome::Skipped);
        self.complete_current()
    }

    /// Advance to the next module after answering.
    pub fn advance(&mut self) -> Result<(), TreeError> {
        match self.phase {
            GamePhase::Answered => self.complete_current(),
            GamePhase::Exploring | GamePhase::Finished => Ok(()),
        }
    }

    fn complete_current(&mut self) -> Result<(), TreeError> {
        self.telemetry.publish(TelemetryEvent::ModuleCompleted {
            index: self.current_index,
        });
        self.current_index += 1;
        self.load_current()
    }

    /// Route an input event: view controls go to the current level, answer keys
    /// answer the question, Enter advances after answering.
    pub fn handle_input(&mut self, event: InputEvent) -> Result<Option<Action>, TreeError> {
        let action = {
            let Some(level) = self.current_level.as_mut() else {
                return Ok(None);
            };
            level.handle_input(event)?
        };
        match action {
            Some(Action::ChooseAnswer(option)) => {
                self.answer(option as usize);
            }
            Some(Action::Advance) => self.advance()?,
            Some(Action::ToggleView) => {
                let now_3d = self
                    .current_level
                    .as_ref()
                    .map(|l| l.view.mode == crate::view::ViewMode::ThreeD)
                    .unwrap_or(false);
                self.telemetry
                    .publish(TelemetryEvent::ViewToggled { now_3d });
            }
            Some(Action::RotateLeft) | Some(Action::RotateRight) => {
                if let Some(level) = self.current_level.as_ref() {
                    self.telemetry.publish(TelemetryEvent::ViewRotated {
                        steps: level.view.rotation_steps,
                    });
                }
            }
            Some(Action::ToggleColors) => {
                if let Some(level) = self.current_level.as_ref() {
                    self.telemetry.publish(TelemetryEvent::ColorsToggled {
                        now_colored: level.view.colors_on,
                    });
                }
            }
            _ => {}
        }
        Ok(action)
    }

    /// Play the whole bundle automatically, answering every question with the
    /// given per-question policy (`true` = answer correctly). Used by the
    /// classroom simulator and the pipeline benchmark.
    pub fn autoplay(
        &mut self,
        mut answer_correctly: impl FnMut(usize) -> bool,
    ) -> Result<(), TreeError> {
        while !self.is_finished() {
            let index = self.current_index;
            let choice = {
                // tw-analyze: allow(no-panic-in-lib, "the while guard ensures a current level exists until is_finished flips")
                let level = self.current_level.as_ref().expect("not finished");
                match level.question() {
                    Some(q) => {
                        if answer_correctly(index) {
                            q.correct_index
                        } else {
                            (q.correct_index + 1) % q.option_count()
                        }
                    }
                    None => 0,
                }
            };
            self.answer(choice);
            self.advance()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tw_engine::input::Key;
    use tw_module::library::{basics_bundle, figure_bundle};
    use tw_patterns::Figure;

    #[test]
    fn full_play_through_with_correct_answers() {
        let bundle = figure_bundle(Figure::Ddos);
        let mut session = GameSession::start(bundle, 7).unwrap();
        assert_eq!(session.phase(), GamePhase::Exploring);
        session.autoplay(|_| true).unwrap();
        assert!(session.is_finished());
        assert_eq!(session.score().correct, 4);
        assert_eq!(session.score().incorrect, 0);
        let events = session.telemetry().drain();
        assert!(matches!(
            events[0],
            TelemetryEvent::BundleLoaded { modules: 4, .. }
        ));
        assert!(events.iter().any(|e| matches!(
            e,
            TelemetryEvent::SessionCompleted {
                correct: 4,
                answered: 4
            }
        )));
        // 1 bundle + 4 module starts + 4 answers + 4 completions + 1 session end.
        assert_eq!(events.len(), 14);
    }

    #[test]
    fn mixed_answers_are_scored() {
        let bundle = basics_bundle();
        let mut session = GameSession::start(bundle, 3).unwrap();
        session.autoplay(|index| index == 0).unwrap();
        assert_eq!(session.score().correct, 1);
        assert_eq!(session.score().incorrect, 1);
        assert!((session.score().accuracy().unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn answer_then_advance_via_input_events() {
        let bundle = basics_bundle();
        let mut session = GameSession::start(bundle, 1).unwrap();
        // Find which display key answers correctly for the first module.
        let correct = session
            .current_level()
            .unwrap()
            .question()
            .unwrap()
            .correct_index as u8;
        session
            .handle_input(InputEvent::Pressed(Key::Digit(correct + 1)))
            .unwrap();
        assert_eq!(session.phase(), GamePhase::Answered);
        // Answering again in the Answered phase is ignored.
        assert_eq!(session.answer(0), None);
        session
            .handle_input(InputEvent::Pressed(Key::Enter))
            .unwrap();
        assert_eq!(session.current_index(), 1);
        assert_eq!(session.phase(), GamePhase::Exploring);
    }

    #[test]
    fn skipping_modules_counts_as_skipped() {
        let bundle = basics_bundle();
        let mut session = GameSession::start(bundle, 1).unwrap();
        session.skip().unwrap();
        session.skip().unwrap();
        assert!(session.is_finished());
        assert_eq!(session.score().skipped, 2);
        // Skipping or advancing after the end is a no-op.
        session.skip().unwrap();
        session.advance().unwrap();
        assert!(session.is_finished());
    }

    #[test]
    fn view_interactions_emit_telemetry() {
        let bundle = basics_bundle();
        let mut session = GameSession::start(bundle, 1).unwrap();
        session.telemetry().drain();
        session
            .handle_input(InputEvent::Pressed(Key::Space))
            .unwrap();
        session.handle_input(InputEvent::Pressed(Key::E)).unwrap();
        session.handle_input(InputEvent::Pressed(Key::C)).unwrap();
        let events = session.telemetry().drain();
        assert!(events.contains(&TelemetryEvent::ViewToggled { now_3d: true }));
        assert!(events.contains(&TelemetryEvent::ViewRotated { steps: 1 }));
        assert!(events.contains(&TelemetryEvent::ColorsToggled { now_colored: true }));
    }

    #[test]
    fn session_consumes_a_broadcast_subscription() {
        use crate::broadcast::{BroadcastConfig, Broadcaster, StartOffset};
        use tw_ingest::{Pipeline, PipelineConfig, Scenario};

        let mut caster = Broadcaster::new(BroadcastConfig::default());
        let sub = caster.subscribe(StartOffset::Origin);
        let mut session = GameSession::start(ModuleBundle::new("class"), 1).unwrap();
        assert_eq!(session.follow_broadcast(usize::MAX), 0, "not joined yet");
        session.join_broadcast(10, sub);
        assert!(session.subscription().is_some());
        assert_eq!(session.poll_broadcast(), 0, "nothing broadcast yet");

        let config = PipelineConfig {
            window_us: 50_000,
            batch_size: 4_096,
            shard_count: 2,
            reorder_horizon_us: 0,
            ..Default::default()
        };
        let mut pipeline = Pipeline::new(Scenario::Ddos.source(200, 9), config);
        caster.step(&mut pipeline).unwrap();
        assert_eq!(session.poll_broadcast(), 1, "first window applied");
        caster.run(&mut pipeline, 2).unwrap();
        assert_eq!(session.follow_broadcast(usize::MAX), 2);
        let live = session.live().expect("joined");
        assert_eq!(live.windows_seen(), 3);
        assert!(live.scene().is_some());
        // The session received the windows through the handle alone — and the
        // telemetry stream saw every live window.
        let live_events = session
            .telemetry()
            .drain()
            .into_iter()
            .filter(|e| matches!(e, TelemetryEvent::LiveWindow { .. }))
            .count();
        assert_eq!(live_events, 3);
    }

    #[test]
    fn empty_bundle_finishes_immediately() {
        let session = GameSession::start(ModuleBundle::new("empty"), 0).unwrap();
        assert!(session.is_finished());
        assert!(session.current_level().is_none());
    }
}
