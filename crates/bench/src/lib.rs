//! Shared helpers for the Traffic Warehouse benchmark harness.
//!
//! Each Criterion bench target regenerates one group of artifacts from the
//! paper (see DESIGN.md's per-experiment index) and prints the reproduced
//! rows/series before timing the code paths that produce them, so
//! `bench_output.txt` doubles as the experiment record.

/// Print a banner separating one experiment's output in the bench log.
pub fn banner(experiment: &str, description: &str) {
    println!("\n================================================================");
    println!("[{experiment}] {description}");
    println!("================================================================");
}

/// Criterion settings shared by all benches: small sample counts so the whole
/// suite completes quickly while still producing stable medians.
pub fn quick_criterion() -> criterion::Criterion {
    criterion::Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_millis(600))
        .without_plots()
}
