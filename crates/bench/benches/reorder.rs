//! E-S5 — watermarked out-of-order ingest overhead.
//!
//! The correctness fix behind the reordering stage (a skewed stream loses
//! nothing when the horizon covers the disorder) must not cost the ordered
//! fast path anything and must keep the reorder path within a small factor
//! of it. Both pipelines consume pre-materialized event vectors through the
//! same replay source, so the measurement isolates routing + reordering from
//! event generation. Medians land in `BENCH_reorder.json` via the criterion
//! shim.
//!
//! Event count defaults to 1e6; set `TW_REORDER_BENCH_EVENTS` to shrink it
//! (CI's bench smoke step runs with a tiny count).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tw_bench::{banner, quick_criterion};
use tw_core::ingest::{collect_events, EventSource, Pipeline, PipelineConfig, Scenario};
use tw_core::matrix::stream::PacketEvent;

const NODES: u32 = 1024;
const SEED: u64 = 11;
const SKEW_US: u64 = 5_000;
const WINDOW_US: u64 = 100_000;

fn event_count() -> usize {
    std::env::var("TW_REORDER_BENCH_EVENTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1_000_000)
}

/// Replay a pre-collected event vector in arrival order.
struct ReplayEvents<'a> {
    events: &'a [PacketEvent],
    cursor: usize,
}

impl EventSource for ReplayEvents<'_> {
    fn node_count(&self) -> u32 {
        NODES
    }
    fn pull(&mut self, max: usize, out: &mut Vec<PacketEvent>) -> usize {
        let take = max.min(self.events.len() - self.cursor);
        out.extend_from_slice(&self.events[self.cursor..self.cursor + take]);
        self.cursor += take;
        take
    }
}

fn run(events: &'static [PacketEvent], horizon_us: u64) -> (u64, u64, u64) {
    let config = PipelineConfig {
        window_us: WINDOW_US,
        batch_size: 8_192,
        shard_count: 8,
        reorder_horizon_us: horizon_us,
        ..Default::default()
    };
    let source = ReplayEvents { events, cursor: 0 };
    let mut pipeline = Pipeline::new(Box::new(source), config);
    let reports = pipeline.run(usize::MAX);
    (
        reports.iter().map(|r| r.stats.events).sum(),
        reports.iter().map(|r| r.stats.dropped_late).sum(),
        reports.iter().map(|r| r.stats.reordered).sum(),
    )
}

fn bench_reorder(c: &mut Criterion) {
    let count = event_count();
    banner(
        "E-S5",
        "Watermarked reordering overhead (ordered vs skewed ingest)",
    );
    // The same mixed scenario twice: once sorted (the pre-watermark input
    // contract) and once through drifting per-source clocks.
    let ordered: &'static [PacketEvent] = {
        let mut source = Scenario::Mixed.source(NODES, SEED);
        collect_events(source.as_mut(), count).leak()
    };
    let (skewed, bound): (&'static [PacketEvent], u64) = {
        let (mut source, bound) = Scenario::Mixed.skewed_source(NODES, SEED, SKEW_US);
        (collect_events(source.as_mut(), count).leak(), bound)
    };
    let horizon = bound;
    let (events, dropped, reordered) = run(skewed, horizon);
    assert_eq!(events, count as u64, "a covered horizon loses nothing");
    assert_eq!(dropped, 0);
    println!(
        "{count} events over {NODES} nodes; skew {SKEW_US} us (disorder bound {bound} us), \
         horizon {horizon} us: {reordered} reordered, 0 dropped"
    );

    let mut group = c.benchmark_group(format!("reorder_{count}_events"));
    group.bench_with_input(
        BenchmarkId::new("ordered", "strict"),
        &ordered,
        |b, &events| b.iter(|| black_box(run(events, 0))),
    );
    group.bench_with_input(
        BenchmarkId::new("ordered", "with_horizon"),
        &ordered,
        |b, &events| b.iter(|| black_box(run(events, horizon))),
    );
    group.bench_with_input(
        BenchmarkId::new("skewed", "with_horizon"),
        &skewed,
        |b, &events| b.iter(|| black_box(run(events, horizon))),
    );
    group.finish();

    // Overhead summary for the experiment record (the acceptance bound is
    // skewed-with-horizon <= 1.5x ordered-strict).
    let started = std::time::Instant::now();
    black_box(run(ordered, 0));
    let ordered_elapsed = started.elapsed();
    let started = std::time::Instant::now();
    black_box(run(skewed, horizon));
    let skewed_elapsed = started.elapsed();
    println!(
        "ordered strict {:.2} ms vs skewed+horizon {:.2} ms: {:.2}x overhead",
        ordered_elapsed.as_secs_f64() * 1e3,
        skewed_elapsed.as_secs_f64() * 1e3,
        skewed_elapsed.as_secs_f64() / ordered_elapsed.as_secs_f64().max(1e-9),
    );
}

criterion_group! {
    name = benches;
    config = quick_criterion();
    targets = bench_reorder
}
criterion_main!(benches);
