//! E-S3 — sharded streaming-ingest throughput.
//!
//! The scaling claim behind the new ingest subsystem: turning a million-event
//! scenario stream into windowed hypersparse matrices is faster through the
//! sharded accumulator (hash-partition by source row, per-shard coalesce,
//! blocked row-disjoint merge) than through the serial single-COO path, and
//! the advantage holds per window inside the full pipeline.
//!
//! Event count defaults to 1e6; set `TW_INGEST_BENCH_EVENTS` to shrink it
//! (CI's bench smoke step runs with a tiny count). Medians land in
//! `BENCH_ingest.json` via the criterion shim.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tw_bench::{banner, quick_criterion};
use tw_core::ingest::{
    collect_events, window_matrix, Pipeline, PipelineConfig, Scenario, ShardedAccumulator,
};

fn event_count() -> usize {
    std::env::var("TW_INGEST_BENCH_EVENTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1_000_000)
}

fn bench_ingest(c: &mut Criterion) {
    let nodes = 1024u32;
    let events = {
        let mut source = Scenario::Mixed.source(nodes, 11);
        collect_events(source.as_mut(), event_count())
    };
    banner(
        "E-S3",
        "Sharded ingest throughput (serial COO vs sharded accumulator, full pipeline)",
    );
    println!(
        "{} events over {nodes} nodes; serial reference nnz {}",
        events.len(),
        window_matrix(nodes as usize, &events).nnz()
    );

    // One-shot accumulation: the whole stream as a single window.
    let mut group = c.benchmark_group(format!("ingest_{}_events", events.len()));
    group.bench_function("serial_window_matrix", |b| {
        b.iter(|| black_box(window_matrix(nodes as usize, &events).nnz()))
    });
    for &shards in &[2usize, 4, 8, 16] {
        group.bench_with_input(
            BenchmarkId::new("sharded_merge", shards),
            &shards,
            |b, &shards| {
                b.iter(|| {
                    let mut acc = ShardedAccumulator::new(nodes as usize, shards);
                    acc.ingest_batch(&events);
                    black_box(acc.merge().nnz())
                })
            },
        );
    }
    group.finish();

    // Full pipeline: pull → route → window rotation, 10 simulated windows.
    let window_events = (event_count() / 10).max(1_000);
    let mut group = c.benchmark_group("ingest_pipeline");
    for scenario in [Scenario::Background, Scenario::Ddos] {
        group.bench_with_input(
            BenchmarkId::new("ten_windows", scenario),
            &scenario,
            |b, scenario| {
                b.iter(|| {
                    // The catalog runs at ~100k events per simulated second,
                    // i.e. one event every ~10 µs: size the window so each
                    // holds ~window_events events.
                    let config = PipelineConfig {
                        window_us: (window_events as u64) * 10,
                        batch_size: 8_192,
                        shard_count: 8,
                        reorder_horizon_us: 0,
                    };
                    let mut pipeline = Pipeline::new(scenario.source(nodes, 3), config);
                    let reports = pipeline.run(10);
                    black_box(reports.iter().map(|r| r.stats.events).sum::<u64>())
                })
            },
        );
    }
    group.finish();

    // Events/sec summary for the experiment record.
    let mut acc = ShardedAccumulator::new(nodes as usize, 8);
    let started = std::time::Instant::now();
    acc.ingest_batch(&events);
    let matrix = acc.merge();
    let elapsed = started.elapsed().as_secs_f64();
    println!(
        "sharded(8): {} events -> nnz {} in {:.1} ms = {:.2} M events/s",
        events.len(),
        matrix.nnz(),
        elapsed * 1e3,
        events.len() as f64 / elapsed / 1e6
    );
}

criterion_group! {
    name = benches;
    config = quick_criterion();
    targets = bench_ingest
}
criterion_main!(benches);
