//! E-S3 — sharded streaming-ingest throughput.
//!
//! Two claims, both asserted inside the bench body:
//!
//! 1. The original scaling claim: turning a million-event scenario stream
//!    into windowed hypersparse matrices is faster through the sharded
//!    accumulator (hash-partition by source row, per-shard coalesce, blocked
//!    row-disjoint merge) than through the serial single-COO path.
//! 2. The hot-path claim behind the parallel routing + scratch-recycling
//!    rework: the current pipeline (batched window scan, `route_batch`
//!    fan-out, warm rotation scratch, recycled CSR storage) beats a faithful
//!    replica of the pre-rework per-event loop (VecDeque pop + per-event
//!    window division + one-event routing + cold fresh-allocation merges)
//!    by at least 1.25x on the same ten-window workload.
//!
//! Event count defaults to 1e6; set `TW_INGEST_BENCH_EVENTS` to shrink it
//! (CI's bench smoke step runs with a tiny count, where the speedup
//! assertion is skipped because sub-millisecond rounds are all noise).
//! Medians land in `BENCH_ingest.json` via the criterion shim.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rayon::prelude::*;
use std::collections::VecDeque;
use std::hint::black_box;
use std::time::Instant;
use tw_bench::{banner, quick_criterion};
use tw_core::ingest::{
    collect_events, window_matrix, Pipeline, PipelineConfig, Scenario, ShardedAccumulator,
};
use tw_core::matrix::stream::PacketEvent;
use tw_core::matrix::CsrMatrix;

fn event_count() -> usize {
    std::env::var("TW_INGEST_BENCH_EVENTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1_000_000)
}

/// The pre-rework sharded accumulator, replicated verbatim from the
/// committed code this rework replaced and FROZEN here: Fibonacci-hash
/// routing one event at a time, and a rotation that swaps in fresh shard
/// vectors, sorts every shard unconditionally, unpacks into 24-byte COO
/// triples and builds the CSR matrix from fresh allocations. Keeping the
/// replica self-contained (instead of driving the live accumulator in a
/// compatibility mode) pins the baseline: later improvements to the live
/// merge path cannot retroactively speed the baseline up and understate the
/// rework's win.
struct LegacyAccumulator {
    node_count: usize,
    shards: Vec<Vec<(u64, u64)>>,
    events: u64,
    packets: u64,
}

impl LegacyAccumulator {
    fn new(node_count: usize, shard_count: usize) -> Self {
        LegacyAccumulator {
            node_count,
            shards: vec![Vec::new(); shard_count],
            events: 0,
            packets: 0,
        }
    }

    #[inline]
    fn shard_of(&self, row: usize) -> usize {
        let hashed = (row as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        ((hashed >> 32) as usize) % self.shards.len()
    }

    #[inline]
    fn ingest(&mut self, event: &PacketEvent) {
        let row = event.source as usize;
        let shard = self.shard_of(row);
        let key = (u64::from(event.source) << 32) | u64::from(event.destination);
        self.shards[shard].push((key, u64::from(event.packets)));
        self.events += 1;
        self.packets += u64::from(event.packets);
    }

    fn merge(&mut self) -> CsrMatrix<u64> {
        let fresh = vec![Vec::new(); self.shards.len()];
        let shards = std::mem::replace(&mut self.shards, fresh);
        self.events = 0;
        self.packets = 0;
        let blocks: Vec<Vec<(usize, usize, u64)>> =
            shards.into_par_iter().map(legacy_coalesce_packed).collect();
        CsrMatrix::from_row_disjoint_blocks(self.node_count, self.node_count, blocks)
    }
}

/// The pre-rework per-shard coalesce: sort the packed entries, sum duplicate
/// coordinates, unpack into freshly allocated sorted COO triples.
fn legacy_coalesce_packed(mut entries: Vec<(u64, u64)>) -> Vec<(usize, usize, u64)> {
    entries.sort_unstable_by_key(|&(key, _)| key);
    let mut out: Vec<(usize, usize, u64)> = Vec::with_capacity(entries.len());
    let mut push = |key: u64, packets: u64| {
        if packets != 0 {
            out.push(((key >> 32) as usize, (key & 0xFFFF_FFFF) as usize, packets));
        }
    };
    let mut iter = entries.into_iter();
    let Some((mut run_key, mut run_packets)) = iter.next() else {
        return out;
    };
    for (key, packets) in iter {
        if key == run_key {
            run_packets += packets;
        } else {
            push(run_key, run_packets);
            run_key = key;
            run_packets = packets;
        }
    }
    push(run_key, run_packets);
    out
}

/// The pre-rework ingest hot loop around [`LegacyAccumulator`], replicated
/// faithfully from the committed pipeline this rework replaced: one VecDeque
/// pop per event, one `timestamp / window_us` division per event,
/// one-event-at-a-time routing, and the cold fresh-allocation rotation
/// above. Report assembly and stats bookkeeping are omitted, which only
/// makes the replica FASTER than the real predecessor — the speedup
/// assertion is conservative.
fn legacy_ten_windows(scenario: Scenario, nodes: u32, window_us: u64) -> u64 {
    let mut source = scenario.source(nodes, 3);
    let mut pending: VecDeque<PacketEvent> = VecDeque::new();
    let mut batch: Vec<PacketEvent> = Vec::new();
    let mut acc = LegacyAccumulator::new(nodes as usize, 8);
    let mut current = 0u64;
    let mut emitted = 0usize;
    let mut total_events = 0u64;
    'outer: while emitted < 10 {
        while let Some(event) = pending.front() {
            let window = event.timestamp_us / window_us;
            if window == current {
                let event = pending.pop_front().expect("front just observed");
                acc.ingest(&event);
                total_events += 1;
            } else {
                black_box(acc.merge().nnz());
                current += 1;
                emitted += 1;
                if emitted >= 10 {
                    break 'outer;
                }
            }
        }
        batch.clear();
        if source.pull(8_192, &mut batch) == 0 {
            break;
        }
        pending.extend(batch.iter().copied());
    }
    total_events
}

/// The current hot path as a consumer actually drives it: batched scan +
/// parallel routing inside the pipeline, and every emitted matrix handed
/// back through `recycle_window` so rotation storage cycles instead of
/// being reallocated.
fn routed_ten_windows(scenario: Scenario, nodes: u32, window_us: u64) -> u64 {
    let config = PipelineConfig {
        window_us,
        batch_size: 8_192,
        shard_count: 8,
        reorder_horizon_us: 0,
        ..Default::default()
    };
    let mut pipeline = Pipeline::new(scenario.source(nodes, 3), config);
    let mut total_events = 0u64;
    let mut emitted = 0usize;
    while emitted < 10 {
        let Some(report) = pipeline.next_window() else {
            break;
        };
        total_events += report.stats.events;
        pipeline.recycle_window(report.matrix);
        emitted += 1;
    }
    total_events
}

/// The minimum over rounds: scheduler and cache noise only ever ADD time, so
/// the fastest observed round is the least-contaminated estimate of the true
/// cost — the estimator of choice for an A/B ratio on a shared machine.
fn fastest(samples: &[f64]) -> f64 {
    samples.iter().copied().fold(f64::INFINITY, f64::min)
}

fn bench_ingest(c: &mut Criterion) {
    let nodes = 1024u32;
    let events = {
        let mut source = Scenario::Mixed.source(nodes, 11);
        collect_events(source.as_mut(), event_count())
    };
    banner(
        "E-S3",
        "Sharded ingest throughput (serial COO vs sharded accumulator, full pipeline)",
    );
    println!(
        "{} events over {nodes} nodes; serial reference nnz {}",
        events.len(),
        window_matrix(nodes as usize, &events).nnz()
    );

    // One-shot accumulation: the whole stream as a single window.
    let mut group = c.benchmark_group(format!("ingest_{}_events", events.len()));
    group.bench_function("serial_window_matrix", |b| {
        b.iter(|| black_box(window_matrix(nodes as usize, &events).nnz()))
    });
    for &shards in &[2usize, 4, 8, 16] {
        group.bench_with_input(
            BenchmarkId::new("sharded_merge", shards),
            &shards,
            |b, &shards| {
                b.iter(|| {
                    let mut acc = ShardedAccumulator::new(nodes as usize, shards);
                    acc.ingest_batch(&events);
                    black_box(acc.merge().nnz())
                })
            },
        );
    }
    group.finish();

    // Full pipeline: pull → route → window rotation, 10 simulated windows.
    // The catalog runs at ~100k events per simulated second, i.e. one event
    // every ~10 µs: size the window so each holds ~window_events events.
    let window_events = (event_count() / 10).max(1_000);
    let window_us = (window_events as u64) * 10;
    let mut group = c.benchmark_group("ingest_pipeline");
    for scenario in [Scenario::Background, Scenario::Ddos] {
        group.bench_with_input(
            BenchmarkId::new("ten_windows", scenario),
            &scenario,
            |b, scenario| {
                b.iter(|| {
                    let config = PipelineConfig {
                        window_us,
                        batch_size: 8_192,
                        shard_count: 8,
                        reorder_horizon_us: 0,
                        ..Default::default()
                    };
                    let mut pipeline = Pipeline::new(scenario.source(nodes, 3), config);
                    let reports = pipeline.run(10);
                    black_box(reports.iter().map(|r| r.stats.events).sum::<u64>())
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("ten_windows_recycled", scenario),
            &scenario,
            |b, scenario| b.iter(|| black_box(routed_ten_windows(*scenario, nodes, window_us))),
        );
        group.bench_with_input(
            BenchmarkId::new("ten_windows_legacy", scenario),
            &scenario,
            |b, scenario| b.iter(|| black_box(legacy_ten_windows(*scenario, nodes, window_us))),
        );
    }
    group.finish();

    // --- The hot-path speedup bound, measured by hand with interleaved
    // rounds so slow drift (thermal, scheduler) hits both sides equally.
    const ROUNDS: usize = 9;
    const REQUIRED_SPEEDUP: f64 = 1.25;
    for scenario in [Scenario::Background, Scenario::Ddos] {
        let mut legacy_s = Vec::with_capacity(ROUNDS);
        let mut routed_s = Vec::with_capacity(ROUNDS);
        // One untimed warm-up pair: first touch of the scenario tables and
        // the allocator is not what we are bounding.
        black_box(legacy_ten_windows(scenario, nodes, window_us));
        black_box(routed_ten_windows(scenario, nodes, window_us));
        let mut legacy_events = 0u64;
        let mut routed_events = 0u64;
        for _ in 0..ROUNDS {
            let started = Instant::now();
            legacy_events = black_box(legacy_ten_windows(scenario, nodes, window_us));
            legacy_s.push(started.elapsed().as_secs_f64());

            let started = Instant::now();
            routed_events = black_box(routed_ten_windows(scenario, nodes, window_us));
            routed_s.push(started.elapsed().as_secs_f64());
        }
        assert_eq!(
            legacy_events, routed_events,
            "the replica and the pipeline must ingest the same stream"
        );
        let legacy = fastest(&legacy_s);
        let routed = fastest(&routed_s);
        let speedup = legacy / routed;
        println!(
            "{scenario:?}: {legacy_events} events x {ROUNDS} interleaved rounds: \
             fastest legacy {:.1} ms, fastest routed+recycled {:.1} ms, speedup {speedup:.2}x",
            legacy * 1e3,
            routed * 1e3
        );
        criterion::record_measurement(
            &format!("ingest_speedup/{scenario:?}/speedup_permille"),
            (speedup * 1000.0).round() as u128,
        );
        if event_count() >= 100_000 {
            assert!(
                speedup >= REQUIRED_SPEEDUP,
                "routed+recycled pipeline is only {speedup:.2}x the pre-rework loop on \
                 {scenario:?}; the ingest rework promises >= {REQUIRED_SPEEDUP}x"
            );
            println!("hot-path bound holds: {speedup:.2}x >= {REQUIRED_SPEEDUP}x");
        } else {
            println!("event count below 100k: speedup assertion skipped (noise-dominated)");
        }
    }

    // Events/sec summary for the experiment record.
    let mut acc = ShardedAccumulator::new(nodes as usize, 8);
    let started = std::time::Instant::now();
    acc.ingest_batch(&events);
    let matrix = acc.merge();
    let elapsed = started.elapsed().as_secs_f64();
    println!(
        "sharded(8): {} events -> nnz {} in {:.1} ms = {:.2} M events/s",
        events.len(),
        matrix.nnz(),
        elapsed * 1e3,
        events.len() as f64 / elapsed / 1e6
    );
}

criterion_group! {
    name = benches;
    config = quick_criterion();
    targets = bench_ingest
}
criterion_main!(benches);
