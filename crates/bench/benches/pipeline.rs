//! E-S4 — the module pipeline cost: JSON parse → validate → scene build →
//! render, per module size, plus bundle (ZIP) round-trip and the full
//! game-session throughput. This quantifies the paper's claim that the JSON
//! architecture makes new material cheap to produce and load.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tw_bench::{banner, quick_criterion};
use tw_core::game::{GameSession, WarehouseScene};
use tw_core::prelude::*;
use tw_core::render::render_matrix_2d;

/// Build a synthetic module of dimension `n` with a ring-plus-diagonal pattern.
fn synthetic_module(n: usize) -> LearningModule {
    let labels: Vec<String> = (0..n).map(|i| format!("N{i}")).collect();
    let mut builder = ModuleBuilder::new(&format!("{n}x{n} synthetic"), "bench")
        .labels(labels)
        .expect("labels are distinct");
    for i in 0..n {
        builder = builder.cell(i, (i + 1) % n, 2).expect("in range");
        builder = builder.cell(i, i, 1).expect("in range");
    }
    builder
        .question(
            "Which pattern is this?",
            ["A ring", "A star", "A clique"],
            0,
        )
        .build()
}

fn print_pipeline_summary() {
    banner(
        "E-S4",
        "Module pipeline cost: JSON parse -> validate -> scene build -> render",
    );
    println!(
        "{:>6} {:>12} {:>12} {:>12} {:>14}",
        "size", "json bytes", "zip bytes", "scene nodes", "2-D pixels"
    );
    for &n in &[6usize, 10, 16, 24] {
        let module = synthetic_module(n);
        let json = module.to_json();
        let mut bundle = ModuleBundle::new("bench");
        bundle.push(module.clone());
        let zip = bundle.to_zip().unwrap();
        let scene = WarehouseScene::build(&module);
        let fb = render_matrix_2d(&module.matrix, Some(&module.colors));
        println!(
            "{n:>6} {:>12} {:>12} {:>12} {:>14}",
            json.len(),
            zip.len(),
            scene.tree.len(),
            fb.covered_pixels()
        );
    }
}

fn bench_pipeline(c: &mut Criterion) {
    print_pipeline_summary();

    let mut group = c.benchmark_group("module_pipeline");
    for &n in &[6usize, 10, 16] {
        let module = synthetic_module(n);
        let json = module.to_json();
        group.bench_with_input(
            BenchmarkId::new("parse_and_validate", n),
            &json,
            |b, json| {
                b.iter(|| {
                    let (module, report) = tw_core::load_module(json).unwrap();
                    black_box((module.dimension(), report.is_valid()))
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("scene_build", n), &module, |b, module| {
            b.iter(|| black_box(WarehouseScene::build(module).tree.len()))
        });
        group.bench_with_input(BenchmarkId::new("render_2d", n), &module, |b, module| {
            b.iter(|| {
                black_box(render_matrix_2d(&module.matrix, Some(&module.colors)).covered_pixels())
            })
        });
        let scene = WarehouseScene::build(&module);
        let mut view = tw_core::game::ViewState::new();
        view.toggle_mode();
        group.bench_with_input(BenchmarkId::new("render_3d_96px", n), &scene, |b, scene| {
            b.iter(|| black_box(scene.render(&view, 96, 96).covered_pixels()))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("bundle_and_session");
    let library_bundle: ModuleBundle = tw_core::module::library::full_curriculum()
        .into_iter()
        .collect();
    let zip = library_bundle.to_zip().unwrap();
    group.bench_function("zip_full_curriculum_26_modules", |b| {
        b.iter(|| black_box(library_bundle.to_zip().unwrap().len()))
    });
    group.bench_function("unzip_full_curriculum_26_modules", |b| {
        b.iter(|| black_box(tw_core::load_bundle("bench", &zip).unwrap().len()))
    });
    group.bench_function("game_session_autoplay_ddos_bundle", |b| {
        let bundle = tw_core::module::library::figure_bundle(Figure::Ddos);
        b.iter(|| {
            let mut session = GameSession::start(bundle.clone(), 3).unwrap();
            session.autoplay(|_| true).unwrap();
            black_box(session.score().correct)
        })
    });
    group.bench_function("voxel_asset_obj_export", |b| {
        b.iter(|| {
            let mesh = tw_core::voxel::greedy_mesh(&tw_core::voxel::pallet_asset(
                tw_core::voxel::palette::ACCENT_BLUE,
            ));
            black_box(tw_core::voxel::to_obj(&mesh, "pallet").len())
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = quick_criterion();
    targets = bench_pipeline
}
criterion_main!(benches);
