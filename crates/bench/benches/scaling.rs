//! E-S1 / E-S2 — the scaling experiments.
//!
//! * E-S1: the paper's authoring guidance that "fewer than 15 packets between
//!   any source and destination displays well": sweep the per-cell packet
//!   count and report the legibility score plus the 3-D render cost.
//! * E-S2: the motivating claim that matrix methods scale to large traffic
//!   volumes: build sparse traffic matrices from synthetic packet streams and
//!   run GraphBLAS-style analytics, serial vs rayon-parallel.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tw_bench::{banner, quick_criterion};
use tw_core::prelude::*;
use tw_core::render::{legibility_score, DISPLAY_LIMIT};
use tw_matrix::ops::{mxv, reduce_rows};
use tw_matrix::parallel::{
    par_matrix_from_events, par_mxv, par_reduce_rows, serial_matrix_from_events,
};
use tw_matrix::stream::synthetic_events;
use tw_matrix::PlusTimes;

fn print_legibility_sweep() {
    banner(
        "E-S1",
        "Packet-count legibility sweep (paper: 'fewer than 15 packets ... displays well')",
    );
    println!(
        "{:>8} {:>12} {:>14}",
        "packets", "legibility", "display ok?"
    );
    for count in [1u32, 2, 4, 8, 12, 14, 15, 16, 20, 24, 32, 48] {
        let score = legibility_score(count);
        println!(
            "{count:>8} {score:>12.3} {:>14}",
            if count <= DISPLAY_LIMIT && score >= 1.0 {
                "yes"
            } else if score >= 1.0 {
                "edge"
            } else {
                "no"
            }
        );
    }
    println!(
        "Legibility stays at 1.0 through the paper's limit of {DISPLAY_LIMIT} packets and degrades beyond the 16-box pallet footprint."
    );
}

fn print_analytics_sweep() {
    banner(
        "E-S2",
        "Sparse traffic-matrix analytics scaling (serial vs rayon)",
    );
    println!(
        "{:>10} {:>10} {:>10} {:>14} {:>14}",
        "events", "nodes", "nnz", "total packets", "mean row sum"
    );
    for &events in &[1_000usize, 10_000, 100_000, 500_000] {
        let nodes = 1024u32;
        let stream = synthetic_events(nodes, events, 7);
        let matrix = par_matrix_from_events(nodes as usize, &stream);
        let row_sums = par_reduce_rows(&PlusTimes, &matrix);
        let total: u64 = row_sums.iter().sum();
        let mean = total as f64 / nodes as f64;
        println!(
            "{events:>10} {nodes:>10} {:>10} {total:>14} {mean:>14.1}",
            matrix.nnz()
        );
    }
}

fn bench_scaling(c: &mut Criterion) {
    print_legibility_sweep();
    print_analytics_sweep();

    // E-S1: render cost as the heaviest cell grows.
    let mut group = c.benchmark_group("legibility_render");
    for &packets in &[1u32, 8, 14, 32] {
        let mut matrix = TrafficMatrix::zeros(tw_core::matrix::LabelSet::paper_default_10());
        matrix.set(2, 7, packets).unwrap();
        matrix.set(7, 2, packets / 2).unwrap();
        let module = tw_core::module::ModuleBuilder::new("legibility", "bench")
            .matrix(matrix)
            .unwrap()
            .build();
        let scene = tw_core::game::WarehouseScene::build(&module);
        let mut view = tw_core::game::ViewState::new();
        view.toggle_mode();
        group.bench_with_input(
            BenchmarkId::new("render_3d_96px", packets),
            &packets,
            |b, _| b.iter(|| black_box(scene.render(&view, 96, 96).covered_pixels())),
        );
    }
    group.finish();

    // E-S2: matrix construction and analytics, serial vs parallel.
    let nodes = 1024usize;
    let events = synthetic_events(nodes as u32, 200_000, 11);
    let matrix = serial_matrix_from_events(nodes, &events);
    let dense_vector: Vec<u64> = (0..nodes as u64).map(|i| i % 7).collect();

    let mut group = c.benchmark_group("traffic_analytics_200k_events");
    group.bench_function("construct_serial", |b| {
        b.iter(|| black_box(serial_matrix_from_events(nodes, &events).nnz()))
    });
    group.bench_function("construct_parallel", |b| {
        b.iter(|| black_box(par_matrix_from_events(nodes, &events).nnz()))
    });
    group.bench_function("mxv_serial", |b| {
        b.iter(|| black_box(mxv(&PlusTimes, &matrix, &dense_vector).unwrap().len()))
    });
    group.bench_function("mxv_parallel", |b| {
        b.iter(|| black_box(par_mxv(&PlusTimes, &matrix, &dense_vector).unwrap().len()))
    });
    group.bench_function("degrees_serial", |b| {
        b.iter(|| black_box(reduce_rows(&PlusTimes, &matrix).len()))
    });
    group.bench_function("degrees_parallel", |b| {
        b.iter(|| black_box(par_reduce_rows(&PlusTimes, &matrix).len()))
    });
    group.finish();

    // Window aggregation throughput (the streaming pipeline).
    let mut group = c.benchmark_group("stream_aggregation");
    for &count in &[10_000usize, 100_000] {
        let stream = synthetic_events(256, count, 3);
        group.bench_with_input(
            BenchmarkId::new("windowed_ingest", count),
            &stream,
            |b, stream| {
                b.iter(|| {
                    let mut agg = tw_matrix::StreamAggregator::new(256, 10_000);
                    agg.ingest_all(stream);
                    black_box(agg.finish().len())
                })
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = quick_criterion();
    targets = bench_scaling
}
criterion_main!(benches);
