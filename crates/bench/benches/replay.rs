//! E-S4 — record/replay vs live ingest.
//!
//! The classroom claim behind the window archive: replaying a recorded
//! scenario (ZIP → codec decode → window stream) is an order of magnitude
//! faster than regenerating and re-ingesting the events live, so one
//! capture can serve a whole course. Both paths produce the identical
//! window stream (property-tested in `tw-ingest`); this bench measures the
//! wall-clock gap on the `ddos` scenario and records the medians in
//! `BENCH_replay.json` via the criterion shim.
//!
//! Window count defaults to 8; set `TW_REPLAY_BENCH_WINDOWS` to shrink it
//! (CI's bench smoke step runs with a tiny count).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tw_bench::{banner, quick_criterion};
use tw_core::ingest::{
    ArchiveRecorder, Pipeline, PipelineConfig, RecordingMeta, ReplaySource, Scenario,
};

const NODES: u32 = 1024;
const SEED: u64 = 7;
/// One simulated second per window — the classroom display cadence. At the
/// catalog's ~100k events per simulated second this is ~100k events per
/// window, which is where the archive's coalescing pays off: replay cost
/// scales with the window's stored cells, live ingest with raw events.
const WINDOW_US: u64 = 1_000_000;

fn window_count() -> usize {
    std::env::var("TW_REPLAY_BENCH_WINDOWS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(8)
}

fn pipeline(windows: usize) -> Pipeline {
    // Large enough batches that the source is not the bottleneck; the
    // window count bounds the run.
    let _ = windows;
    let config = PipelineConfig {
        window_us: WINDOW_US,
        batch_size: 8_192,
        shard_count: 8,
        reorder_horizon_us: 0,
        ..Default::default()
    };
    Pipeline::new(Scenario::Ddos.source(NODES, SEED), config)
}

fn record(windows: usize) -> Vec<u8> {
    let mut recorder = ArchiveRecorder::new(RecordingMeta {
        scenario: "ddos".to_string(),
        seed: SEED,
        node_count: NODES as usize,
        window_us: WINDOW_US,
        keyframe_every: 0,
    });
    let mut pipeline = pipeline(windows);
    for report in pipeline.run(windows) {
        recorder.record(&report).expect("recording in memory");
    }
    recorder.finish().expect("well under format limits")
}

fn bench_replay(c: &mut Criterion) {
    let windows = window_count();
    banner(
        "E-S4",
        "Window record/replay vs live ingest (ddos scenario)",
    );
    let recording = record(windows);
    let recorded_events: u64 = {
        let mut replay = ReplaySource::parse(&recording).expect("recording parses");
        replay
            .collect_windows()
            .expect("recording decodes")
            .iter()
            .map(|r| r.stats.events)
            .sum()
    };
    println!(
        "{windows} windows over {NODES} nodes: {recorded_events} events, recording {} bytes",
        recording.len()
    );

    let mut group = c.benchmark_group(format!("replay_{windows}_windows"));
    group.bench_with_input(
        BenchmarkId::new("live_ingest", "ddos"),
        &windows,
        |b, &windows| {
            b.iter(|| {
                let mut pipeline = pipeline(windows);
                let reports = pipeline.run(windows);
                black_box(reports.iter().map(|r| r.stats.events).sum::<u64>())
            })
        },
    );
    group.bench_with_input(
        BenchmarkId::new("replay", "ddos"),
        &recording,
        |b, recording| {
            b.iter(|| {
                let mut replay = ReplaySource::parse(recording).expect("recording parses");
                let mut events = 0u64;
                while let Some(report) = replay.next_window().expect("recording decodes") {
                    events += report.stats.events;
                }
                black_box(events)
            })
        },
    );
    group.finish();

    // Speedup summary for the experiment record.
    let live_started = std::time::Instant::now();
    let live_events: u64 = pipeline(windows)
        .run(windows)
        .iter()
        .map(|r| r.stats.events)
        .sum();
    let live = live_started.elapsed();
    let replay_started = std::time::Instant::now();
    let replay_events: u64 = {
        let mut replay = ReplaySource::parse(&recording).expect("recording parses");
        let mut events = 0u64;
        while let Some(report) = replay.next_window().expect("recording decodes") {
            events += report.stats.events;
        }
        events
    };
    let replayed = replay_started.elapsed();
    assert_eq!(
        live_events, replay_events,
        "replay must reproduce the live stream"
    );
    println!(
        "live {:.2} ms vs replay {:.2} ms: {:.1}x faster ({} events)",
        live.as_secs_f64() * 1e3,
        replayed.as_secs_f64() * 1e3,
        live.as_secs_f64() / replayed.as_secs_f64().max(1e-9),
        replay_events,
    );
}

criterion_group! {
    name = benches;
    config = quick_criterion();
    targets = bench_replay
}
criterion_main!(benches);
