//! E-S3 — the assessment-design experiment behind the paper's choice of
//! three-option multiple-choice questions, plus the classroom outcome
//! measurement pipeline the paper defers to future work.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tw_bench::{banner, quick_criterion};
use tw_core::module::library::{figure_bundle, initial_library};
use tw_core::patterns::Figure;
use tw_core::quiz::AssessmentDesign;
use tw_core::sim::classroom::{compare_option_counts, run_classroom};
use tw_core::sim::ClassroomConfig;

fn print_option_count_comparison() {
    banner(
        "E-S3",
        "Three-option vs four-option multiple choice (guessing floor and discrimination)",
    );
    println!(
        "{:>8} {:>16} {:>22} {:>22}",
        "options", "guessing floor", "discrimination k=0.5", "separation z (20 q)"
    );
    for options in [2usize, 3, 4, 5] {
        let design = AssessmentDesign {
            options_per_question: options,
            question_count: 20,
        };
        println!(
            "{options:>8} {:>16.3} {:>22.3} {:>22.2}",
            design.guessing_floor(),
            design.discrimination(0.5),
            design.separation_z(0.5)
        );
    }
    let (three, four) = compare_option_counts(48, 20, 11);
    println!("\nSimulated 48-student class, 20 questions:");
    println!("  strongest-vs-weakest quartile separation, 3 options: {three:.3}");
    println!("  strongest-vs-weakest quartile separation, 4 options: {four:.3}");
    println!("  marginal gain from the 4th option: {:.3} (the paper judges this not worth the authoring cost)", four - three);
}

fn print_classroom_outcomes() {
    banner(
        "E-S3b",
        "Classroom outcome measurement over the initial module library (future-work pipeline)",
    );
    let config = ClassroomConfig {
        class_size: 16,
        assessment_questions: 10,
        assessment_options: 3,
        seed: 5,
    };
    println!(
        "{:<44} {:>8} {:>10} {:>10} {:>8}",
        "bundle", "modules", "pre mean", "post mean", "gain"
    );
    for bundle in initial_library() {
        let report = run_classroom(&bundle, &config);
        println!(
            "{:<44} {:>8} {:>10.3} {:>10.3} {:>8.3}",
            bundle.name,
            report.modules_played,
            report.pre.mean,
            report.post.mean,
            report.mean_gain()
        );
    }
}

fn bench_assessment(c: &mut Criterion) {
    print_option_count_comparison();
    print_classroom_outcomes();

    let mut group = c.benchmark_group("assessment");
    group.bench_function("option_count_comparison_48x20", |b| {
        b.iter(|| black_box(compare_option_counts(48, 20, 11)))
    });
    let ddos = figure_bundle(Figure::Ddos);
    let config = ClassroomConfig {
        class_size: 12,
        assessment_questions: 8,
        assessment_options: 3,
        seed: 5,
    };
    group.bench_function("classroom_run_ddos_bundle_12_students", |b| {
        b.iter(|| black_box(run_classroom(&ddos, &config).mean_gain()))
    });
    group.bench_function("quiz_session_full_curriculum", |b| {
        let bundle: tw_core::prelude::ModuleBundle = tw_core::module::library::full_curriculum()
            .into_iter()
            .collect();
        b.iter(|| {
            let mut session = tw_core::quiz::QuizSession::new(&bundle, 3);
            while !session.is_finished() {
                let choice = session
                    .current_question()
                    .map(|q| q.correct_index)
                    .unwrap_or(0);
                session.answer(choice);
            }
            black_box(session.score().correct)
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = quick_criterion();
    targets = bench_assessment
}
criterion_main!(benches);
