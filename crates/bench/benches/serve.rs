//! E-S6 — network serving tier fan-out cost.
//!
//! The campus serving claim: `serve` drives the stream once, encodes each
//! window once, and fans the *same* frame bytes (an `Arc` clone per peer)
//! out to every TCP connection — so the amortized per-connection cost of a
//! large fan-out stays within a small constant of the single-connection
//! serve, which pays the whole produce+encode cost alone. This bench serves
//! a pre-recorded ddos capture over loopback to 1 vs 32 vs 256 connections,
//! each draining raw CRC-checked frames (`read_raw_frame`, no decode), and
//! records the medians in `BENCH_serve.json` via the criterion shim.
//!
//! Every serve also asserts the lag-drop bound: with the per-connection
//! channel sized to the whole stream the drop bound is zero, so the roster
//! accounting must show every window delivered (or missed by a late join),
//! nothing dropped, and the conservation law intact. The deterministic
//! dropped-frames case (a stalled reader) lives in `tw-serve`'s
//! fault-injection tests.
//!
//! Knobs: `TW_SERVE_BENCH_WINDOWS` (default 8) shrinks the recording;
//! `TW_SERVE_BENCH_CONNECTIONS` caps the largest fan-out (CI smoke runs
//! with tiny values).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::io::BufReader;
use std::net::TcpStream;
use tw_bench::{banner, quick_criterion};
use tw_core::ingest::{
    read_raw_frame, ArchiveRecorder, FrameKind, Pipeline, PipelineConfig, RecordingMeta,
    ReplaySource, Scenario,
};
use tw_core::serve::{loopback_listener, serve, ServeConfig};

const NODES: u32 = 1024;
const SEED: u64 = 7;
/// One simulated second per window — the classroom display cadence.
const WINDOW_US: u64 = 1_000_000;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn record(windows: usize) -> Vec<u8> {
    let config = PipelineConfig {
        window_us: WINDOW_US,
        batch_size: 8_192,
        shard_count: 8,
        reorder_horizon_us: 0,
        ..Default::default()
    };
    let mut pipeline = Pipeline::new(Scenario::Ddos.source(NODES, SEED), config);
    let mut recorder = ArchiveRecorder::new(RecordingMeta {
        scenario: "ddos".to_string(),
        seed: SEED,
        node_count: NODES as usize,
        window_us: WINDOW_US,
        keyframe_every: 0,
    });
    for report in pipeline.run(windows) {
        recorder.record(&report).expect("recording in memory");
    }
    recorder.finish().expect("well under format limits")
}

/// One full campus serve: replay the recording once through `serve` to
/// `connections` loopback clients, each draining raw frames (CRC-checked,
/// never decoded — the client cost under test is the wire, not the codec).
/// Returns the total window frames received across the campus.
fn serve_campus(recording: &[u8], windows: usize, connections: usize) -> u64 {
    let mut replay = ReplaySource::parse(recording).expect("recording parses");
    let listener = loopback_listener().expect("loopback binds");
    let addr = listener.local_addr().expect("bound");
    let config = ServeConfig {
        scenario: "ddos".to_string(),
        seed: SEED,
        // Channel sized to the whole stream: the lag-drop bound is zero.
        channel_capacity: windows.max(1),
        ring_capacity: windows.clamp(1, 64),
        wait_for: connections,
        max_windows: windows,
        ..ServeConfig::default()
    };
    std::thread::scope(|scope| {
        let drains: Vec<_> = (0..connections)
            .map(|i| {
                scope.spawn(move || {
                    // Stagger big fan-outs slightly so the SYN burst stays
                    // inside the listener's accept backlog (the roster gate
                    // holds the first window regardless).
                    if i >= 64 {
                        std::thread::sleep(std::time::Duration::from_millis((i as u64 / 64) * 10));
                    }
                    let socket = TcpStream::connect(addr).expect("loopback connects");
                    let _ = socket.set_nodelay(true);
                    let mut reader = BufReader::new(socket);
                    let mut seen = 0u64;
                    loop {
                        match read_raw_frame(&mut reader).expect("frames arrive intact") {
                            (FrameKind::Window | FrameKind::DeltaWindow, _) => seen += 1,
                            (FrameKind::Close, _) => break,
                            (FrameKind::Manifest | FrameKind::Stats, _) => {}
                        }
                    }
                    seen
                })
            })
            .collect();
        let summary = serve(listener, &mut replay, &config, None).expect("serve runs");
        let seen: u64 = drains.into_iter().map(|d| d.join().expect("drain")).sum();
        // The lag-drop bound assertion: nothing dropped, every window
        // accounted, conservation intact across the whole roster.
        assert_eq!(summary.windows() as usize, windows);
        assert_eq!(summary.connections(), connections);
        for report in &summary.broadcast.reports {
            assert_eq!(report.dropped, 0, "a stream-sized channel never drops");
            assert_eq!(report.delivered + report.missed, summary.windows());
        }
        assert_eq!(summary.broadcast.conservation_error(), None);
        seen
    })
}

fn bench_serve(c: &mut Criterion) {
    let windows = env_usize("TW_SERVE_BENCH_WINDOWS", 8);
    let max_connections = env_usize("TW_SERVE_BENCH_CONNECTIONS", 256);
    let counts: Vec<usize> = [1usize, 32, 256]
        .into_iter()
        .filter(|&n| n == 1 || n <= max_connections)
        .collect();
    banner(
        "E-S6",
        "Network serve fan-out (1 vs 32 vs 256 loopback connections)",
    );
    let recording = record(windows);
    println!(
        "{windows} windows over {NODES} nodes, recording {} bytes, fan-outs {counts:?}",
        recording.len()
    );

    let mut group = c.benchmark_group(format!("serve_{windows}_windows"));
    for &connections in &counts {
        group.bench_with_input(
            BenchmarkId::new("connections", connections),
            &connections,
            |b, &connections| {
                b.iter(|| black_box(serve_campus(&recording, windows, connections)));
            },
        );
    }
    group.finish();

    // Fan-out summary for the experiment record, and the acceptance bound:
    // the amortized per-connection serve at the largest fan-out costs no
    // more than 2x the whole single-connection serve.
    let mut totals = Vec::new();
    for &connections in &counts {
        let rounds = 3;
        let started = std::time::Instant::now();
        let mut received = 0u64;
        for _ in 0..rounds {
            received += serve_campus(&recording, windows, connections);
        }
        let secs = started.elapsed().as_secs_f64() / rounds as f64;
        totals.push((connections, secs));
        println!(
            "{connections:>3} connection(s): {:>8.2} ms/serve, {:>7.1} us/window/connection ({received} frames drained)",
            secs * 1e3,
            secs * 1e6 / (windows * connections) as f64,
        );
    }
    if let (Some(&(one, base)), Some(&(many, total))) = (totals.first(), totals.last()) {
        if many > one {
            let amortized = total / many as f64;
            println!(
                "fan-out {many}x: {:.2} ms total, amortized {:.3} ms/connection vs {:.3} ms for the {one}-connection serve",
                total * 1e3,
                amortized * 1e3,
                base * 1e3,
            );
            assert!(
                amortized <= 2.0 * base,
                "encode-once fan-out bound violated: {:.3} ms amortized per connection at {many} \
                 connections vs {:.3} ms for a single-connection serve",
                amortized * 1e3,
                base * 1e3,
            );
        }
    }
}

criterion_group! {
    name = benches;
    config = quick_criterion();
    targets = bench_serve
}
criterion_main!(benches);
