//! E-S7 — the v3 delta window codec: archive size and decode cost.
//!
//! Two workloads probe the two sides of the delta trade. A synthetic
//! *steady* stream (a fixed hot-cell set with ~2% churn per window — the
//! shape of campus traffic between incidents) is where deltas pay: the
//! archive must shrink by at least 30% and decoding the delta chain
//! through a recycled [`DecodeScratch`] must beat full v2 decoding by at
//! least 1.3x — both asserted here, recorded in `BENCH_codec.json`. The
//! *bursty* `ddos` scenario is the counter-case: most cells churn every
//! window, so the delta archive is recorded alongside the full one to show
//! (not assert) that full encoding is the right default there.
//!
//! The hot-cell count scales with `TW_CODEC_BENCH_EVENTS` (default 1e6,
//! CI's bench smoke step runs with 20000).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::{Duration, Instant};
use tw_bench::{banner, quick_criterion};
use tw_core::ingest::{
    decode_window, decode_window_into, encode_window, encode_window_delta, ArchiveRecorder,
    DecodeScratch, IngestStats, Pipeline, PipelineConfig, RecordingMeta, Scenario, WindowReport,
};
use tw_matrix::CsrMatrix;

const NODES: usize = 512;
const WINDOWS: usize = 16;
const KEYFRAME_EVERY: u64 = 8;
const SEED: u64 = 0x5eed_cafe;

fn event_budget() -> usize {
    std::env::var("TW_CODEC_BENCH_EVENTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1_000_000)
}

/// The same splitmix-flavoured LCG the scenario sources use inline:
/// tw-bench has no rand dependency and the workload must be deterministic.
fn lcg(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 33
}

/// A steady window sequence: `hot` stable cells, ~2% value churn per
/// window plus a trickle of deletes and inserts (so the delta encoder's
/// del/set paths both run).
fn steady_reports(hot: usize) -> Vec<WindowReport> {
    let mut state = SEED;
    let mut cells: Vec<(usize, usize, u64)> = Vec::with_capacity(hot + hot / 4);
    while cells.len() < hot {
        let need = hot - cells.len();
        for _ in 0..need + need / 4 + 8 {
            let r = lcg(&mut state) as usize % NODES;
            let c = lcg(&mut state) as usize % NODES;
            cells.push((r, c, lcg(&mut state) | 1));
        }
        cells.sort_unstable_by_key(|&(r, c, _)| (r, c));
        cells.dedup_by_key(|&mut (r, c, _)| (r, c));
    }
    cells.truncate(hot);

    let churn = (hot / 50).max(1);
    let mut reports = Vec::with_capacity(WINDOWS);
    for w in 0..WINDOWS {
        if w > 0 {
            for _ in 0..churn {
                let i = lcg(&mut state) as usize % cells.len();
                cells[i].2 = lcg(&mut state) | 1;
            }
            for _ in 0..(churn / 4).max(1) {
                let i = lcg(&mut state) as usize % cells.len();
                cells.remove(i);
                let (r, c) = (
                    lcg(&mut state) as usize % NODES,
                    lcg(&mut state) as usize % NODES,
                );
                let v = lcg(&mut state) | 1;
                match cells.binary_search_by_key(&(r, c), |&(r, c, _)| (r, c)) {
                    Ok(i) => cells[i].2 = v,
                    Err(i) => cells.insert(i, (r, c, v)),
                }
            }
        }
        let matrix = CsrMatrix::from_sorted_triples(NODES, NODES, &cells);
        let nnz = matrix.nnz();
        reports.push(WindowReport {
            matrix,
            stats: IngestStats {
                window_index: w as u64,
                events: churn as u64,
                packets: churn as u64 * 3,
                nnz,
                dropped_late: 0,
                reordered: 0,
                elapsed: Duration::from_micros(50),
            },
        });
    }
    reports
}

/// Archive a window sequence at the given cadence; returns the ZIP size.
fn archive_bytes(reports: &[WindowReport], scenario: &str, keyframe_every: u64) -> usize {
    let mut recorder = ArchiveRecorder::new(RecordingMeta {
        scenario: scenario.to_string(),
        seed: SEED,
        node_count: NODES,
        window_us: 50_000,
        keyframe_every,
    });
    for report in reports {
        recorder.record(report).expect("recording in memory");
    }
    recorder.finish().expect("well under format limits").len()
}

/// Every window encoded self-contained (the v2 wire/archive layout).
fn full_frames(reports: &[WindowReport]) -> Vec<Vec<u8>> {
    reports.iter().map(encode_window).collect()
}

/// The v3 chain: a key frame every [`KEYFRAME_EVERY`] windows, deltas
/// against the previous window in between — what `--keyframe-every` stores.
fn chain_frames(reports: &[WindowReport]) -> Vec<Vec<u8>> {
    reports
        .iter()
        .enumerate()
        .map(|(i, report)| {
            if (i as u64).is_multiple_of(KEYFRAME_EVERY) {
                encode_window(report)
            } else {
                encode_window_delta(&reports[i - 1], report)
            }
        })
        .collect()
}

fn decode_full(frames: &[Vec<u8>]) -> u64 {
    let mut nnz = 0u64;
    for frame in frames {
        nnz += decode_window(frame).expect("encoded above").matrix.nnz() as u64;
    }
    nnz
}

fn decode_chain(frames: &[Vec<u8>]) -> u64 {
    let mut scratch = DecodeScratch::new();
    let mut nnz = 0u64;
    for frame in frames {
        let report = decode_window_into(frame, &mut scratch).expect("encoded above");
        nnz += report.matrix.nnz() as u64;
        scratch.recycle(report.matrix);
    }
    nnz
}

/// Best-of-N wall clock for a decode loop (min is the stable estimator on
/// a noisy runner; the criterion groups record the medians separately).
fn best_of<F: FnMut() -> u64>(mut f: F) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..7 {
        let started = Instant::now();
        black_box(f());
        best = best.min(started.elapsed());
    }
    best
}

fn bench_codec(c: &mut Criterion) {
    banner("E-S7", "Delta window codec: archive size and decode cost");
    let hot = (event_budget() / WINDOWS).clamp(64, NODES * NODES / 2);
    let steady = steady_reports(hot);

    // -- Archive size, steady: the delta cadence must cut >= 30%. --------
    let steady_full = archive_bytes(&steady, "steady", 0);
    let steady_delta = archive_bytes(&steady, "steady", KEYFRAME_EVERY);
    criterion::record_measurement("codec_steady/archive_bytes/full", steady_full as u128);
    criterion::record_measurement("codec_steady/archive_bytes/delta", steady_delta as u128);
    println!(
        "steady ({WINDOWS} windows, {hot} hot cells, ~2% churn): \
         full archive {steady_full} B, keyframe-every-{KEYFRAME_EVERY} {steady_delta} B \
         ({:.1}% of full)",
        steady_delta as f64 / steady_full as f64 * 100.0
    );
    assert!(
        steady_delta * 10 <= steady_full * 7,
        "delta archiving must cut a steady recording by >= 30% \
         (full {steady_full} B, delta {steady_delta} B)"
    );

    // -- Archive size, bursty: the counter-case, recorded not asserted. --
    let config = PipelineConfig {
        window_us: 50_000,
        batch_size: 8_192,
        shard_count: 4,
        reorder_horizon_us: 0,
        ..Default::default()
    };
    let ddos = Pipeline::new(Scenario::Ddos.source(NODES as u32, SEED), config).run(8);
    let ddos_full = archive_bytes(&ddos, "ddos", 0);
    let ddos_delta = archive_bytes(&ddos, "ddos", KEYFRAME_EVERY);
    criterion::record_measurement("codec_ddos/archive_bytes/full", ddos_full as u128);
    criterion::record_measurement("codec_ddos/archive_bytes/delta", ddos_delta as u128);
    println!(
        "bursty (ddos, 8 windows): full archive {ddos_full} B, \
         keyframe-every-{KEYFRAME_EVERY} {ddos_delta} B ({:.1}% of full) \
         — churn-heavy streams keep full encoding the right default",
        ddos_delta as f64 / ddos_full as f64 * 100.0
    );

    // -- Decode cost, steady: v2 full stream vs v3 chain into scratch. ---
    let full = full_frames(&steady);
    let chain = chain_frames(&steady);
    let expect = steady.iter().map(|r| r.matrix.nnz() as u64).sum::<u64>();
    assert_eq!(decode_full(&full), expect);
    assert_eq!(decode_chain(&chain), expect);

    let mut group = c.benchmark_group(format!("codec_{hot}_hot_cells"));
    group.bench_function("decode_full_v2", |b| {
        b.iter(|| black_box(decode_full(&full)))
    });
    group.bench_function("decode_delta_scratch", |b| {
        b.iter(|| black_box(decode_chain(&chain)))
    });
    group.bench_function("encode_full_v2", |b| {
        b.iter(|| black_box(full_frames(&steady).len()))
    });
    group.bench_function("encode_delta_chain", |b| {
        b.iter(|| black_box(chain_frames(&steady).len()))
    });
    group.finish();

    let full_time = best_of(|| decode_full(&full));
    let chain_time = best_of(|| decode_chain(&chain));
    let speedup = full_time.as_secs_f64() / chain_time.as_secs_f64().max(1e-9);
    println!(
        "steady decode: full v2 {:.2} ms vs delta-into-scratch {:.2} ms: {speedup:.1}x faster",
        full_time.as_secs_f64() * 1e3,
        chain_time.as_secs_f64() * 1e3,
    );
    assert!(
        speedup >= 1.3,
        "decoding the steady delta chain into a scratch must be >= 1.3x \
         faster than full v2 decoding (got {speedup:.2}x)"
    );
}

criterion_group! {
    name = benches;
    config = quick_criterion();
    targets = bench_codec
}
criterion_main!(benches);
