//! E-S5 — classroom broadcast fan-out cost.
//!
//! The multi-session serving claim: one `WindowStream` driven once through
//! the `Broadcaster` serves N subscribers for far less than N times the cost
//! of serving one, because each window is decoded once and fanned out as an
//! `Arc` pointer clone per subscriber — per-window fan-out cost must scale
//! sublinearly in subscriber count. This bench replays a pre-recorded ddos
//! capture (so the producer cost is the realistic classroom case: decode,
//! not generation) to 1 vs 8 vs 32 subscribers and records the medians in
//! `BENCH_broadcast.json` via the criterion shim.
//!
//! Knobs: `TW_BROADCAST_BENCH_WINDOWS` (default 8) shrinks the recording;
//! `TW_BROADCAST_BENCH_SUBSCRIBERS` caps the largest fan-out (CI smoke runs
//! with tiny values).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tw_bench::{banner, quick_criterion};
use tw_core::game::{BroadcastConfig, Broadcaster, StartOffset, Subscription};
use tw_core::ingest::{
    ArchiveRecorder, Pipeline, PipelineConfig, RecordingMeta, ReplaySource, Scenario,
};

const NODES: u32 = 1024;
const SEED: u64 = 7;
/// One simulated second per window — the classroom display cadence.
const WINDOW_US: u64 = 1_000_000;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn record(windows: usize) -> Vec<u8> {
    let config = PipelineConfig {
        window_us: WINDOW_US,
        batch_size: 8_192,
        shard_count: 8,
        reorder_horizon_us: 0,
        ..Default::default()
    };
    let mut pipeline = Pipeline::new(Scenario::Ddos.source(NODES, SEED), config);
    let mut recorder = ArchiveRecorder::new(RecordingMeta {
        scenario: "ddos".to_string(),
        seed: SEED,
        node_count: NODES as usize,
        window_us: WINDOW_US,
        keyframe_every: 0,
    });
    for report in pipeline.run(windows) {
        recorder.record(&report).expect("recording in memory");
    }
    recorder.finish().expect("well under format limits")
}

/// One full classroom serve: replay the recording once through the hub to
/// `subscribers` consumers and drain every subscription. Returns the total
/// windows received across the class (for black_box).
fn serve(recording: &[u8], windows: usize, subscribers: usize) -> u64 {
    let mut replay = ReplaySource::parse(recording).expect("recording parses");
    let mut caster = Broadcaster::new(BroadcastConfig {
        channel_capacity: windows,
        ring_capacity: windows.min(64),
    });
    let subs: Vec<Subscription> = (0..subscribers)
        .map(|_| caster.subscribe(StartOffset::Origin))
        .collect();
    let summary = caster.run(&mut replay, windows).expect("replay decodes");
    assert_eq!(summary.windows as usize, windows);
    subs.iter().map(|s| s.drain().len() as u64).sum()
}

fn bench_broadcast(c: &mut Criterion) {
    let windows = env_usize("TW_BROADCAST_BENCH_WINDOWS", 8);
    let max_subscribers = env_usize("TW_BROADCAST_BENCH_SUBSCRIBERS", 32);
    let counts: Vec<usize> = [1usize, 8, 32]
        .into_iter()
        .filter(|&n| n == 1 || n <= max_subscribers)
        .collect();
    banner(
        "E-S5",
        "Classroom broadcast fan-out (1 vs 8 vs 32 subscribers)",
    );
    let recording = record(windows);
    println!(
        "{windows} windows over {NODES} nodes, recording {} bytes, fan-outs {counts:?}",
        recording.len()
    );

    let mut group = c.benchmark_group(format!("broadcast_{windows}_windows"));
    for &subscribers in &counts {
        group.bench_with_input(
            BenchmarkId::new("subscribers", subscribers),
            &subscribers,
            |b, &subscribers| {
                b.iter(|| black_box(serve(&recording, windows, subscribers)));
            },
        );
    }
    group.finish();

    // Sublinearity summary for the experiment record: wall-clock per window
    // at each fan-out, and the 32-subscriber cost relative to 32x the
    // 1-subscriber cost.
    let mut per_window_us = Vec::new();
    for &subscribers in &counts {
        let started = std::time::Instant::now();
        let mut received = 0u64;
        let rounds = 5;
        for _ in 0..rounds {
            received += serve(&recording, windows, subscribers);
        }
        let elapsed = started.elapsed();
        let us = elapsed.as_secs_f64() * 1e6 / (rounds * windows) as f64;
        per_window_us.push((subscribers, us));
        println!(
            "{subscribers:>3} subscriber(s): {us:>8.1} us/window ({received} windows delivered)"
        );
    }
    if let (Some(&(one, base)), Some(&(many, cost))) = (per_window_us.first(), per_window_us.last())
    {
        if many > one {
            let scale = (cost / base) / (many as f64 / one as f64);
            println!(
                "fan-out {many}x costs {:.2}x the {one}-subscriber serve ({:.0}% of linear scaling)",
                cost / base,
                scale * 100.0
            );
            assert!(
                cost < base * (many as f64 / one as f64),
                "fan-out must scale sublinearly: {cost:.1} us/window at {many} subs vs {base:.1} at {one}"
            );
        }
    }
}

criterion_group! {
    name = benches;
    config = quick_criterion();
    targets = bench_broadcast
}
criterion_main!(benches);
