//! E-F1 … E-F10 — regenerate every figure of the paper and benchmark the code
//! paths that produce them.
//!
//! * Fig. 1 — Hello World in GDScript, run in the `tw-script` interpreter.
//! * Fig. 2 — the training-level scene tree.
//! * Fig. 3 — the Inspector view of the pallet controller's exported variables.
//! * Fig. 4 — the X/Y axis-label nodes populated from the module file.
//! * Fig. 5 — the training level's 2-D view, 3-D view and packets-placed view.
//! * Figs. 6–10 — the traffic-pattern panels (topologies, notional attack,
//!   security/defense/deterrence, DDoS, graph theory).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tw_bench::{banner, quick_criterion};
use tw_core::engine::{Inspector, Variant};
use tw_core::game::{TrainingLevel, WarehouseScene};
use tw_core::patterns::{classify, patterns_for_figure, Figure};
use tw_core::prelude::*;
use tw_core::render::render_matrix_2d;
use tw_script::{Interpreter, HELLO_WORLD_GDSCRIPT, PALLET_CONTROLLER_GDSCRIPT};

fn print_fig1() {
    banner(
        "E-F1",
        "Fig. 1: Hello World in GDScript, executed by the tw-script interpreter",
    );
    let mut tree = tw_core::engine::SceneTree::new("Fig1");
    let host = tree
        .spawn(tree.root(), "Host", tw_core::engine::NodeKind::Node)
        .unwrap();
    let mut interp = Interpreter::attach(HELLO_WORLD_GDSCRIPT, host, &[]).unwrap();
    interp.ready(&mut tree).unwrap();
    println!("script output: {:?}", interp.output);
    assert_eq!(interp.output, vec!["Hello, world!"]);
}

fn print_fig2_to_4() {
    banner("E-F2", "Fig. 2: training-level scene tree");
    let module = tw_core::game::training::training_module();
    let scene = WarehouseScene::build(&module);
    println!("{}", scene.tree.print_tree());

    banner(
        "E-F3",
        "Fig. 3: Inspector view of the pallet controller's exported variables",
    );
    let controller = scene.controller;
    let mut tree = scene.tree;
    let inspector = Inspector::new(&mut tree);
    println!("{}", inspector.render(controller).unwrap());

    banner(
        "E-F4",
        "Fig. 4: X and Y axis-label nodes populated from the module file",
    );
    let scene = WarehouseScene::build(&tw_core::module::template_10x10());
    let mut tree = scene.tree;
    let controller_state =
        tw_core::game::PalletLabelController::ready(&mut tree, scene.controller).unwrap();
    assert!(controller_state.errors.is_empty());
    for axis in [scene.x_axis, scene.y_axis] {
        let axis_name = &tree.node(axis).unwrap().name;
        let labels: Vec<String> = tree
            .children(axis)
            .unwrap()
            .iter()
            .map(|&holder| {
                let text = tree.children(holder).unwrap()[1];
                tree.node(text)
                    .unwrap()
                    .get("text")
                    .unwrap()
                    .as_str()
                    .unwrap_or("")
                    .to_string()
            })
            .collect();
        println!("{axis_name} axis labels: {labels:?}");
    }
}

fn print_fig5() {
    banner(
        "E-F5",
        "Fig. 5: training level — 2-D view, 3-D view, packets placed",
    );
    let mut training = TrainingLevel::start().unwrap();
    println!(
        "(a) 2-D matrix view:\n{}",
        training.level.scene.module().matrix.to_ascii()
    );
    let [_a, b, c] = training.render_figure_panels(96);
    println!(
        "(b) 3-D view before packet placement ({} pixels covered)",
        b.covered_pixels()
    );
    println!("{}", b.downsample(2).to_ascii());
    println!(
        "(c) 3-D view with all packets placed ({} pixels covered)",
        c.covered_pixels()
    );
    println!("{}", c.downsample(2).to_ascii());
}

fn print_pattern_figures() {
    for figure in Figure::all() {
        let experiment = format!("E-F{}", figure.number());
        banner(
            &experiment,
            &format!("Fig. {}: {}", figure.number(), figure.title()),
        );
        for pattern in patterns_for_figure(figure) {
            let profile = tw_core::matrix::MatrixProfile::of(&pattern.matrix);
            let classification = classify(&pattern.matrix);
            println!(
                "{:<28} packets={:<4} links={:<3} supernodes={:<2} classifier={} ({:.2})",
                pattern.name,
                profile.total_packets,
                profile.nonzero_links,
                profile.supernodes.len(),
                classification.best_id,
                classification.best_score
            );
            println!(
                "{}",
                pattern.matrix.to_ascii_with_colors(Some(&pattern.colors))
            );
        }
    }
}

fn bench_figures(c: &mut Criterion) {
    print_fig1();
    print_fig2_to_4();
    print_fig5();
    print_pattern_figures();

    let mut group = c.benchmark_group("figures");
    group.bench_function("fig1_hello_world_interpreter", |b| {
        b.iter(|| {
            let mut tree = tw_core::engine::SceneTree::new("Fig1");
            let host = tree
                .spawn(tree.root(), "Host", tw_core::engine::NodeKind::Node)
                .unwrap();
            let mut interp = Interpreter::attach(HELLO_WORLD_GDSCRIPT, host, &[]).unwrap();
            interp.ready(&mut tree).unwrap();
            black_box(interp.output.len())
        })
    });
    group.bench_function("fig1_controller_script_ready", |b| {
        let module = tw_core::module::template_10x10();
        b.iter(|| {
            let scene = WarehouseScene::build(&module);
            let mut tree = scene.tree;
            let exported = [
                ("x_axis", Variant::NodeRef(scene.x_axis.0)),
                ("y_axis", Variant::NodeRef(scene.y_axis.0)),
                ("pallets", Variant::NodeRef(scene.pallets.0)),
                ("pallets_are_colored", Variant::Bool(false)),
            ];
            let mut interp =
                Interpreter::attach(PALLET_CONTROLLER_GDSCRIPT, scene.controller, &exported)
                    .unwrap();
            interp.ready(&mut tree).unwrap();
            black_box(interp.errors.len())
        })
    });
    group.bench_function("fig2_scene_tree_build_10x10", |b| {
        let module = tw_core::module::template_10x10();
        b.iter(|| black_box(WarehouseScene::build(&module).tree.len()))
    });
    group.bench_function("fig5_training_3d_render_96px", |b| {
        let mut training = TrainingLevel::start().unwrap();
        training.level.view.toggle_mode();
        b.iter(|| black_box(training.level.render(96, 96).covered_pixels()))
    });
    group.bench_function("fig6_to_10_pattern_generation", |b| {
        b.iter(|| black_box(all_patterns().len()))
    });
    group.bench_function("fig6_to_10_pattern_2d_render", |b| {
        let patterns = all_patterns();
        b.iter(|| {
            let mut covered = 0usize;
            for p in &patterns {
                covered += render_matrix_2d(&p.matrix, Some(&p.colors)).covered_pixels();
            }
            black_box(covered)
        })
    });
    group.bench_function("fig6_to_10_classifier", |b| {
        let patterns = all_patterns();
        b.iter(|| {
            let hits = patterns
                .iter()
                .filter(|p| classify(&p.matrix).best_id == p.id)
                .count();
            black_box(hits)
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = quick_criterion();
    targets = bench_figures
}
criterion_main!(benches);
