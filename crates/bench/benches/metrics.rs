//! E-M1 — instrumentation overhead bound.
//!
//! The tentpole claim behind `tw-metrics`: threading per-stage counters and
//! log2 histograms through the full ingest pipeline costs less than 5% of
//! throughput at a million events. The bench runs interleaved baseline /
//! instrumented pipeline passes, takes the fastest round of each, and asserts
//! the ratio inside the bench body — a regression that makes instrumentation
//! expensive fails the bench run itself, not just a dashboard.
//!
//! Event count defaults to 1e6; set `TW_METRICS_BENCH_EVENTS` to shrink it
//! (CI's bench smoke step runs with a tiny count, where the assertion is
//! skipped because sub-millisecond runs are all noise). Medians land in
//! `BENCH_metrics.json` via the criterion shim.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Instant;
use tw_bench::{banner, quick_criterion};
use tw_core::ingest::{Pipeline, PipelineConfig, Scenario};
use tw_core::metrics::{Counter, Histogram, MetricsRegistry, StageTimer};

fn event_count() -> usize {
    std::env::var("TW_METRICS_BENCH_EVENTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1_000_000)
}

/// One full pipeline pass: pull → route → coalesce over ten windows,
/// optionally recording into `registry`. Returns the event total so the
/// optimizer cannot discard the work.
fn run_pipeline(nodes: u32, window_events: usize, registry: Option<&MetricsRegistry>) -> u64 {
    // The catalog runs at ~100k events per simulated second, i.e. one event
    // every ~10 µs: size the window so each holds ~window_events events.
    let config = PipelineConfig {
        window_us: (window_events as u64) * 10,
        batch_size: 8_192,
        shard_count: 8,
        reorder_horizon_us: 0,
        ..Default::default()
    };
    let mut pipeline = Pipeline::new(Scenario::Mixed.source(nodes, 7), config);
    if let Some(registry) = registry {
        pipeline.instrument(registry);
    }
    let reports = pipeline.run(10);
    reports.iter().map(|r| r.stats.events).sum()
}

/// The minimum over rounds: scheduler and cache noise only ever ADD time, so
/// the fastest observed round is the least-contaminated estimate of the true
/// cost — the estimator of choice for an A/B ratio on a shared machine.
fn fastest(samples: &[f64]) -> f64 {
    samples.iter().copied().fold(f64::INFINITY, f64::min)
}

fn bench_metrics(c: &mut Criterion) {
    let nodes = 1024u32;
    let window_events = (event_count() / 10).max(1_000);
    banner(
        "E-M1",
        "Instrumentation overhead: instrumented pipeline within 5% of baseline",
    );

    // --- The overhead bound, measured by hand with interleaved rounds so
    // slow drift (thermal, scheduler) hits both sides equally.
    const ROUNDS: usize = 9;
    let mut baseline_s = Vec::with_capacity(ROUNDS);
    let mut instrumented_s = Vec::with_capacity(ROUNDS);
    // One untimed warm-up pair: first touch of the scenario tables and the
    // allocator is not what we are bounding.
    black_box(run_pipeline(nodes, window_events, None));
    let warm_registry = MetricsRegistry::new();
    black_box(run_pipeline(nodes, window_events, Some(&warm_registry)));
    let mut events_seen = 0u64;
    for _ in 0..ROUNDS {
        let started = Instant::now();
        events_seen = black_box(run_pipeline(nodes, window_events, None));
        baseline_s.push(started.elapsed().as_secs_f64());

        let registry = MetricsRegistry::new();
        let started = Instant::now();
        black_box(run_pipeline(nodes, window_events, Some(&registry)));
        instrumented_s.push(started.elapsed().as_secs_f64());
    }
    let base = fastest(&baseline_s);
    let instr = fastest(&instrumented_s);
    let ratio = instr / base;
    println!(
        "{events_seen} events x {ROUNDS} interleaved rounds: fastest baseline {:.1} ms, \
         fastest instrumented {:.1} ms, ratio {ratio:.4}",
        base * 1e3,
        instr * 1e3
    );
    if event_count() >= 100_000 {
        assert!(
            ratio <= 1.05,
            "instrumented pipeline is {:.1}% slower than baseline; the metrics \
             layer promises <= 5% overhead",
            (ratio - 1.0) * 100.0
        );
        println!("overhead bound holds: {:.2}% <= 5%", (ratio - 1.0) * 100.0);
    } else {
        println!("event count below 100k: overhead assertion skipped (noise-dominated)");
    }

    // Land the interleaved estimates (not fresh un-interleaved samples,
    // which drift would skew) plus the ratio itself in BENCH_metrics.json.
    // Ratio is stored as permille so the flat integer map can carry it.
    let prefix = format!("metrics_pipeline_{events_seen}_events");
    criterion::record_measurement(&format!("{prefix}/baseline"), (base * 1e9) as u128);
    criterion::record_measurement(&format!("{prefix}/instrumented"), (instr * 1e9) as u128);
    criterion::record_measurement(
        &format!("{prefix}/overhead_ratio_permille"),
        (ratio * 1000.0).round() as u128,
    );

    // --- Primitive costs, for the metric reference table: what one counter
    // bump, one histogram observation, and one guarded stage timing cost.
    let counter = Counter::default();
    let histogram = Histogram::default();
    let mut group = c.benchmark_group("metrics_primitives");
    group.bench_function("counter_inc", |b| b.iter(|| counter.inc()));
    group.bench_function("histogram_observe", |b| {
        let mut v = 0u64;
        b.iter(|| {
            v = v.wrapping_add(2_654_435_761);
            histogram.observe(black_box(v))
        })
    });
    group.bench_function("stage_timer_enabled", |b| {
        b.iter(|| StageTimer::start(black_box(Some(&histogram))).finish())
    });
    group.bench_function("stage_timer_disabled", |b| {
        b.iter(|| StageTimer::start(black_box(None)).finish())
    });
    group.bench_function("registry_snapshot", |b| {
        let registry = MetricsRegistry::new();
        run_pipeline(nodes, 1_000, Some(&registry));
        b.iter(|| black_box(registry.snapshot().counter("pipeline.events")))
    });
    group.finish();

    println!(
        "primitives recorded; counter now at {} after timing",
        counter.get()
    );
}

criterion_group! {
    name = benches;
    config = quick_criterion();
    targets = bench_metrics
}
criterion_main!(benches);
