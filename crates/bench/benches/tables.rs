//! E-T1 / E-T2 — regenerate the paper's Tables I and II (technology decision
//! matrices) and benchmark the decision-matrix evaluation.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tw_bench::{banner, quick_criterion};
use tw_core::sim::{engine_comparison, modeling_comparison};

fn print_tables() {
    banner(
        "E-T1",
        "Table I: game engine comparison (Godot vs Unity vs Unreal)",
    );
    println!("{}", engine_comparison().render());
    banner(
        "E-T2",
        "Table II: modeling tool comparison (MagicaVoxel vs Blender vs Maya)",
    );
    println!("{}", modeling_comparison().render());
    assert_eq!(engine_comparison().winner(), "Godot");
    assert_eq!(modeling_comparison().winner(), "MagicaVoxel");
    println!("Reproduced selections match the paper: Godot (Table I), MagicaVoxel (Table II).");
}

fn bench_tables(c: &mut Criterion) {
    print_tables();
    let mut group = c.benchmark_group("tables");
    group.bench_function("table1_engine_decision", |b| {
        b.iter(|| {
            let table = engine_comparison();
            black_box((table.scores(), table.winner()))
        })
    });
    group.bench_function("table2_modeling_decision", |b| {
        b.iter(|| {
            let table = modeling_comparison();
            black_box((table.scores(), table.winner()))
        })
    });
    group.bench_function("table_render_text", |b| {
        b.iter(|| {
            black_box(engine_comparison().render().len() + modeling_comparison().render().len())
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = quick_criterion();
    targets = bench_tables
}
criterion_main!(benches);
