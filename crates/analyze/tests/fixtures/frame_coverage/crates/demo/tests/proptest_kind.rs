//! Fixture proptest file: exercises Manifest and Window, forgets Delta.

#[test]
fn covered_kinds_round_trip() {
    assert_eq!(Kind::from_byte(Kind::Manifest.to_byte()), Some(Kind::Manifest));
    assert_eq!(Kind::from_byte(Kind::Window.to_byte()), Some(Kind::Window));
}
