//! Fixture: the `Delta` variant is encoded but never decoded and never
//! property-tested — the exact gap the rule exists to catch.

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    Manifest = 1,
    Window = 2,
    Delta = 3,
}

impl Kind {
    pub fn to_byte(self) -> u8 {
        match self {
            Kind::Manifest => 1,
            Kind::Window => 2,
            Kind::Delta => 3,
        }
    }

    pub fn from_byte(byte: u8) -> Option<Kind> {
        match byte {
            1 => Some(Kind::Manifest),
            2 => Some(Kind::Window),
            _ => None,
        }
    }
}
