//! Fixture: a hot function with one offending allocation, one waived one,
//! and a cold function the rule must leave alone.

pub fn route_hot(input: &[u32], scratch: &mut Vec<u32>) -> usize {
    // tw-analyze: allow(hot-path-no-alloc, "fixture: the waived allocation case")
    let seed = vec![0u32; 4];
    scratch.clear();
    scratch.extend(seed.iter().copied());
    let doubled: Vec<u32> = input.iter().map(|v| v * 2).collect();
    doubled.len() + scratch.len()
}

pub fn cold_setup(n: usize) -> Vec<u32> {
    // Allocations are fine outside the configured hot set.
    (0..n as u32).collect()
}
