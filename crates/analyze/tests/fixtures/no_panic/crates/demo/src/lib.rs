//! Fixture: one offending unwrap, one waived panic, and test-only code the
//! rule must ignore.

pub fn offending(values: &[u32]) -> u32 {
    *values.first().unwrap()
}

pub fn waived() {
    // tw-analyze: allow(no-panic-in-lib, "fixture: the panic below is the waived case")
    panic!("never called");
}

pub fn expect_message(values: &[u32]) -> u32 {
    *values.first().expect("fixture: a bare expect message")
}

// tw-analyze: allow(no-panic-in-lib)
pub fn under_malformed_waiver() {}

// tw-analyze: allow(no-panic-in-lib, "fixture: nothing on this line to waive")
pub fn under_stale_waiver() {}

#[cfg(test)]
mod tests {
    #[test]
    fn unwraps_are_fine_in_tests() {
        let values = [1u32];
        assert_eq!(*values.first().unwrap(), 1);
    }
}
