//! Fixture: a guard held across a blocking send (finding), an explicit drop
//! before the send (clean), and a try_send under the guard (clean).

use std::sync::mpsc::Sender;
use std::sync::Mutex;

pub fn offending(state: &Mutex<u64>, tx: &Sender<u64>) {
    let guard = state.lock().unwrap();
    tx.send(*guard).ok();
}

pub fn dropped_first(state: &Mutex<u64>, tx: &Sender<u64>) {
    let guard = state.lock().unwrap();
    let value = *guard;
    drop(guard);
    tx.send(value).ok();
}

pub fn scoped_out(state: &Mutex<u64>, tx: &Sender<u64>) {
    let value = {
        let guard = state.lock().unwrap();
        *guard
    };
    tx.send(value).ok();
}

pub fn waived_handoff(state: &Mutex<u64>, tx: &Sender<u64>) {
    let guard = state.lock().unwrap();
    // tw-analyze: allow(lock-across-channel, "fixture: the waived overlap case")
    tx.send(*guard).ok();
}
