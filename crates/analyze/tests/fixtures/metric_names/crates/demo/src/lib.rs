//! Fixture: one good registration, one undeclared name, one kind mismatch.

pub fn register(metrics: &tw_fixture::Registry) {
    metrics.counter("pipeline.coalesce_sort");
    metrics.gauge("pipeline.reorder_depth");
    metrics.counter("pipeline.not_in_manifest");
    metrics.gauge("pipeline.coalesce_sort");
}
