//! Golden tests: each rule runs over a small fixture workspace under
//! `tests/fixtures/` that contains the offending shape, the waived shape,
//! and the shapes the rule must ignore. The fixtures are plain source trees
//! with their own `analyze.toml` — they are never compiled, only scanned.

use std::path::PathBuf;
use tw_analyze::{analyze_with, Finding, Options, Report};

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn run_rule(fixture_name: &str, rule: &str) -> Report {
    let options = Options {
        rule: Some(rule.to_string()),
    };
    analyze_with(&fixture(fixture_name), &options)
        .unwrap_or_else(|e| panic!("analyzing fixture {fixture_name}: {e}"))
}

fn unwaived<'a>(report: &'a Report, rule: &str) -> Vec<&'a Finding> {
    report
        .findings
        .iter()
        .filter(|f| f.rule == rule && f.waived.is_none())
        .collect()
}

fn waived<'a>(report: &'a Report, rule: &str) -> Vec<&'a Finding> {
    report
        .findings
        .iter()
        .filter(|f| f.rule == rule && f.waived.is_some())
        .collect()
}

#[test]
fn no_panic_fires_on_unwrap_and_honors_waivers() {
    let report = run_rule("no_panic", "no-panic-in-lib");

    let hits = unwaived(&report, "no-panic-in-lib");
    assert_eq!(hits.len(), 2, "expected unwrap + expect hits: {hits:#?}");
    assert!(hits
        .iter()
        .any(|f| f.line == 5 && f.message.contains("unwrap")));
    assert!(hits.iter().any(|f| f.message.contains("expect")));

    let silenced = waived(&report, "no-panic-in-lib");
    assert_eq!(silenced.len(), 1, "the panic! is waived: {silenced:#?}");
    assert!(silenced[0].message.contains("panic!"));

    // The rule ignores the #[cfg(test)] module's unwrap entirely.
    assert!(
        !report.findings.iter().any(|f| f.line > 20),
        "test-module code leaked findings: {:#?}",
        report.findings
    );

    // The meta-rules ride along: a reason-less waiver is malformed, an
    // unused one is stale.
    assert!(
        report.findings.iter().any(|f| f.rule == "malformed-waiver"),
        "missing malformed-waiver: {:#?}",
        report.findings
    );
    assert!(
        report.findings.iter().any(|f| f.rule == "stale-waiver"),
        "missing stale-waiver: {:#?}",
        report.findings
    );
}

#[test]
fn hot_path_fires_inside_configured_functions_only() {
    let report = run_rule("hot_path", "hot-path-no-alloc");

    let hits = unwaived(&report, "hot-path-no-alloc");
    // One real allocation in the hot function, plus the config finding for
    // the spec that names a function the file does not define.
    assert!(
        hits.iter()
            .any(|f| f.message.contains(".collect()") && f.file.ends_with("lib.rs")),
        "missing the .collect() hit: {hits:#?}"
    );
    assert!(
        hits.iter().any(|f| f.message.contains("no_such_fn")),
        "missing the bad-spec finding: {hits:#?}"
    );
    assert_eq!(hits.len(), 2, "cold code must stay silent: {hits:#?}");

    let silenced = waived(&report, "hot-path-no-alloc");
    assert_eq!(silenced.len(), 1, "the vec! is waived: {silenced:#?}");
    assert!(silenced[0].message.contains("vec!"));
}

#[test]
fn metric_registry_catches_the_seeded_readme_drift() {
    // Regression for the drift this PR fixed in the real README: the fixture
    // README still says `pipeline.sort_merges` while the manifest declares
    // `pipeline.coalesce_sort`.
    let report = run_rule("metric_names", "metric-name-registry");
    let hits = unwaived(&report, "metric-name-registry");

    assert!(
        hits.iter()
            .any(|f| f.file == "README.md" && f.message.contains("pipeline.sort_merges")),
        "missing the README drift finding: {hits:#?}"
    );
    assert!(
        hits.iter()
            .any(|f| f.file == "README.md" || f.message.contains("pipeline.coalesce_sort")),
        "manifest entries absent from the README must be reported: {hits:#?}"
    );
    assert!(
        hits.iter()
            .any(|f| f.message.contains("pipeline.not_in_manifest")),
        "missing the undeclared-registration finding: {hits:#?}"
    );
    assert!(
        hits.iter()
            .any(|f| f.message.contains("pipeline.coalesce_sort") && f.message.contains("gauge")),
        "missing the kind-mismatch finding: {hits:#?}"
    );
    assert!(
        hits.iter()
            .any(|f| f.file == "metrics.toml" && f.message.contains("pipeline.dead_entry")),
        "missing the never-registered finding: {hits:#?}"
    );
}

#[test]
fn frame_coverage_reports_the_undecoded_variant() {
    let report = run_rule("frame_coverage", "frame-kind-coverage");
    let hits = unwaived(&report, "frame-kind-coverage");

    let delta = hits
        .iter()
        .find(|f| f.message.contains("Kind::Delta"))
        .unwrap_or_else(|| panic!("missing the Kind::Delta finding: {hits:#?}"));
    assert!(
        delta.message.contains("from_byte"),
        "decode gap: {delta:#?}"
    );
    assert!(
        delta.message.contains("proptest"),
        "proptest gap: {delta:#?}"
    );
    assert!(
        !hits
            .iter()
            .any(|f| f.message.contains("Kind::Manifest") || f.message.contains("Kind::Window")),
        "covered variants must stay silent: {hits:#?}"
    );
    assert!(
        hits.iter().any(|f| f.message.contains("missing.rs")),
        "missing the absent-proptest-file finding: {hits:#?}"
    );
}

#[test]
fn lock_across_channel_flags_only_the_live_guard() {
    let report = run_rule("lock_channel", "lock-across-channel");

    let hits = unwaived(&report, "lock-across-channel");
    assert_eq!(hits.len(), 1, "one live-guard overlap: {hits:#?}");
    assert_eq!(hits[0].line, 9, "the offending send: {hits:#?}");
    assert!(hits[0].message.contains("guard"));

    let silenced = waived(&report, "lock-across-channel");
    assert_eq!(silenced.len(), 1, "the waived overlap: {silenced:#?}");
}

#[test]
fn the_real_workspace_is_clean() {
    // The same invariant CI enforces: zero unwaived findings over the
    // actual source tree, with every rule enabled.
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = tw_analyze::analyze(&root).expect("analyzing the workspace");
    let open: Vec<&Finding> = report.unwaived().collect();
    assert!(open.is_empty(), "unwaived findings in the tree: {open:#?}");
    assert!(
        report.waived_count() > 0,
        "the waiver channel should be exercised by the real tree"
    );
}
