//! Adversarial property tests for the source scanner: whatever bytes or
//! text it is fed — unterminated strings, nested block comments, raw-string
//! hash soup, stray quotes — scanning never panics and the per-line
//! structure stays consistent with the input.

use proptest::prelude::*;
use tw_analyze::lexer::{contains_token, scan, scan_bytes};

/// Text biased toward the characters that drive the scanner's state
/// machine, so unterminated and nested constructs show up constantly.
fn arb_tricky_source() -> impl Strategy<Value = String> {
    let atom = prop_oneof![
        Just("\"".to_string()),
        Just("\\".to_string()),
        Just("/*".to_string()),
        Just("*/".to_string()),
        Just("//".to_string()),
        Just("///".to_string()),
        Just("r#\"".to_string()),
        Just("\"#".to_string()),
        Just("r##\"".to_string()),
        Just("{".to_string()),
        Just("}".to_string()),
        Just("\n".to_string()),
        Just("'".to_string()),
        Just("#[cfg(test)]".to_string()),
        Just("tw-analyze: allow(".to_string()),
        "[ a-z0-9_.!()]{0,12}",
    ];
    prop::collection::vec(atom, 0..60).prop_map(|parts| parts.concat())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn scanning_arbitrary_bytes_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        // Invalid UTF-8 included: scan_bytes must degrade, not die.
        let _ = scan_bytes(&bytes);
    }

    #[test]
    fn scanning_tricky_source_never_panics(source in arb_tricky_source()) {
        let _ = scan(&source);
    }

    #[test]
    fn blanking_preserves_line_structure(source in arb_tricky_source()) {
        // One ScannedLine per input line (a file is never zero lines), and
        // blanking strings/comments never changes a line's width — findings
        // point at real columns.
        let file = scan(&source);
        prop_assert_eq!(file.lines.len(), source.lines().count().max(1));
        for (line, scanned) in source.lines().zip(&file.lines) {
            prop_assert_eq!(
                scanned.code.chars().count(),
                line.chars().count(),
                "width changed on line {:?} -> {:?}", line, scanned.code
            );
        }
    }

    #[test]
    fn string_literals_land_inside_their_lines(source in arb_tricky_source()) {
        let file = scan(&source);
        for lit in &file.strings {
            prop_assert!(lit.line >= 1 && lit.line <= file.lines.len());
            let width = file.lines[lit.line - 1].code.chars().count();
            prop_assert!(
                lit.col <= width,
                "literal column {} beyond line width {}", lit.col, width
            );
        }
    }

    #[test]
    fn token_search_never_panics(code in "[ a-z._!()0-9]{0,40}", needle in "[a-z._!()]{1,8}") {
        // contains_token's boundary logic walks chars by index; any
        // needle/haystack pair must resolve without slicing mid-char.
        let _ = contains_token(&code, &needle);
    }
}
