//! A hand-rolled line scanner for Rust source, recursive-descent style.
//!
//! The scanner walks a file once, character by character, and produces one
//! [`ScannedLine`] per source line in which
//!
//! - comments (line, doc, and nested block comments) are blanked out,
//! - string/char literal *bodies* are blanked out (delimiters survive, and
//!   the literal text is captured separately in [`ScannedFile::strings`]),
//! - every line knows its brace depth and whether it sits inside a
//!   `#[cfg(test)]` region (attribute-gated item or `mod tests` block),
//!
//! so the rules can pattern-match on *code* without being fooled by strings
//! or prose. Column positions are preserved exactly: blanked characters are
//! replaced one-for-one with spaces, so a match at column `c` of
//! [`ScannedLine::code`] is at column `c` of the original file.
//!
//! The scanner is total: it never panics, whatever bytes it is handed
//! (property-tested in `tests/proptest_lexer.rs`), and unterminated
//! constructs simply run to end-of-file in their current state.

/// A string (or char) literal captured during the scan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StringLit {
    /// 1-based line on which the literal *starts*.
    pub line: usize,
    /// 0-based char column of the first character of the literal *body*
    /// (one past the opening `"` for plain strings).
    pub col: usize,
    /// The literal body, escapes left as written (`\n` stays two chars).
    pub text: String,
}

/// One scanned source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScannedLine {
    /// The line with comments and literal bodies blanked to spaces.
    pub code: String,
    /// Comment text found on this line (including the `//`/`/*` markers).
    pub comment: String,
    /// True when the line is inside (or opens) a `#[cfg(test)]` region.
    pub in_test: bool,
    /// Brace depth at the start of the line.
    pub depth: usize,
}

/// A fully scanned file.
#[derive(Debug, Clone, Default)]
pub struct ScannedFile {
    pub lines: Vec<ScannedLine>,
    pub strings: Vec<StringLit>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Code,
    LineComment,
    /// Block comment with its nesting level (Rust block comments nest).
    BlockComment(usize),
    /// Inside `"…"` or `b"…"`.
    Str,
    /// Inside `r"…"`/`r#"…"#`-style raw strings, with the hash count.
    RawStr(usize),
}

/// Scanner state threaded through the file walk.
struct Scanner {
    state: State,
    depth: usize,
    /// Depths of the `#[cfg(test)]` regions currently open.
    test_stack: Vec<usize>,
    /// A `#[cfg(test)]` attribute was seen at this depth; the next `{` at
    /// that depth opens a test region, a `;` at that depth cancels it
    /// (attribute applied to a braceless item).
    pending_test: Option<usize>,
    /// Attribute text being captured (from `#[` to its matching `]`).
    attr: Option<(String, usize)>,
    /// Output accumulators for the current line.
    code: String,
    comment: String,
    line_no: usize,
    line_depth: usize,
    line_test: bool,
    /// Current string literal being captured.
    lit: Option<StringLit>,
    out: ScannedFile,
}

impl Scanner {
    fn new() -> Self {
        Scanner {
            state: State::Code,
            depth: 0,
            test_stack: Vec::new(),
            pending_test: None,
            attr: None,
            code: String::new(),
            comment: String::new(),
            line_no: 1,
            line_depth: 0,
            line_test: false,
            lit: None,
            out: ScannedFile::default(),
        }
    }

    fn in_test(&self) -> bool {
        !self.test_stack.is_empty()
    }

    fn emit_code(&mut self, c: char) {
        self.code.push(c);
        if let Some((text, _)) = self.attr.as_mut() {
            text.push(c);
        }
    }

    fn blank(&mut self) {
        self.code.push(' ');
    }

    fn push_lit_char(&mut self, c: char) {
        if let Some(lit) = self.lit.as_mut() {
            lit.text.push(c);
        }
    }

    fn open_lit(&mut self) {
        self.lit = Some(StringLit {
            line: self.line_no,
            col: self.code.chars().count(),
            text: String::new(),
        });
    }

    fn close_lit(&mut self) {
        if let Some(lit) = self.lit.take() {
            self.out.strings.push(lit);
        }
    }

    fn newline(&mut self) {
        let in_test = self.line_test || self.in_test();
        self.out.lines.push(ScannedLine {
            code: std::mem::take(&mut self.code),
            comment: std::mem::take(&mut self.comment),
            in_test,
            depth: self.line_depth,
        });
        self.line_no += 1;
        self.line_depth = self.depth;
        self.line_test = self.in_test() || self.pending_test.is_some();
        if self.state == State::LineComment {
            self.state = State::Code;
        }
    }

    /// Close an attribute capture and arm `pending_test` when it names
    /// `cfg(test)` (not `cfg(not(test))` — the capture is matched after
    /// stripping whitespace, so `#[cfg( test )]` still counts).
    fn finish_attr(&mut self) {
        if let Some((text, _)) = self.attr.take() {
            let compact: String = text.chars().filter(|c| !c.is_whitespace()).collect();
            if compact.contains("cfg(test") {
                self.pending_test = Some(self.depth);
                self.line_test = true;
            }
        }
    }
}

fn is_ident(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Scan UTF-8 text. Invalid UTF-8 should be routed through [`scan_bytes`].
pub fn scan(source: &str) -> ScannedFile {
    let chars: Vec<char> = source.chars().collect();
    let peek = |i: usize, k: usize| chars.get(i + k).copied();
    let mut s = Scanner::new();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            // A line comment ends here; everything else (block comments,
            // strings) continues across the boundary in its current state.
            match s.state {
                State::Str | State::RawStr(_) => s.push_lit_char('\n'),
                State::BlockComment(_) | State::LineComment => s.comment.push(' '),
                State::Code => {}
            }
            s.newline();
            i += 1;
            continue;
        }
        match s.state {
            State::LineComment => {
                s.blank();
                s.comment.push(c);
            }
            State::BlockComment(level) => {
                s.blank();
                s.comment.push(c);
                if c == '/' && peek(i, 1) == Some('*') {
                    s.blank();
                    s.comment.push('*');
                    s.state = State::BlockComment(level + 1);
                    i += 1;
                } else if c == '*' && peek(i, 1) == Some('/') {
                    s.blank();
                    s.comment.push('/');
                    s.state = if level == 1 {
                        State::Code
                    } else {
                        State::BlockComment(level - 1)
                    };
                    i += 1;
                }
            }
            State::Str => {
                if c == '\\' {
                    // Blank the escape and whatever it escapes.
                    s.blank();
                    s.push_lit_char('\\');
                    if let Some(next) = peek(i, 1) {
                        if next != '\n' {
                            s.blank();
                            s.push_lit_char(next);
                            i += 1;
                        }
                    }
                } else if c == '"' {
                    s.emit_code('"');
                    s.close_lit();
                    s.state = State::Code;
                } else {
                    s.blank();
                    s.push_lit_char(c);
                }
            }
            State::RawStr(hashes) => {
                let closes = c == '"' && (0..hashes).all(|k| peek(i, 1 + k) == Some('#'));
                if closes {
                    s.emit_code('"');
                    for _ in 0..hashes {
                        s.emit_code('#');
                    }
                    s.close_lit();
                    s.state = State::Code;
                    i += hashes;
                } else {
                    s.blank();
                    s.push_lit_char(c);
                }
            }
            State::Code => {
                let prev_ident = i > 0 && is_ident(chars[i - 1]);
                match c {
                    '/' if peek(i, 1) == Some('/') => {
                        s.blank();
                        s.blank();
                        s.comment.push_str("//");
                        s.state = State::LineComment;
                        i += 1;
                    }
                    '/' if peek(i, 1) == Some('*') => {
                        s.blank();
                        s.blank();
                        s.comment.push_str("/*");
                        s.state = State::BlockComment(1);
                        i += 1;
                    }
                    '"' => {
                        s.emit_code('"');
                        s.open_lit();
                        s.state = State::Str;
                    }
                    'r' | 'b' if !prev_ident => {
                        // Raw / byte literal prefixes: r"…", r#"…"#, b"…",
                        // br#"…"#, b'…'. Anything else is a plain ident char.
                        let raw_at = if c == 'r' {
                            Some(i + 1)
                        } else if peek(i, 1) == Some('r') {
                            Some(i + 2)
                        } else {
                            None
                        };
                        let raw = raw_at.and_then(|j| {
                            let mut hashes = 0;
                            while chars.get(j + hashes) == Some(&'#') {
                                hashes += 1;
                            }
                            (chars.get(j + hashes) == Some(&'"')).then_some((j, hashes))
                        });
                        if let Some((j, hashes)) = raw {
                            for &ch in &chars[i..=(j + hashes)] {
                                s.emit_code(ch);
                            }
                            s.open_lit();
                            s.state = State::RawStr(hashes);
                            i = j + hashes;
                        } else if c == 'b' && peek(i, 1) == Some('"') {
                            s.emit_code('b');
                            s.emit_code('"');
                            s.open_lit();
                            s.state = State::Str;
                            i += 1;
                        } else if c == 'b' && peek(i, 1) == Some('\'') {
                            s.emit_code('b');
                            i += 1;
                            consume_char_literal(&chars, &mut i, &mut s);
                        } else {
                            s.emit_code(c);
                        }
                    }
                    '\'' if !prev_ident => {
                        consume_char_literal(&chars, &mut i, &mut s);
                    }
                    '#' if matches!(peek(i, 1), Some('['))
                        || (peek(i, 1) == Some('!') && peek(i, 2) == Some('[')) =>
                    {
                        s.emit_code('#');
                        s.attr = Some((String::from("#"), 0));
                    }
                    '[' => {
                        s.emit_code('[');
                        if let Some((_, brackets)) = s.attr.as_mut() {
                            *brackets += 1;
                        }
                    }
                    ']' => {
                        s.emit_code(']');
                        let done = match s.attr.as_mut() {
                            Some((_, brackets)) => {
                                *brackets = brackets.saturating_sub(1);
                                *brackets == 0
                            }
                            None => false,
                        };
                        if done {
                            s.finish_attr();
                        }
                    }
                    '{' => {
                        if s.pending_test == Some(s.depth) {
                            s.test_stack.push(s.depth);
                            s.pending_test = None;
                            s.line_test = true;
                        }
                        s.depth += 1;
                        s.emit_code('{');
                    }
                    '}' => {
                        s.depth = s.depth.saturating_sub(1);
                        if s.test_stack.last() == Some(&s.depth) {
                            s.test_stack.pop();
                            s.line_test = true;
                        }
                        s.emit_code('}');
                    }
                    ';' => {
                        if s.pending_test == Some(s.depth) {
                            s.pending_test = None;
                        }
                        s.emit_code(';');
                    }
                    _ => s.emit_code(c),
                }
            }
        }
        i += 1;
    }
    // Flush the final (unterminated) line.
    if !s.code.is_empty() || !s.comment.is_empty() || s.out.lines.is_empty() {
        s.newline();
    }
    s.close_lit();
    s.out
}

/// Consume a `'…'` char literal or a `'ident` lifetime starting at `chars[*i]`
/// (the opening quote). Leaves `*i` on the last consumed char.
fn consume_char_literal(chars: &[char], i: &mut usize, s: &mut Scanner) {
    let peek = |k: usize| chars.get(*i + k).copied();
    match peek(1) {
        Some('\\') => {
            // '\x' escape form: blank until the closing quote (or give up at
            // end of line — a broken literal must not swallow the file).
            s.emit_code('\'');
            s.open_lit();
            let mut k = 1;
            while let Some(c) = peek(k) {
                if c == '\'' && k > 1 {
                    break;
                }
                if c == '\n' || k > 12 {
                    break;
                }
                s.blank();
                s.push_lit_char(c);
                k += 1;
            }
            if peek(k) == Some('\'') {
                s.emit_code('\'');
                *i += k;
            } else {
                *i += k - 1;
            }
            s.close_lit();
        }
        Some(c) if peek(2) == Some('\'') && c != '\'' => {
            // 'x' one-char literal.
            s.emit_code('\'');
            s.open_lit();
            s.blank();
            s.push_lit_char(c);
            s.emit_code('\'');
            s.close_lit();
            *i += 2;
        }
        _ => {
            // A lifetime ('a) or a stray quote: plain code.
            s.emit_code('\'');
        }
    }
}

/// Scan raw bytes, decoding lossily. Never panics.
pub fn scan_bytes(bytes: &[u8]) -> ScannedFile {
    scan(&String::from_utf8_lossy(bytes))
}

/// Find the spans (1-based inclusive line ranges) of every function named
/// `name` in the scanned file: from the `fn name` line through the line on
/// which its body brace closes. Bodiless declarations span their own line.
pub fn function_spans(file: &ScannedFile, name: &str) -> Vec<(usize, usize)> {
    item_spans(file, "fn", name)
}

/// Find the spans of every `enum name` in the file.
pub fn enum_spans(file: &ScannedFile, name: &str) -> Vec<(usize, usize)> {
    item_spans(file, "enum", name)
}

fn item_spans(file: &ScannedFile, keyword: &str, name: &str) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    for (idx, line) in file.lines.iter().enumerate() {
        let Some(col) = find_item(&line.code, keyword, name) else {
            continue;
        };
        let start = idx + 1;
        // Walk forward from the declaration: the first `{` opens the body,
        // the matching `}` ends the span; a `;` before any `{` means a
        // bodiless declaration.
        let mut depth = 0usize;
        let mut opened = false;
        let mut end = start;
        'walk: for (j, later) in file.lines.iter().enumerate().skip(idx) {
            let text: Box<dyn Iterator<Item = char>> = if j == idx {
                Box::new(later.code.chars().skip(col))
            } else {
                Box::new(later.code.chars())
            };
            for c in text {
                match c {
                    '{' => {
                        opened = true;
                        depth += 1;
                    }
                    '}' => {
                        depth = depth.saturating_sub(1);
                        if opened && depth == 0 {
                            end = j + 1;
                            break 'walk;
                        }
                    }
                    ';' if !opened => {
                        end = j + 1;
                        break 'walk;
                    }
                    _ => {}
                }
            }
            end = j + 1;
        }
        spans.push((start, end));
    }
    spans
}

/// Locate `keyword name` in a code line, requiring word boundaries on both
/// and an acceptable follower (`(`, `<`, `{`, whitespace, or end of line).
fn find_item(code: &str, keyword: &str, name: &str) -> Option<usize> {
    let chars: Vec<char> = code.chars().collect();
    let pat: Vec<char> = keyword.chars().collect();
    for start in 0..chars.len().saturating_sub(pat.len()) {
        if chars[start..start + pat.len()] != pat[..] {
            continue;
        }
        if start > 0 && is_ident(chars[start - 1]) {
            continue;
        }
        // Skip whitespace between keyword and name.
        let mut j = start + pat.len();
        if chars.get(j).is_none_or(|c| !c.is_whitespace()) {
            continue;
        }
        while chars.get(j).is_some_and(|c| c.is_whitespace()) {
            j += 1;
        }
        let name_chars: Vec<char> = name.chars().collect();
        if chars.len() < j + name_chars.len() || chars[j..j + name_chars.len()] != name_chars[..] {
            continue;
        }
        let after = chars.get(j + name_chars.len()).copied();
        let boundary = match after {
            None => true,
            Some(c) => !is_ident(c),
        };
        if boundary {
            return Some(start);
        }
    }
    None
}

/// True when `code` contains `needle` starting at a non-identifier boundary
/// (so `panic!` does not match `dont_panic!`). The needle's own first char
/// decides what counts as a boundary; needles starting with `.` or `(` match
/// anywhere.
pub fn contains_token(code: &str, needle: &str) -> bool {
    find_token(code, needle).is_some()
}

/// Char-index of the first boundary-respecting occurrence of `needle`.
pub fn find_token(code: &str, needle: &str) -> Option<usize> {
    find_token_from(code, needle, 0)
}

/// Like [`find_token`], starting the search at char offset `from`.
pub fn find_token_from(code: &str, needle: &str, from: usize) -> Option<usize> {
    if needle.is_empty() {
        return None;
    }
    let chars: Vec<char> = code.chars().collect();
    let pat: Vec<char> = needle.chars().collect();
    let needs_boundary = pat[0].is_alphanumeric() || pat[0] == '_';
    let mut start = from;
    while start + pat.len() <= chars.len() {
        if chars[start..start + pat.len()] == pat[..] {
            let ok = !needs_boundary || start == 0 || !is_ident(chars[start - 1]);
            if ok {
                return Some(start);
            }
        }
        start += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_are_blanked_and_captured() {
        let f = scan("let x = \"hi // not a comment\";\n");
        assert_eq!(f.lines.len(), 1);
        let blanks = " ".repeat("hi // not a comment".chars().count());
        assert_eq!(f.lines[0].code, format!("let x = \"{blanks}\";"));
        assert_eq!(f.strings.len(), 1);
        assert_eq!(f.strings[0].text, "hi // not a comment");
        assert_eq!(f.strings[0].line, 1);
        assert!(f.lines[0].comment.is_empty());
    }

    #[test]
    fn raw_and_byte_strings() {
        let f = scan("let a = r#\"raw \"quoted\" body\"#; let b = b\"bytes\";\n");
        assert_eq!(f.strings.len(), 2);
        assert_eq!(f.strings[0].text, "raw \"quoted\" body");
        assert_eq!(f.strings[1].text, "bytes");
        assert!(!f.lines[0].code.contains("raw"));
        assert!(!f.lines[0].code.contains("bytes"));
    }

    #[test]
    fn comments_are_stripped_but_kept() {
        let f = scan("foo(); // tw-analyze: allow(x, \"y\")\n/* block\nstill */ bar();\n");
        assert_eq!(f.lines[0].code.trim_end(), "foo();");
        assert!(f.lines[0].comment.contains("tw-analyze"));
        assert!(f.lines[1].comment.contains("block"));
        assert!(f.lines[2].code.contains("bar();"));
        assert!(f.lines[2].comment.contains("still"));
    }

    #[test]
    fn nested_block_comments() {
        let f = scan("a(); /* one /* two */ still */ b();\n");
        assert!(f.lines[0].code.contains("a();"));
        assert!(f.lines[0].code.contains("b();"));
        assert!(!f.lines[0].code.contains("still"));
    }

    #[test]
    fn char_literals_and_lifetimes() {
        let f = scan("fn f<'a>(x: &'a str) { let c = '\\n'; let q = '{'; }\n");
        // The '{' char literal must not affect depth: the line closes back
        // to depth 0 and the next line would start at 0.
        let f2 = scan("fn f() { let q = '{'; }\nnext();\n");
        assert_eq!(f2.lines[1].depth, 0);
        assert!(f.lines[0].code.contains("fn f<'a>"));
    }

    #[test]
    fn cfg_test_region_tracking() {
        let src = "\
fn real() {}\n\
#[cfg(test)]\n\
mod tests {\n\
    fn inner() { x.unwrap(); }\n\
}\n\
fn after() {}\n";
        let f = scan(src);
        assert!(!f.lines[0].in_test);
        assert!(f.lines[1].in_test, "attribute line is test-marked");
        assert!(f.lines[2].in_test);
        assert!(f.lines[3].in_test);
        assert!(f.lines[4].in_test, "closing brace line");
        assert!(!f.lines[5].in_test);
    }

    #[test]
    fn cfg_test_on_braceless_item_ends_at_semicolon() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn real() {}\n";
        let f = scan(src);
        assert!(f.lines[1].in_test);
        assert!(!f.lines[2].in_test);
    }

    #[test]
    fn cfg_not_test_is_not_a_test_region() {
        let f = scan("#[cfg(not(test))]\nfn shipping() { x.unwrap(); }\n");
        assert!(!f.lines[1].in_test);
    }

    #[test]
    fn function_span_extraction() {
        let src = "\
impl Foo {\n\
    pub fn hot(&mut self) -> usize {\n\
        let v = compute();\n\
        v\n\
    }\n\
    fn other(&self) {}\n\
}\n";
        let f = scan(src);
        assert_eq!(function_spans(&f, "hot"), vec![(2, 5)]);
        assert_eq!(function_spans(&f, "other"), vec![(6, 6)]);
        assert!(function_spans(&f, "absent").is_empty());
    }

    #[test]
    fn enum_span_extraction() {
        let src = "pub enum Kind {\n    A,\n    B,\n}\n";
        let f = scan(src);
        assert_eq!(enum_spans(&f, "Kind"), vec![(1, 4)]);
    }

    #[test]
    fn token_boundaries() {
        assert!(contains_token("panic!(\"x\")", "panic!"));
        assert!(!contains_token("dont_panic!()", "panic!"));
        assert!(contains_token("x.unwrap()", ".unwrap()"));
        assert!(!contains_token("x.unwrap_or(0)", ".unwrap()"));
        assert!(!contains_token("a.clone_from(&b)", ".clone()"));
    }

    #[test]
    fn depth_never_underflows() {
        let f = scan("}}}}}\nfn x() {}\n");
        assert_eq!(f.lines[1].depth, 0);
    }
}
