//! Findings, waivers, and the rendered reports (human text + machine JSON).

use std::fmt::Write as _;

/// One diagnostic produced by a rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule identifier, e.g. `no-panic-in-lib`.
    pub rule: String,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line (0 = whole file).
    pub line: usize,
    pub message: String,
    /// The justification of the waiver that silenced this finding, if any.
    pub waived: Option<String>,
}

impl Finding {
    pub fn new(rule: &str, file: &str, line: usize, message: impl Into<String>) -> Self {
        Finding {
            rule: rule.to_string(),
            file: file.to_string(),
            line,
            message: message.into(),
            waived: None,
        }
    }
}

/// Where a waiver applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaiverScope {
    /// The line the comment sits on (or the next code line below it).
    Line,
    /// The whole file.
    File,
}

/// A parsed `// tw-analyze: allow(...)` comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Waiver {
    pub rule: String,
    pub file: String,
    /// Line of the waiver comment itself.
    pub line: usize,
    /// Line the waiver covers (== `line` for trailing comments, the next
    /// code line for comment-only lines; unused for file scope).
    pub target: usize,
    pub reason: String,
    pub scope: WaiverScope,
    /// Set during matching; an unused waiver is itself reported.
    pub used: bool,
}

/// The result of one analysis run.
#[derive(Debug, Clone, Default)]
pub struct Report {
    pub findings: Vec<Finding>,
    pub waivers: Vec<Waiver>,
    pub files_scanned: usize,
    pub rules_run: Vec<String>,
}

impl Report {
    /// Findings not silenced by a waiver.
    pub fn unwaived(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| f.waived.is_none())
    }

    pub fn unwaived_count(&self) -> usize {
        self.unwaived().count()
    }

    pub fn waived_count(&self) -> usize {
        self.findings.iter().filter(|f| f.waived.is_some()).count()
    }

    /// The human-readable report: one line per unwaived finding plus a
    /// one-line summary.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for f in self.unwaived() {
            if f.line == 0 {
                let _ = writeln!(out, "{}: [{}] {}", f.file, f.rule, f.message);
            } else {
                let _ = writeln!(out, "{}:{}: [{}] {}", f.file, f.line, f.rule, f.message);
            }
        }
        let _ = writeln!(
            out,
            "analyze: {} finding(s), {} waived, {} unwaived across {} file(s); rules: {}",
            self.findings.len(),
            self.waived_count(),
            self.unwaived_count(),
            self.files_scanned,
            self.rules_run.join(", "),
        );
        out
    }

    /// The waiver audit: every active waiver with its location and reason.
    pub fn render_waivers(&self) -> String {
        let mut out = String::new();
        for w in &self.waivers {
            let scope = match w.scope {
                WaiverScope::Line => "line",
                WaiverScope::File => "file",
            };
            let _ = writeln!(
                out,
                "{}:{}: [{}] ({}) {:?}",
                w.file, w.line, w.rule, scope, w.reason
            );
        }
        let _ = writeln!(out, "{} active waiver(s)", self.waivers.len());
        out
    }

    /// The machine-readable JSON report.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"files_scanned\": {},", self.files_scanned);
        let _ = writeln!(out, "  \"unwaived\": {},", self.unwaived_count());
        let _ = writeln!(out, "  \"waived\": {},", self.waived_count());
        out.push_str("  \"rules\": [");
        for (i, rule) in self.rules_run.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&json_string(rule));
        }
        out.push_str("],\n");
        out.push_str("  \"findings\": [\n");
        for (i, f) in self.findings.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"message\": {}, \"waived\": {}}}",
                json_string(&f.rule),
                json_string(&f.file),
                f.line,
                json_string(&f.message),
                match &f.waived {
                    Some(reason) => json_string(reason),
                    None => "null".to_string(),
                },
            );
            out.push_str(if i + 1 < self.findings.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ],\n");
        out.push_str("  \"waivers\": [\n");
        for (i, w) in self.waivers.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"reason\": {}, \"scope\": {}, \"used\": {}}}",
                json_string(&w.rule),
                json_string(&w.file),
                w.line,
                json_string(&w.reason),
                json_string(match w.scope {
                    WaiverScope::Line => "line",
                    WaiverScope::File => "file",
                }),
                w.used,
            );
            out.push_str(if i + 1 < self.waivers.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// JSON-escape a string (quotes included in the output).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_report_lists_only_unwaived() {
        let mut report = Report {
            findings: vec![
                Finding::new("r1", "a.rs", 3, "bad"),
                Finding::new("r2", "b.rs", 7, "worse"),
            ],
            files_scanned: 2,
            rules_run: vec!["r1".into(), "r2".into()],
            ..Report::default()
        };
        report.findings[1].waived = Some("because".into());
        let text = report.render_text();
        assert!(text.contains("a.rs:3: [r1] bad"));
        assert!(!text.contains("b.rs:7"));
        assert!(text.contains("1 waived, 1 unwaived"));
    }

    #[test]
    fn json_escapes_and_structure() {
        let report = Report {
            findings: vec![Finding::new("r", "x.rs", 1, "say \"hi\"\nthere")],
            files_scanned: 1,
            rules_run: vec!["r".into()],
            ..Report::default()
        };
        let json = report.render_json();
        assert!(json.contains("\\\"hi\\\"\\nthere"));
        assert!(json.contains("\"unwaived\": 1"));
        assert!(json.contains("\"waived\": null"));
    }
}
