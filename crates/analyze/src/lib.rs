//! # tw-analyze
//!
//! Workspace-native static analysis: an offline, dependency-free pass over
//! the workspace's own Rust source that enforces the invariants the code has
//! already bought — no panics in library code, no allocation in the ingest
//! hot path, metric names that agree across code, manifest, and README,
//! every frame kind covered by encode/decode/proptests, and no blocking
//! channel operations while a lock guard is live.
//!
//! The pass runs as `traffic-warehouse analyze` (or `cargo run -p
//! tw-analyze`) and is gated in CI with `--deny-warnings`. Rules are
//! deny-by-default: every finding must be fixed or explicitly waived with an
//! inline justification:
//!
//! ```text
//! // tw-analyze: allow(no-panic-in-lib, "static table indices are proven by tests")
//! // tw-analyze: allow-file(no-panic-in-lib, "figure data built from vetted literals")
//! ```
//!
//! `analyze.toml` at the workspace root configures path scopes and per-rule
//! inputs; `metrics.toml` is the canonical manifest of metric names. Both are
//! read by the hand-rolled TOML-subset parser in [`config`] and the Rust
//! line scanner in [`lexer`] — recursive-descent, total, and property-tested
//! to never panic on arbitrary bytes.

pub mod config;
pub mod lexer;
pub mod report;
pub mod rules;

pub use report::{Finding, Report, Waiver, WaiverScope};

use std::fmt;
use std::path::{Path, PathBuf};

/// How a source file participates in analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileClass {
    /// Library code: all rules apply.
    Lib,
    /// Binary / CLI code: panics are the process boundary's prerogative.
    Bin,
    /// Tests, benches, examples, fixtures: scanned (their waivers and the
    /// frame-coverage rule need them) but exempt from the lib rules.
    TestLike,
}

/// One scanned workspace source file.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Workspace-relative path with `/` separators.
    pub rel: String,
    pub class: FileClass,
    pub scanned: lexer::ScannedFile,
}

/// The loaded workspace: configuration plus every scanned source file.
#[derive(Debug, Clone)]
pub struct Workspace {
    pub root: PathBuf,
    pub config: config::Document,
    pub files: Vec<SourceFile>,
}

impl Workspace {
    /// Find a scanned file by its workspace-relative path.
    pub fn file(&self, rel: &str) -> Option<&SourceFile> {
        self.files.iter().find(|f| f.rel == rel)
    }

    /// Read a workspace-relative text file (for manifests and README).
    pub fn read_text(&self, rel: &str) -> Result<String, AnalyzeError> {
        let path = self.root.join(rel);
        std::fs::read(&path)
            .map(|bytes| String::from_utf8_lossy(&bytes).into_owned())
            .map_err(|e| AnalyzeError::Io(rel.to_string(), e.to_string()))
    }
}

/// Analysis failures (I/O and configuration; findings are not errors).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AnalyzeError {
    /// `path, message`
    Io(String, String),
    /// `file, underlying parse error`
    Config(String, String),
    /// No `analyze.toml` found walking up from the start directory.
    NoWorkspace(String),
    /// An unknown rule was requested via `--rule`.
    UnknownRule(String),
}

impl fmt::Display for AnalyzeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalyzeError::Io(path, e) => write!(f, "{path}: {e}"),
            AnalyzeError::Config(file, e) => write!(f, "{file}: {e}"),
            AnalyzeError::NoWorkspace(start) => {
                write!(f, "no analyze.toml found above {start}")
            }
            AnalyzeError::UnknownRule(rule) => {
                write!(
                    f,
                    "unknown rule {rule:?}; known rules: {}",
                    rules::ALL.join(", ")
                )
            }
        }
    }
}

impl std::error::Error for AnalyzeError {}

/// Options for one analysis run.
#[derive(Debug, Clone, Default)]
pub struct Options {
    /// Restrict the run to one rule (plus waiver hygiene).
    pub rule: Option<String>,
}

/// Walk up from `start` to the nearest directory containing `analyze.toml`.
pub fn find_workspace_root(start: &Path) -> Result<PathBuf, AnalyzeError> {
    let mut dir = if start.is_absolute() {
        start.to_path_buf()
    } else {
        std::env::current_dir()
            .map_err(|e| AnalyzeError::Io(".".into(), e.to_string()))?
            .join(start)
    };
    loop {
        if dir.join("analyze.toml").is_file() {
            return Ok(dir);
        }
        if !dir.pop() {
            return Err(AnalyzeError::NoWorkspace(start.display().to_string()));
        }
    }
}

/// Load and scan the workspace rooted at `root`.
pub fn load_workspace(root: &Path) -> Result<Workspace, AnalyzeError> {
    let config_text = std::fs::read_to_string(root.join("analyze.toml"))
        .map_err(|e| AnalyzeError::Io("analyze.toml".into(), e.to_string()))?;
    let config = config::parse(&config_text)
        .map_err(|e| AnalyzeError::Config("analyze.toml".into(), e.to_string()))?;

    let include: Vec<String> = config
        .get_array("paths", "include")
        .map(|a| a.to_vec())
        .unwrap_or_else(|| vec!["crates".to_string()]);
    let exclude: Vec<String> = config
        .get_array("paths", "exclude")
        .map(|a| a.to_vec())
        .unwrap_or_default();
    let bin_crates: Vec<String> = config
        .get_array("paths", "bin_crates")
        .map(|a| a.to_vec())
        .unwrap_or_default();

    let mut rels = Vec::new();
    for inc in &include {
        collect_rust_files(root, &root.join(inc), &mut rels)?;
    }
    rels.sort();
    rels.dedup();

    let mut files = Vec::new();
    for rel in rels {
        if exclude
            .iter()
            .any(|p| rel == *p || rel.starts_with(&format!("{p}/")))
        {
            continue;
        }
        let bytes = std::fs::read(root.join(&rel))
            .map_err(|e| AnalyzeError::Io(rel.clone(), e.to_string()))?;
        let scanned = lexer::scan_bytes(&bytes);
        let class = classify(&rel, &bin_crates);
        files.push(SourceFile {
            rel,
            class,
            scanned,
        });
    }
    Ok(Workspace {
        root: root.to_path_buf(),
        config,
        files,
    })
}

/// Recursively collect `.rs` files under `dir`, as workspace-relative paths.
fn collect_rust_files(root: &Path, dir: &Path, out: &mut Vec<String>) -> Result<(), AnalyzeError> {
    let entries = match std::fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(_) => return Ok(()), // a configured include that does not exist
    };
    let mut names: Vec<PathBuf> = Vec::new();
    for entry in entries.flatten() {
        names.push(entry.path());
    }
    names.sort();
    for path in names {
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_rust_files(root, &path, out)?;
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_string_lossy().replace('\\', "/"));
            }
        }
    }
    Ok(())
}

/// Classify a workspace-relative path.
fn classify(rel: &str, bin_crates: &[String]) -> FileClass {
    let parts: Vec<&str> = rel.split('/').collect();
    if parts
        .iter()
        .any(|p| *p == "tests" || *p == "benches" || *p == "examples" || *p == "fixtures")
    {
        return FileClass::TestLike;
    }
    if rel.ends_with("src/main.rs") || parts.contains(&"bin") {
        return FileClass::Bin;
    }
    if bin_crates
        .iter()
        .any(|c| rel == *c || rel.starts_with(&format!("{c}/")))
    {
        return FileClass::Bin;
    }
    FileClass::Lib
}

/// Parse every waiver comment in the workspace. Malformed waivers come back
/// as findings.
fn collect_waivers(ws: &Workspace) -> (Vec<Waiver>, Vec<Finding>) {
    let mut waivers = Vec::new();
    let mut malformed = Vec::new();
    for file in &ws.files {
        for (idx, line) in file.scanned.lines.iter().enumerate() {
            // Waivers live in plain `//` comments; doc comments only *talk*
            // about the syntax (rule docs, this file's own examples).
            let trimmed = line.comment.trim_start();
            if trimmed.starts_with("///") || trimmed.starts_with("//!") {
                continue;
            }
            let Some(pos) = line.comment.find("tw-analyze:") else {
                continue;
            };
            let line_no = idx + 1;
            let rest = &line.comment[pos + "tw-analyze:".len()..];
            match parse_waiver_comment(rest) {
                Ok((rule, reason, file_scope)) => {
                    let scope = if file_scope {
                        WaiverScope::File
                    } else {
                        WaiverScope::Line
                    };
                    let target = if file_scope {
                        0
                    } else {
                        waiver_target(&file.scanned, idx)
                    };
                    waivers.push(Waiver {
                        rule,
                        file: file.rel.clone(),
                        line: line_no,
                        target,
                        reason,
                        scope,
                        used: false,
                    });
                }
                Err(message) => {
                    malformed.push(Finding::new(
                        rules::MALFORMED_WAIVER,
                        &file.rel,
                        line_no,
                        message,
                    ));
                }
            }
        }
    }
    (waivers, malformed)
}

/// The line a comment-scope waiver covers: its own line when it trails code,
/// otherwise the next line carrying code.
fn waiver_target(scanned: &lexer::ScannedFile, idx: usize) -> usize {
    if !scanned.lines[idx].code.trim().is_empty() {
        return idx + 1;
    }
    for (j, line) in scanned.lines.iter().enumerate().skip(idx + 1) {
        if !line.code.trim().is_empty() {
            return j + 1;
        }
    }
    idx + 1
}

/// Parse the text after `tw-analyze:` — `allow(rule, "reason")` or
/// `allow-file(rule, "reason")` — recursive-descent style.
fn parse_waiver_comment(text: &str) -> Result<(String, String, bool), String> {
    let text = text.trim_start();
    let (file_scope, rest) = if let Some(rest) = text.strip_prefix("allow-file") {
        (true, rest)
    } else if let Some(rest) = text.strip_prefix("allow") {
        (false, rest)
    } else {
        return Err("expected `allow(...)` or `allow-file(...)` after `tw-analyze:`".into());
    };
    let rest = rest.trim_start();
    let Some(rest) = rest.strip_prefix('(') else {
        return Err("expected '(' after allow".into());
    };
    let Some(comma) = rest.find(',') else {
        return Err("expected `allow(<rule>, \"<why>\")` — missing comma".into());
    };
    let rule = rest[..comma].trim().to_string();
    if rule.is_empty() || !rule.chars().all(|c| c.is_ascii_lowercase() || c == '-') {
        return Err(format!("bad rule name {rule:?} in waiver"));
    }
    let rest = rest[comma + 1..].trim_start();
    let Some(rest) = rest.strip_prefix('"') else {
        return Err("waivers need a quoted justification".into());
    };
    let Some(end) = rest.find('"') else {
        return Err("unterminated justification string".into());
    };
    let reason = rest[..end].trim().to_string();
    if reason.is_empty() {
        return Err("waiver justification must not be empty".into());
    }
    let after = rest[end + 1..].trim_start();
    if !after.starts_with(')') {
        return Err("expected ')' closing the waiver".into());
    }
    Ok((rule, reason, file_scope))
}

/// Run the full pass: load, scan, rule-check, waive, and report.
pub fn analyze(root: &Path) -> Result<Report, AnalyzeError> {
    analyze_with(root, &Options::default())
}

/// [`analyze`] with options.
pub fn analyze_with(root: &Path, options: &Options) -> Result<Report, AnalyzeError> {
    if let Some(rule) = &options.rule {
        if !rules::ALL.contains(&rule.as_str()) {
            return Err(AnalyzeError::UnknownRule(rule.clone()));
        }
    }
    let ws = load_workspace(root)?;
    let (mut waivers, malformed) = collect_waivers(&ws);
    let (mut findings, rules_run) = rules::run(&ws, options.rule.as_deref())?;

    // Match findings to waivers: a line waiver covers findings of its rule
    // on its target line, a file waiver covers the whole file.
    for finding in &mut findings {
        let matched = waivers.iter_mut().find(|w| {
            w.rule == finding.rule
                && w.file == finding.file
                && match w.scope {
                    WaiverScope::File => true,
                    WaiverScope::Line => w.target == finding.line,
                }
        });
        if let Some(waiver) = matched {
            waiver.used = true;
            finding.waived = Some(waiver.reason.clone());
        }
    }

    // Waiver hygiene: malformed waivers always surface; waivers that silence
    // nothing are dead weight and must be removed (the ratchet never loosens
    // silently). When a single rule is requested, only that rule's stale
    // waivers are reported — others were never given a chance to match.
    findings.extend(malformed);
    for waiver in &waivers {
        let in_scope = match &options.rule {
            Some(rule) => waiver.rule == *rule,
            None => true,
        };
        if in_scope && !waiver.used && rules::ALL.contains(&waiver.rule.as_str()) {
            findings.push(Finding::new(
                rules::STALE_WAIVER,
                &waiver.file,
                waiver.line,
                format!(
                    "stale waiver: no {} finding left on its target — remove it",
                    waiver.rule
                ),
            ));
        } else if in_scope && !rules::ALL.contains(&waiver.rule.as_str()) {
            findings.push(Finding::new(
                rules::STALE_WAIVER,
                &waiver.file,
                waiver.line,
                format!("waiver names unknown rule {:?}", waiver.rule),
            ));
        }
    }

    findings.sort_by(|a, b| (&a.file, a.line, &a.rule).cmp(&(&b.file, b.line, &b.rule)));
    Ok(Report {
        findings,
        waivers,
        files_scanned: ws.files.len(),
        rules_run,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn waiver_comment_grammar() {
        assert_eq!(
            parse_waiver_comment(" allow(no-panic-in-lib, \"why not\")"),
            Ok(("no-panic-in-lib".into(), "why not".into(), false))
        );
        assert_eq!(
            parse_waiver_comment("allow-file(hot-path-no-alloc, \"cold path\") trailing"),
            Ok(("hot-path-no-alloc".into(), "cold path".into(), true))
        );
        assert!(parse_waiver_comment("allow(rule)").is_err());
        assert!(parse_waiver_comment("allow(rule, \"\")").is_err());
        assert!(parse_waiver_comment("allow(RULE, \"x\")").is_err());
        assert!(parse_waiver_comment("deny(rule, \"x\")").is_err());
    }

    #[test]
    fn classify_paths() {
        let bins = vec!["crates/cli".to_string()];
        assert_eq!(classify("crates/ingest/src/lib.rs", &bins), FileClass::Lib);
        assert_eq!(classify("crates/cli/src/lib.rs", &bins), FileClass::Bin);
        assert_eq!(classify("crates/serve/src/main.rs", &[]), FileClass::Bin);
        assert_eq!(
            classify("crates/ingest/tests/proptest_frame.rs", &[]),
            FileClass::TestLike
        );
        assert_eq!(
            classify("crates/analyze/tests/fixtures/demo/src/lib.rs", &[]),
            FileClass::TestLike
        );
        assert_eq!(
            classify("crates/core/examples/replay.rs", &[]),
            FileClass::TestLike
        );
    }
}
