//! `frame-kind-coverage`: every variant of the wire-format frame-kind enum
//! must appear in the encode function, the decode function, and at least one
//! of the configured property-test files. Adding a frame kind without
//! touching all three is exactly the class of bug that corrupts archives
//! silently, so the rule fails closed on the variant's declaration line.

use crate::lexer::{contains_token, enum_spans, function_spans};
use crate::{Finding, Workspace};

pub const NAME: &str = "frame-kind-coverage";
const SECTION: &str = "rule.frame-kind-coverage";

pub fn check(ws: &Workspace) -> Result<Vec<Finding>, crate::AnalyzeError> {
    let mut out = Vec::new();
    let Some(spec) = ws.config.get_str(SECTION, "enum").map(str::to_string) else {
        // Rule not configured for this workspace (fixture roots often skip it).
        return Ok(out);
    };
    let encode_fn = ws
        .config
        .get_str(SECTION, "encode")
        .unwrap_or("to_byte")
        .to_string();
    let decode_fn = ws
        .config
        .get_str(SECTION, "decode")
        .unwrap_or("from_byte")
        .to_string();
    let proptests: Vec<String> = ws
        .config
        .get_array(SECTION, "proptests")
        .map(|a| a.to_vec())
        .unwrap_or_default();

    let Some((file_rel, enum_name)) = spec.rsplit_once("::") else {
        out.push(Finding::new(
            NAME,
            "analyze.toml",
            0,
            format!("bad enum spec {spec:?} — expected \"<file>::<Enum>\""),
        ));
        return Ok(out);
    };
    let Some(file) = ws.file(file_rel) else {
        out.push(Finding::new(
            NAME,
            "analyze.toml",
            0,
            format!("enum spec {spec:?} names a file that is not in the workspace"),
        ));
        return Ok(out);
    };
    let spans = enum_spans(&file.scanned, enum_name);
    let Some(&(start, end)) = spans.first() else {
        out.push(Finding::new(
            NAME,
            file_rel,
            0,
            format!("enum `{enum_name}` not found — update analyze.toml"),
        ));
        return Ok(out);
    };

    // Variants: lines strictly inside the enum body whose first code token is
    // a capitalized identifier (skips attributes and doc comments, which the
    // scanner already blanked).
    let mut variants: Vec<(String, usize)> = Vec::new();
    for idx in start..end.saturating_sub(1) {
        let code = file.scanned.lines[idx].code.trim();
        let ident: String = code
            .chars()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect();
        if ident.chars().next().is_some_and(|c| c.is_ascii_uppercase()) {
            variants.push((ident, idx + 1));
        }
    }

    let encode_lines = span_lines(file, &encode_fn);
    let decode_lines = span_lines(file, &decode_fn);
    for (variant, line) in &variants {
        let mut missing = Vec::new();
        if !encode_lines
            .iter()
            .any(|idx| contains_token(&file.scanned.lines[*idx].code, variant))
        {
            missing.push(format!("encode fn `{encode_fn}`"));
        }
        if !decode_lines
            .iter()
            .any(|idx| contains_token(&file.scanned.lines[*idx].code, variant))
        {
            missing.push(format!("decode fn `{decode_fn}`"));
        }
        let in_proptest = proptests.iter().any(|rel| match ws.file(rel) {
            Some(pt) => pt
                .scanned
                .lines
                .iter()
                .any(|l| contains_token(&l.code, variant)),
            None => false,
        });
        if !proptests.is_empty() && !in_proptest {
            missing.push("the configured proptest files".to_string());
        }
        if !missing.is_empty() {
            out.push(Finding::new(
                NAME,
                file_rel,
                *line,
                format!(
                    "`{enum_name}::{variant}` is not covered by {}",
                    missing.join(", ")
                ),
            ));
        }
    }
    for rel in &proptests {
        if ws.file(rel).is_none() {
            out.push(Finding::new(
                NAME,
                "analyze.toml",
                0,
                format!("proptest file {rel:?} is not in the workspace"),
            ));
        }
    }
    Ok(out)
}

/// 0-based line indices covered by every function with this name.
fn span_lines(file: &crate::SourceFile, fn_name: &str) -> Vec<usize> {
    function_spans(&file.scanned, fn_name)
        .into_iter()
        .flat_map(|(start, end)| (start - 1)..end)
        .collect()
}
