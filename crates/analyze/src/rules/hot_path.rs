//! `hot-path-no-alloc`: the functions named in `analyze.toml` — the ingest
//! hot path that PRs past spent so much effort keeping allocation-free —
//! must not regress into allocating per call. The deny list is token-based
//! (`vec!`, `.collect()`, `.to_vec()`, …) and configurable; cold-start
//! allocations inside those functions (first-window scratch builds) carry
//! inline waivers.

use crate::lexer::{contains_token, function_spans};
use crate::{Finding, Workspace};

pub const NAME: &str = "hot-path-no-alloc";
const SECTION: &str = "rule.hot-path-no-alloc";

/// Used when `analyze.toml` does not override `deny`.
const DEFAULT_DENY: &[&str] = &[
    "Vec::new",
    "vec!",
    ".to_vec()",
    ".collect()",
    ".collect::<",
    ".clone()",
    "Box::new",
    "String::new",
    ".to_string()",
    ".to_owned()",
    "format!",
];

pub fn check(ws: &Workspace) -> Result<Vec<Finding>, crate::AnalyzeError> {
    let mut out = Vec::new();
    let functions = ws
        .config
        .get_array(SECTION, "functions")
        .map(|a| a.to_vec())
        .unwrap_or_default();
    let deny: Vec<String> = ws
        .config
        .get_array(SECTION, "deny")
        .map(|a| a.to_vec())
        .unwrap_or_else(|| DEFAULT_DENY.iter().map(|s| s.to_string()).collect());

    for spec in &functions {
        let Some((path, fn_name)) = spec.rsplit_once("::") else {
            out.push(Finding::new(
                NAME,
                "analyze.toml",
                0,
                format!("bad hot-path spec {spec:?} — expected \"<file>::<fn>\""),
            ));
            continue;
        };
        let Some(file) = ws.file(path) else {
            out.push(Finding::new(
                NAME,
                "analyze.toml",
                0,
                format!("hot-path spec {spec:?} names a file that is not in the workspace"),
            ));
            continue;
        };
        let spans = function_spans(&file.scanned, fn_name);
        if spans.is_empty() {
            out.push(Finding::new(
                NAME,
                path,
                0,
                format!("hot-path function `{fn_name}` not found — update analyze.toml"),
            ));
            continue;
        }
        for (start, end) in spans {
            for idx in (start - 1)..end {
                let line = &file.scanned.lines[idx];
                if line.in_test {
                    continue;
                }
                for token in &deny {
                    if contains_token(&line.code, token) {
                        out.push(Finding::new(
                            NAME,
                            path,
                            idx + 1,
                            format!("`{token}` inside hot-path function `{fn_name}`"),
                        ));
                        break;
                    }
                }
            }
        }
    }
    Ok(out)
}
