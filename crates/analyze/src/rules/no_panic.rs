//! `no-panic-in-lib`: non-test library code must not reach for
//! `.unwrap()`, `.expect("…")`, `panic!`, `todo!`, or `unimplemented!`.
//! Binaries own the process boundary and may panic; tests may assert
//! however they like. Everything else converts to a typed error or carries
//! a waiver explaining why the invariant cannot actually fire.

use crate::lexer::{contains_token, find_token};
use crate::{FileClass, Finding, Workspace};

pub const NAME: &str = "no-panic-in-lib";

/// Tokens that always panic. `.expect(` is handled separately because the
/// workspace's JSON parser has its own `expect(byte, what)` *method* that
/// must not be flagged.
const PANIC_TOKENS: &[&str] = &[".unwrap()", "panic!", "todo!", "unimplemented!"];

pub fn check(ws: &Workspace) -> Result<Vec<Finding>, crate::AnalyzeError> {
    let mut out = Vec::new();
    for file in &ws.files {
        if file.class != FileClass::Lib {
            continue;
        }
        for (idx, line) in file.scanned.lines.iter().enumerate() {
            if line.in_test {
                continue;
            }
            let mut hit = None;
            for token in PANIC_TOKENS {
                if contains_token(&line.code, token) {
                    hit = Some(*token);
                    break;
                }
            }
            if hit.is_none() && is_option_expect(&line.code) {
                hit = Some(".expect(\"…\")");
            }
            if let Some(token) = hit {
                out.push(Finding::new(
                    NAME,
                    &file.rel,
                    idx + 1,
                    format!(
                        "`{token}` in non-test library code — return a typed error \
                         or waive with a justification"
                    ),
                ));
            }
        }
    }
    Ok(out)
}

/// True when the line calls `Option::expect`/`Result::expect`: `.expect(`
/// whose first argument is a string literal (next non-space char is `"`) or
/// wraps to the next line (end of line after the paren). Calls like
/// `self.expect(b'{', "'{'")` — a parser method taking a byte — do not match.
fn is_option_expect(code: &str) -> bool {
    let Some(pos) = find_token(code, ".expect(") else {
        return false;
    };
    let rest: String = code.chars().skip(pos + ".expect(".len()).collect();
    matches!(rest.trim_start().chars().next(), Some('"') | None)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expect_heuristic() {
        assert!(is_option_expect("let x = maybe.expect(\" \");"));
        assert!(is_option_expect("value.expect(")); // wrapped literal
        assert!(!is_option_expect("self.expect(b' ', \"msg\")?;"));
        assert!(!is_option_expect("fn expect(&mut self) {"));
        assert!(!is_option_expect("plain line"));
    }
}
