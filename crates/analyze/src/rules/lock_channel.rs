//! `lock-across-channel`: holding a `Mutex`/`RwLock` guard across a blocking
//! channel operation (`.send(`, `.recv()`, `.recv_timeout(`) is the classic
//! deadlock shape in this codebase's fan-out tier — a consumer blocked on the
//! channel while the producer blocks on the lock. `try_send`/`try_recv` are
//! fine. The check is a per-file sweep: a `let`-bound guard is considered
//! live from its binding line until brace depth drops below the binding's
//! depth (or an explicit `drop(guard)`), which over-approximates scopes
//! slightly but never misses a real overlap.

use crate::lexer::{contains_token, find_token};
use crate::{FileClass, Finding, Workspace};

pub const NAME: &str = "lock-across-channel";

const GUARD_SOURCES: &[&str] = &[".lock()", ".read()", ".write()"];
const BLOCKING_OPS: &[&str] = &[".send(", ".recv()", ".recv_timeout("];

#[derive(Debug)]
struct Guard {
    name: String,
    depth: usize,
    line: usize,
}

pub fn check(ws: &Workspace) -> Result<Vec<Finding>, crate::AnalyzeError> {
    let mut out = Vec::new();
    for file in &ws.files {
        if file.class != FileClass::Lib {
            continue;
        }
        let mut guards: Vec<Guard> = Vec::new();
        for (idx, line) in file.scanned.lines.iter().enumerate() {
            guards.retain(|g| line.depth >= g.depth);
            if line.in_test {
                continue;
            }
            guards.retain(|g| !contains_token(&line.code, &format!("drop({})", g.name)));

            if let Some(op) = BLOCKING_OPS
                .iter()
                .find(|op| contains_token(&line.code, op))
            {
                if let Some(guard) = guards.first() {
                    out.push(Finding::new(
                        NAME,
                        &file.rel,
                        idx + 1,
                        format!(
                            "blocking `{op}` while lock guard `{}` (line {}) is live \
                             — drop the guard first or use the try_ variant",
                            guard.name, guard.line
                        ),
                    ));
                }
            }

            if GUARD_SOURCES.iter().any(|t| contains_token(&line.code, t)) {
                if let Some(name) = binding_name(&line.code) {
                    guards.push(Guard {
                        name,
                        depth: line.depth,
                        line: idx + 1,
                    });
                }
            }
        }
    }
    Ok(out)
}

/// The identifier bound by a `let` on this line, looking through `mut`,
/// `Some(`, and `Ok(` wrappers. `None` when the lock call is a same-statement
/// temporary (no `let`), whose guard cannot outlive the line.
fn binding_name(code: &str) -> Option<String> {
    let pos = find_token(code, "let")?;
    let mut rest: &str = &code[char_byte_index(code, pos + 3)..];
    rest = rest.trim_start();
    for wrapper in ["mut ", "Some(", "Ok("] {
        if let Some(stripped) = rest.strip_prefix(wrapper) {
            rest = stripped.trim_start();
        }
    }
    let name: String = rest
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    if name.is_empty() || name == "_" {
        None
    } else {
        Some(name)
    }
}

/// Byte index of the `n`-th char (the scanner works in char columns).
fn char_byte_index(s: &str, n: usize) -> usize {
    s.char_indices().nth(n).map(|(i, _)| i).unwrap_or(s.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binding_names() {
        assert_eq!(
            binding_name("let mut state = self.lock();"),
            Some("state".into())
        );
        assert_eq!(
            binding_name("if let Ok(guard) = m.lock() {"),
            Some("guard".into())
        );
        assert_eq!(
            binding_name("let Some(g) = m.lock().ok() else {"),
            Some("g".into())
        );
        assert_eq!(binding_name("m.lock().unwrap().push(1);"), None);
        assert_eq!(binding_name("let _ = m.lock();"), None);
    }
}
