//! `metric-name-registry`: every metric name must agree across three places —
//! the code that registers it (`registry.counter("…")` and friends), the
//! canonical manifest (`metrics.toml`), and the README's observability
//! documentation. The rule checks all directions:
//!
//! - a literal name passed to `.counter(` / `.gauge(` / `.histogram(` in
//!   non-test library/binary code must exist in the manifest *under that
//!   kind* (wildcard entries like `serve.peer.*.delivered` match per-segment);
//! - a non-literal name on a registry receiver needs a waiver (the one
//!   legitimate case is per-peer wildcard expansion);
//! - every exact manifest entry must be registered by some code literal;
//! - every backticked dotted token in the README whose first segment is a
//!   known metric namespace must exist in the manifest (this is what catches
//!   `pipeline.sort_merges`-style prose drift);
//! - every manifest entry must be documented in the README.

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::find_token_from;
use crate::{config, AnalyzeError, FileClass, Finding, Workspace};

pub const NAME: &str = "metric-name-registry";
const SECTION: &str = "rule.metric-name-registry";

const KINDS: &[(&str, &str)] = &[
    ("counter", ".counter("),
    ("gauge", ".gauge("),
    ("histogram", ".histogram("),
];

/// README tokens whose final dot-segment is a file extension are paths, not
/// metric names.
const EXT_SKIP: &[&str] = &[
    "rs", "toml", "md", "json", "zip", "yml", "yaml", "log", "txt", "ppm", "lock", "sh",
];

struct Manifest {
    /// `name -> (kind, manifest line)`; wildcard names keep their `*`.
    entries: BTreeMap<String, (String, usize)>,
    /// First segments of every entry (`pipeline`, `serve`, …).
    prefixes: BTreeSet<String>,
    rel: String,
}

impl Manifest {
    /// Find `name` (exact first, then wildcard) and return the matching
    /// manifest key and its kind.
    fn lookup<'a>(&'a self, name: &str) -> Option<(&'a str, &'a str)> {
        if let Some((key, (kind, _))) = self.entries.get_key_value(name) {
            return Some((key.as_str(), kind.as_str()));
        }
        self.entries
            .iter()
            .find(|(key, _)| key.contains('*') && wildcard_match(key, name))
            .map(|(key, (kind, _))| (key.as_str(), kind.as_str()))
    }
}

/// Segment-wise wildcard match: `*` matches exactly one segment.
fn wildcard_match(pattern: &str, name: &str) -> bool {
    let pat: Vec<&str> = pattern.split('.').collect();
    let got: Vec<&str> = name.split('.').collect();
    pat.len() == got.len() && pat.iter().zip(&got).all(|(p, g)| *p == "*" || p == g)
}

fn load_manifest(ws: &Workspace, rel: &str) -> Result<Manifest, AnalyzeError> {
    let text = ws.read_text(rel)?;
    let doc =
        config::parse(&text).map_err(|e| AnalyzeError::Config(rel.to_string(), e.to_string()))?;
    let mut entries = BTreeMap::new();
    let mut prefixes = BTreeSet::new();
    for (kind, _) in KINDS {
        for entry in doc.section(kind).unwrap_or(&[]) {
            entries.insert(entry.key.clone(), (kind.to_string(), entry.line));
            if let Some(first) = entry.key.split('.').next() {
                prefixes.insert(first.to_string());
            }
        }
    }
    Ok(Manifest {
        entries,
        prefixes,
        rel: rel.to_string(),
    })
}

pub fn check(ws: &Workspace) -> Result<Vec<Finding>, AnalyzeError> {
    let manifest_rel = ws
        .config
        .get_str(SECTION, "manifest")
        .unwrap_or("metrics.toml")
        .to_string();
    let readme_rel = ws
        .config
        .get_str(SECTION, "readme")
        .unwrap_or("README.md")
        .to_string();
    let manifest = load_manifest(ws, &manifest_rel)?;

    let mut out = Vec::new();
    let mut used: BTreeSet<String> = BTreeSet::new();
    check_code(ws, &manifest, &mut used, &mut out);

    // Exact manifest entries never registered by a code literal are dead
    // names (wildcards are expanded at runtime and proven by their waived
    // registration sites instead).
    for (name, (_, line)) in &manifest.entries {
        if !name.contains('*') && !used.contains(name) {
            out.push(Finding::new(
                NAME,
                &manifest.rel,
                *line,
                format!("manifest metric `{name}` is never registered in code"),
            ));
        }
    }

    check_readme(ws, &manifest, &readme_rel, &mut out)?;
    Ok(out)
}

/// Scan registry call sites in non-test Lib/Bin code.
fn check_code(
    ws: &Workspace,
    manifest: &Manifest,
    used: &mut BTreeSet<String>,
    out: &mut Vec<Finding>,
) {
    for file in &ws.files {
        if file.class == FileClass::TestLike {
            continue;
        }
        for (idx, line) in file.scanned.lines.iter().enumerate() {
            if line.in_test {
                continue;
            }
            for (kind, method) in KINDS {
                let mut from = 0;
                while let Some(pos) = find_token_from(&line.code, method, from) {
                    from = pos + 1;
                    let arg_col = pos + method.chars().count();
                    check_call_site(file, idx, line, pos, arg_col, kind, manifest, used, out);
                }
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn check_call_site(
    file: &crate::SourceFile,
    idx: usize,
    line: &crate::lexer::ScannedLine,
    method_pos: usize,
    arg_col: usize,
    kind: &str,
    manifest: &Manifest,
    used: &mut BTreeSet<String>,
    out: &mut Vec<Finding>,
) {
    let chars: Vec<char> = line.code.chars().collect();
    let mut col = arg_col;
    while chars.get(col).is_some_and(|c| *c == ' ') {
        col += 1;
    }
    match chars.get(col) {
        Some('"') => {
            // `col` is the opening quote; the scanner records the literal at
            // its first body character, one column later.
            let Some(lit) = file
                .scanned
                .strings
                .iter()
                .find(|s| s.line == idx + 1 && s.col == col + 1)
            else {
                return;
            };
            let name = lit.text.clone();
            if !name.contains('.') {
                if receiver_is_registry(&chars, method_pos) {
                    out.push(Finding::new(
                        NAME,
                        &file.rel,
                        idx + 1,
                        format!("metric name `{name}` has no namespace segment"),
                    ));
                }
                return;
            }
            match manifest.lookup(&name) {
                Some((key, found_kind)) if found_kind == kind => {
                    used.insert(key.to_string());
                }
                Some((_, found_kind)) => {
                    out.push(Finding::new(
                        NAME,
                        &file.rel,
                        idx + 1,
                        format!(
                            "metric `{name}` is a {found_kind} in {} but registered \
                             here as a {kind}",
                            manifest.rel
                        ),
                    ));
                }
                None => {
                    out.push(Finding::new(
                        NAME,
                        &file.rel,
                        idx + 1,
                        format!("metric `{name}` is not declared in {}", manifest.rel),
                    ));
                }
            }
        }
        _ => {
            if receiver_is_registry(&chars, method_pos) {
                out.push(Finding::new(
                    NAME,
                    &file.rel,
                    idx + 1,
                    format!(
                        "non-literal metric name passed to a registry {kind} — \
                         use a literal from {} or waive the expansion site",
                        manifest.rel
                    ),
                ));
            }
        }
    }
}

/// True when the identifier just before the `.counter(` call looks like a
/// metrics registry (`registry`, `some_registry`, `metrics`). Keeps the rule
/// from flagging unrelated `.counter(` methods on other types.
fn receiver_is_registry(chars: &[char], method_pos: usize) -> bool {
    let end = method_pos;
    // method_pos points at the '.'; walk back over the receiver identifier.
    let mut start = end;
    while start > 0 && (chars[start - 1].is_alphanumeric() || chars[start - 1] == '_') {
        start -= 1;
    }
    if start == end {
        // Receiver is an expression (`self.registry().counter(...)` or a
        // chained call); look further back for "registry" textually.
        let prefix: String = chars[..end].iter().collect();
        return prefix.contains("registry") || prefix.contains("metrics");
    }
    let ident: String = chars[start..end].iter().collect();
    ident == "metrics" || ident == "registry" || ident.ends_with("registry")
}

/// Scan the README for backticked dotted tokens in metric namespaces.
fn check_readme(
    ws: &Workspace,
    manifest: &Manifest,
    readme_rel: &str,
    out: &mut Vec<Finding>,
) -> Result<(), AnalyzeError> {
    let text = ws.read_text(readme_rel)?;
    let mut readme_names: BTreeSet<String> = BTreeSet::new();
    let mut pending: Vec<(usize, String)> = Vec::new();

    for (lineno, line) in text.lines().enumerate() {
        let mut last_full: Option<String> = None;
        for (i, span) in line.split('`').enumerate() {
            if i % 2 == 0 {
                continue; // outside backticks
            }
            for raw in span.split([' ', '/', ',']) {
                let token = raw.trim();
                if token.is_empty() {
                    continue;
                }
                let expanded = if let Some(rest) = token.strip_prefix('.') {
                    match &last_full {
                        // `.windows` after `pipeline.events` → pipeline.windows
                        Some(full) => match full.rsplit_once('.') {
                            Some((prefix, _)) => format!("{prefix}.{rest}"),
                            None => continue,
                        },
                        None => continue,
                    }
                } else {
                    token.to_string()
                };
                let Some(normalized) = normalize_metric_token(&expanded) else {
                    continue;
                };
                let first = normalized.split('.').next().unwrap_or("");
                if !manifest.prefixes.contains(first) {
                    continue;
                }
                last_full = Some(normalized.clone());
                readme_names.insert(normalized.clone());
                if manifest.lookup(&normalized).is_none() {
                    pending.push((
                        lineno + 1,
                        format!(
                            "README names `{normalized}` but {} does not declare it \
                             — prose drift",
                            manifest.rel
                        ),
                    ));
                }
            }
        }
    }
    for (line, message) in pending {
        out.push(Finding::new(NAME, readme_rel, line, message));
    }

    for (name, (_, line)) in &manifest.entries {
        let documented = readme_names
            .iter()
            .any(|r| r == name || wildcard_match(name, r) || wildcard_match(r, name));
        if !documented {
            out.push(Finding::new(
                NAME,
                &manifest.rel,
                *line,
                format!("metric `{name}` is missing from the README metric table"),
            ));
        }
    }
    Ok(())
}

/// Validate a candidate README token and normalize `<id>`-style segments to
/// `*`. Returns `None` for tokens that cannot be metric names (single
/// segment, file extensions, flags, …).
fn normalize_metric_token(token: &str) -> Option<String> {
    let segments: Vec<&str> = token.split('.').collect();
    if segments.len() < 2 || segments.iter().any(|s| s.is_empty()) {
        return None;
    }
    if EXT_SKIP.contains(segments.last().unwrap_or(&"")) {
        return None;
    }
    let first = segments[0];
    if !first
        .chars()
        .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
        || first.is_empty()
    {
        return None;
    }
    let mut norm = Vec::with_capacity(segments.len());
    for seg in &segments {
        if seg.contains('<') || *seg == "*" {
            norm.push("*".to_string());
        } else if seg
            .chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
        {
            norm.push(seg.to_string());
        } else {
            return None;
        }
    }
    Some(norm.join("."))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wildcard_segments() {
        assert!(wildcard_match(
            "serve.peer.*.delivered",
            "serve.peer.3.delivered"
        ));
        assert!(wildcard_match(
            "serve.peer.*.delivered",
            "serve.peer.*.delivered"
        ));
        assert!(!wildcard_match(
            "serve.peer.*.delivered",
            "serve.peer.delivered"
        ));
        assert!(!wildcard_match("a.*", "b.c"));
    }

    #[test]
    fn readme_token_normalization() {
        assert_eq!(
            normalize_metric_token("serve.peer.<id>.delivered"),
            Some("serve.peer.*.delivered".to_string())
        );
        assert_eq!(
            normalize_metric_token("pipeline.events"),
            Some("pipeline.events".to_string())
        );
        assert_eq!(normalize_metric_token("manifest.json"), None);
        assert_eq!(normalize_metric_token("plain"), None);
        assert_eq!(normalize_metric_token("Has.Upper"), None);
        assert_eq!(normalize_metric_token("a..b"), None);
    }

    #[test]
    fn registry_receivers() {
        let line: Vec<char> = "registry.counter(\"x\")".chars().collect();
        assert!(receiver_is_registry(&line, 8));
        let line: Vec<char> = "self.metrics_registry.counter(\"x\")".chars().collect();
        assert!(receiver_is_registry(&line, 21));
        let line: Vec<char> = "widget.counter(\"x\")".chars().collect();
        assert!(!receiver_is_registry(&line, 6));
    }
}
