//! Rule registry and dispatch.
//!
//! Each rule lives in its own module with a `NAME` constant and a
//! `check(&Workspace) -> Result<Vec<Finding>, AnalyzeError>` entry point.
//! Rules are deny-by-default: they run unless `analyze.toml` sets
//! `enabled = false` in the rule's `[rule.<name>]` section.

pub mod frame_coverage;
pub mod hot_path;
pub mod lock_channel;
pub mod metric_names;
pub mod no_panic;

use crate::{AnalyzeError, Finding, Workspace};

/// Meta-rule reported for unparseable waiver comments.
pub const MALFORMED_WAIVER: &str = "malformed-waiver";
/// Meta-rule reported for waivers that no longer silence anything.
pub const STALE_WAIVER: &str = "stale-waiver";

/// Every rule, in the order they run and report.
pub const ALL: &[&str] = &[
    no_panic::NAME,
    hot_path::NAME,
    metric_names::NAME,
    frame_coverage::NAME,
    lock_channel::NAME,
];

/// Run the enabled rules (optionally restricted to `only`) and return their
/// findings plus the list of rules that actually ran.
pub fn run(
    ws: &Workspace,
    only: Option<&str>,
) -> Result<(Vec<Finding>, Vec<String>), AnalyzeError> {
    let mut findings = Vec::new();
    let mut ran = Vec::new();
    for &name in ALL {
        if only.is_some_and(|o| o != name) {
            continue;
        }
        let enabled = ws
            .config
            .get_bool(&format!("rule.{name}"), "enabled")
            .unwrap_or(true);
        if !enabled {
            continue;
        }
        let rule_findings = match name {
            n if n == no_panic::NAME => no_panic::check(ws)?,
            n if n == hot_path::NAME => hot_path::check(ws)?,
            n if n == metric_names::NAME => metric_names::check(ws)?,
            n if n == frame_coverage::NAME => frame_coverage::check(ws)?,
            n if n == lock_channel::NAME => lock_channel::check(ws)?,
            _ => Vec::new(),
        };
        findings.extend(rule_findings);
        ran.push(name.to_string());
    }
    Ok((findings, ran))
}
