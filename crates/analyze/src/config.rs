//! A hand-rolled, recursive-descent reader for the TOML subset the analyzer
//! configures itself with (`analyze.toml`, `metrics.toml`).
//!
//! Supported dialect — deliberately humane, in the spirit of the workspace's
//! extended-JSON parsers:
//!
//! - `# comments`, blank lines
//! - `[section]` / `[dotted.section]` headers
//! - `key = value` with bare (`ident-chars`) or `"quoted"` keys
//! - values: `"strings"` (with `\"`/`\\`/`\n`/`\t` escapes), integers,
//!   `true`/`false`, and `[ "arrays", "of", "strings", ]` — multi-line,
//!   trailing commas and interior comments allowed
//!
//! Everything else is a typed [`ConfigError`] with a line number; the parser
//! never panics (it shares the total-scanner discipline of `lexer.rs`).

use std::collections::BTreeMap;
use std::fmt;

/// A parsed value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Value {
    Str(String),
    Int(i64),
    Bool(bool),
    Array(Vec<String>),
}

impl Value {
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[String]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }
}

/// One `key = value` entry, with the line it was declared on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    pub key: String,
    pub value: Value,
    pub line: usize,
}

/// A parsed document: sections in declaration order, entries in order.
#[derive(Debug, Clone, Default)]
pub struct Document {
    pub sections: Vec<(String, Vec<Entry>)>,
}

impl Document {
    /// The entries of the first section with this exact name.
    pub fn section(&self, name: &str) -> Option<&[Entry]> {
        self.sections
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, e)| e.as_slice())
    }

    /// One value looked up by section and key.
    pub fn get(&self, section: &str, key: &str) -> Option<&Value> {
        self.section(section)?
            .iter()
            .find(|e| e.key == key)
            .map(|e| &e.value)
    }

    pub fn get_str(&self, section: &str, key: &str) -> Option<&str> {
        self.get(section, key)?.as_str()
    }

    pub fn get_bool(&self, section: &str, key: &str) -> Option<bool> {
        self.get(section, key)?.as_bool()
    }

    pub fn get_array(&self, section: &str, key: &str) -> Option<&[String]> {
        self.get(section, key)?.as_array()
    }

    /// All `key -> (value, line)` pairs of a section as a map.
    pub fn section_map(&self, name: &str) -> BTreeMap<String, (Value, usize)> {
        self.section(name)
            .unwrap_or(&[])
            .iter()
            .map(|e| (e.key.clone(), (e.value.clone(), e.line)))
            .collect()
    }
}

/// A parse failure, pointing at the offending line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    pub line: usize,
    pub message: String,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ConfigError {}

fn err(line: usize, message: impl Into<String>) -> ConfigError {
    ConfigError {
        line,
        message: message.into(),
    }
}

/// Cursor over one logical piece of text.
struct Cursor<'a> {
    chars: Vec<char>,
    pos: usize,
    line: usize,
    _src: &'a str,
}

impl<'a> Cursor<'a> {
    fn new(src: &'a str) -> Self {
        Cursor {
            chars: src.chars().collect(),
            pos: 0,
            line: 1,
            _src: src,
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    /// Skip spaces, newlines, and `#` comments.
    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                Some(c) if c.is_whitespace() => {
                    self.bump();
                }
                Some('#') => {
                    while let Some(c) = self.peek() {
                        if c == '\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                _ => break,
            }
        }
    }

    /// Skip spaces and comments but stop at a newline.
    fn skip_inline(&mut self) {
        loop {
            match self.peek() {
                Some(c) if c == ' ' || c == '\t' || c == '\r' => {
                    self.bump();
                }
                Some('#') => {
                    while let Some(c) = self.peek() {
                        if c == '\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                _ => break,
            }
        }
    }

    fn parse_quoted(&mut self) -> Result<String, ConfigError> {
        let start = self.line;
        self.bump(); // opening quote
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(err(start, "unterminated string")),
                Some('"') => return Ok(out),
                Some('\\') => match self.bump() {
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    Some('n') => out.push('\n'),
                    Some('t') => out.push('\t'),
                    Some(other) => {
                        return Err(err(start, format!("unknown escape \\{other}")));
                    }
                    None => return Err(err(start, "unterminated escape")),
                },
                Some('\n') => return Err(err(start, "newline inside string")),
                Some(c) => out.push(c),
            }
        }
    }

    fn parse_bare(&mut self) -> String {
        let mut out = String::new();
        while let Some(c) = self.peek() {
            if c.is_alphanumeric() || c == '_' || c == '-' || c == '.' || c == '*' || c == ':' {
                out.push(c);
                self.bump();
            } else {
                break;
            }
        }
        out
    }

    fn parse_value(&mut self) -> Result<Value, ConfigError> {
        self.skip_inline();
        let start = self.line;
        match self.peek() {
            Some('"') => Ok(Value::Str(self.parse_quoted()?)),
            Some('[') => {
                self.bump();
                let mut items = Vec::new();
                loop {
                    self.skip_trivia();
                    match self.peek() {
                        Some(']') => {
                            self.bump();
                            return Ok(Value::Array(items));
                        }
                        Some('"') => {
                            items.push(self.parse_quoted()?);
                            self.skip_trivia();
                            match self.peek() {
                                Some(',') => {
                                    self.bump();
                                }
                                Some(']') => {}
                                _ => return Err(err(self.line, "expected ',' or ']' in array")),
                            }
                        }
                        _ => return Err(err(start, "arrays hold quoted strings")),
                    }
                }
            }
            Some(c) if c == 't' || c == 'f' => {
                let word = self.parse_bare();
                match word.as_str() {
                    "true" => Ok(Value::Bool(true)),
                    "false" => Ok(Value::Bool(false)),
                    other => Err(err(start, format!("unknown value {other:?}"))),
                }
            }
            Some(c) if c.is_ascii_digit() || c == '-' => {
                let word = self.parse_bare();
                word.parse::<i64>()
                    .map(Value::Int)
                    .map_err(|_| err(start, format!("bad integer {word:?}")))
            }
            _ => Err(err(start, "expected a value")),
        }
    }
}

/// Parse a document.
pub fn parse(src: &str) -> Result<Document, ConfigError> {
    let mut cur = Cursor::new(src);
    let mut doc = Document::default();
    let mut section: Option<usize> = None;
    loop {
        cur.skip_trivia();
        let Some(c) = cur.peek() else {
            return Ok(doc);
        };
        if c == '[' {
            cur.bump();
            cur.skip_inline();
            let name = if cur.peek() == Some('"') {
                cur.parse_quoted()?
            } else {
                cur.parse_bare()
            };
            if name.is_empty() {
                return Err(err(cur.line, "empty section name"));
            }
            cur.skip_inline();
            if cur.peek() != Some(']') {
                return Err(err(cur.line, "expected ']' after section name"));
            }
            cur.bump();
            doc.sections.push((name, Vec::new()));
            section = Some(doc.sections.len() - 1);
        } else {
            let line = cur.line;
            let key = if c == '"' {
                cur.parse_quoted()?
            } else {
                cur.parse_bare()
            };
            if key.is_empty() {
                return Err(err(line, format!("expected a key, found {c:?}")));
            }
            cur.skip_inline();
            if cur.peek() != Some('=') {
                return Err(err(line, format!("expected '=' after key {key:?}")));
            }
            cur.bump();
            let value = cur.parse_value()?;
            let idx = match section {
                Some(idx) => idx,
                None => {
                    doc.sections.push((String::new(), Vec::new()));
                    section = Some(doc.sections.len() - 1);
                    doc.sections.len() - 1
                }
            };
            doc.sections[idx].1.push(Entry { key, value, line });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_sections_keys_and_values() {
        let doc = parse(
            "# top comment\n\
             [paths]\n\
             include = [\"crates\"]  # inline comment\n\
             deny = true\n\
             limit = 42\n\
             \n\
             [rule.no-panic-in-lib]\n\
             \"quoted.key\" = \"value\"\n",
        )
        .unwrap();
        assert_eq!(
            doc.get_array("paths", "include"),
            Some(&["crates".to_string()][..])
        );
        assert_eq!(doc.get_bool("paths", "deny"), Some(true));
        assert_eq!(doc.get("paths", "limit"), Some(&Value::Int(42)));
        assert_eq!(
            doc.get_str("rule.no-panic-in-lib", "quoted.key"),
            Some("value")
        );
    }

    #[test]
    fn multiline_arrays_with_trailing_commas_and_comments() {
        let doc = parse(
            "[rule.hot-path-no-alloc]\n\
             functions = [\n\
               # the routing pass\n\
               \"crates/ingest/src/shard.rs::route_batch\",\n\
               \"crates/ingest/src/shard.rs::merge\",\n\
             ]\n",
        )
        .unwrap();
        let fns = doc
            .get_array("rule.hot-path-no-alloc", "functions")
            .unwrap();
        assert_eq!(fns.len(), 2);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse("[ok]\nkey value\n").unwrap_err();
        assert_eq!(e.line, 2);
        let e = parse("[never-closed\n").unwrap_err();
        assert!(e.message.contains("']'"));
    }

    #[test]
    fn entry_lines_are_recorded() {
        let doc = parse("[s]\na = 1\n\nb = 2\n").unwrap();
        let entries = doc.section("s").unwrap();
        assert_eq!(entries[0].line, 2);
        assert_eq!(entries[1].line, 4);
    }

    #[test]
    fn string_escapes() {
        let doc = parse("[s]\nk = \"a\\\"b\\\\c\\n\"\n").unwrap();
        assert_eq!(doc.get_str("s", "k"), Some("a\"b\\c\n"));
    }
}
