//! `tw-analyze` — run the workspace static-analysis pass from the command
//! line. `traffic-warehouse analyze` wraps the same library entry points.

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
tw-analyze: workspace-native static analysis

USAGE:
    tw-analyze [--root <dir>] [--rule <name>] [--json <path>]
               [--deny-warnings] [--list-waivers]

OPTIONS:
    --root <dir>      workspace root (default: walk up to analyze.toml)
    --rule <name>     run a single rule instead of all of them
    --json <path>     also write the machine-readable report to <path>
    --deny-warnings   exit non-zero when any unwaived finding remains
    --list-waivers    print every active waiver with its justification
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut root: Option<PathBuf> = None;
    let mut json: Option<PathBuf> = None;
    let mut deny = false;
    let mut list_waivers = false;
    let mut options = tw_analyze::Options::default();

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--root" | "--rule" | "--json" => {
                let flag = args[i].clone();
                i += 1;
                let Some(value) = args.get(i) else {
                    eprintln!("error: {flag} needs a value\n{USAGE}");
                    return ExitCode::from(2);
                };
                match flag.as_str() {
                    "--root" => root = Some(PathBuf::from(value)),
                    "--json" => json = Some(PathBuf::from(value)),
                    _ => options.rule = Some(value.clone()),
                }
            }
            "--deny-warnings" => deny = true,
            "--list-waivers" => list_waivers = true,
            "--help" | "-h" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("error: unknown argument {other:?}\n{USAGE}");
                return ExitCode::from(2);
            }
        }
        i += 1;
    }

    let root = match root {
        Some(root) => root,
        None => match tw_analyze::find_workspace_root(&PathBuf::from(".")) {
            Ok(root) => root,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::from(2);
            }
        },
    };
    let report = match tw_analyze::analyze_with(&root, &options) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };

    if list_waivers {
        print!("{}", report.render_waivers());
        return ExitCode::SUCCESS;
    }
    if let Some(path) = json {
        if let Err(e) = std::fs::write(&path, report.render_json()) {
            eprintln!("error: writing {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    print!("{}", report.render_text());
    if deny && report.unwaived_count() > 0 {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
