//! Semantic validation of learning modules.
//!
//! The validator goes beyond schema checks and enforces (or warns about) the
//! authoring guidance from the paper: the declared `size` must match the
//! matrix, the paper recommends fewer than 15 packets per cell for legibility,
//! three answer options, short all-caps labels, and a correct-answer index
//! that actually points into the answer list.

use crate::schema::LearningModule;

/// The maximum per-cell packet count the paper found to display well.
pub const DISPLAY_PACKET_LIMIT: u32 = 15;
/// The answer-option count the paper argues for (three-option MCQ).
pub const RECOMMENDED_ANSWER_COUNT: usize = 3;
/// Labels longer than this trigger a legibility warning ("shorter all caps
/// labels are easier to view in the game").
pub const RECOMMENDED_LABEL_LENGTH: usize = 6;

/// How serious a validation finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// The module cannot be used as-is.
    Error,
    /// The module will load but violates authoring guidance.
    Warning,
}

/// One validation finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidationIssue {
    /// Whether the finding blocks use of the module.
    pub severity: Severity,
    /// The module field the finding concerns.
    pub field: &'static str,
    /// A human-readable description for the module author.
    pub message: String,
}

/// The full set of findings for one module.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ValidationReport {
    /// All findings, errors first.
    pub issues: Vec<ValidationIssue>,
}

impl ValidationReport {
    /// True when no error-severity findings exist.
    pub fn is_valid(&self) -> bool {
        !self.issues.iter().any(|i| i.severity == Severity::Error)
    }

    /// Error-severity findings.
    pub fn errors(&self) -> impl Iterator<Item = &ValidationIssue> {
        self.issues.iter().filter(|i| i.severity == Severity::Error)
    }

    /// Warning-severity findings.
    pub fn warnings(&self) -> impl Iterator<Item = &ValidationIssue> {
        self.issues
            .iter()
            .filter(|i| i.severity == Severity::Warning)
    }

    fn error(&mut self, field: &'static str, message: String) {
        self.issues.push(ValidationIssue {
            severity: Severity::Error,
            field,
            message,
        });
    }

    fn warning(&mut self, field: &'static str, message: String) {
        self.issues.push(ValidationIssue {
            severity: Severity::Warning,
            field,
            message,
        });
    }
}

/// Validate a module against the paper's authoring guidance.
pub fn validate(module: &LearningModule) -> ValidationReport {
    let mut report = ValidationReport::default();

    if module.name.trim().is_empty() {
        report.error("name", "the lesson title must not be empty".to_string());
    }
    if module.author.trim().is_empty() {
        report.warning("author", "the author field is empty".to_string());
    }

    let declared = module.size.dimension();
    let actual = module.matrix.dimension();
    if declared != actual {
        report.error(
            "size",
            format!("declared size is {declared}x{declared} but the traffic matrix is {actual}x{actual}"),
        );
    }
    if module.colors.dimension() != actual {
        report.error(
            "traffic_matrix_colors",
            format!(
                "color matrix is {0}x{0} but the traffic matrix is {actual}x{actual}",
                module.colors.dimension()
            ),
        );
    }

    let max = module.matrix.max_value();
    if max >= DISPLAY_PACKET_LIMIT {
        report.warning(
            "traffic_matrix",
            format!(
                "a cell contains {max} packets; fewer than {DISPLAY_PACKET_LIMIT} per cell displays well in the warehouse view"
            ),
        );
    }
    if module.matrix.total_packets() == 0 {
        report.warning(
            "traffic_matrix",
            "the traffic matrix is empty (all zeros)".to_string(),
        );
    }

    for label in module.matrix.labels().labels() {
        if label.chars().count() > RECOMMENDED_LABEL_LENGTH {
            report.warning(
                "axis_labels",
                format!("label {label:?} is long; shorter all-caps labels are easier to view in the game"),
            );
        }
        if label.chars().any(|c| c.is_ascii_lowercase()) {
            report.warning(
                "axis_labels",
                format!("label {label:?} contains lowercase characters; all-caps labels are recommended"),
            );
        }
    }

    if let Some(q) = &module.question {
        if q.text.trim().is_empty() {
            report.error(
                "question",
                "has_question is true but the question text is empty".to_string(),
            );
        }
        if q.answers.is_empty() {
            report.error("answers", "the answer list is empty".to_string());
        } else {
            if q.correct_answer_element >= q.answers.len() {
                report.error(
                    "correct_answer_element",
                    format!(
                        "correct_answer_element is {} but there are only {} answers",
                        q.correct_answer_element,
                        q.answers.len()
                    ),
                );
            }
            if q.answers.len() != RECOMMENDED_ANSWER_COUNT {
                report.warning(
                    "answers",
                    format!(
                        "{} answer options; the paper recommends {RECOMMENDED_ANSWER_COUNT} to balance question quality against assessment value",
                        q.answers.len()
                    ),
                );
            }
            let mut deduped = q.answers.clone();
            deduped.sort();
            deduped.dedup();
            if deduped.len() != q.answers.len() {
                report.error("answers", "answer options must be distinct".to_string());
            }
        }
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::schema::{MatrixSize, Question};
    use crate::template::template_10x10;

    #[test]
    fn the_paper_template_is_valid() {
        let report = validate(&template_10x10());
        assert!(report.is_valid(), "issues: {:?}", report.issues);
        assert_eq!(report.errors().count(), 0);
    }

    #[test]
    fn size_mismatch_is_an_error() {
        let mut module = template_10x10();
        module.size = MatrixSize(6);
        let report = validate(&module);
        assert!(!report.is_valid());
        assert!(report.errors().any(|i| i.field == "size"));
    }

    #[test]
    fn excessive_packets_is_a_warning_not_an_error() {
        let mut module = template_10x10();
        module.matrix.set(0, 1, 40).unwrap();
        let report = validate(&module);
        assert!(report.is_valid());
        assert!(report
            .warnings()
            .any(|i| i.field == "traffic_matrix" && i.message.contains("40")));
    }

    #[test]
    fn bad_correct_answer_index_is_an_error() {
        let mut module = template_10x10();
        module.question = Some(Question {
            text: "Q?".into(),
            answers: vec!["0".into(), "1".into(), "2".into()],
            correct_answer_element: 5,
        });
        let report = validate(&module);
        assert!(!report.is_valid());
        assert!(report.errors().any(|i| i.field == "correct_answer_element"));
    }

    #[test]
    fn duplicate_answers_are_an_error() {
        let mut module = template_10x10();
        module.question = Some(Question {
            text: "Q?".into(),
            answers: vec!["1".into(), "1".into(), "2".into()],
            correct_answer_element: 2,
        });
        assert!(!validate(&module).is_valid());
    }

    #[test]
    fn non_three_answer_counts_warn() {
        let mut module = template_10x10();
        module.question = Some(Question {
            text: "Q?".into(),
            answers: vec!["0".into(), "1".into(), "2".into(), "3".into()],
            correct_answer_element: 0,
        });
        let report = validate(&module);
        assert!(report.is_valid());
        assert!(report.warnings().any(|i| i.field == "answers"));
    }

    #[test]
    fn label_style_warnings() {
        let module = ModuleBuilder::new("Style", "tester")
            .labels(["workstation_one", "B"])
            .unwrap()
            .cell(0, 1, 1)
            .unwrap()
            .build();
        let report = validate(&module);
        assert!(report.is_valid());
        let warning_fields: Vec<_> = report.warnings().map(|w| w.field).collect();
        assert!(warning_fields.contains(&"axis_labels"));
        // Both the too-long and the lowercase warnings fire for the same label.
        assert!(
            report
                .warnings()
                .filter(|w| w.field == "axis_labels")
                .count()
                >= 2
        );
    }

    #[test]
    fn empty_matrix_and_name_are_flagged() {
        let module = ModuleBuilder::new("", "")
            .labels(["A", "B"])
            .unwrap()
            .build();
        let report = validate(&module);
        assert!(!report.is_valid());
        assert!(report.errors().any(|i| i.field == "name"));
        assert!(report.warnings().any(|i| i.field == "traffic_matrix"));
        assert!(report.warnings().any(|i| i.field == "author"));
    }
}
