//! Module bundles: ZIP files containing multiple learning-module JSONs.
//!
//! "Learning modules consist of a zip file containing multiple JSON files that
//! the user can select and load into the game. Traffic Warehouse will take the
//! zip file and load each of the JSON files contained in it and present them
//! sequentially one at a time."

use crate::error::{ModuleError, Result};
use crate::schema::LearningModule;
use crate::validate::{validate, ValidationReport};
use tw_archive::{ZipReader, ZipWriter};

/// An ordered collection of learning modules, serializable as a ZIP bundle.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ModuleBundle {
    /// Bundle display name (derived from the file name by callers).
    pub name: String,
    modules: Vec<LearningModule>,
}

impl ModuleBundle {
    /// An empty bundle with a display name.
    pub fn new(name: &str) -> Self {
        ModuleBundle {
            name: name.to_string(),
            modules: Vec::new(),
        }
    }

    /// Append a module; presentation order is append order.
    pub fn push(&mut self, module: LearningModule) {
        self.modules.push(module);
    }

    /// The modules in presentation order.
    pub fn modules(&self) -> &[LearningModule] {
        &self.modules
    }

    /// Number of modules.
    pub fn len(&self) -> usize {
        self.modules.len()
    }

    /// True when the bundle has no modules.
    pub fn is_empty(&self) -> bool {
        self.modules.is_empty()
    }

    /// Validate every module, returning `(index, report)` pairs for modules
    /// with findings.
    pub fn validate_all(&self) -> Vec<(usize, ValidationReport)> {
        self.modules
            .iter()
            .enumerate()
            .map(|(i, m)| (i, validate(m)))
            .filter(|(_, r)| !r.issues.is_empty())
            .collect()
    }

    /// True when every module passes validation with no errors.
    pub fn is_valid(&self) -> bool {
        self.modules.iter().all(|m| validate(m).is_valid())
    }

    /// Serialize to ZIP bytes. Entries are named `NN_slug.json` so the
    /// presentation order survives tools that sort entries alphabetically.
    pub fn to_zip(&self) -> Result<Vec<u8>> {
        let mut writer = ZipWriter::new();
        for (i, module) in self.modules.iter().enumerate() {
            let slug: String = module
                .name
                .chars()
                .map(|c| {
                    if c.is_ascii_alphanumeric() {
                        c.to_ascii_lowercase()
                    } else {
                        '_'
                    }
                })
                .collect();
            let entry_name = format!("{i:02}_{slug}.json");
            writer.add_file(&entry_name, module.to_json().as_bytes())?;
        }
        Ok(writer.finish()?)
    }

    /// Parse a bundle from ZIP bytes. Entries are loaded in name order (which
    /// matches authoring order for bundles produced by [`ModuleBundle::to_zip`]);
    /// non-JSON entries are rejected so a student cannot accidentally load a
    /// bundle with stray content.
    pub fn from_zip(name: &str, bytes: &[u8]) -> Result<Self> {
        let reader = ZipReader::parse(bytes)?;
        if reader.is_empty() {
            return Err(ModuleError::EmptyBundle);
        }
        let mut entry_names: Vec<String> = reader.entry_names().map(str::to_string).collect();
        entry_names.sort();
        let mut modules = Vec::with_capacity(entry_names.len());
        for entry in &entry_names {
            if !entry.to_ascii_lowercase().ends_with(".json") {
                return Err(ModuleError::NotAModuleFile(entry.clone()));
            }
            let text = reader.read_text(entry)?;
            let module = LearningModule::from_json(text)
                .map_err(|e| ModuleError::Invalid(format!("{entry}: {e}")))?;
            modules.push(module);
        }
        Ok(ModuleBundle {
            name: name.to_string(),
            modules,
        })
    }
}

impl FromIterator<LearningModule> for ModuleBundle {
    fn from_iter<T: IntoIterator<Item = LearningModule>>(iter: T) -> Self {
        ModuleBundle {
            name: String::new(),
            modules: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::template::{template_10x10, template_6x6};

    fn sample_bundle() -> ModuleBundle {
        let mut bundle = ModuleBundle::new("Templates");
        bundle.push(template_6x6());
        bundle.push(template_10x10());
        bundle
    }

    #[test]
    fn zip_round_trip_preserves_order_and_content() {
        let bundle = sample_bundle();
        let bytes = bundle.to_zip().unwrap();
        let loaded = ModuleBundle::from_zip("Templates", &bytes).unwrap();
        assert_eq!(loaded.len(), 2);
        assert_eq!(loaded.modules()[0].name, "6x6 Template");
        assert_eq!(loaded.modules()[1].name, "10x10 Template");
        assert_eq!(loaded.modules(), bundle.modules());
        assert!(loaded.is_valid());
    }

    #[test]
    fn empty_zip_is_rejected() {
        let bytes = tw_archive::ZipWriter::new().finish().unwrap();
        assert_eq!(
            ModuleBundle::from_zip("x", &bytes).unwrap_err(),
            ModuleError::EmptyBundle
        );
        assert!(ModuleBundle::new("x").is_empty());
    }

    #[test]
    fn non_json_entries_are_rejected() {
        let mut writer = tw_archive::ZipWriter::new();
        writer.add_file("readme.txt", b"hello").unwrap();
        let bytes = writer.finish().unwrap();
        assert!(matches!(
            ModuleBundle::from_zip("x", &bytes).unwrap_err(),
            ModuleError::NotAModuleFile(name) if name == "readme.txt"
        ));
    }

    #[test]
    fn malformed_module_errors_name_the_entry() {
        let mut writer = tw_archive::ZipWriter::new();
        writer
            .add_file("00_bad.json", b"{\"name\": \"incomplete\"}")
            .unwrap();
        let bytes = writer.finish().unwrap();
        match ModuleBundle::from_zip("x", &bytes).unwrap_err() {
            ModuleError::Invalid(msg) => assert!(msg.contains("00_bad.json"), "{msg}"),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn validate_all_reports_only_problem_modules() {
        let mut bundle = sample_bundle();
        let mut broken = template_6x6();
        broken.matrix.set(0, 0, 99).unwrap();
        bundle.push(broken);
        let reports = bundle.validate_all();
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].0, 2);
        assert!(bundle.is_valid(), "packet-count overflow is only a warning");
    }

    #[test]
    fn from_iterator_collects_modules() {
        let bundle: ModuleBundle = vec![template_6x6(), template_10x10()].into_iter().collect();
        assert_eq!(bundle.len(), 2);
    }

    #[test]
    fn bundles_are_deterministic() {
        assert_eq!(
            sample_bundle().to_zip().unwrap(),
            sample_bundle().to_zip().unwrap()
        );
    }
}
