//! Error type for learning-module parsing, validation and bundle I/O.

use std::fmt;

/// Result alias for module operations.
pub type Result<T> = std::result::Result<T, ModuleError>;

/// Errors produced while reading, writing or validating learning modules.
#[derive(Debug, Clone, PartialEq)]
pub enum ModuleError {
    /// The module file is not valid JSON.
    Json(tw_json::JsonError),
    /// The module bundle is not a valid archive.
    Archive(tw_archive::ArchiveError),
    /// A matrix in the module is malformed.
    Matrix(tw_matrix::MatrixError),
    /// A required field is missing; contains the field name.
    MissingField(&'static str),
    /// A field has the wrong JSON type; contains (field, expected type).
    WrongType(&'static str, &'static str),
    /// The `size` string is not of the form `"NxN"`.
    BadSize(String),
    /// The module failed semantic validation; contains the first error message.
    Invalid(String),
    /// A bundle entry is not a module JSON file; contains the entry name.
    NotAModuleFile(String),
    /// The bundle contains no modules.
    EmptyBundle,
}

impl fmt::Display for ModuleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModuleError::Json(e) => write!(f, "module JSON error: {e}"),
            ModuleError::Archive(e) => write!(f, "module bundle error: {e}"),
            ModuleError::Matrix(e) => write!(f, "module matrix error: {e}"),
            ModuleError::MissingField(field) => write!(f, "module is missing the {field:?} field"),
            ModuleError::WrongType(field, expected) => {
                write!(f, "module field {field:?} must be {expected}")
            }
            ModuleError::BadSize(s) => {
                write!(
                    f,
                    "module size {s:?} is not of the form \"NxN\" (e.g. \"10x10\")"
                )
            }
            ModuleError::Invalid(msg) => write!(f, "module failed validation: {msg}"),
            ModuleError::NotAModuleFile(name) => {
                write!(
                    f,
                    "bundle entry {name:?} is not a learning-module JSON file"
                )
            }
            ModuleError::EmptyBundle => write!(f, "module bundle contains no learning modules"),
        }
    }
}

impl std::error::Error for ModuleError {}

impl From<tw_json::JsonError> for ModuleError {
    fn from(e: tw_json::JsonError) -> Self {
        ModuleError::Json(e)
    }
}

impl From<tw_archive::ArchiveError> for ModuleError {
    fn from(e: tw_archive::ArchiveError) -> Self {
        ModuleError::Archive(e)
    }
}

impl From<tw_matrix::MatrixError> for ModuleError {
    fn from(e: tw_matrix::MatrixError) -> Self {
        ModuleError::Matrix(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_name_the_field() {
        assert!(ModuleError::MissingField("traffic_matrix")
            .to_string()
            .contains("traffic_matrix"));
        assert!(ModuleError::WrongType("answers", "an array of strings")
            .to_string()
            .contains("answers"));
        assert!(ModuleError::BadSize("10by10".into())
            .to_string()
            .contains("NxN"));
    }

    #[test]
    fn conversions_from_substrate_errors() {
        let j: ModuleError = tw_json::parse("{").unwrap_err().into();
        assert!(matches!(j, ModuleError::Json(_)));
        let a: ModuleError = tw_archive::ZipReader::parse(b"junk").unwrap_err().into();
        assert!(matches!(a, ModuleError::Archive(_)));
    }
}
