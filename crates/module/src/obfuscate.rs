//! Answer obfuscation (paper future work).
//!
//! The paper lists "obfuscating question answers in the module file" among its
//! planned improvements: module files are plain text, so a curious student can
//! read `correct_answer_element` straight out of the JSON. This module
//! implements that improvement in a backwards-compatible way: the correct
//! answer index is stored as an opaque token derived from the module's own
//! content, and the loader accepts either the plain field or the obfuscated
//! one.
//!
//! The goal is *deterrence of casual peeking*, not cryptographic secrecy (the
//! game must be able to decode the token offline); that trade-off is the same
//! one the paper accepts by shipping plain-text modules for easy security
//! review.

use crate::error::{ModuleError, Result};
use crate::schema::LearningModule;
use tw_json::Value;

/// The JSON field holding the obfuscated answer token.
pub const OBFUSCATED_FIELD: &str = "correct_answer_token";

/// Derive the obfuscation key from module content that both the author and the
/// game know but that differs per module: the question text and the answers.
fn key_material(question: &str, answers: &[String]) -> u64 {
    // FNV-1a over the question and answers; stable across platforms.
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut feed = |bytes: &[u8]| {
        for &b in bytes {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x1000_0000_01b3);
        }
    };
    feed(question.as_bytes());
    for answer in answers {
        feed(answer.as_bytes());
        feed(&[0xFF]);
    }
    hash
}

/// Encode a correct-answer index into an opaque token.
pub fn encode_token(question: &str, answers: &[String], correct_index: usize) -> String {
    let key = key_material(question, answers);
    let mixed = (correct_index as u64 ^ key).rotate_left(17) ^ 0xA5A5_5A5A_DEAD_BEEF;
    format!("tw1:{mixed:016x}")
}

/// Decode a token back into the correct-answer index, validating it against
/// the answer count.
pub fn decode_token(question: &str, answers: &[String], token: &str) -> Result<usize> {
    let hex = token
        .strip_prefix("tw1:")
        .ok_or_else(|| ModuleError::Invalid(format!("unrecognized answer token {token:?}")))?;
    let mixed = u64::from_str_radix(hex, 16)
        .map_err(|_| ModuleError::Invalid(format!("malformed answer token {token:?}")))?;
    let key = key_material(question, answers);
    let index = ((mixed ^ 0xA5A5_5A5A_DEAD_BEEF).rotate_right(17) ^ key) as usize;
    if index >= answers.len() {
        return Err(ModuleError::Invalid(format!(
            "answer token decodes to index {index}, but there are only {} answers (was the question or an answer edited without re-encoding?)",
            answers.len()
        )));
    }
    Ok(index)
}

/// Serialize a module with its correct answer obfuscated: the plain
/// `correct_answer_element` field is replaced by `correct_answer_token`.
pub fn to_obfuscated_json(module: &LearningModule) -> Result<String> {
    let question = module
        .question
        .as_ref()
        .ok_or(ModuleError::MissingField("question"))?;
    let mut value = module.to_value();
    let obj = value
        .as_object_mut()
        // tw-analyze: allow(no-panic-in-lib, "LearningModule::to_value always produces a JSON object")
        .expect("module serializes to an object");
    obj.remove("correct_answer_element");
    obj.insert(
        OBFUSCATED_FIELD,
        Value::from(encode_token(
            &question.text,
            &question.answers,
            question.correct_answer_element,
        )),
    );
    Ok(tw_json::to_string_pretty(&value))
}

/// Parse a module that may use either the plain `correct_answer_element` field
/// or the obfuscated `correct_answer_token` field.
pub fn from_json_maybe_obfuscated(text: &str) -> Result<LearningModule> {
    let value = tw_json::parse(text)?;
    let has_token = value.get(OBFUSCATED_FIELD).is_some();
    if !has_token {
        return LearningModule::from_value(&value);
    }
    // Re-materialize a plain module by decoding the token first.
    let question_text = value
        .get("question")
        .and_then(Value::as_str)
        .ok_or(ModuleError::MissingField("question"))?
        .to_string();
    let answers = value
        .get("answers")
        .and_then(Value::as_string_list)
        .ok_or(ModuleError::WrongType("answers", "an array of strings"))?;
    let token = value
        .get(OBFUSCATED_FIELD)
        .and_then(Value::as_str)
        .ok_or(ModuleError::WrongType(OBFUSCATED_FIELD, "a string"))?;
    let index = decode_token(&question_text, &answers, token)?;
    let mut plain = value.clone();
    // tw-analyze: allow(no-panic-in-lib, "value.get on the object succeeded above, so plain is an object")
    let obj = plain.as_object_mut().expect("checked object above");
    obj.remove(OBFUSCATED_FIELD);
    obj.insert("correct_answer_element", Value::from(index));
    LearningModule::from_value(&plain)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::template::template_10x10;

    #[test]
    fn token_round_trips_for_every_index() {
        let answers: Vec<String> = vec!["0".into(), "1".into(), "2".into()];
        for correct in 0..3 {
            let token = encode_token("How many packets?", &answers, correct);
            assert!(token.starts_with("tw1:"));
            assert_eq!(
                decode_token("How many packets?", &answers, &token).unwrap(),
                correct
            );
        }
    }

    #[test]
    fn tokens_are_not_the_plain_index_and_differ_per_module() {
        let answers: Vec<String> = vec!["0".into(), "1".into(), "2".into()];
        let a = encode_token("Question A?", &answers, 2);
        let b = encode_token("Question B?", &answers, 2);
        assert_ne!(
            a, b,
            "the same index must encode differently for different questions"
        );
        assert!(!a.contains("2:"), "token must not leak the index textually");
    }

    #[test]
    fn editing_the_question_invalidates_the_token() {
        let answers: Vec<String> = vec!["0".into(), "1".into(), "2".into()];
        let token = encode_token("Original question?", &answers, 1);
        // Decoding against edited content either errors or (rarely) yields an
        // in-range index — but never silently the original association.
        let result = decode_token("Edited question?", &answers, &token);
        if let Ok(index) = result {
            assert!(index < 3);
        }
        assert!(decode_token("Original question?", &answers, "tw1:zzzz").is_err());
        assert!(decode_token("Original question?", &answers, "v2:0000").is_err());
    }

    #[test]
    fn obfuscated_module_json_round_trips() {
        let module = template_10x10();
        let obfuscated = to_obfuscated_json(&module).unwrap();
        assert!(!obfuscated.contains("correct_answer_element"));
        assert!(obfuscated.contains(OBFUSCATED_FIELD));
        let reparsed = from_json_maybe_obfuscated(&obfuscated).unwrap();
        assert_eq!(reparsed, module);
        // Plain modules still load through the same entry point.
        let plain = from_json_maybe_obfuscated(&module.to_json()).unwrap();
        assert_eq!(plain, module);
    }

    #[test]
    fn question_less_modules_cannot_be_obfuscated() {
        let mut module = template_10x10();
        module.question = None;
        assert_eq!(
            to_obfuscated_json(&module).unwrap_err(),
            ModuleError::MissingField("question")
        );
    }

    #[test]
    fn tampered_answer_list_is_detected_or_stays_in_range() {
        let module = template_10x10();
        let obfuscated = to_obfuscated_json(&module).unwrap();
        // Remove one answer from the JSON text: the token usually decodes out of
        // range and is rejected with a helpful message.
        let tampered = obfuscated.replace(r#""answers": ["#, r#""answers": ["9","#);
        match from_json_maybe_obfuscated(&tampered) {
            Ok(m) => {
                let q = m.question.unwrap();
                assert!(q.correct_answer_element < q.answers.len());
            }
            Err(e) => assert!(e.to_string().contains("token") || e.to_string().contains("answers")),
        }
    }
}
