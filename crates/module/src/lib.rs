//! # tw-module
//!
//! The extensible learning-module file format — the paper's core
//! architectural contribution: "The key design choice of the Traffic Warehouse
//! game was to define the learning modules via easily editable JSON files that
//! a non-game developer could use to create new learning modules."
//!
//! A learning module is a JSON object with the fields shown in the paper's
//! Section II listings:
//!
//! ```json
//! {
//!   "name": "10x10 Template",
//!   "size": "10x10",
//!   "author": "Chasen Milner",
//!   "axis_labels": ["WS1", "WS2", ...],
//!   "traffic_matrix": [[1,0,...], ...],
//!   "traffic_matrix_colors": [[0,0,...], ...],
//!   "has_question": true,
//!   "question": "How many packets did WS1 send to ADV4?",
//!   "answers": ["0", "1", "2"],
//!   "correct_answer_element": 2
//! }
//! ```
//!
//! Modules are distributed as ZIP bundles of JSON files which the game loads
//! and presents sequentially. This crate provides the schema
//! ([`LearningModule`]), a validator with educator-friendly diagnostics
//! ([`validate`]), the 6×6/10×10 templates, a builder API, bundle I/O and the
//! paper's initial module library ([`library`]).

pub mod builder;
pub mod bundle;
pub mod curriculum;
pub mod error;
pub mod library;
pub mod obfuscate;
pub mod schema;
pub mod template;
pub mod validate;

pub use builder::ModuleBuilder;
pub use bundle::ModuleBundle;
pub use curriculum::{default_curriculum, Curriculum, CurriculumUnit};
pub use error::{ModuleError, Result};
pub use obfuscate::{from_json_maybe_obfuscated, to_obfuscated_json};
pub use schema::{LearningModule, MatrixSize, Question};
pub use template::{template_10x10, template_6x6};
pub use validate::{validate, Severity, ValidationIssue, ValidationReport};
