//! The template modules the paper ships for educators to duplicate and modify.
//!
//! "To create a single matrix lesson there are example files that can be
//! duplicated and modified. … There are template JSON files for 6×6 or 10×10
//! matrices."

// tw-analyze: allow-file(no-panic-in-lib, "templates are authored as literals; each expect proves a module the template tests validate end to end")
use crate::schema::{LearningModule, MatrixSize, Question};
use tw_matrix::{ColorMatrix, LabelSet, TrafficMatrix};

/// The default template author, matching the paper's listing.
pub const TEMPLATE_AUTHOR: &str = "Chasen Milner";

/// The 10×10 template from the paper's Section II listings: identity diagonal
/// plus a 2-packet anti-diagonal, the WS/SRV/EXT/ADV labelling, the blue/red
/// color quadrants and the "How many packets did WS1 send to ADV4?" question.
pub fn template_10x10() -> LearningModule {
    let labels = LabelSet::paper_default_10();
    let n = labels.len();
    let mut matrix = TrafficMatrix::zeros(labels.clone());
    for i in 0..n {
        matrix.set(i, i, 1).expect("diagonal in range");
        matrix.set(i, n - 1 - i, 2).expect("anti-diagonal in range");
    }
    let colors = ColorMatrix::from_label_classes(&labels);
    LearningModule {
        name: "10x10 Template".to_string(),
        size: MatrixSize(10),
        author: TEMPLATE_AUTHOR.to_string(),
        matrix,
        colors,
        question: Some(Question {
            text: "How many packets did WS1 send to ADV4?".to_string(),
            answers: vec!["0".to_string(), "1".to_string(), "2".to_string()],
            correct_answer_element: 2,
        }),
        hint: None,
    }
}

/// The 6×6 template: the same diagonal/anti-diagonal structure on the smaller
/// label set, with an analogous question.
pub fn template_6x6() -> LearningModule {
    let labels = LabelSet::paper_default_6();
    let n = labels.len();
    let mut matrix = TrafficMatrix::zeros(labels.clone());
    for i in 0..n {
        matrix.set(i, i, 1).expect("diagonal in range");
        matrix.set(i, n - 1 - i, 2).expect("anti-diagonal in range");
    }
    let colors = ColorMatrix::from_label_classes(&labels);
    LearningModule {
        name: "6x6 Template".to_string(),
        size: MatrixSize(6),
        author: TEMPLATE_AUTHOR.to_string(),
        matrix,
        colors,
        question: Some(Question {
            text: "How many packets did WS1 send to ADV2?".to_string(),
            answers: vec!["0".to_string(), "1".to_string(), "2".to_string()],
            correct_answer_element: 2,
        }),
        hint: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::validate;

    #[test]
    fn templates_are_valid() {
        assert!(validate(&template_10x10()).is_valid());
        assert!(validate(&template_6x6()).is_valid());
    }

    #[test]
    fn template_10x10_matches_the_paper_listing() {
        let t = template_10x10();
        assert_eq!(t.name, "10x10 Template");
        assert_eq!(t.author, "Chasen Milner");
        assert_eq!(t.size, MatrixSize(10));
        assert_eq!(t.matrix.get_by_label("WS1", "WS1"), Some(1));
        assert_eq!(t.matrix.get_by_label("WS1", "ADV4"), Some(2));
        assert_eq!(t.matrix.get_by_label("ADV4", "WS1"), Some(2));
        assert_eq!(t.colors.get(0, 6).unwrap().code(), 2);
        assert_eq!(t.colors.get(6, 0).unwrap().code(), 1);
        let q = t.question.unwrap();
        assert_eq!(q.correct_answer(), Some("2"));
        assert_eq!(q.answers.len(), 3);
    }

    #[test]
    fn template_6x6_is_the_scaled_down_version() {
        let t = template_6x6();
        assert_eq!(t.dimension(), 6);
        assert_eq!(t.matrix.total_packets(), 6 + 12);
        assert_eq!(t.matrix.get_by_label("WS1", "ADV2"), Some(2));
        assert!(t.has_question());
    }

    #[test]
    fn templates_round_trip_through_json() {
        for t in [template_10x10(), template_6x6()] {
            let reparsed = LearningModule::from_json(&t.to_json()).unwrap();
            assert_eq!(reparsed, t);
        }
    }
}
