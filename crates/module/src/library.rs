//! The initial learning-module library.
//!
//! The paper reports that "using this facility an initial set of modules were
//! rapidly created covering: basic traffic matrices, traffic patterns,
//! security/defense/deterrence, a notional cyber attack, a distributed
//! denial-of-service (DDoS) attack, and a variety of graph theory concepts."
//! This module builds exactly that set from the pattern generators, as
//! ready-to-ship bundles.

use crate::builder::module_from_pattern;
use crate::bundle::ModuleBundle;
use crate::schema::LearningModule;
use crate::template::{template_10x10, template_6x6};
use tw_patterns::{patterns_for_figure, Figure};

/// The author string stamped on generated library modules.
pub const LIBRARY_AUTHOR: &str = "Traffic Warehouse module library";

/// Distractor answers used for each figure's modules. Distractors are drawn
/// from the *other* panels of the same figure so the question is meaningful.
fn distractors_for(figure: Figure, correct: &str) -> [String; 2] {
    let mut others: Vec<String> = patterns_for_figure(figure)
        .into_iter()
        .map(|p| p.relevant_to)
        .filter(|r| r != correct)
        .collect();
    // Graph-theory figure has 9 panels; keep the two alphabetically-first other
    // answers so module content is deterministic.
    others.sort();
    others.truncate(2);
    let mut iter = others.into_iter();
    [
        iter.next()
            .unwrap_or_else(|| "Normal background traffic".to_string()),
        iter.next()
            .unwrap_or_else(|| "A network misconfiguration".to_string()),
    ]
}

/// Build the lesson modules for one figure.
pub fn modules_for_figure(figure: Figure) -> Vec<LearningModule> {
    patterns_for_figure(figure)
        .iter()
        .map(|pattern| {
            let d = distractors_for(figure, &pattern.relevant_to);
            module_from_pattern(pattern, LIBRARY_AUTHOR, [d[0].as_str(), d[1].as_str()])
        })
        .collect()
}

/// Build one bundle per figure, named after the figure.
pub fn figure_bundle(figure: Figure) -> ModuleBundle {
    let mut bundle = ModuleBundle::new(figure.title());
    for module in modules_for_figure(figure) {
        bundle.push(module);
    }
    bundle
}

/// The "basic traffic matrices" bundle: the two templates from the paper.
pub fn basics_bundle() -> ModuleBundle {
    let mut bundle = ModuleBundle::new("Basic Traffic Matrices");
    bundle.push(template_6x6());
    bundle.push(template_10x10());
    bundle
}

/// The complete initial library: basics plus one bundle per figure, in the
/// order the paper lists them.
pub fn initial_library() -> Vec<ModuleBundle> {
    let mut bundles = vec![basics_bundle()];
    for figure in Figure::all() {
        bundles.push(figure_bundle(figure));
    }
    bundles
}

/// Every module of the initial library flattened into one sequence, in
/// curriculum order.
pub fn full_curriculum() -> Vec<LearningModule> {
    initial_library()
        .into_iter()
        .flat_map(|b| b.modules().to_vec())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::validate;

    #[test]
    fn the_initial_library_matches_the_paper_inventory() {
        let library = initial_library();
        // basics + 5 figures
        assert_eq!(library.len(), 6);
        let names: Vec<&str> = library.iter().map(|b| b.name.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "Basic Traffic Matrices",
                "Traffic Topologies",
                "Notional Attack",
                "Network Security, Defense, and Deterrence",
                "DDoS Attack",
                "Graph Theory"
            ]
        );
    }

    #[test]
    fn every_library_module_is_valid() {
        for bundle in initial_library() {
            for (i, module) in bundle.modules().iter().enumerate() {
                let report = validate(module);
                assert!(
                    report.is_valid(),
                    "bundle {:?} module {} ({}) invalid: {:?}",
                    bundle.name,
                    i,
                    module.name,
                    report.issues
                );
            }
            assert!(bundle.is_valid());
        }
    }

    #[test]
    fn curriculum_size_matches_panel_count_plus_templates() {
        // 2 templates + 24 figure panels.
        assert_eq!(full_curriculum().len(), 26);
    }

    #[test]
    fn every_library_bundle_round_trips_through_zip() {
        for bundle in initial_library() {
            let bytes = bundle.to_zip().unwrap();
            let loaded = ModuleBundle::from_zip(&bundle.name, &bytes).unwrap();
            assert_eq!(
                loaded.modules(),
                bundle.modules(),
                "bundle {:?}",
                bundle.name
            );
        }
    }

    #[test]
    fn questions_use_in_figure_distractors() {
        let ddos_modules = modules_for_figure(Figure::Ddos);
        for module in &ddos_modules {
            let q = module.question.as_ref().unwrap();
            assert_eq!(q.answers.len(), 3);
            // All answers are distinct.
            let mut answers = q.answers.clone();
            answers.sort();
            answers.dedup();
            assert_eq!(
                answers.len(),
                3,
                "module {} has duplicate answers",
                module.name
            );
            assert_eq!(q.correct_answer_element, 0);
        }
        assert_eq!(ddos_modules.len(), 4);
    }

    #[test]
    fn graph_theory_modules_cover_all_nine_concepts() {
        let modules = modules_for_figure(Figure::GraphTheory);
        assert_eq!(modules.len(), 9);
        let names: Vec<&str> = modules.iter().map(|m| m.name.as_str()).collect();
        assert!(names.contains(&"Toroidal Mesh"));
        assert!(names.contains(&"Self Loop"));
    }
}
