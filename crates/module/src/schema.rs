//! The learning-module schema and its JSON (de)serialization.

use crate::error::{ModuleError, Result};
use tw_json::{Map, Value};
use tw_matrix::{ColorMatrix, LabelSet, TrafficMatrix};

/// The declared matrix size of a module, written as `"NxN"` in the file.
///
/// The paper ships 6×6 and 10×10 templates but the format is not limited to
/// those; any square size parses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MatrixSize(pub usize);

impl MatrixSize {
    /// Parse from the module-file form, e.g. `"10x10"`.
    pub fn parse(text: &str) -> Result<Self> {
        let lower = text.to_ascii_lowercase();
        let (a, b) = lower
            .split_once('x')
            .ok_or_else(|| ModuleError::BadSize(text.to_string()))?;
        let rows: usize = a
            .trim()
            .parse()
            .map_err(|_| ModuleError::BadSize(text.to_string()))?;
        let cols: usize = b
            .trim()
            .parse()
            .map_err(|_| ModuleError::BadSize(text.to_string()))?;
        if rows != cols || rows == 0 {
            return Err(ModuleError::BadSize(text.to_string()));
        }
        Ok(MatrixSize(rows))
    }

    /// The module-file form, e.g. `10x10`.
    pub fn to_string_form(self) -> String {
        format!("{0}x{0}", self.0)
    }

    /// The dimension as a number.
    pub fn dimension(self) -> usize {
        self.0
    }
}

/// The optional multiple-choice question attached to a module.
///
/// The paper deliberately uses three answer options, and lets an educator
/// toggle the question off "for a more interactive experience where an
/// educator can have an open discussion or prompt an entire class through
/// online polls".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Question {
    /// The question text shown to the student.
    pub text: String,
    /// The answer options in authored order (the game shuffles them at display time).
    pub answers: Vec<String>,
    /// Index into `answers` of the correct option.
    pub correct_answer_element: usize,
}

impl Question {
    /// The correct answer's text, if the index is in range.
    pub fn correct_answer(&self) -> Option<&str> {
        self.answers
            .get(self.correct_answer_element)
            .map(String::as_str)
    }
}

/// One learning module: a titled, authored traffic matrix with colors and an
/// optional question.
#[derive(Debug, Clone, PartialEq)]
pub struct LearningModule {
    /// The lesson title shown to the student.
    pub name: String,
    /// Declared matrix size (must match the actual matrix).
    pub size: MatrixSize,
    /// The module's author.
    pub author: String,
    /// The labelled traffic matrix.
    pub matrix: TrafficMatrix,
    /// The pallet color plane.
    pub colors: ColorMatrix,
    /// The optional question (None when `has_question` is false).
    pub question: Option<Question>,
    /// Optional hint text pointing the student at an external resource.
    pub hint: Option<String>,
}

impl LearningModule {
    /// Parse a module from JSON text.
    pub fn from_json(text: &str) -> Result<Self> {
        let value = tw_json::parse(text)?;
        Self::from_value(&value)
    }

    /// Parse a module from an already-parsed JSON value.
    pub fn from_value(value: &Value) -> Result<Self> {
        let obj = value
            .as_object()
            .ok_or(ModuleError::WrongType("<root>", "an object"))?;

        let name = require_str(obj, "name")?.to_string();
        let size = MatrixSize::parse(require_str(obj, "size")?)?;
        let author = require_str(obj, "author")?.to_string();

        let labels_value = obj
            .get("axis_labels")
            .ok_or(ModuleError::MissingField("axis_labels"))?;
        let labels_list = labels_value
            .as_string_list()
            .ok_or(ModuleError::WrongType("axis_labels", "an array of strings"))?;
        let labels = LabelSet::new(labels_list)?;

        let matrix_value = obj
            .get("traffic_matrix")
            .ok_or(ModuleError::MissingField("traffic_matrix"))?;
        let grid = matrix_value.as_u32_grid().ok_or(ModuleError::WrongType(
            "traffic_matrix",
            "an array of arrays of non-negative integers",
        ))?;
        let matrix = TrafficMatrix::from_grid(labels.clone(), &grid)?;

        let colors = match obj.get("traffic_matrix_colors") {
            Some(v) => {
                let color_grid = v.as_u32_grid().ok_or(ModuleError::WrongType(
                    "traffic_matrix_colors",
                    "an array of arrays of color codes (0, 1 or 2)",
                ))?;
                ColorMatrix::from_codes(&color_grid)?
            }
            None => ColorMatrix::grey(labels.len()),
        };

        let has_question = match obj.get("has_question") {
            Some(v) => v
                .as_bool()
                .ok_or(ModuleError::WrongType("has_question", "a boolean"))?,
            None => false,
        };
        let question = if has_question {
            let text = require_str(obj, "question")?.to_string();
            let answers = obj
                .get("answers")
                .ok_or(ModuleError::MissingField("answers"))?
                .as_string_list()
                .ok_or(ModuleError::WrongType("answers", "an array of strings"))?;
            let correct_answer_element = obj
                .get("correct_answer_element")
                .ok_or(ModuleError::MissingField("correct_answer_element"))?
                .as_usize()
                .ok_or(ModuleError::WrongType(
                    "correct_answer_element",
                    "a non-negative integer",
                ))?;
            Some(Question {
                text,
                answers,
                correct_answer_element,
            })
        } else {
            None
        };

        let hint = match obj.get("hint") {
            Some(v) => Some(
                v.as_str()
                    .ok_or(ModuleError::WrongType("hint", "a string"))?
                    .to_string(),
            ),
            None => None,
        };

        Ok(LearningModule {
            name,
            size,
            author,
            matrix,
            colors,
            question,
            hint,
        })
    }

    /// Serialize to a JSON value using the paper's field names and ordering.
    pub fn to_value(&self) -> Value {
        let mut obj = Map::new();
        obj.insert("name", self.name.as_str());
        obj.insert("size", self.size.to_string_form());
        obj.insert("author", self.author.as_str());
        obj.insert(
            "axis_labels",
            Value::Array(
                self.matrix
                    .labels()
                    .labels()
                    .iter()
                    .map(|l| Value::from(l.as_str()))
                    .collect(),
            ),
        );
        obj.insert("traffic_matrix", grid_to_value(&self.matrix.to_grid()));
        obj.insert(
            "traffic_matrix_colors",
            grid_to_value(&self.colors.to_codes()),
        );
        obj.insert("has_question", self.question.is_some());
        if let Some(q) = &self.question {
            obj.insert("question", q.text.as_str());
            obj.insert(
                "answers",
                Value::Array(q.answers.iter().map(|a| Value::from(a.as_str())).collect()),
            );
            obj.insert("correct_answer_element", q.correct_answer_element);
        }
        if let Some(hint) = &self.hint {
            obj.insert("hint", hint.as_str());
        }
        Value::Object(obj)
    }

    /// Serialize to pretty-printed JSON text (matrix rows stay on one line, as
    /// an educator would type them).
    pub fn to_json(&self) -> String {
        tw_json::to_string_pretty(&self.to_value())
    }

    /// The matrix dimension.
    pub fn dimension(&self) -> usize {
        self.matrix.dimension()
    }

    /// True when the module has a question to ask.
    pub fn has_question(&self) -> bool {
        self.question.is_some()
    }
}

fn require_str<'a>(obj: &'a Map, field: &'static str) -> Result<&'a str> {
    obj.get(field)
        .ok_or(ModuleError::MissingField(field))?
        .as_str()
        .ok_or(ModuleError::WrongType(field, "a string"))
}

fn grid_to_value(grid: &[Vec<u32>]) -> Value {
    Value::Array(
        grid.iter()
            .map(|row| Value::Array(row.iter().map(|&v| Value::from(v)).collect()))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's full 10×10 template assembled from the Section II listings.
    pub(crate) fn paper_template_json() -> String {
        let mut matrix_rows = String::new();
        let mut color_rows = String::new();
        for i in 0..10 {
            let mut m_row = [0u32; 10];
            m_row[i] = 1;
            m_row[9 - i] = 2;
            let mut c_row = [0u32; 10];
            if i < 4 {
                c_row[6..10].fill(2);
            }
            if i >= 6 {
                c_row[0..4].fill(1);
            }
            matrix_rows.push_str(&format!(
                "[{}],\n",
                m_row
                    .iter()
                    .map(|v| v.to_string())
                    .collect::<Vec<_>>()
                    .join(",")
            ));
            color_rows.push_str(&format!(
                "[{}],\n",
                c_row
                    .iter()
                    .map(|v| v.to_string())
                    .collect::<Vec<_>>()
                    .join(",")
            ));
        }
        format!(
            r#"{{
            "name":"10x10 Template",
            "size":"10x10",
            "author":"Chasen Milner",
            "axis_labels":[
                "WS1","WS2","WS3","SRV1",
                "EXT1","EXT2",
                "ADV1","ADV2","ADV3","ADV4",
            ],
            "traffic_matrix":[
            {matrix_rows}
            ],
            "traffic_matrix_colors":[
            {color_rows}
            ],
            "has_question":true,
            "question":"How many packets did WS1 send to ADV4?",
            "answers":["0", "1", "2",],
            "correct_answer_element":2,
        }}"#
        )
    }

    #[test]
    fn parses_the_paper_template() {
        let module = LearningModule::from_json(&paper_template_json()).unwrap();
        assert_eq!(module.name, "10x10 Template");
        assert_eq!(module.author, "Chasen Milner");
        assert_eq!(module.size, MatrixSize(10));
        assert_eq!(module.dimension(), 10);
        assert_eq!(module.matrix.get_by_label("WS1", "ADV4"), Some(2));
        assert_eq!(module.colors.get(0, 9).unwrap().code(), 2);
        let q = module.question.as_ref().unwrap();
        assert_eq!(q.text, "How many packets did WS1 send to ADV4?");
        assert_eq!(q.correct_answer(), Some("2"));
        assert!(module.has_question());
    }

    #[test]
    fn json_round_trip_preserves_the_module() {
        let module = LearningModule::from_json(&paper_template_json()).unwrap();
        let text = module.to_json();
        let reparsed = LearningModule::from_json(&text).unwrap();
        assert_eq!(reparsed, module);
        // Field order in the output follows the paper's listing order.
        let name_pos = text.find("\"name\"").unwrap();
        let size_pos = text.find("\"size\"").unwrap();
        let matrix_pos = text.find("\"traffic_matrix\"").unwrap();
        assert!(name_pos < size_pos && size_pos < matrix_pos);
    }

    #[test]
    fn matrix_size_parsing() {
        assert_eq!(MatrixSize::parse("10x10").unwrap(), MatrixSize(10));
        assert_eq!(MatrixSize::parse("6X6").unwrap(), MatrixSize(6));
        assert_eq!(MatrixSize::parse(" 8 x 8 ").unwrap(), MatrixSize(8));
        assert!(MatrixSize::parse("10x6").is_err());
        assert!(MatrixSize::parse("0x0").is_err());
        assert!(MatrixSize::parse("10by10").is_err());
        assert!(MatrixSize::parse("tenxten").is_err());
        assert_eq!(MatrixSize(6).to_string_form(), "6x6");
        assert_eq!(MatrixSize(12).dimension(), 12);
    }

    #[test]
    fn missing_fields_are_reported_by_name() {
        let err = LearningModule::from_json(r#"{"size":"6x6"}"#).unwrap_err();
        assert_eq!(err, ModuleError::MissingField("name"));
        let err =
            LearningModule::from_json(r#"{"name":"x","size":"6x6","author":"a"}"#).unwrap_err();
        assert_eq!(err, ModuleError::MissingField("axis_labels"));
    }

    #[test]
    fn wrong_types_are_reported() {
        let err = LearningModule::from_json(r#"{"name":1,"size":"6x6","author":"a"}"#).unwrap_err();
        assert_eq!(err, ModuleError::WrongType("name", "a string"));
        let err = LearningModule::from_json(r#"[1,2,3]"#).unwrap_err();
        assert_eq!(err, ModuleError::WrongType("<root>", "an object"));
        let bad_matrix = r#"{"name":"x","size":"2x2","author":"a","axis_labels":["A","B"],
            "traffic_matrix":[["a","b"],["c","d"]]}"#;
        assert!(matches!(
            LearningModule::from_json(bad_matrix).unwrap_err(),
            ModuleError::WrongType("traffic_matrix", _)
        ));
    }

    #[test]
    fn question_fields_only_required_when_enabled() {
        let no_question = r#"{
            "name":"Discussion", "size":"2x2", "author":"a",
            "axis_labels":["A","B"],
            "traffic_matrix":[[0,1],[1,0]]
        }"#;
        let module = LearningModule::from_json(no_question).unwrap();
        assert!(!module.has_question());
        assert_eq!(module.colors.dimension(), 2, "colors default to all grey");

        let toggled_on_without_question = r#"{
            "name":"x", "size":"2x2", "author":"a",
            "axis_labels":["A","B"],
            "traffic_matrix":[[0,1],[1,0]],
            "has_question":true
        }"#;
        assert_eq!(
            LearningModule::from_json(toggled_on_without_question).unwrap_err(),
            ModuleError::MissingField("question")
        );
    }

    #[test]
    fn hint_field_round_trips() {
        let with_hint = r#"{
            "name":"x", "size":"2x2", "author":"a",
            "axis_labels":["A","B"],
            "traffic_matrix":[[0,1],[0,0]],
            "hint":"See the Zero Botnets report"
        }"#;
        let module = LearningModule::from_json(with_hint).unwrap();
        assert_eq!(module.hint.as_deref(), Some("See the Zero Botnets report"));
        let reparsed = LearningModule::from_json(&module.to_json()).unwrap();
        assert_eq!(reparsed.hint, module.hint);
    }

    #[test]
    fn mismatched_labels_and_matrix_are_rejected() {
        let bad = r#"{
            "name":"x", "size":"3x3", "author":"a",
            "axis_labels":["A","B","C"],
            "traffic_matrix":[[0,1],[1,0]]
        }"#;
        assert!(matches!(
            LearningModule::from_json(bad).unwrap_err(),
            ModuleError::Matrix(_)
        ));
    }
}
