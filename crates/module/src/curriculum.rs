//! Hierarchical learning modules (paper future work).
//!
//! The paper lists "hierarchical learning modules" among its planned
//! improvements: the shipped game presents a flat sequence of JSON files. A
//! curriculum arranges bundles into named units with prerequisites, so an
//! educator can require the traffic-topology unit before the DDoS unit, and a
//! student's progress unlocks units as they complete their prerequisites.

// tw-analyze: allow-file(no-panic-in-lib, "the built-in curriculum is authored as literals; each expect proves a module the curriculum tests serialize and validate end to end")
use crate::bundle::ModuleBundle;
use crate::error::{ModuleError, Result};
use crate::library;

/// One unit of a curriculum: a titled bundle plus prerequisite unit names.
#[derive(Debug, Clone, PartialEq)]
pub struct CurriculumUnit {
    /// The unit's name (unique within the curriculum).
    pub name: String,
    /// The modules taught by this unit.
    pub bundle: ModuleBundle,
    /// Names of units that must be completed first.
    pub prerequisites: Vec<String>,
}

/// A hierarchical curriculum: an ordered set of units with prerequisites.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Curriculum {
    units: Vec<CurriculumUnit>,
}

impl Curriculum {
    /// An empty curriculum.
    pub fn new() -> Self {
        Curriculum::default()
    }

    /// Add a unit. The unit name must be unique and every prerequisite must
    /// already exist (so the structure is acyclic by construction).
    pub fn add_unit(
        &mut self,
        name: &str,
        bundle: ModuleBundle,
        prerequisites: &[&str],
    ) -> Result<()> {
        if self.unit(name).is_some() {
            return Err(ModuleError::Invalid(format!(
                "duplicate curriculum unit {name:?}"
            )));
        }
        for prerequisite in prerequisites {
            if self.unit(prerequisite).is_none() {
                return Err(ModuleError::Invalid(format!(
                    "unit {name:?} requires unknown prerequisite {prerequisite:?} (units must be added after their prerequisites)"
                )));
            }
        }
        self.units.push(CurriculumUnit {
            name: name.to_string(),
            bundle,
            prerequisites: prerequisites.iter().map(|s| s.to_string()).collect(),
        });
        Ok(())
    }

    /// All units in insertion order.
    pub fn units(&self) -> &[CurriculumUnit] {
        &self.units
    }

    /// Find a unit by name.
    pub fn unit(&self, name: &str) -> Option<&CurriculumUnit> {
        self.units.iter().find(|u| u.name == name)
    }

    /// Number of units.
    pub fn len(&self) -> usize {
        self.units.len()
    }

    /// True when the curriculum has no units.
    pub fn is_empty(&self) -> bool {
        self.units.is_empty()
    }

    /// Total module count across all units.
    pub fn total_modules(&self) -> usize {
        self.units.iter().map(|u| u.bundle.len()).sum()
    }

    /// The units currently unlocked for a student who has completed the named
    /// units, in curriculum order (completed units are not re-listed).
    pub fn unlocked_units(&self, completed: &[String]) -> Vec<&CurriculumUnit> {
        self.units
            .iter()
            .filter(|unit| !completed.contains(&unit.name))
            .filter(|unit| unit.prerequisites.iter().all(|p| completed.contains(p)))
            .collect()
    }

    /// A full ordering of the units that respects prerequisites (the insertion
    /// order already does, by construction; this re-checks and returns it).
    pub fn schedule(&self) -> Result<Vec<&CurriculumUnit>> {
        let mut completed: Vec<String> = Vec::new();
        let mut schedule = Vec::new();
        // Repeatedly take the first not-yet-scheduled unit whose prerequisites
        // are satisfied; by construction this always succeeds.
        while schedule.len() < self.units.len() {
            let next = self
                .units
                .iter()
                .find(|u| {
                    !completed.contains(&u.name)
                        && u.prerequisites.iter().all(|p| completed.contains(p))
                })
                .ok_or_else(|| {
                    ModuleError::Invalid("curriculum prerequisites cannot be satisfied".to_string())
                })?;
            completed.push(next.name.clone());
            schedule.push(next);
        }
        Ok(schedule)
    }
}

/// The default Traffic Warehouse curriculum: the initial library arranged with
/// the prerequisite structure the paper's module descriptions imply (basics
/// first, topologies before the attack/DDoS analyses, graph theory unlocked by
/// the basics alone).
pub fn default_curriculum() -> Curriculum {
    let mut bundles = library::initial_library().into_iter();
    let basics = bundles.next().expect("library has 6 bundles");
    let topologies = bundles.next().expect("library has 6 bundles");
    let attack = bundles.next().expect("library has 6 bundles");
    let posture = bundles.next().expect("library has 6 bundles");
    let ddos = bundles.next().expect("library has 6 bundles");
    let graph = bundles.next().expect("library has 6 bundles");

    let mut curriculum = Curriculum::new();
    curriculum.add_unit("Basics", basics, &[]).expect("valid");
    curriculum
        .add_unit("Traffic Topologies", topologies, &["Basics"])
        .expect("valid");
    curriculum
        .add_unit("Graph Theory", graph, &["Basics"])
        .expect("valid");
    curriculum
        .add_unit(
            "Security, Defense, and Deterrence",
            posture,
            &["Traffic Topologies"],
        )
        .expect("valid");
    curriculum
        .add_unit("Notional Attack", attack, &["Traffic Topologies"])
        .expect("valid");
    curriculum
        .add_unit(
            "DDoS",
            ddos,
            &["Notional Attack", "Security, Defense, and Deterrence"],
        )
        .expect("valid");
    curriculum
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_curriculum_structure() {
        let curriculum = default_curriculum();
        assert_eq!(curriculum.len(), 6);
        assert_eq!(curriculum.total_modules(), 26);
        assert!(!curriculum.is_empty());
        let ddos = curriculum.unit("DDoS").unwrap();
        assert_eq!(ddos.prerequisites.len(), 2);
        assert!(curriculum.unit("Missing").is_none());
    }

    #[test]
    fn unlocking_follows_prerequisites() {
        let curriculum = default_curriculum();
        let start: Vec<&str> = curriculum
            .unlocked_units(&[])
            .iter()
            .map(|u| u.name.as_str())
            .collect();
        assert_eq!(start, vec!["Basics"]);

        let after_basics: Vec<&str> = curriculum
            .unlocked_units(&["Basics".to_string()])
            .iter()
            .map(|u| u.name.as_str())
            .collect();
        assert_eq!(after_basics, vec!["Traffic Topologies", "Graph Theory"]);

        let almost_done: Vec<String> = [
            "Basics",
            "Traffic Topologies",
            "Graph Theory",
            "Security, Defense, and Deterrence",
            "Notional Attack",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let last: Vec<&str> = curriculum
            .unlocked_units(&almost_done)
            .iter()
            .map(|u| u.name.as_str())
            .collect();
        assert_eq!(last, vec!["DDoS"]);
    }

    #[test]
    fn schedule_respects_prerequisites() {
        let curriculum = default_curriculum();
        let schedule = curriculum.schedule().unwrap();
        assert_eq!(schedule.len(), 6);
        let position = |name: &str| schedule.iter().position(|u| u.name == name).unwrap();
        assert!(position("Basics") < position("Traffic Topologies"));
        assert!(position("Notional Attack") < position("DDoS"));
        assert!(position("Security, Defense, and Deterrence") < position("DDoS"));
    }

    #[test]
    fn invalid_structures_are_rejected() {
        let mut curriculum = Curriculum::new();
        curriculum
            .add_unit("A", ModuleBundle::new("A"), &[])
            .unwrap();
        assert!(
            curriculum
                .add_unit("A", ModuleBundle::new("A2"), &[])
                .is_err(),
            "duplicate name"
        );
        assert!(
            curriculum
                .add_unit("B", ModuleBundle::new("B"), &["missing"])
                .is_err(),
            "unknown prerequisite"
        );
        // Forward references (which would allow cycles) are rejected too.
        assert!(curriculum
            .add_unit("C", ModuleBundle::new("C"), &["D"])
            .is_err());
    }
}
