//! A fluent builder for learning modules.
//!
//! The builder is the programmatic counterpart of "duplicate and modify the
//! template": pattern generators, curriculum tooling and tests use it to
//! assemble modules without hand-writing JSON.

use crate::error::Result;
use crate::schema::{LearningModule, MatrixSize, Question};
use tw_matrix::{CellColor, ColorMatrix, LabelSet, TrafficMatrix};
use tw_patterns::Pattern;

/// Builds a [`LearningModule`] step by step.
#[derive(Debug, Clone)]
pub struct ModuleBuilder {
    name: String,
    author: String,
    labels: LabelSet,
    matrix: TrafficMatrix,
    colors: ColorMatrix,
    question: Option<Question>,
    hint: Option<String>,
}

impl ModuleBuilder {
    /// Start a module with a name and author; defaults to the paper's 10-node
    /// labelling and an empty matrix.
    pub fn new(name: &str, author: &str) -> Self {
        let labels = LabelSet::paper_default_10();
        ModuleBuilder {
            name: name.to_string(),
            author: author.to_string(),
            matrix: TrafficMatrix::zeros(labels.clone()),
            colors: ColorMatrix::from_label_classes(&labels),
            labels,
            question: None,
            hint: None,
        }
    }

    /// Replace the axis labels; resets the matrix and colors to match.
    pub fn labels<S: Into<String>>(mut self, labels: impl IntoIterator<Item = S>) -> Result<Self> {
        let labels = LabelSet::new(labels)?;
        self.matrix = TrafficMatrix::zeros(labels.clone());
        self.colors = ColorMatrix::from_label_classes(&labels);
        self.labels = labels;
        Ok(self)
    }

    /// Set one traffic-matrix cell.
    pub fn cell(mut self, row: usize, col: usize, packets: u32) -> Result<Self> {
        self.matrix.set(row, col, packets)?;
        Ok(self)
    }

    /// Set one traffic-matrix cell by source/destination label.
    pub fn traffic(mut self, source: &str, destination: &str, packets: u32) -> Result<Self> {
        let row = self.labels.index_of(source).ok_or_else(|| {
            crate::error::ModuleError::Invalid(format!("unknown source label {source:?}"))
        })?;
        let col = self.labels.index_of(destination).ok_or_else(|| {
            crate::error::ModuleError::Invalid(format!("unknown destination label {destination:?}"))
        })?;
        self.matrix.set(row, col, packets)?;
        Ok(self)
    }

    /// Replace the whole traffic matrix (labels must match).
    pub fn matrix(mut self, matrix: TrafficMatrix) -> Result<Self> {
        if matrix.labels() != &self.labels {
            return Err(crate::error::ModuleError::Invalid(
                "matrix labels do not match the builder's labels".to_string(),
            ));
        }
        self.matrix = matrix;
        Ok(self)
    }

    /// Set one color cell.
    pub fn color(mut self, row: usize, col: usize, color: CellColor) -> Result<Self> {
        self.colors.set(row, col, color)?;
        Ok(self)
    }

    /// Replace the whole color plane.
    pub fn colors(mut self, colors: ColorMatrix) -> Self {
        self.colors = colors;
        self
    }

    /// Attach the three-option question.
    pub fn question(mut self, text: &str, answers: [&str; 3], correct: usize) -> Self {
        self.question = Some(Question {
            text: text.to_string(),
            answers: answers.iter().map(|s| s.to_string()).collect(),
            correct_answer_element: correct,
        });
        self
    }

    /// Attach a question with an arbitrary number of options.
    pub fn question_with_options(mut self, text: &str, answers: &[&str], correct: usize) -> Self {
        self.question = Some(Question {
            text: text.to_string(),
            answers: answers.iter().map(|s| s.to_string()).collect(),
            correct_answer_element: correct,
        });
        self
    }

    /// Attach a hint pointing at an external resource.
    pub fn hint(mut self, hint: &str) -> Self {
        self.hint = Some(hint.to_string());
        self
    }

    /// Finish the module.
    pub fn build(self) -> LearningModule {
        LearningModule {
            name: self.name,
            size: MatrixSize(self.labels.len()),
            author: self.author,
            matrix: self.matrix,
            colors: self.colors,
            question: self.question,
            hint: self.hint,
        }
    }
}

/// Convert a generated [`Pattern`] into a learning module with the paper's
/// canonical question ("Which choice is the displayed traffic pattern most
/// relevant to?") and two distractor answers.
pub fn module_from_pattern(
    pattern: &Pattern,
    author: &str,
    distractors: [&str; 2],
) -> LearningModule {
    let question = Question {
        text: tw_patterns::CANONICAL_QUESTION.to_string(),
        answers: vec![
            pattern.relevant_to.clone(),
            distractors[0].to_string(),
            distractors[1].to_string(),
        ],
        correct_answer_element: 0,
    };
    LearningModule {
        name: pattern.name.clone(),
        size: MatrixSize(pattern.dimension()),
        author: author.to_string(),
        matrix: pattern.matrix.clone(),
        colors: pattern.colors.clone(),
        question: Some(question),
        hint: pattern.hint.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::validate;
    use tw_patterns::ddos;

    #[test]
    fn builder_produces_valid_modules() {
        let module = ModuleBuilder::new("Lateral Movement Drill", "Instructor")
            .traffic("WS1", "WS2", 2)
            .unwrap()
            .traffic("WS2", "WS3", 2)
            .unwrap()
            .traffic("WS3", "SRV1", 3)
            .unwrap()
            .question(
                "Where is this traffic?",
                ["Blue space", "Grey space", "Red space"],
                0,
            )
            .hint("Zero Botnets report")
            .build();
        assert!(validate(&module).is_valid());
        assert_eq!(module.matrix.get_by_label("WS3", "SRV1"), Some(3));
        assert_eq!(module.size, MatrixSize(10));
        assert_eq!(module.hint.as_deref(), Some("Zero Botnets report"));
    }

    #[test]
    fn builder_rejects_unknown_labels_and_bad_indices() {
        assert!(ModuleBuilder::new("x", "a")
            .traffic("NOPE", "WS1", 1)
            .is_err());
        assert!(ModuleBuilder::new("x", "a")
            .traffic("WS1", "NOPE", 1)
            .is_err());
        assert!(ModuleBuilder::new("x", "a").cell(99, 0, 1).is_err());
        assert!(ModuleBuilder::new("x", "a")
            .color(0, 99, CellColor::Red)
            .is_err());
    }

    #[test]
    fn custom_labels_reset_matrix_dimensions() {
        let module = ModuleBuilder::new("Tiny", "a")
            .labels(["A", "B", "C"])
            .unwrap()
            .cell(0, 2, 4)
            .unwrap()
            .build();
        assert_eq!(module.dimension(), 3);
        assert_eq!(module.size, MatrixSize(3));
        assert_eq!(module.matrix.get(0, 2), Some(4));
    }

    #[test]
    fn matrix_replacement_requires_matching_labels() {
        let other = TrafficMatrix::zeros_numeric(10);
        assert!(ModuleBuilder::new("x", "a").matrix(other).is_err());
        let matching = TrafficMatrix::zeros(LabelSet::paper_default_10());
        assert!(ModuleBuilder::new("x", "a").matrix(matching).is_ok());
    }

    #[test]
    fn module_from_pattern_uses_the_canonical_question() {
        let pattern = ddos::attack();
        let module = module_from_pattern(
            &pattern,
            "MIT",
            ["Normal web browsing", "A software update"],
        );
        assert_eq!(module.name, "DDoS Attack");
        let q = module.question.as_ref().unwrap();
        assert_eq!(q.text, tw_patterns::CANONICAL_QUESTION);
        assert_eq!(q.answers.len(), 3);
        assert_eq!(
            q.correct_answer(),
            Some("A distributed denial-of-service attack")
        );
        assert!(validate(&module).is_valid());
        // Round trips through JSON like any hand-written module.
        let reparsed = LearningModule::from_json(&module.to_json()).unwrap();
        assert_eq!(reparsed, module);
    }

    #[test]
    fn question_with_arbitrary_option_count() {
        let module = ModuleBuilder::new("x", "a")
            .cell(0, 1, 1)
            .unwrap()
            .question_with_options("Pick", &["a", "b", "c", "d"], 3)
            .build();
        assert_eq!(module.question.unwrap().answers.len(), 4);
    }
}
