//! Property tests: arbitrary well-formed modules survive the JSON and ZIP
//! round trips, and the validator never panics on schema-valid input.

use proptest::prelude::*;
use tw_matrix::{CellColor, ColorMatrix, LabelSet, TrafficMatrix};
use tw_module::{validate, LearningModule, MatrixSize, ModuleBundle, Question};

/// Strategy for an arbitrary module with consistent dimensions.
fn arb_module() -> impl Strategy<Value = LearningModule> {
    (2usize..=12).prop_flat_map(|n| {
        let labels: Vec<String> = (0..n).map(|i| format!("N{i}")).collect();
        let matrix = prop::collection::vec(prop::collection::vec(0u32..20, n..=n), n..=n);
        let colors = prop::collection::vec(prop::collection::vec(0u32..3, n..=n), n..=n);
        let question = prop::option::of((
            "[A-Za-z ?]{1,40}",
            prop::collection::vec("[a-z0-9 ]{1,10}", 3..=3),
            0usize..3,
        ));
        (
            Just(labels),
            matrix,
            colors,
            question,
            "[A-Za-z0-9 ]{1,20}",
            "[A-Za-z ]{0,16}",
        )
            .prop_map(move |(labels, grid, colors, question, name, author)| {
                let label_set = LabelSet::new(labels.clone()).unwrap();
                let matrix = TrafficMatrix::from_grid(label_set, &grid).unwrap();
                let colors = ColorMatrix::from_codes(&colors).unwrap();
                let question = question.map(|(text, mut answers, correct)| {
                    // Ensure distinct answers by suffixing indices.
                    for (i, a) in answers.iter_mut().enumerate() {
                        a.push_str(&format!("_{i}"));
                    }
                    Question {
                        text,
                        answers,
                        correct_answer_element: correct,
                    }
                });
                LearningModule {
                    name,
                    size: MatrixSize(n),
                    author,
                    matrix,
                    colors,
                    question,
                    hint: None,
                }
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn json_round_trip(module in arb_module()) {
        let text = module.to_json();
        let reparsed = LearningModule::from_json(&text).expect("round trip parse");
        prop_assert_eq!(reparsed, module);
    }

    #[test]
    fn zip_round_trip(modules in prop::collection::vec(arb_module(), 1..6)) {
        let bundle: ModuleBundle = modules.clone().into_iter().collect();
        let bytes = bundle.to_zip().unwrap();
        let loaded = ModuleBundle::from_zip("prop", &bytes).unwrap();
        prop_assert_eq!(loaded.modules(), &modules[..]);
    }

    #[test]
    fn validator_never_panics_and_size_always_consistent(module in arb_module()) {
        let report = validate(&module);
        // Generated modules always have consistent size, so size errors never fire.
        prop_assert!(report.errors().all(|i| i.field != "size"));
    }

    #[test]
    fn serialized_color_codes_stay_in_range(module in arb_module()) {
        for row in module.colors.to_codes() {
            for code in row {
                prop_assert!(code <= 2);
                prop_assert!(CellColor::from_code(code).is_some());
            }
        }
    }
}
