//! CLI smoke tests: the educator-facing commands run end to end and produce
//! non-empty output, both through the library entry points and through the
//! compiled `traffic-warehouse` binary.

use std::process::Command as Process;
use tw_cli::{parse_args, run, Command, USAGE};

fn run_args(args: &[&str]) -> String {
    let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
    let command = parse_args(&args).expect("arguments parse");
    run(&command).expect("command runs")
}

#[test]
fn curriculum_prints_units_with_prerequisites() {
    let output = run_args(&["curriculum"]);
    assert!(!output.trim().is_empty());
    assert!(output.contains("curriculum"), "header missing: {output}");
    assert!(
        output.contains("requires"),
        "prerequisite column missing: {output}"
    );
}

#[test]
fn figures_prints_the_pattern_gallery() {
    let output = run_args(&["figures"]);
    assert!(!output.trim().is_empty());
    assert!(output.contains("Figure"), "figure headers missing");
    // Every gallery row renders an actual matrix, so some traffic must show.
    assert!(
        output.lines().count() > 20,
        "gallery suspiciously short: {output}"
    );
}

#[test]
fn help_shows_usage_and_bad_args_error() {
    let output = run(&Command::Help).expect("help runs");
    assert_eq!(output, USAGE);
    let bogus = vec!["no-such-command".to_string()];
    assert!(parse_args(&bogus).is_err());
    // No arguments means "show help", matching the binary's behavior.
    assert_eq!(parse_args(&[]).unwrap(), Command::Help);
}

/// assert_cmd-style check against the real binary, via the path cargo bakes
/// into integration tests.
#[test]
fn compiled_binary_runs_curriculum_and_figures() {
    for subcommand in ["curriculum", "figures"] {
        let output = Process::new(env!("CARGO_BIN_EXE_traffic-warehouse"))
            .arg(subcommand)
            .output()
            .expect("binary spawns");
        assert!(output.status.success(), "{subcommand} exited nonzero");
        assert!(!output.stdout.is_empty(), "{subcommand} printed nothing");
    }
}

/// The acceptance flow from the paper's classroom workflow: record a DDoS
/// scenario once, then replay it without regenerating events.
#[test]
fn compiled_binary_records_and_replays_a_scenario() {
    let dir = std::env::temp_dir().join(format!("tw-cli-smoke-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let zip = dir.join("out.zip");
    let zip_arg = zip.to_string_lossy().into_owned();

    let record = Process::new(env!("CARGO_BIN_EXE_traffic-warehouse"))
        .args([
            "ingest",
            "--scenario",
            "ddos",
            "--windows",
            "8",
            "--record",
            &zip_arg,
        ])
        .output()
        .expect("binary spawns");
    assert!(record.status.success(), "ingest --record exited nonzero");
    let record_out = String::from_utf8_lossy(&record.stdout);
    assert!(record_out.contains("recorded 8 window(s)"), "{record_out}");
    assert!(zip.exists(), "recording was not written");

    let replay = Process::new(env!("CARGO_BIN_EXE_traffic-warehouse"))
        .args(["replay", &zip_arg])
        .output()
        .expect("binary spawns");
    assert!(replay.status.success(), "replay exited nonzero");
    let replay_out = String::from_utf8_lossy(&replay.stdout);
    assert!(replay_out.contains("replayed 8 window(s)"), "{replay_out}");

    // The replayed window statistics match the recorded ones line for line.
    let windows = |text: &str| -> Vec<String> {
        text.lines()
            .filter(|l| l.starts_with("window "))
            .map(str::to_string)
            .collect()
    };
    assert_eq!(windows(&record_out), windows(&replay_out));
    std::fs::remove_dir_all(&dir).ok();
}

/// The classroom acceptance flow: one scenario broadcast once to a full
/// class of 30 student sessions, live and from a recording.
#[test]
fn compiled_binary_serves_a_classroom() {
    let dir = std::env::temp_dir().join(format!("tw-cli-classroom-smoke-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");

    // Live: the ISSUE's acceptance command, shrunk to 4 windows for CI.
    let live = Process::new(env!("CARGO_BIN_EXE_traffic-warehouse"))
        .args([
            "classroom",
            "--scenario",
            "ddos",
            "--students",
            "30",
            "--windows",
            "4",
            "--nodes",
            "128",
        ])
        .output()
        .expect("binary spawns");
    assert!(live.status.success(), "classroom exited nonzero");
    let live_out = String::from_utf8_lossy(&live.stdout);
    assert!(live_out.contains("30 student(s)"), "{live_out}");
    assert_eq!(
        live_out.lines().filter(|l| l.contains("student ")).count(),
        30,
        "{live_out}"
    );
    assert!(
        live_out.contains("4 window(s) served once to 30 subscriber(s)"),
        "{live_out}"
    );

    // Replay: record once, then broadcast the file.
    let zip = dir.join("class.zip");
    let zip_arg = zip.to_string_lossy().into_owned();
    let record = Process::new(env!("CARGO_BIN_EXE_traffic-warehouse"))
        .args([
            "ingest",
            "--scenario",
            "ddos",
            "--windows",
            "4",
            "--nodes",
            "128",
            "--record",
            &zip_arg,
        ])
        .output()
        .expect("binary spawns");
    assert!(record.status.success(), "ingest --record exited nonzero");
    let replayed = Process::new(env!("CARGO_BIN_EXE_traffic-warehouse"))
        .args(["classroom", "--replay", &zip_arg, "--students", "6"])
        .output()
        .expect("binary spawns");
    assert!(
        replayed.status.success(),
        "classroom --replay exited nonzero"
    );
    let replay_out = String::from_utf8_lossy(&replayed.stdout);
    assert!(replay_out.contains("replayed from"), "{replay_out}");
    assert!(
        replay_out.contains("4 window(s) served once to 6 subscriber(s)"),
        "{replay_out}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// The campus acceptance flow: record a capture once, serve it on an
/// ephemeral loopback port, and point 30 `connect` students at it — every
/// student follows the stream to the close frame, and the server prints
/// per-student accounting.
#[test]
fn compiled_binary_serves_a_campus_over_tcp() {
    use std::io::{BufRead, BufReader, Read};

    let dir = std::env::temp_dir().join(format!("tw-cli-serve-smoke-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let zip = dir.join("campus.zip");
    let zip_arg = zip.to_string_lossy().into_owned();
    let record = Process::new(env!("CARGO_BIN_EXE_traffic-warehouse"))
        .args([
            "ingest",
            "--scenario",
            "ddos",
            "--windows",
            "4",
            "--nodes",
            "128",
            "--record",
            &zip_arg,
        ])
        .output()
        .expect("binary spawns");
    assert!(record.status.success(), "ingest --record exited nonzero");

    let students = 30;
    let mut server = Process::new(env!("CARGO_BIN_EXE_traffic-warehouse"))
        .args([
            "serve",
            "--listen",
            "127.0.0.1:0",
            "--replay",
            &zip_arg,
            "--students",
            &students.to_string(),
        ])
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("server spawns");
    // The listening line streams eagerly, before the serve blocks on the
    // roster gate; the ephemeral port rides on it.
    let mut server_stdout = BufReader::new(server.stdout.take().expect("stdout piped"));
    let mut banner = String::new();
    server_stdout
        .read_line(&mut banner)
        .expect("server prints its banner");
    assert!(banner.starts_with("listening on "), "{banner}");
    let addr = banner
        .strip_prefix("listening on ")
        .and_then(|rest| {
            rest.split(':').next().map(|host| {
                let port = rest
                    .split(':')
                    .nth(1)
                    .and_then(|p| p.split_whitespace().next())
                    .expect("port in banner");
                format!("{host}:{port}")
            })
        })
        .expect("address in banner");

    let clients: Vec<_> = (0..students)
        .map(|_| {
            Process::new(env!("CARGO_BIN_EXE_traffic-warehouse"))
                .args(["connect", &addr])
                .stdout(std::process::Stdio::piped())
                .spawn()
                .expect("client spawns")
        })
        .collect();
    for client in clients {
        let output = client.wait_with_output().expect("client runs");
        assert!(output.status.success(), "connect exited nonzero");
        let stdout = String::from_utf8_lossy(&output.stdout);
        assert!(stdout.contains("connected to"), "{stdout}");
        assert_eq!(
            stdout.lines().filter(|l| l.starts_with("window ")).count(),
            4,
            "{stdout}"
        );
        assert!(
            stdout.contains("server closed: 4 window(s) broadcast"),
            "{stdout}"
        );
    }

    let mut rest = String::new();
    server_stdout
        .read_to_string(&mut rest)
        .expect("server accounting");
    let status = server.wait().expect("server exits");
    assert!(status.success(), "serve exited nonzero");
    assert_eq!(
        rest.lines().filter(|l| l.contains("student ")).count(),
        students,
        "{rest}"
    );
    assert!(rest.contains("served 4 window(s)"), "{rest}");
    assert!(
        rest.contains(&format!("to {students} connection(s)")),
        "{rest}"
    );
    assert!(!rest.contains("WARNING"), "{rest}");
    std::fs::remove_dir_all(&dir).ok();
}

/// The observability acceptance flow: serve with a metrics file and a wire
/// stats cadence, point a `connect --stats` student at it, and check the
/// exported snapshot parses and conserves — every window the server encoded
/// is delivered, dropped, or missed for the peer.
#[test]
fn compiled_binary_exports_conserving_metrics_over_loopback() {
    use std::io::{BufRead, BufReader, Read};

    let dir = std::env::temp_dir().join(format!("tw-cli-metrics-smoke-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let metrics_path = dir.join("serve-metrics.json");

    let mut server = Process::new(env!("CARGO_BIN_EXE_traffic-warehouse"))
        .args([
            "serve",
            "--listen",
            "127.0.0.1:0",
            "--scenario",
            "ddos",
            "--nodes",
            "128",
            "--windows",
            "4",
            "--students",
            "1",
            "--stats-every",
            "2",
            "--metrics-json",
            &metrics_path.to_string_lossy(),
        ])
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("server spawns");
    let mut server_stdout = BufReader::new(server.stdout.take().expect("stdout piped"));
    let mut banner = String::new();
    server_stdout
        .read_line(&mut banner)
        .expect("server prints its banner");
    assert!(banner.starts_with("listening on "), "{banner}");
    let addr = banner
        .strip_prefix("listening on ")
        .and_then(|rest| rest.split_whitespace().next())
        .expect("address in banner")
        .trim_end_matches(':')
        .to_string();

    let client = Process::new(env!("CARGO_BIN_EXE_traffic-warehouse"))
        .args(["connect", &addr, "--stats"])
        .output()
        .expect("client runs");
    assert!(client.status.success(), "connect --stats exited nonzero");
    let client_out = String::from_utf8_lossy(&client.stdout);
    assert!(
        client_out.lines().any(|l| l.starts_with("stats: ")),
        "no wire stats arrived: {client_out}"
    );
    assert!(
        client_out.contains("serve.windows_encoded=4"),
        "final wire snapshot missing the encode count: {client_out}"
    );

    let mut rest = String::new();
    server_stdout
        .read_to_string(&mut rest)
        .expect("server accounting");
    let status = server.wait().expect("server exits");
    assert!(status.success(), "serve exited nonzero");
    assert!(rest.contains("metrics: "), "{rest}");

    // The exported snapshot parses and conserves: windows encoded equals
    // delivered + dropped + missed for the (only) peer.
    let text = std::fs::read_to_string(&metrics_path).expect("metrics file written");
    let value = tw_core::json::parse(&text).expect("metrics file parses");
    let snapshot = tw_core::metrics::MetricsSnapshot::from_json(&value).expect("snapshot decodes");
    let encoded = snapshot.counter("serve.windows_encoded");
    assert_eq!(encoded, 4, "{snapshot:?}");
    assert_eq!(
        snapshot.counter("serve.peer.0.delivered")
            + snapshot.counter("serve.peer.0.dropped")
            + snapshot.counter("serve.peer.0.missed"),
        encoded,
        "conservation must hold in the exported snapshot: {snapshot:?}"
    );
    assert_eq!(snapshot.counter("pipeline.windows"), encoded);
    assert_eq!(snapshot.counter("broadcast.windows"), encoded);
    std::fs::remove_dir_all(&dir).ok();
}

/// The `ingest --json` transcript is machine-readable: one object per line.
#[test]
fn compiled_binary_emits_jsonl_ingest_transcripts() {
    let output = Process::new(env!("CARGO_BIN_EXE_traffic-warehouse"))
        .args([
            "ingest",
            "--scenario",
            "scan",
            "--windows",
            "3",
            "--nodes",
            "128",
            "--json",
        ])
        .output()
        .expect("binary spawns");
    assert!(output.status.success(), "ingest --json exited nonzero");
    let stdout = String::from_utf8_lossy(&output.stdout);
    let lines: Vec<&str> = stdout.lines().filter(|l| !l.is_empty()).collect();
    assert_eq!(lines.len(), 3, "pure JSONL expected: {stdout}");
    for line in lines {
        let value = tw_core::json::parse(line).expect("line parses");
        let object = value.as_object().expect("line is an object");
        assert!(object.get("events").is_some(), "{line}");
        assert!(object.get("window").is_some(), "{line}");
    }
}

/// The out-of-order acceptance flow: a skewed DDoS stream whose horizon
/// covers the disorder bound ingests with zero late drops.
#[test]
fn compiled_binary_ingests_a_skewed_scenario_losslessly() {
    let output = Process::new(env!("CARGO_BIN_EXE_traffic-warehouse"))
        .args([
            "ingest",
            "--scenario",
            "ddos",
            "--skew-us",
            "5000",
            "--horizon-us",
            "20000",
            "--windows",
            "4",
            "--nodes",
            "256",
        ])
        .output()
        .expect("binary spawns");
    assert!(output.status.success(), "skewed ingest exited nonzero");
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        stdout.contains("reorder horizon 20000 us"),
        "horizon line missing: {stdout}"
    );
    assert!(
        stdout.contains(" 0 late"),
        "a covered horizon must lose nothing: {stdout}"
    );
    assert!(
        !stdout.contains(" 0 reordered,"),
        "a skewed stream should exercise the buffer: {stdout}"
    );
}

#[test]
fn compiled_binary_lists_scenarios() {
    let output = Process::new(env!("CARGO_BIN_EXE_traffic-warehouse"))
        .arg("scenarios")
        .output()
        .expect("binary spawns");
    assert!(output.status.success(), "scenarios exited nonzero");
    let stdout = String::from_utf8_lossy(&output.stdout);
    for name in ["background", "ddos", "scan", "flash-crowd", "p2p", "mixed"] {
        assert!(stdout.contains(name), "missing {name}: {stdout}");
    }
}

#[test]
fn compiled_binary_reports_errors_on_stderr() {
    let output = Process::new(env!("CARGO_BIN_EXE_traffic-warehouse"))
        .arg("no-such-command")
        .output()
        .expect("binary spawns");
    assert!(!output.status.success());
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("error"), "stderr was: {stderr}");
    assert!(stderr.contains("Commands"), "usage missing from: {stderr}");
}

#[test]
fn analyze_args_parse() {
    let args: Vec<String> = ["analyze", "--deny-warnings", "--rule", "no-panic-in-lib"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    assert_eq!(
        parse_args(&args).unwrap(),
        Command::Analyze {
            root: None,
            rule: Some("no-panic-in-lib".to_string()),
            json: None,
            deny_warnings: true,
            list_waivers: false,
        }
    );
    let bad: Vec<String> = ["analyze", "--rule"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    assert!(
        parse_args(&bad).is_err(),
        "--rule without a value must fail"
    );
    let bogus: Vec<String> = ["analyze", "--fast"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    assert!(
        parse_args(&bogus).is_err(),
        "unknown analyze flag must fail"
    );
}

#[test]
fn compiled_binary_analyze_is_clean_under_deny_warnings() {
    // The workspace's own source is the fixture: the analysis pass must pass
    // on it, or CI (which runs this same invocation) would be red.
    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let output = Process::new(env!("CARGO_BIN_EXE_traffic-warehouse"))
        .args(["analyze", "--root", root, "--deny-warnings"])
        .output()
        .expect("binary spawns");
    let stdout = String::from_utf8_lossy(&output.stdout);
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        output.status.success(),
        "analyze --deny-warnings failed\nstdout: {stdout}\nstderr: {stderr}"
    );
    assert!(stdout.contains("0 unwaived"), "summary missing: {stdout}");
    for rule in [
        "no-panic-in-lib",
        "hot-path-no-alloc",
        "metric-name-registry",
        "frame-kind-coverage",
        "lock-across-channel",
    ] {
        assert!(stdout.contains(rule), "rule {rule} missing from: {stdout}");
    }
}

#[test]
fn compiled_binary_keeps_usage_out_of_runtime_errors() {
    // Parse errors get the usage text (checked above); runtime failures must
    // not bury the actual error under it.
    let output = Process::new(env!("CARGO_BIN_EXE_traffic-warehouse"))
        .args(["validate", "/no/such/module.json"])
        .output()
        .expect("binary spawns");
    assert!(!output.status.success());
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("error"), "stderr was: {stderr}");
    assert!(
        !stderr.contains("Commands"),
        "usage text leaked into a runtime error: {stderr}"
    );
}
