//! # tw-cli
//!
//! The `traffic-warehouse` command-line tool: the headless delivery vehicle
//! for the game. Educators use it to validate and preview module files and to
//! export the built-in library; students (or scripts) can play a bundle from
//! the terminal.
//!
//! ```text
//! traffic-warehouse validate <module.json>
//! traffic-warehouse render   <module.json> [--three-d] [--colors] [--out out.ppm]
//! traffic-warehouse play     <bundle.zip>  [--seed N]
//! traffic-warehouse export-library <directory>
//! traffic-warehouse obfuscate <module.json>
//! traffic-warehouse curriculum
//! traffic-warehouse figures
//! ```

use std::fmt::Write as _;
use tw_core::game::{GameSession, ViewState, WarehouseScene};
use tw_core::module::{
    default_curriculum, from_json_maybe_obfuscated, to_obfuscated_json, validate,
};
use tw_core::patterns::{patterns_for_figure, Figure};
use tw_core::prelude::*;

/// A parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Validate a module JSON file.
    Validate { path: String },
    /// Render a module to ASCII (and optionally a PPM file).
    Render {
        path: String,
        three_d: bool,
        colors: bool,
        out: Option<String>,
    },
    /// Auto-play a bundle and print the transcript.
    Play { path: String, seed: u64 },
    /// Write the initial library's ZIP bundles into a directory.
    ExportLibrary { directory: String },
    /// Re-emit a module with its correct answer obfuscated.
    Obfuscate { path: String },
    /// Run a named ingest scenario and print per-window statistics,
    /// optionally recording the window stream to a replayable ZIP.
    Ingest {
        scenario: String,
        windows: usize,
        nodes: u32,
        seed: u64,
        shards: usize,
        route_threads: usize,
        batch: usize,
        window_us: u64,
        horizon_us: u64,
        skew_us: u64,
        record: Option<String>,
        keyframe_every: u64,
        json: bool,
        metrics_json: Option<String>,
        stats_every: u64,
    },
    /// Replay a recorded window stream into the live warehouse view.
    Replay { path: String, speed: u64 },
    /// Serve one scenario (live or replayed) to remote `connect` clients
    /// over TCP, framing the v2 window codec.
    Serve(ServeArgs),
    /// Join a `serve` session and follow its window stream.
    Connect {
        addr: String,
        windows: Option<usize>,
        stats: bool,
    },
    /// Serve one scenario (live or replayed) to a classroom of student
    /// sessions over the broadcast hub.
    Classroom {
        scenario: Option<String>,
        replay: Option<String>,
        students: usize,
        windows: Option<usize>,
        nodes: u32,
        seed: u64,
        shards: usize,
        route_threads: usize,
        window_us: u64,
        horizon_us: u64,
        skew_us: u64,
        speed: u64,
        late: Option<usize>,
        metrics_json: Option<String>,
        stats_every: u64,
    },
    /// Run the workspace static-analysis pass (tw-analyze).
    Analyze {
        root: Option<String>,
        rule: Option<String>,
        json: Option<String>,
        deny_warnings: bool,
        list_waivers: bool,
    },
    /// List the ingest scenario catalog.
    Scenarios,
    /// Print the default curriculum with prerequisites.
    Curriculum,
    /// Print the figure gallery.
    Figures,
    /// Print usage.
    Help,
}

/// An error produced while parsing arguments or running a command.
#[derive(Debug, Clone, PartialEq)]
pub struct CliError(pub String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

/// The usage text.
pub const USAGE: &str = "traffic-warehouse <command>

Commands:
  validate <module.json>                      check a learning module against the authoring guidance
  render <module.json> [--three-d] [--colors] [--out file.ppm]
                                              preview a module (ASCII to stdout, optional PPM)
  play <bundle.zip> [--seed N]                auto-play a module bundle and print the transcript
  export-library <directory>                  write the built-in module bundles as .zip files
  obfuscate <module.json>                     re-emit the module with its answer obfuscated
  ingest --scenario <name> [--windows N] [--nodes N] [--seed N] [--shards N] [--route-threads N] [--batch N] [--window-us N] [--skew-us N] [--horizon-us N] [--record file.zip] [--keyframe-every N] [--json] [--metrics-json file.json] [--stats-every N]
                                              stream a scenario through the sharded ingest
                                              pipeline and print per-window stats
                                              (scenarios: background, ddos, scan,
                                              flash-crowd, p2p, mixed); --skew-us drifts
                                              the per-source clocks (out-of-order stream)
                                              and --horizon-us sets the watermark
                                              reordering horizon that absorbs it;
                                              --route-threads caps the routing
                                              workers per batch (0 = one per
                                              hardware thread);
                                              --record also captures the window stream
                                              as a replayable ZIP (--keyframe-every N
                                              stores every N-th window in full and the
                                              rest as sparse v3 deltas — smaller
                                              archives for steady traffic); --json
                                              emits one
                                              tw-json object per window instead of the
                                              human transcript; --metrics-json writes
                                              the final pipeline metrics snapshot,
                                              --stats-every N prints a one-line stats
                                              summary every N windows
  replay <file.zip> [--speed N]               re-emit a recorded window stream into the live
                                              warehouse view without regenerating any events,
                                              streamed incrementally from disk (--speed N
                                              paces playback at N x real time; default is as
                                              fast as possible)
  classroom --scenario <name> [--students N] [--windows N] [--nodes N] [--seed N] [--shards N]
            [--route-threads N] [--window-us N] [--skew-us N] [--horizon-us N] [--replay file.zip] [--speed N] [--late N]
            [--metrics-json file.json] [--stats-every N]
                                              fan one window stream (live scenario, or a
                                              recording with --replay) out to N student
                                              sessions over the broadcast hub and print
                                              per-student summaries; --late students join
                                              mid-scenario and catch up from the ring;
                                              --metrics-json / --stats-every export the
                                              pipeline+broadcast metrics
  serve --listen <addr> --scenario <name> [--students N] [--windows N] [--nodes N] [--seed N]
        [--shards N] [--route-threads N] [--window-us N] [--skew-us N] [--horizon-us N] [--replay file.zip] [--speed N]
        [--keyframe-every N] [--metrics-json file.json] [--stats-every N]
                                              serve one window stream (live scenario, or a
                                              recording with --replay) to remote connect
                                              clients as length-prefixed, CRC-checked
                                              frames carrying the v2 window codec;
                                              --students holds the first window until that
                                              many clients have joined, and a slow reader
                                              drops frames (with accounting) instead of
                                              stalling the class; port 0 picks a free port
                                              (printed on the eager `listening on` line);
                                              --keyframe-every N serves every N-th
                                              window in full and the rest as sparse v3
                                              delta frames (late joiners anchor on a
                                              key frame from the catch-up ring);
                                              --metrics-json writes the final snapshot,
                                              --stats-every N also streams Stats frames
                                              to every client every N windows
                                              (readable with connect --stats)
  connect <addr> [--windows N] [--stats]      join a serve session: follow the remote
                                              window stream into a live warehouse view and
                                              print the server's close accounting;
                                              --stats prints the server's live metrics
                                              snapshots as they arrive (the server must
                                              serve with --stats-every)
  analyze [--root <dir>] [--rule <name>] [--json <file.json>] [--deny-warnings] [--list-waivers]
                                              run the workspace static-analysis pass
                                              (lexer + rule engine over the crates'
                                              own source); --rule runs one rule,
                                              --json also writes the machine-readable
                                              report, --deny-warnings fails when any
                                              unwaived finding remains, and
                                              --list-waivers prints every active
                                              inline waiver with its justification
  scenarios                                   list the ingest scenario catalog
  curriculum                                  print the default hierarchical curriculum
  figures                                     print every figure's traffic pattern
  help                                        show this message
";

/// Parse command-line arguments (excluding the program name).
pub fn parse_args(args: &[String]) -> Result<Command, CliError> {
    let mut iter = args.iter();
    let command = iter.next().map(String::as_str).unwrap_or("help");
    match command {
        "validate" => {
            let path = iter
                .next()
                .ok_or(CliError("validate needs a module path".to_string()))?;
            Ok(Command::Validate { path: path.clone() })
        }
        "render" => {
            let path = iter
                .next()
                .ok_or(CliError("render needs a module path".to_string()))?
                .clone();
            let mut three_d = false;
            let mut colors = false;
            let mut out = None;
            while let Some(flag) = iter.next() {
                match flag.as_str() {
                    "--three-d" | "--3d" => three_d = true,
                    "--colors" => colors = true,
                    "--out" => {
                        out = Some(
                            iter.next()
                                .ok_or(CliError("--out needs a file path".to_string()))?
                                .clone(),
                        )
                    }
                    other => return Err(CliError(format!("unknown flag {other:?}"))),
                }
            }
            Ok(Command::Render {
                path,
                three_d,
                colors,
                out,
            })
        }
        "play" => {
            let path = iter
                .next()
                .ok_or(CliError("play needs a bundle path".to_string()))?
                .clone();
            let mut seed = 0u64;
            while let Some(flag) = iter.next() {
                match flag.as_str() {
                    "--seed" => {
                        seed = iter
                            .next()
                            .ok_or(CliError("--seed needs a value".to_string()))?
                            .parse()
                            .map_err(|_| CliError("--seed must be an integer".to_string()))?
                    }
                    other => return Err(CliError(format!("unknown flag {other:?}"))),
                }
            }
            Ok(Command::Play { path, seed })
        }
        "export-library" => {
            let directory = iter
                .next()
                .ok_or(CliError("export-library needs a directory".to_string()))?;
            Ok(Command::ExportLibrary {
                directory: directory.clone(),
            })
        }
        "obfuscate" => {
            let path = iter
                .next()
                .ok_or(CliError("obfuscate needs a module path".to_string()))?;
            Ok(Command::Obfuscate { path: path.clone() })
        }
        "ingest" => {
            let mut scenario = None;
            let mut windows = 4usize;
            let mut nodes = 1024u32;
            let mut seed = 7u64;
            let mut shards = 0usize;
            let mut route_threads = 0usize;
            let mut batch = 8192usize;
            let mut window_us = 100_000u64;
            let mut horizon_us = 0u64;
            let mut skew_us = 0u64;
            let mut record = None;
            let mut keyframe_every = 0u64;
            let mut json = false;
            let mut metrics_json = None;
            let mut stats_every = 0u64;
            fn value<'a, T: std::str::FromStr>(
                iter: &mut std::slice::Iter<'a, String>,
                flag: &str,
            ) -> Result<T, CliError> {
                iter.next()
                    .ok_or(CliError(format!("{flag} needs a value")))?
                    .parse()
                    .map_err(|_| CliError(format!("{flag} value is not valid")))
            }
            while let Some(flag) = iter.next() {
                match flag.as_str() {
                    "--scenario" => {
                        scenario = Some(
                            iter.next()
                                .ok_or(CliError("--scenario needs a name".to_string()))?
                                .clone(),
                        )
                    }
                    "--windows" => windows = value(&mut iter, "--windows")?,
                    "--nodes" => nodes = value(&mut iter, "--nodes")?,
                    "--seed" => seed = value(&mut iter, "--seed")?,
                    "--shards" => shards = value(&mut iter, "--shards")?,
                    "--route-threads" => route_threads = value(&mut iter, "--route-threads")?,
                    "--batch" => batch = value(&mut iter, "--batch")?,
                    "--window-us" => window_us = value(&mut iter, "--window-us")?,
                    "--horizon-us" => horizon_us = value(&mut iter, "--horizon-us")?,
                    "--skew-us" => skew_us = value(&mut iter, "--skew-us")?,
                    "--record" => {
                        record = Some(
                            iter.next()
                                .ok_or(CliError("--record needs a file path".to_string()))?
                                .clone(),
                        )
                    }
                    "--keyframe-every" => keyframe_every = value(&mut iter, "--keyframe-every")?,
                    "--json" => json = true,
                    "--metrics-json" => {
                        metrics_json = Some(
                            iter.next()
                                .ok_or(CliError("--metrics-json needs a file path".to_string()))?
                                .clone(),
                        )
                    }
                    "--stats-every" => stats_every = value(&mut iter, "--stats-every")?,
                    other => return Err(CliError(format!("unknown flag {other:?}"))),
                }
            }
            let scenario =
                scenario.ok_or(CliError("ingest needs --scenario <name>".to_string()))?;
            if windows == 0 {
                return Err(CliError("--windows must be at least 1".to_string()));
            }
            if keyframe_every > 0 && record.is_none() {
                return Err(CliError(
                    "--keyframe-every shapes the recorded archive; it needs --record".to_string(),
                ));
            }
            Ok(Command::Ingest {
                scenario,
                windows,
                nodes,
                seed,
                shards,
                route_threads,
                batch,
                window_us,
                horizon_us,
                skew_us,
                record,
                keyframe_every,
                json,
                metrics_json,
                stats_every,
            })
        }
        "replay" => {
            let path = iter
                .next()
                .ok_or(CliError("replay needs a recording path".to_string()))?
                .clone();
            let mut speed = 0u64;
            while let Some(flag) = iter.next() {
                match flag.as_str() {
                    "--speed" => {
                        speed = iter
                            .next()
                            .ok_or(CliError("--speed needs a value".to_string()))?
                            .parse()
                            .map_err(|_| CliError("--speed must be an integer".to_string()))?;
                        if speed == 0 {
                            return Err(CliError("--speed must be at least 1".to_string()));
                        }
                    }
                    other => return Err(CliError(format!("unknown flag {other:?}"))),
                }
            }
            Ok(Command::Replay { path, speed })
        }
        "serve" => {
            let mut listen = None;
            let mut scenario = None;
            let mut replay = None;
            let mut students = 0usize;
            let mut windows = None;
            let mut nodes = 256u32;
            let mut seed = 7u64;
            let mut shards = 0usize;
            let mut route_threads = 0usize;
            let mut window_us = 100_000u64;
            let mut horizon_us = 0u64;
            let mut skew_us = 0u64;
            let mut speed = 0u64;
            let mut metrics_json = None;
            let mut stats_every = 0u64;
            let mut keyframe_every = 0u64;
            fn value<T: std::str::FromStr>(
                iter: &mut std::slice::Iter<'_, String>,
                flag: &str,
            ) -> Result<T, CliError> {
                iter.next()
                    .ok_or(CliError(format!("{flag} needs a value")))?
                    .parse()
                    .map_err(|_| CliError(format!("{flag} value is not valid")))
            }
            while let Some(flag) = iter.next() {
                match flag.as_str() {
                    "--listen" => {
                        listen = Some(
                            iter.next()
                                .ok_or(CliError("--listen needs an address".to_string()))?
                                .clone(),
                        )
                    }
                    "--route-threads" => route_threads = value(&mut iter, "--route-threads")?,
                    "--scenario" => {
                        scenario = Some(
                            iter.next()
                                .ok_or(CliError("--scenario needs a name".to_string()))?
                                .clone(),
                        )
                    }
                    "--replay" => {
                        replay = Some(
                            iter.next()
                                .ok_or(CliError("--replay needs a file path".to_string()))?
                                .clone(),
                        )
                    }
                    "--students" => students = value(&mut iter, "--students")?,
                    "--windows" => windows = Some(value(&mut iter, "--windows")?),
                    "--nodes" => nodes = value(&mut iter, "--nodes")?,
                    "--seed" => seed = value(&mut iter, "--seed")?,
                    "--shards" => shards = value(&mut iter, "--shards")?,
                    "--window-us" => window_us = value(&mut iter, "--window-us")?,
                    "--horizon-us" => horizon_us = value(&mut iter, "--horizon-us")?,
                    "--skew-us" => skew_us = value(&mut iter, "--skew-us")?,
                    "--speed" => {
                        speed = value(&mut iter, "--speed")?;
                        if speed == 0 {
                            return Err(CliError("--speed must be at least 1".to_string()));
                        }
                    }
                    "--keyframe-every" => keyframe_every = value(&mut iter, "--keyframe-every")?,
                    "--metrics-json" => {
                        metrics_json = Some(
                            iter.next()
                                .ok_or(CliError("--metrics-json needs a file path".to_string()))?
                                .clone(),
                        )
                    }
                    "--stats-every" => stats_every = value(&mut iter, "--stats-every")?,
                    other => return Err(CliError(format!("unknown flag {other:?}"))),
                }
            }
            let listen = listen.ok_or(CliError("serve needs --listen <addr>".to_string()))?;
            if scenario.is_none() && replay.is_none() {
                return Err(CliError(
                    "serve needs --scenario <name> or --replay <file.zip>".to_string(),
                ));
            }
            if scenario.is_some() && replay.is_some() {
                return Err(CliError(
                    "--scenario and --replay are mutually exclusive (a recording \
                     carries its own scenario)"
                        .to_string(),
                ));
            }
            if replay.is_some() && (horizon_us > 0 || skew_us > 0) {
                return Err(CliError(
                    "--skew-us/--horizon-us shape live ingestion; a recording was \
                     already windowed when it was captured"
                        .to_string(),
                ));
            }
            if windows == Some(0) {
                return Err(CliError("--windows must be at least 1".to_string()));
            }
            Ok(Command::Serve(ServeArgs {
                listen,
                scenario,
                replay,
                students,
                windows,
                nodes,
                seed,
                shards,
                route_threads,
                window_us,
                horizon_us,
                skew_us,
                speed,
                metrics_json,
                stats_every,
                keyframe_every,
            }))
        }
        "connect" => {
            let addr = iter
                .next()
                .ok_or(CliError("connect needs a server address".to_string()))?
                .clone();
            let mut windows = None;
            let mut stats = false;
            while let Some(flag) = iter.next() {
                match flag.as_str() {
                    "--windows" => {
                        let n: usize = iter
                            .next()
                            .ok_or(CliError("--windows needs a value".to_string()))?
                            .parse()
                            .map_err(|_| CliError("--windows value is not valid".to_string()))?;
                        if n == 0 {
                            return Err(CliError("--windows must be at least 1".to_string()));
                        }
                        windows = Some(n);
                    }
                    "--stats" => stats = true,
                    other => return Err(CliError(format!("unknown flag {other:?}"))),
                }
            }
            Ok(Command::Connect {
                addr,
                windows,
                stats,
            })
        }
        "classroom" => {
            let mut scenario = None;
            let mut replay = None;
            let mut students = 8usize;
            let mut windows = None;
            let mut nodes = 256u32;
            let mut seed = 7u64;
            let mut shards = 0usize;
            let mut route_threads = 0usize;
            let mut window_us = 100_000u64;
            let mut horizon_us = 0u64;
            let mut skew_us = 0u64;
            let mut speed = 0u64;
            let mut late = None;
            let mut metrics_json = None;
            let mut stats_every = 0u64;
            fn value<T: std::str::FromStr>(
                iter: &mut std::slice::Iter<'_, String>,
                flag: &str,
            ) -> Result<T, CliError> {
                iter.next()
                    .ok_or(CliError(format!("{flag} needs a value")))?
                    .parse()
                    .map_err(|_| CliError(format!("{flag} value is not valid")))
            }
            while let Some(flag) = iter.next() {
                match flag.as_str() {
                    "--scenario" => {
                        scenario = Some(
                            iter.next()
                                .ok_or(CliError("--scenario needs a name".to_string()))?
                                .clone(),
                        )
                    }
                    "--replay" => {
                        replay = Some(
                            iter.next()
                                .ok_or(CliError("--replay needs a file path".to_string()))?
                                .clone(),
                        )
                    }
                    "--students" => students = value(&mut iter, "--students")?,
                    "--windows" => windows = Some(value(&mut iter, "--windows")?),
                    "--nodes" => nodes = value(&mut iter, "--nodes")?,
                    "--seed" => seed = value(&mut iter, "--seed")?,
                    "--shards" => shards = value(&mut iter, "--shards")?,
                    "--window-us" => window_us = value(&mut iter, "--window-us")?,
                    "--horizon-us" => horizon_us = value(&mut iter, "--horizon-us")?,
                    "--skew-us" => skew_us = value(&mut iter, "--skew-us")?,
                    "--speed" => {
                        speed = value(&mut iter, "--speed")?;
                        if speed == 0 {
                            return Err(CliError("--speed must be at least 1".to_string()));
                        }
                    }
                    "--late" => late = Some(value(&mut iter, "--late")?),
                    "--route-threads" => route_threads = value(&mut iter, "--route-threads")?,
                    "--metrics-json" => {
                        metrics_json = Some(
                            iter.next()
                                .ok_or(CliError("--metrics-json needs a file path".to_string()))?
                                .clone(),
                        )
                    }
                    "--stats-every" => stats_every = value(&mut iter, "--stats-every")?,
                    other => return Err(CliError(format!("unknown flag {other:?}"))),
                }
            }
            if scenario.is_none() && replay.is_none() {
                return Err(CliError(
                    "classroom needs --scenario <name> or --replay <file.zip>".to_string(),
                ));
            }
            if scenario.is_some() && replay.is_some() {
                return Err(CliError(
                    "--scenario and --replay are mutually exclusive (a recording \
                     carries its own scenario)"
                        .to_string(),
                ));
            }
            if replay.is_some() && (horizon_us > 0 || skew_us > 0) {
                return Err(CliError(
                    "--skew-us/--horizon-us shape live ingestion; a recording was \
                     already windowed when it was captured"
                        .to_string(),
                ));
            }
            if students == 0 {
                return Err(CliError("--students must be at least 1".to_string()));
            }
            if windows == Some(0) {
                return Err(CliError("--windows must be at least 1".to_string()));
            }
            Ok(Command::Classroom {
                scenario,
                replay,
                students,
                windows,
                nodes,
                seed,
                shards,
                route_threads,
                window_us,
                horizon_us,
                skew_us,
                speed,
                late,
                metrics_json,
                stats_every,
            })
        }
        "analyze" => {
            let mut root = None;
            let mut rule = None;
            let mut json = None;
            let mut deny_warnings = false;
            let mut list_waivers = false;
            while let Some(flag) = iter.next() {
                match flag.as_str() {
                    "--root" => {
                        root = Some(
                            iter.next()
                                .ok_or(CliError("--root needs a directory".to_string()))?
                                .clone(),
                        );
                    }
                    "--rule" => {
                        rule = Some(
                            iter.next()
                                .ok_or(CliError("--rule needs a rule name".to_string()))?
                                .clone(),
                        );
                    }
                    "--json" => {
                        json = Some(
                            iter.next()
                                .ok_or(CliError("--json needs a file path".to_string()))?
                                .clone(),
                        );
                    }
                    "--deny-warnings" => deny_warnings = true,
                    "--list-waivers" => list_waivers = true,
                    other => return Err(CliError(format!("unknown flag {other:?}"))),
                }
            }
            Ok(Command::Analyze {
                root,
                rule,
                json,
                deny_warnings,
                list_waivers,
            })
        }
        "scenarios" => Ok(Command::Scenarios),
        "curriculum" => Ok(Command::Curriculum),
        "figures" => Ok(Command::Figures),
        "help" | "--help" | "-h" => Ok(Command::Help),
        other => Err(CliError(format!(
            "unknown command {other:?}; run `traffic-warehouse help`"
        ))),
    }
}

/// Run a command, returning the text to print.
pub fn run(command: &Command) -> Result<String, CliError> {
    match command {
        Command::Help => Ok(USAGE.to_string()),
        Command::Validate { path } => {
            let text =
                std::fs::read_to_string(path).map_err(|e| CliError(format!("{path}: {e}")))?;
            let module = from_json_maybe_obfuscated(&text).map_err(|e| CliError(e.to_string()))?;
            Ok(render_validation(&module))
        }
        Command::Render {
            path,
            three_d,
            colors,
            out,
        } => {
            let text =
                std::fs::read_to_string(path).map_err(|e| CliError(format!("{path}: {e}")))?;
            let module = from_json_maybe_obfuscated(&text).map_err(|e| CliError(e.to_string()))?;
            let (ascii, ppm) = render_module(&module, *three_d, *colors);
            if let Some(out_path) = out {
                std::fs::write(out_path, ppm).map_err(|e| CliError(format!("{out_path}: {e}")))?;
            }
            Ok(ascii)
        }
        Command::Play { path, seed } => {
            let bytes = std::fs::read(path).map_err(|e| CliError(format!("{path}: {e}")))?;
            let bundle = tw_core::load_bundle(path, &bytes).map_err(|e| CliError(e.to_string()))?;
            play_bundle(bundle, *seed)
        }
        Command::ExportLibrary { directory } => {
            std::fs::create_dir_all(directory)
                .map_err(|e| CliError(format!("{directory}: {e}")))?;
            let mut out = String::new();
            for (name, bytes) in tw_core::initial_library_zips() {
                let slug: String = name
                    .chars()
                    .map(|c| {
                        if c.is_ascii_alphanumeric() {
                            c.to_ascii_lowercase()
                        } else {
                            '_'
                        }
                    })
                    .collect();
                let path = format!("{directory}/{slug}.zip");
                std::fs::write(&path, &bytes).map_err(|e| CliError(format!("{path}: {e}")))?;
                let _ = writeln!(out, "wrote {path} ({} bytes)", bytes.len());
            }
            Ok(out)
        }
        Command::Obfuscate { path } => {
            let text =
                std::fs::read_to_string(path).map_err(|e| CliError(format!("{path}: {e}")))?;
            let module = from_json_maybe_obfuscated(&text).map_err(|e| CliError(e.to_string()))?;
            to_obfuscated_json(&module).map_err(|e| CliError(e.to_string()))
        }
        Command::Ingest {
            scenario,
            windows,
            nodes,
            seed,
            shards,
            route_threads,
            batch,
            window_us,
            horizon_us,
            skew_us,
            record,
            keyframe_every,
            json,
            metrics_json,
            stats_every,
        } => run_ingest(&IngestArgs {
            scenario: scenario.clone(),
            windows: *windows,
            nodes: *nodes,
            seed: *seed,
            shards: *shards,
            route_threads: *route_threads,
            batch: *batch,
            window_us: *window_us,
            horizon_us: *horizon_us,
            skew_us: *skew_us,
            record: record.clone(),
            keyframe_every: *keyframe_every,
            json: *json,
            metrics_json: metrics_json.clone(),
            stats_every: *stats_every,
        }),
        Command::Replay { path, speed } => run_replay(path, *speed),
        Command::Serve(args) => run_serve(args),
        Command::Connect {
            addr,
            windows,
            stats,
        } => run_connect(addr, *windows, *stats),
        Command::Classroom {
            scenario,
            replay,
            students,
            windows,
            nodes,
            seed,
            shards,
            route_threads,
            window_us,
            horizon_us,
            skew_us,
            speed,
            late,
            metrics_json,
            stats_every,
        } => run_classroom(&ClassroomArgs {
            scenario: scenario.clone(),
            replay: replay.clone(),
            students: *students,
            windows: *windows,
            nodes: *nodes,
            seed: *seed,
            shards: *shards,
            route_threads: *route_threads,
            window_us: *window_us,
            horizon_us: *horizon_us,
            skew_us: *skew_us,
            speed: *speed,
            late: *late,
            metrics_json: metrics_json.clone(),
            stats_every: *stats_every,
        }),
        Command::Analyze {
            root,
            rule,
            json,
            deny_warnings,
            list_waivers,
        } => run_analyze(
            root.as_deref(),
            rule.clone(),
            json.as_deref(),
            *deny_warnings,
            *list_waivers,
        ),
        Command::Scenarios => Ok(render_scenarios()),
        Command::Curriculum => Ok(render_curriculum()),
        Command::Figures => Ok(render_figures()),
    }
}

/// Run the workspace static-analysis pass and render its report.
///
/// Without `--root` the workspace is found by walking up from the current
/// directory to the nearest `analyze.toml`. With `--deny-warnings` an
/// unwaived finding is an error (non-zero exit), matching the CI gate.
fn run_analyze(
    root: Option<&str>,
    rule: Option<String>,
    json: Option<&str>,
    deny_warnings: bool,
    list_waivers: bool,
) -> Result<String, CliError> {
    let root = match root {
        Some(dir) => std::path::PathBuf::from(dir),
        None => tw_analyze::find_workspace_root(std::path::Path::new("."))
            .map_err(|e| CliError(e.to_string()))?,
    };
    let options = tw_analyze::Options { rule };
    let report = tw_analyze::analyze_with(&root, &options).map_err(|e| CliError(e.to_string()))?;
    if list_waivers {
        return Ok(report.render_waivers());
    }
    if let Some(path) = json {
        std::fs::write(path, report.render_json())
            .map_err(|e| CliError(format!("writing {path}: {e}")))?;
    }
    let text = report.render_text();
    if deny_warnings && report.unwaived_count() > 0 {
        return Err(CliError(format!(
            "{text}analyze: --deny-warnings with {} unwaived finding(s)",
            report.unwaived_count()
        )));
    }
    Ok(text)
}

/// Arguments for [`run_ingest`] (one scenario streamed through the pipeline).
#[derive(Debug, Clone)]
pub struct IngestArgs {
    /// Scenario name.
    pub scenario: String,
    /// Windows to emit.
    pub windows: usize,
    /// Address-space size.
    pub nodes: u32,
    /// Scenario seed.
    pub seed: u64,
    /// Shard count (0 = auto).
    pub shards: usize,
    /// Routing worker threads per batch (0 = one per hardware thread).
    pub route_threads: usize,
    /// Batch size (the backpressure bound).
    pub batch: usize,
    /// Tumbling-window duration in simulated microseconds.
    pub window_us: u64,
    /// Watermark reordering horizon in simulated microseconds (0 = strict).
    pub horizon_us: u64,
    /// Per-source clock skew in simulated microseconds (0 = sorted stream).
    pub skew_us: u64,
    /// Record the window stream to a replayable ZIP at this path.
    pub record: Option<String>,
    /// Key-frame cadence for the recorded archive: every K-th window is a
    /// self-contained key frame, the rest sparse v3 deltas against the
    /// previous window (0 = every window full, a version-1 archive).
    pub keyframe_every: u64,
    /// Emit one tw-json object per window (machine-readable transcript)
    /// instead of the human per-window lines, banner and totals.
    pub json: bool,
    /// Write the final pipeline metrics snapshot (pretty tw-json) here.
    pub metrics_json: Option<String>,
    /// Print a one-line metrics summary every N windows (0 = never;
    /// suppressed by `json`, which keeps the transcript pure JSONL).
    pub stats_every: u64,
}

impl IngestArgs {
    /// Defaults matching the CLI parser, for tests and embedding callers.
    pub fn new(scenario: &str) -> Self {
        IngestArgs {
            scenario: scenario.to_string(),
            windows: 4,
            nodes: 1024,
            seed: 7,
            shards: 0,
            route_threads: 0,
            batch: 8192,
            window_us: 100_000,
            horizon_us: 0,
            skew_us: 0,
            record: None,
            keyframe_every: 0,
            json: false,
            metrics_json: None,
            stats_every: 0,
        }
    }
}

/// A `u64` as a tw-json number: exact while it fits the wire integer
/// (`i64`), a float beyond (same lossy convention as `MetricsSnapshot`).
fn json_u64(value: u64) -> tw_core::json::Value {
    use tw_core::json::{Number, Value};
    i64::try_from(value).map_or_else(
        |_| Value::Number(Number::Float(value as f64)),
        |v| Value::Number(Number::Int(v)),
    )
}

/// One window's [`IngestStats`] as a compact tw-json object (one line of
/// `ingest --json` output).
///
/// [`IngestStats`]: tw_core::ingest::IngestStats
fn ingest_stats_json(stats: &tw_core::ingest::IngestStats) -> String {
    use tw_core::json::{Map, Value};
    let mut object = Map::new();
    object.insert("window", json_u64(stats.window_index));
    object.insert("events", json_u64(stats.events));
    object.insert("packets", json_u64(stats.packets));
    object.insert("nnz", json_u64(stats.nnz as u64));
    object.insert("dropped_late", json_u64(stats.dropped_late));
    object.insert("reordered", json_u64(stats.reordered));
    object.insert("elapsed_us", json_u64(stats.elapsed.as_micros() as u64));
    tw_core::json::to_string(&Value::Object(object))
}

/// Write a final metrics snapshot where `--metrics-json` asked for it.
fn write_metrics_json(
    path: &str,
    snapshot: &tw_core::metrics::MetricsSnapshot,
) -> Result<(), CliError> {
    let mut text = tw_core::json::to_string_pretty(&snapshot.to_json());
    text.push('\n');
    std::fs::write(path, text).map_err(|e| CliError(format!("{path}: {e}")))
}

/// Stream a named scenario through the sharded ingest pipeline and render
/// per-window statistics; with `record`, also capture the window stream as
/// a replayable ZIP at that path. A non-zero `skew_us` drifts the source
/// clocks (an out-of-order stream) and `horizon_us` sets the watermark
/// reordering horizon that absorbs the disorder.
pub fn run_ingest(args: &IngestArgs) -> Result<String, CliError> {
    use tw_core::ingest::{
        ArchiveRecorder, Pipeline, PipelineConfig, RecordingMeta, Scenario, MAX_DIMENSION,
    };
    use tw_core::metrics::MetricsRegistry;

    let scenario_name = args.scenario.as_str();
    let scenario = Scenario::by_name(scenario_name).ok_or_else(|| {
        let known: Vec<&str> = Scenario::all().iter().map(|s| s.name()).collect();
        CliError(format!(
            "unknown scenario {scenario_name:?}; known scenarios: {}",
            known.join(", ")
        ))
    })?;
    if args.nodes < 20 {
        return Err(CliError("--nodes must be at least 20".to_string()));
    }
    if args.record.is_some() && args.nodes as usize > MAX_DIMENSION {
        return Err(CliError(format!(
            "--record supports at most {MAX_DIMENSION} nodes (the window codec's dimension limit)"
        )));
    }
    if args.batch == 0 {
        return Err(CliError("--batch must be at least 1".to_string()));
    }
    if args.window_us == 0 {
        return Err(CliError("--window-us must be at least 1".to_string()));
    }
    let config = PipelineConfig {
        window_us: args.window_us,
        batch_size: args.batch,
        shard_count: args.shards,
        reorder_horizon_us: args.horizon_us,
        route_threads: args.route_threads,
        ..PipelineConfig::default()
    };
    let (source, max_disorder_us) = scenario.skewed_source(args.nodes, args.seed, args.skew_us);
    // One registry spans the whole run when any metrics output was asked
    // for; the pipeline records its stage timings and counters into it.
    let registry = (args.metrics_json.is_some() || args.stats_every > 0).then(MetricsRegistry::new);
    let mut pipeline = Pipeline::new(source, config);
    if let Some(registry) = &registry {
        pipeline.instrument(registry);
    }
    let mut out = String::new();
    if !args.json {
        let _ = writeln!(
            out,
            "scenario {scenario} ({}): {} nodes, {} us windows, {} shard(s), batch {}, seed {}",
            scenario.describe(),
            args.nodes,
            args.window_us,
            pipeline.shard_count(),
            args.batch,
            args.seed,
        );
        if args.skew_us > 0 || args.horizon_us > 0 {
            let _ = writeln!(
                out,
                "out-of-order: clock skew up to {} us (max disorder {} us), reorder horizon {} us{}",
                args.skew_us,
                max_disorder_us,
                args.horizon_us,
                if max_disorder_us > args.horizon_us {
                    " [WARNING: horizon below the disorder bound; late drops expected]"
                } else {
                    ""
                },
            );
        }
    }
    let mut recorder = args.record.as_ref().map(|_| {
        ArchiveRecorder::new(RecordingMeta {
            scenario: scenario.name().to_string(),
            seed: args.seed,
            node_count: args.nodes as usize,
            window_us: args.window_us,
            keyframe_every: args.keyframe_every,
        })
    });
    // Pull windows one at a time (instead of the batch `run`) so periodic
    // stats lines interleave with the transcript at the cadence asked for.
    // Only the per-window stats are kept for the totals; each matrix goes
    // back to the pipeline's CSR pool once recorded, so the transcript run
    // holds one window in memory and rotation reuses the arrays.
    let mut window_stats = Vec::with_capacity(args.windows);
    while window_stats.len() < args.windows {
        let report = match pipeline.next_window() {
            Some(report) => report,
            None => break,
        };
        if args.json {
            let _ = writeln!(out, "{}", ingest_stats_json(&report.stats));
        } else {
            let _ = writeln!(out, "{}", report.stats.summary());
        }
        if let Some(recorder) = recorder.as_mut() {
            recorder
                .record(&report)
                .map_err(|e| CliError(e.to_string()))?;
        }
        pipeline.recycle_window(report.matrix);
        window_stats.push(report.stats);
        if !args.json
            && args.stats_every > 0
            && (window_stats.len() as u64).is_multiple_of(args.stats_every)
        {
            if let Some(registry) = &registry {
                let _ = writeln!(out, "stats: {}", registry.snapshot().one_line());
            }
        }
    }
    if !args.json {
        let events: u64 = window_stats.iter().map(|s| s.events).sum();
        let packets: u64 = window_stats.iter().map(|s| s.packets).sum();
        let late: u64 = window_stats.iter().map(|s| s.dropped_late).sum();
        let reordered: u64 = window_stats.iter().map(|s| s.reordered).sum();
        let peak_nnz = window_stats.iter().map(|s| s.nnz).max().unwrap_or(0);
        let elapsed: f64 = window_stats.iter().map(|s| s.elapsed.as_secs_f64()).sum();
        let _ = writeln!(
            out,
            "total: {events} events, {packets} packets, {late} late, {reordered} reordered, peak nnz {peak_nnz}, {:.2} ms wall ({:.2} M events/s)",
            elapsed * 1e3,
            if elapsed > 0.0 { events as f64 / elapsed / 1e6 } else { 0.0 },
        );
    }
    if let (Some(recorder), Some(path)) = (recorder, args.record.as_deref()) {
        let recorded = recorder.windows_recorded();
        let bytes = recorder.finish().map_err(|e| CliError(e.to_string()))?;
        std::fs::write(path, &bytes).map_err(|e| CliError(format!("{path}: {e}")))?;
        if !args.json {
            let _ = writeln!(
                out,
                "recorded {recorded} window(s) to {path} ({} bytes); replay with: traffic-warehouse replay {path}",
                bytes.len()
            );
        }
    }
    if let (Some(path), Some(registry)) = (args.metrics_json.as_deref(), &registry) {
        write_metrics_json(path, &registry.snapshot())?;
        if !args.json {
            let _ = writeln!(out, "wrote metrics snapshot to {path}");
        }
    }
    Ok(out)
}

/// Replay a recorded window stream into a live warehouse session, decoding
/// one window at a time from disk.
pub fn run_replay(path: &str, speed: u64) -> Result<String, CliError> {
    use tw_core::ingest::{FileReplaySource, Paced, WindowStream};

    let replay = FileReplaySource::open(path).map_err(|e| CliError(format!("{path}: {e}")))?;
    let manifest = replay.manifest().clone();
    // The recording streams incrementally: only the directory and manifest
    // are resident; each window entry is read, CRC-checked and decoded as it
    // is pulled. Pacing is the stream's job now — the Paced adapter holds
    // each window until its slot on the classroom cadence.
    let mut stream: Box<dyn WindowStream> = if speed > 0 {
        Box::new(Paced::new(replay, speed))
    } else {
        Box::new(replay)
    };
    // Paced playback (--speed) streams each line to stdout as its window is
    // replayed — the class watches the scenario build up live; buffering
    // everything into the returned string would sleep in silence and then
    // dump the whole transcript at once. Unpaced replay keeps the buffered
    // contract of every other subcommand.
    let mut out = String::new();
    let pacing = speed > 0;
    let mut emit = |line: std::fmt::Arguments<'_>| {
        if pacing {
            println!("{line}");
            use std::io::Write as _;
            let _ = std::io::stdout().flush();
        } else {
            let _ = writeln!(out, "{line}");
        }
    };
    emit(format_args!(
        "replaying {} ({}): {} nodes, {} us windows, {} window(s), seed {}",
        path,
        manifest.scenario,
        manifest.node_count,
        manifest.window_us,
        manifest.window_count(),
        manifest.seed,
    ));

    // The replayed stream drives the same live-warehouse path as a live
    // pipeline: every window re-pallets the 10x10 display scene.
    let mut session = GameSession::start(ModuleBundle::new(&manifest.scenario), manifest.seed)
        .map_err(|e| CliError(e.to_string()))?;
    session.subscribe_live(10);
    while let Some(report) = stream.next_window().map_err(|e| CliError(e.to_string()))? {
        session.ingest_window(&report);
        emit(format_args!("{}", report.stats.summary()));
    }
    let live = session.live().expect("subscribed above");
    emit(format_args!(
        "replayed {} window(s) onto the live warehouse (no events regenerated){}",
        live.windows_seen(),
        if speed > 0 {
            format!(", paced at {speed}x real time")
        } else {
            String::new()
        },
    ));
    Ok(out)
}

/// The stream half that `classroom` and `serve` share: one window stream
/// (live scenario or recording) plus the banner facts a serving front end
/// prints.
struct ClassStream {
    stream: Box<dyn tw_core::ingest::WindowStream>,
    scenario: String,
    description: String,
    node_count: usize,
    /// The seed the stream was generated with (a recording carries its own).
    seed: u64,
}

/// Build the one stream a whole class shares — a live scenario or a recorded
/// capture — validating the same invariants for every front end that serves
/// it (in-process classroom or TCP serve).
#[allow(clippy::too_many_arguments)]
fn open_class_stream(
    scenario: Option<&str>,
    replay: Option<&str>,
    nodes: u32,
    seed: u64,
    shards: usize,
    route_threads: usize,
    window_us: u64,
    horizon_us: u64,
    skew_us: u64,
    metrics: Option<&tw_core::metrics::MetricsRegistry>,
) -> Result<ClassStream, CliError> {
    use tw_core::ingest::{FileReplaySource, Pipeline, PipelineConfig, Scenario};

    if replay.is_some() && (horizon_us > 0 || skew_us > 0) {
        return Err(CliError(
            "--skew-us/--horizon-us shape live ingestion; a recording was \
             already windowed when it was captured"
                .to_string(),
        ));
    }
    match replay {
        Some(path) => {
            let replay =
                FileReplaySource::open(path).map_err(|e| CliError(format!("{path}: {e}")))?;
            let manifest = replay.manifest().clone();
            Ok(ClassStream {
                stream: Box::new(replay),
                scenario: manifest.scenario.clone(),
                description: format!("replayed from {path}"),
                node_count: manifest.node_count,
                seed: manifest.seed,
            })
        }
        None => {
            let name = scenario.ok_or(CliError(
                "a scenario name or a recording is required".to_string(),
            ))?;
            let scenario = Scenario::by_name(name).ok_or_else(|| {
                let known: Vec<&str> = Scenario::all().iter().map(|s| s.name()).collect();
                CliError(format!(
                    "unknown scenario {name:?}; known scenarios: {}",
                    known.join(", ")
                ))
            })?;
            if nodes < 20 {
                return Err(CliError("--nodes must be at least 20".to_string()));
            }
            if window_us == 0 {
                return Err(CliError("--window-us must be at least 1".to_string()));
            }
            let config = PipelineConfig {
                window_us,
                batch_size: 8_192,
                shard_count: shards,
                reorder_horizon_us: horizon_us,
                route_threads,
                ..PipelineConfig::default()
            };
            let (source, max_disorder_us) = scenario.skewed_source(nodes, seed, skew_us);
            let mut pipeline = Pipeline::new(source, config);
            if let Some(registry) = metrics {
                pipeline.instrument(registry);
            }
            let description = if skew_us > 0 || horizon_us > 0 {
                format!(
                    "{}; clock skew {} us, horizon {} us{}",
                    scenario.describe(),
                    skew_us,
                    horizon_us,
                    if max_disorder_us > horizon_us {
                        " [WARNING: horizon below the disorder bound; late drops expected]"
                    } else {
                        ""
                    },
                )
            } else {
                scenario.describe().to_string()
            };
            Ok(ClassStream {
                stream: Box::new(pipeline),
                scenario: scenario.name().to_string(),
                description,
                node_count: nodes as usize,
                seed,
            })
        }
    }
}

/// How many windows a class run plans to broadcast: the whole recording by
/// default, eight windows of an unbounded live scenario, and never more than
/// a recording actually holds.
fn planned_windows(
    stream: &dyn tw_core::ingest::WindowStream,
    requested: Option<usize>,
) -> Result<usize, CliError> {
    let planned = match stream.remaining_windows() {
        Some(recorded) => requested.unwrap_or(recorded).min(recorded),
        None => requested.unwrap_or(8),
    };
    if planned == 0 {
        return Err(CliError("the recording holds no windows".to_string()));
    }
    Ok(planned)
}

/// Wrap a stream in real-time pacing when a speed multiplier is given.
fn paced(
    stream: Box<dyn tw_core::ingest::WindowStream>,
    speed: u64,
) -> Box<dyn tw_core::ingest::WindowStream> {
    if speed > 0 {
        Box::new(tw_core::ingest::Paced::new(stream, speed))
    } else {
        stream
    }
}

/// Arguments for [`run_classroom`] (one scenario fanned out to N students).
#[derive(Debug, Clone)]
pub struct ClassroomArgs {
    /// Scenario name (required unless `replay` is given).
    pub scenario: Option<String>,
    /// Recording to broadcast instead of generating events live.
    pub replay: Option<String>,
    /// Number of student sessions.
    pub students: usize,
    /// Windows to broadcast (default: 8 live, the whole recording on replay).
    pub windows: Option<usize>,
    /// Address-space size for live scenarios.
    pub nodes: u32,
    /// Scenario seed for live scenarios.
    pub seed: u64,
    /// Shard count for live scenarios (0 = auto).
    pub shards: usize,
    /// Routing worker threads per batch (0 = one per hardware thread).
    pub route_threads: usize,
    /// Tumbling-window duration for live scenarios.
    pub window_us: u64,
    /// Watermark reordering horizon for live scenarios (0 = strict).
    pub horizon_us: u64,
    /// Per-source clock skew for live scenarios (0 = sorted stream).
    pub skew_us: u64,
    /// Pace the broadcast at N x real time (0 = as fast as possible).
    pub speed: u64,
    /// Students that join mid-scenario (default: one in five).
    pub late: Option<usize>,
    /// Write the final pipeline+broadcast metrics snapshot here.
    pub metrics_json: Option<String>,
    /// Print a one-line metrics summary every N broadcast windows.
    pub stats_every: u64,
}

/// Serve one scenario to a classroom: drive the stream once through the
/// broadcast hub on this thread while every student session consumes its own
/// subscription on its own thread; returns per-student summaries.
pub fn run_classroom(args: &ClassroomArgs) -> Result<String, CliError> {
    use tw_core::game::{
        BroadcastConfig, Broadcaster, GameSession, StartOffset, TelemetryEvent, TelemetryHub,
    };

    if args.students > 10_000 {
        return Err(CliError("--students is capped at 10000".to_string()));
    }
    // One registry spans the pipeline and the hub when metrics output was
    // asked for.
    let registry = (args.metrics_json.is_some() || args.stats_every > 0)
        .then(tw_core::metrics::MetricsRegistry::new);
    // Build the one stream the whole class shares.
    let class = open_class_stream(
        args.scenario.as_deref(),
        args.replay.as_deref(),
        args.nodes,
        args.seed,
        args.shards,
        args.route_threads,
        args.window_us,
        args.horizon_us,
        args.skew_us,
        registry.as_ref(),
    )?;
    let planned = planned_windows(class.stream.as_ref(), args.windows)?;
    let (scenario_name, description, node_count) =
        (class.scenario, class.description, class.node_count);
    let mut stream = paced(class.stream, args.speed);

    // Size the dashboard buffer to the class — joins, detaches, the close,
    // and one lag event per window per student — so the printed lag count is
    // exact. The clamp bounds memory for absurd classes; beyond it the count
    // can undercount and the eviction note below says so.
    let telemetry_capacity = args
        .students
        .saturating_mul(planned.saturating_add(3))
        .clamp(1024, 1 << 18);
    let telemetry = TelemetryHub::with_capacity(telemetry_capacity);
    let mut caster = Broadcaster::with_instrumentation(
        BroadcastConfig {
            channel_capacity: planned.clamp(64, 1024),
            ring_capacity: planned.clamp(32, 1024),
        },
        Some(telemetry.clone()),
        registry.as_ref(),
    );
    let handle = caster.handle();
    let late = args.late.unwrap_or(args.students / 5);
    let late = late.min(args.students.saturating_sub(1));
    let on_time = args.students - late;
    let late_at = (planned / 2) as u64;

    struct StudentLine {
        id: usize,
        joined: u64,
        seen: u64,
        last: Option<u64>,
        dropped: u64,
        missed: u64,
    }

    let (summary, lines) = std::thread::scope(|scope| {
        let consumers: Vec<_> = (0..args.students)
            .map(|sid| {
                // On-time students subscribe before the first window; late
                // ones wait for the scenario's midpoint, then catch up from
                // the ring.
                let early = (sid < on_time).then(|| caster.subscribe(StartOffset::Origin));
                let handle = handle.clone();
                let scenario_name = scenario_name.clone();
                let seed = args.seed;
                scope.spawn(move || {
                    let subscription = early.unwrap_or_else(|| {
                        while handle.windows_broadcast() < late_at && !handle.is_closed() {
                            std::thread::sleep(std::time::Duration::from_micros(200));
                        }
                        handle.subscribe(StartOffset::Window(late_at))
                    });
                    let joined = subscription.start_window();
                    let mut session =
                        GameSession::start(ModuleBundle::new(&scenario_name), seed ^ sid as u64)
                            .expect("empty bundle always loads");
                    session.join_broadcast(10, subscription);
                    session.follow_broadcast(usize::MAX);
                    let live = session.live().expect("joined above");
                    let subscription = session.subscription().expect("still joined");
                    StudentLine {
                        id: sid,
                        joined,
                        seen: live.windows_seen(),
                        last: live.last_stats().map(|s| s.window_index),
                        dropped: subscription.dropped(),
                        missed: subscription.missed(),
                    }
                })
            })
            .collect();
        // This thread is the producer: drive the stream once for everyone.
        let mut broadcast = 0usize;
        let mut stats_lines = Vec::new();
        let run = loop {
            if broadcast >= planned {
                break Ok(());
            }
            match caster.step(stream.as_mut()) {
                Ok(Some(_)) => {
                    broadcast += 1;
                    if args.stats_every > 0 && (broadcast as u64).is_multiple_of(args.stats_every) {
                        if let Some(registry) = &registry {
                            stats_lines.push((broadcast, registry.snapshot().one_line()));
                        }
                    }
                }
                Ok(None) => break Ok(()),
                Err(e) => break Err(e),
            }
        };
        // An unpaced broadcast can outrun the roster: hold the summary until
        // every planned student has subscribed (late joiners still catch up
        // from the ring), so the final count covers the whole class. The
        // deadline only guards against a wedged student thread.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while handle.subscribers_joined() < args.students && std::time::Instant::now() < deadline {
            std::thread::sleep(std::time::Duration::from_micros(200));
        }
        let summary = run.map(|()| caster.close());
        let mut lines: Vec<StudentLine> = consumers
            .into_iter()
            .map(|c| c.join().expect("student threads do not panic"))
            .collect();
        lines.sort_by_key(|l| l.id);
        (summary.map(|s| (s, stats_lines)), lines)
    });
    let (summary, stats_lines) = summary.map_err(|e| CliError(e.to_string()))?;

    let mut out = format!(
        "classroom: {scenario_name} ({description}) over {node_count} nodes -> {} student(s) ({} on time, {late} late at w{late_at})\n",
        args.students, on_time,
    );
    for (window, line) in &stats_lines {
        let _ = writeln!(out, "  stats after w{}: {line}", window - 1);
    }
    for line in &lines {
        let _ = writeln!(
            out,
            "  student {:>3}: joined w{:<4} {:>4} window(s)  dropped {:>3}  missed {:>3}  last {}",
            line.id,
            line.joined,
            line.seen,
            line.dropped,
            line.missed,
            line.last.map_or("-".to_string(), |w| format!("w{w}")),
        );
    }
    // One accounting authority: the roster totals and the printed summary
    // come from the same arithmetic the conservation check audits.
    let totals = summary.totals();
    let lag_events = telemetry
        .drain()
        .into_iter()
        .filter(|e| matches!(e, TelemetryEvent::SubscriberLagged { .. }))
        .count();
    // The eviction count prints unconditionally: a zero is the reader's
    // proof the lag count above is exact, not merely what survived the
    // telemetry ring.
    let _ = writeln!(
        out,
        "broadcast: {} window(s) served once to {} subscriber(s); {} delivered, {} dropped, {} missed, {lag_events} lag event(s), {} telemetry event(s) evicted{}",
        summary.windows,
        summary.subscribers,
        totals.delivered,
        totals.dropped,
        totals.missed,
        telemetry.dropped(),
        if args.speed > 0 {
            format!(", paced at {}x real time", args.speed)
        } else {
            String::new()
        },
    );
    if let Some(error) = summary.conservation_error() {
        let _ = writeln!(out, "WARNING: roster accounting out of balance: {error}");
    }
    if let Some(registry) = &registry {
        let snapshot = registry.snapshot();
        let _ = writeln!(out, "metrics: {}", snapshot.one_line());
        if let Some(path) = args.metrics_json.as_deref() {
            write_metrics_json(path, &snapshot)?;
            let _ = writeln!(out, "wrote metrics snapshot to {path}");
        }
    }
    Ok(out)
}

/// Arguments for [`run_serve`] (one scenario served to remote clients).
#[derive(Debug, Clone, PartialEq)]
pub struct ServeArgs {
    /// Address to listen on (e.g. `127.0.0.1:7000`; port 0 picks a free one).
    pub listen: String,
    /// Scenario name (required unless `replay` is given).
    pub scenario: Option<String>,
    /// Recording to serve instead of generating events live.
    pub replay: Option<String>,
    /// Hold the first window until this many clients have connected
    /// (0 = start streaming immediately).
    pub students: usize,
    /// Windows to serve (default: 8 live, the whole recording on replay).
    pub windows: Option<usize>,
    /// Address-space size for live scenarios.
    pub nodes: u32,
    /// Scenario seed for live scenarios.
    pub seed: u64,
    /// Shard count for live scenarios (0 = auto).
    pub shards: usize,
    /// Routing worker threads per batch (0 = one per hardware thread).
    pub route_threads: usize,
    /// Tumbling-window duration for live scenarios.
    pub window_us: u64,
    /// Watermark reordering horizon for live scenarios (0 = strict).
    pub horizon_us: u64,
    /// Per-source clock skew for live scenarios (0 = sorted stream).
    pub skew_us: u64,
    /// Pace the serve at N x real time (0 = as fast as possible).
    pub speed: u64,
    /// Write the final serving-stack metrics snapshot here.
    pub metrics_json: Option<String>,
    /// Also stream a Stats frame to every client after each N window
    /// frames (0 = none); `connect --stats` prints them.
    pub stats_every: u64,
    /// Key-frame cadence on the wire: every K-th window is served as a
    /// self-contained full frame, the rest as sparse v3 delta frames
    /// against the previous window (0 = every window full).
    pub keyframe_every: u64,
}

impl ServeArgs {
    /// Defaults matching the CLI parser, for tests and embedding callers.
    pub fn new(listen: &str) -> Self {
        ServeArgs {
            listen: listen.to_string(),
            scenario: None,
            replay: None,
            students: 0,
            windows: None,
            nodes: 256,
            seed: 7,
            shards: 0,
            route_threads: 0,
            window_us: 100_000,
            horizon_us: 0,
            skew_us: 0,
            speed: 0,
            metrics_json: None,
            stats_every: 0,
            keyframe_every: 0,
        }
    }
}

/// Bind the listen address and serve one scenario over TCP.
pub fn run_serve(args: &ServeArgs) -> Result<String, CliError> {
    let listener = std::net::TcpListener::bind(&args.listen)
        .map_err(|e| CliError(format!("{}: {e}", args.listen)))?;
    run_serve_on(listener, args)
}

/// Serve one scenario on an already-bound listener: drive the stream once,
/// encode each window once, and fan identical frames out to every connected
/// client; returns per-student accounting once the serve ends.
pub fn run_serve_on(listener: std::net::TcpListener, args: &ServeArgs) -> Result<String, CliError> {
    use tw_core::game::{TelemetryEvent, TelemetryHub};
    use tw_core::serve::{serve, ServeConfig};

    if args.students > 10_000 {
        return Err(CliError("--students is capped at 10000".to_string()));
    }
    // One registry spans the pipeline, the hub and the server when metrics
    // output (file or wire) was asked for.
    let registry = (args.metrics_json.is_some() || args.stats_every > 0)
        .then(tw_core::metrics::MetricsRegistry::new);
    let class = open_class_stream(
        args.scenario.as_deref(),
        args.replay.as_deref(),
        args.nodes,
        args.seed,
        args.shards,
        args.route_threads,
        args.window_us,
        args.horizon_us,
        args.skew_us,
        registry.as_ref(),
    )?;
    let planned = planned_windows(class.stream.as_ref(), args.windows)?;
    let mut stream = paced(class.stream, args.speed);
    let addr = listener.local_addr().map_err(|e| CliError(e.to_string()))?;
    // The listening line streams eagerly (like paced replay) so students —
    // and scripts parsing the bound port — see the address while the serve
    // itself blocks; the accounting below stays on the buffered contract.
    println!(
        "listening on {addr}: {} ({}) over {} nodes, {} window(s){}{}",
        class.scenario,
        class.description,
        class.node_count,
        planned,
        if args.students > 0 {
            format!(", waiting for {} student(s)", args.students)
        } else {
            String::new()
        },
        if args.speed > 0 {
            format!(", paced at {}x real time", args.speed)
        } else {
            String::new()
        },
    );
    {
        use std::io::Write as _;
        let _ = std::io::stdout().flush();
    }

    let telemetry_capacity = args
        .students
        .max(1)
        .saturating_mul(planned.saturating_add(3))
        .clamp(1024, 1 << 18);
    let telemetry = TelemetryHub::with_capacity(telemetry_capacity);
    let config = ServeConfig {
        scenario: class.scenario.clone(),
        seed: class.seed,
        channel_capacity: planned.clamp(64, 1024),
        ring_capacity: planned.clamp(32, 1024),
        wait_for: args.students,
        max_windows: planned,
        // With a roster gate the class defines the session: once every
        // student has left there is no one to serve, even mid-stream.
        stop_when_empty: args.students > 0,
        metrics: registry.clone(),
        stats_every: args.stats_every,
        keyframe_every: args.keyframe_every,
        ..ServeConfig::default()
    };
    let summary = serve(listener, stream.as_mut(), &config, Some(telemetry.clone()))
        .map_err(|e| CliError(e.to_string()))?;

    let mut out = String::new();
    for report in &summary.broadcast.reports {
        let _ = writeln!(
            out,
            "  student {:>3}: joined w{:<4} delivered {:>4}  dropped {:>3}  missed {:>3}{}",
            report.id,
            report.start_window,
            report.delivered,
            report.dropped,
            report.missed,
            if report.left_early {
                "  [left early]"
            } else {
                ""
            },
        );
    }
    let totals = summary.broadcast.totals();
    let lag_events = telemetry
        .drain()
        .into_iter()
        .filter(|e| matches!(e, TelemetryEvent::SubscriberLagged { .. }))
        .count();
    // The eviction count prints unconditionally, like the classroom's: zero
    // means the lag count is exact.
    let _ = writeln!(
        out,
        "served {} window(s) ({} encoded bytes) to {} connection(s); {} delivered, {} dropped, {} missed, {lag_events} lag event(s), {} telemetry event(s) evicted",
        summary.windows(),
        summary.encoded_bytes,
        summary.connections(),
        totals.delivered,
        totals.dropped,
        totals.missed,
        telemetry.dropped(),
    );
    if let Some(error) = summary.broadcast.conservation_error() {
        let _ = writeln!(out, "WARNING: roster accounting out of balance: {error}");
    }
    if let Some(snapshot) = &summary.snapshot {
        let _ = writeln!(out, "metrics: {}", snapshot.one_line());
        if let Some(path) = args.metrics_json.as_deref() {
            write_metrics_json(path, snapshot)?;
            let _ = writeln!(out, "wrote metrics snapshot to {path}");
        }
    }
    Ok(out)
}

/// Join a serve session: follow the remote window stream into a live
/// warehouse view and report the server's close accounting. With `stats`,
/// the server's interleaved metrics snapshots (sent when it serves with
/// `--stats-every`) print as one-line summaries where they arrived.
pub fn run_connect(addr: &str, windows: Option<usize>, stats: bool) -> Result<String, CliError> {
    use tw_core::ingest::WindowStream;
    use tw_core::serve::ClientStream;

    let mut client = ClientStream::connect(addr).map_err(|e| CliError(format!("{addr}: {e}")))?;
    let manifest = client.manifest().clone();
    let mut out = format!(
        "connected to {addr}: {} over {} nodes, {} us windows, seed {}{}\n",
        manifest.scenario,
        manifest.node_count,
        manifest.window_us,
        manifest.seed,
        manifest
            .windows
            .map_or(String::new(), |w| format!(", {w} window(s) planned")),
    );
    // The remote stream drives the same live-warehouse path as a local
    // replay: every window re-pallets the 10x10 display scene.
    let mut session = GameSession::start(ModuleBundle::new(&manifest.scenario), manifest.seed)
        .map_err(|e| CliError(e.to_string()))?;
    session.subscribe_live(10);
    let cap = windows.unwrap_or(usize::MAX);
    let mut seen = 0usize;
    let mut stats_seen = 0usize;
    loop {
        let next = if seen < cap {
            client.next_window().map_err(|e| CliError(e.to_string()))?
        } else {
            None
        };
        if stats {
            for snapshot in client.take_stats() {
                stats_seen += 1;
                let _ = writeln!(out, "stats: {}", snapshot.one_line());
            }
        }
        match next {
            Some(report) => {
                session.ingest_window(&report);
                let _ = writeln!(out, "{}", report.stats.summary());
                seen += 1;
            }
            None => break,
        }
    }
    if stats {
        let _ = writeln!(out, "received {stats_seen} stats frame(s)");
    }
    let live = session.live().expect("subscribed above");
    match client.close_summary() {
        Some(close) => {
            let _ = writeln!(
                out,
                "server closed: {} window(s) broadcast; delivered {} dropped {} missed {} (saw {})",
                close.windows,
                close.delivered,
                close.dropped,
                close.missed,
                live.windows_seen(),
            );
        }
        None => {
            let _ = writeln!(
                out,
                "left after {} window(s) with the stream still live",
                live.windows_seen()
            );
        }
    }
    Ok(out)
}

/// The scenario catalog as printable text.
pub fn render_scenarios() -> String {
    use tw_core::ingest::Scenario;
    let mut out = String::from("Ingest scenario catalog:\n");
    for scenario in Scenario::all() {
        let _ = writeln!(out, "  {:<12} {}", scenario.name(), scenario.describe());
    }
    out.push_str(
        "\nrun one with:  traffic-warehouse ingest --scenario <name>\n\
         serve a class: traffic-warehouse classroom --scenario <name> --students 30\n",
    );
    out
}

/// Validation report as printable text.
pub fn render_validation(module: &LearningModule) -> String {
    let report = validate(module);
    let mut out = format!(
        "{} ({}x{}, by {}): ",
        module.name,
        module.dimension(),
        module.dimension(),
        module.author
    );
    if report.issues.is_empty() {
        out.push_str("OK, no issues\n");
    } else {
        let _ = writeln!(
            out,
            "{} error(s), {} warning(s)",
            report.errors().count(),
            report.warnings().count()
        );
        for issue in &report.issues {
            let _ = writeln!(
                out,
                "  [{:?}] {}: {}",
                issue.severity, issue.field, issue.message
            );
        }
    }
    out
}

/// Render a module: returns `(ascii preview, ppm bytes)`.
pub fn render_module(module: &LearningModule, three_d: bool, colors: bool) -> (String, Vec<u8>) {
    if three_d {
        let scene = WarehouseScene::build(module);
        let mut view = ViewState::new();
        view.toggle_mode();
        view.colors_on = colors;
        let fb = scene.render(&view, 120, 60);
        (fb.to_ascii(), fb.to_ppm())
    } else {
        let color_plane = colors.then_some(&module.colors);
        let fb = render_matrix_2d(&module.matrix, color_plane);
        let ascii = module.matrix.to_ascii_with_colors(color_plane);
        (ascii, fb.to_ppm())
    }
}

/// Auto-play a bundle and produce a transcript.
pub fn play_bundle(bundle: ModuleBundle, seed: u64) -> Result<String, CliError> {
    let mut out = format!("Playing {:?}: {} module(s)\n", bundle.name, bundle.len());
    let mut session = GameSession::start(bundle, seed).map_err(|e| CliError(e.to_string()))?;
    while !session.is_finished() {
        let (name, question) = {
            let level = session.current_level().expect("not finished");
            (level.name().to_string(), level.question().cloned())
        };
        let _ = writeln!(out, "\n--- {} ---", name);
        match question {
            Some(q) => {
                out.push_str(&q.to_text());
                let outcome = session.answer(q.correct_index);
                let _ = writeln!(
                    out,
                    "answered: {} -> {:?}",
                    q.correct_answer(),
                    outcome.expect("answer accepted")
                );
            }
            None => {
                let _ = writeln!(out, "(no question; skipping)");
                session.skip().map_err(|e| CliError(e.to_string()))?;
                continue;
            }
        }
        session.advance().map_err(|e| CliError(e.to_string()))?;
    }
    let _ = writeln!(out, "\nFinal score: {}", session.score().summary());
    Ok(out)
}

fn render_curriculum() -> String {
    let curriculum = default_curriculum();
    let mut out = String::from("Default Traffic Warehouse curriculum:\n");
    for unit in curriculum
        .schedule()
        .expect("default curriculum is well-formed")
    {
        let _ = writeln!(
            out,
            "  {:<42} {:>2} module(s)   requires: {}",
            unit.name,
            unit.bundle.len(),
            if unit.prerequisites.is_empty() {
                "-".to_string()
            } else {
                unit.prerequisites.join(", ")
            }
        );
    }
    out
}

fn render_figures() -> String {
    let mut out = String::new();
    for figure in Figure::all() {
        let _ = writeln!(out, "Figure {}: {}", figure.number(), figure.title());
        for pattern in patterns_for_figure(figure) {
            let _ = writeln!(out, "\n[{}] {}", pattern.id, pattern.relevant_to);
            out.push_str(&pattern.matrix.to_ascii_with_colors(Some(&pattern.colors)));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_commands_and_flags() {
        assert_eq!(parse_args(&args(&["help"])).unwrap(), Command::Help);
        assert_eq!(parse_args(&[]).unwrap(), Command::Help);
        assert_eq!(
            parse_args(&args(&["validate", "m.json"])).unwrap(),
            Command::Validate {
                path: "m.json".into()
            }
        );
        assert_eq!(
            parse_args(&args(&[
                "render",
                "m.json",
                "--three-d",
                "--colors",
                "--out",
                "x.ppm"
            ]))
            .unwrap(),
            Command::Render {
                path: "m.json".into(),
                three_d: true,
                colors: true,
                out: Some("x.ppm".into())
            }
        );
        assert_eq!(
            parse_args(&args(&["play", "b.zip", "--seed", "9"])).unwrap(),
            Command::Play {
                path: "b.zip".into(),
                seed: 9
            }
        );
        assert_eq!(
            parse_args(&args(&["curriculum"])).unwrap(),
            Command::Curriculum
        );
        assert_eq!(
            parse_args(&args(&[
                "ingest",
                "--scenario",
                "ddos",
                "--windows",
                "2",
                "--nodes",
                "256",
                "--seed",
                "3",
                "--shards",
                "4",
                "--batch",
                "512",
                "--window-us",
                "50000"
            ]))
            .unwrap(),
            Command::Ingest {
                scenario: "ddos".into(),
                windows: 2,
                nodes: 256,
                seed: 3,
                shards: 4,
                batch: 512,
                window_us: 50_000,
                horizon_us: 0,
                skew_us: 0,
                record: None,
                keyframe_every: 0,
                json: false,
                metrics_json: None,
                stats_every: 0,
                route_threads: 0,
            }
        );
        // Defaults: 4 windows over 1024 nodes with auto shards.
        assert_eq!(
            parse_args(&args(&["ingest", "--scenario", "scan"])).unwrap(),
            Command::Ingest {
                scenario: "scan".into(),
                windows: 4,
                nodes: 1024,
                seed: 7,
                shards: 0,
                batch: 8192,
                window_us: 100_000,
                horizon_us: 0,
                skew_us: 0,
                record: None,
                keyframe_every: 0,
                json: false,
                metrics_json: None,
                stats_every: 0,
                route_threads: 0,
            }
        );
        assert_eq!(
            parse_args(&args(&[
                "ingest",
                "--scenario",
                "ddos",
                "--record",
                "out.zip",
                "--keyframe-every",
                "4"
            ]))
            .unwrap(),
            Command::Ingest {
                scenario: "ddos".into(),
                windows: 4,
                nodes: 1024,
                seed: 7,
                shards: 0,
                batch: 8192,
                window_us: 100_000,
                horizon_us: 0,
                skew_us: 0,
                record: Some("out.zip".into()),
                keyframe_every: 4,
                json: false,
                metrics_json: None,
                stats_every: 0,
                route_threads: 0,
            }
        );
        assert_eq!(
            parse_args(&args(&[
                "ingest",
                "--scenario",
                "ddos",
                "--skew-us",
                "5000",
                "--horizon-us",
                "20000"
            ]))
            .unwrap(),
            Command::Ingest {
                scenario: "ddos".into(),
                windows: 4,
                nodes: 1024,
                seed: 7,
                shards: 0,
                batch: 8192,
                window_us: 100_000,
                horizon_us: 20_000,
                skew_us: 5_000,
                record: None,
                keyframe_every: 0,
                json: false,
                metrics_json: None,
                stats_every: 0,
                route_threads: 0,
            }
        );
        assert_eq!(
            parse_args(&args(&["replay", "out.zip"])).unwrap(),
            Command::Replay {
                path: "out.zip".into(),
                speed: 0
            }
        );
        assert_eq!(
            parse_args(&args(&["replay", "out.zip", "--speed", "4"])).unwrap(),
            Command::Replay {
                path: "out.zip".into(),
                speed: 4
            }
        );
        assert_eq!(
            parse_args(&args(&["scenarios"])).unwrap(),
            Command::Scenarios
        );
        assert_eq!(
            parse_args(&args(&[
                "serve",
                "--listen",
                "127.0.0.1:0",
                "--scenario",
                "ddos",
                "--students",
                "30",
                "--windows",
                "6",
                "--speed",
                "4",
                "--keyframe-every",
                "8",
            ]))
            .unwrap(),
            Command::Serve(ServeArgs {
                scenario: Some("ddos".into()),
                students: 30,
                windows: Some(6),
                speed: 4,
                keyframe_every: 8,
                ..ServeArgs::new("127.0.0.1:0")
            })
        );
        assert_eq!(
            parse_args(&args(&[
                "serve",
                "--listen",
                "0.0.0.0:7000",
                "--replay",
                "c.zip",
            ]))
            .unwrap(),
            Command::Serve(ServeArgs {
                replay: Some("c.zip".into()),
                ..ServeArgs::new("0.0.0.0:7000")
            })
        );
        assert_eq!(
            parse_args(&args(&["connect", "127.0.0.1:7000"])).unwrap(),
            Command::Connect {
                addr: "127.0.0.1:7000".into(),
                windows: None,
                stats: false
            }
        );
        assert_eq!(
            parse_args(&args(&["connect", "127.0.0.1:7000", "--windows", "5"])).unwrap(),
            Command::Connect {
                addr: "127.0.0.1:7000".into(),
                windows: Some(5),
                stats: false
            }
        );
        assert_eq!(
            parse_args(&args(&[
                "classroom",
                "--scenario",
                "ddos",
                "--students",
                "30"
            ]))
            .unwrap(),
            Command::Classroom {
                scenario: Some("ddos".into()),
                replay: None,
                students: 30,
                windows: None,
                nodes: 256,
                seed: 7,
                shards: 0,
                window_us: 100_000,
                horizon_us: 0,
                skew_us: 0,
                speed: 0,
                late: None,
                metrics_json: None,
                stats_every: 0,
                route_threads: 0,
            }
        );
        assert_eq!(
            parse_args(&args(&[
                "classroom",
                "--replay",
                "c.zip",
                "--windows",
                "4",
                "--speed",
                "8",
                "--late",
                "2",
                "--seed",
                "9",
                "--shards",
                "2",
                "--nodes",
                "128",
                "--window-us",
                "50000",
            ]))
            .unwrap(),
            Command::Classroom {
                scenario: None,
                replay: Some("c.zip".into()),
                students: 8,
                windows: Some(4),
                nodes: 128,
                seed: 9,
                shards: 2,
                window_us: 50_000,
                horizon_us: 0,
                skew_us: 0,
                speed: 8,
                late: Some(2),
                metrics_json: None,
                stats_every: 0,
                route_threads: 0,
            }
        );
    }

    #[test]
    fn parses_metrics_and_json_flags() {
        assert_eq!(
            parse_args(&args(&[
                "ingest",
                "--scenario",
                "ddos",
                "--json",
                "--metrics-json",
                "m.json",
                "--stats-every",
                "2",
            ]))
            .unwrap(),
            Command::Ingest {
                scenario: "ddos".into(),
                windows: 4,
                nodes: 1024,
                seed: 7,
                shards: 0,
                batch: 8192,
                window_us: 100_000,
                horizon_us: 0,
                skew_us: 0,
                record: None,
                keyframe_every: 0,
                json: true,
                metrics_json: Some("m.json".into()),
                stats_every: 2,
                route_threads: 0,
            }
        );
        assert_eq!(
            parse_args(&args(&[
                "serve",
                "--listen",
                "127.0.0.1:0",
                "--scenario",
                "ddos",
                "--metrics-json",
                "m.json",
                "--stats-every",
                "1",
            ]))
            .unwrap(),
            Command::Serve(ServeArgs {
                scenario: Some("ddos".into()),
                metrics_json: Some("m.json".into()),
                stats_every: 1,
                ..ServeArgs::new("127.0.0.1:0")
            })
        );
        assert_eq!(
            parse_args(&args(&["connect", "127.0.0.1:7000", "--stats"])).unwrap(),
            Command::Connect {
                addr: "127.0.0.1:7000".into(),
                windows: None,
                stats: true,
            }
        );
        match parse_args(&args(&[
            "classroom",
            "--scenario",
            "ddos",
            "--metrics-json",
            "m.json",
            "--stats-every",
            "3",
        ]))
        .unwrap()
        {
            Command::Classroom {
                metrics_json,
                stats_every,
                ..
            } => {
                assert_eq!(metrics_json.as_deref(), Some("m.json"));
                assert_eq!(stats_every, 3);
            }
            other => panic!("parsed {other:?}"),
        }
        // Flags that need values reject their absence.
        assert!(parse_args(&args(&["ingest", "--scenario", "ddos", "--metrics-json"])).is_err());
        assert!(parse_args(&args(&["ingest", "--scenario", "ddos", "--stats-every"])).is_err());
        assert!(parse_args(&args(&[
            "ingest",
            "--scenario",
            "ddos",
            "--stats-every",
            "x"
        ]))
        .is_err());
        assert!(parse_args(&args(&[
            "serve",
            "--listen",
            "a:0",
            "--scenario",
            "ddos",
            "--metrics-json"
        ]))
        .is_err());
        assert!(parse_args(&args(&["classroom", "--scenario", "ddos", "--stats-every"])).is_err());
    }

    #[test]
    fn ingest_json_mode_emits_parseable_window_objects() {
        use tw_core::json;
        let out = run_ingest(&IngestArgs {
            windows: 3,
            nodes: 256,
            shards: 2,
            window_us: 50_000,
            json: true,
            ..IngestArgs::new("ddos")
        })
        .unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 3, "pure JSONL, one object per window: {out}");
        for (index, line) in lines.iter().enumerate() {
            let value = json::parse(line).expect("each line parses alone");
            let object = value.as_object().expect("each line is one object");
            assert_eq!(
                object.get("window").and_then(json::Value::as_u64),
                Some(index as u64)
            );
            for field in [
                "events",
                "packets",
                "nnz",
                "dropped_late",
                "reordered",
                "elapsed_us",
            ] {
                assert!(
                    object.get(field).and_then(json::Value::as_u64).is_some(),
                    "{field} missing from {line}"
                );
            }
        }
    }

    #[test]
    fn ingest_metrics_land_in_the_file_and_the_transcript() {
        use tw_core::metrics::MetricsSnapshot;
        let dir = std::env::temp_dir().join(format!("tw-cli-metrics-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ingest.json").to_string_lossy().into_owned();

        let out = run_ingest(&IngestArgs {
            windows: 4,
            nodes: 256,
            shards: 2,
            window_us: 50_000,
            metrics_json: Some(path.clone()),
            stats_every: 2,
            ..IngestArgs::new("ddos")
        })
        .unwrap();
        // Two interleaved one-line summaries (after windows 2 and 4).
        assert_eq!(
            out.lines().filter(|l| l.starts_with("stats: ")).count(),
            2,
            "{out}"
        );
        assert!(
            out.contains(&format!("wrote metrics snapshot to {path}")),
            "{out}"
        );

        // The file parses back into a snapshot whose counters match the
        // transcript's own totals.
        let text = std::fs::read_to_string(&path).unwrap();
        let snapshot = MetricsSnapshot::from_json(&tw_core::json::parse(&text).unwrap()).unwrap();
        assert_eq!(snapshot.counter("pipeline.windows"), 4);
        let events: u64 = out
            .lines()
            .find(|l| l.starts_with("total: "))
            .and_then(|l| l.split_whitespace().nth(1))
            .and_then(|n| n.parse().ok())
            .expect("total line carries the event count");
        assert_eq!(snapshot.counter("pipeline.events"), events);
        assert!(
            snapshot
                .histogram("pipeline.coalesce_ns")
                .is_some_and(|h| h.count == 4),
            "one coalesce sample per window"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn classroom_metrics_balance_the_printed_roster() {
        use tw_core::metrics::MetricsSnapshot;
        let dir = std::env::temp_dir().join(format!("tw-cli-class-metrics-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("class.json").to_string_lossy().into_owned();

        let out = run_classroom(&ClassroomArgs {
            scenario: Some("ddos".into()),
            replay: None,
            students: 4,
            windows: Some(3),
            nodes: 128,
            seed: 7,
            shards: 2,
            window_us: 50_000,
            horizon_us: 0,
            skew_us: 0,
            speed: 0,
            late: Some(0),
            metrics_json: Some(path.clone()),
            stats_every: 1,
            route_threads: 0,
        })
        .unwrap();
        assert!(out.contains("metrics: "), "{out}");
        assert!(out.contains("telemetry event(s) evicted"), "{out}");
        assert_eq!(
            out.lines().filter(|l| l.contains("stats after w")).count(),
            3,
            "{out}"
        );
        let text = std::fs::read_to_string(&path).unwrap();
        let snapshot = MetricsSnapshot::from_json(&tw_core::json::parse(&text).unwrap()).unwrap();
        assert_eq!(snapshot.counter("pipeline.windows"), 3);
        assert_eq!(snapshot.counter("broadcast.windows"), 3);
        // Nothing can lag at these capacities: the roster counters conserve.
        assert_eq!(snapshot.counter("broadcast.delivered"), 12);
        assert_eq!(snapshot.counter("broadcast.dropped"), 0);
        assert_eq!(snapshot.counter("broadcast.missed"), 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rejects_bad_arguments() {
        assert!(parse_args(&args(&["validate"])).is_err());
        assert!(parse_args(&args(&["render"])).is_err());
        assert!(parse_args(&args(&["render", "m.json", "--bogus"])).is_err());
        assert!(parse_args(&args(&["play", "b.zip", "--seed", "abc"])).is_err());
        assert!(parse_args(&args(&["frobnicate"])).is_err());
        assert!(
            parse_args(&args(&["ingest"])).is_err(),
            "--scenario is required"
        );
        assert!(parse_args(&args(&["ingest", "--scenario", "ddos", "--windows", "0"])).is_err());
        assert!(parse_args(&args(&["ingest", "--scenario", "ddos", "--windows", "x"])).is_err());
        assert!(parse_args(&args(&["ingest", "--scenario", "ddos", "--bogus"])).is_err());
        assert!(parse_args(&args(&["ingest", "--scenario", "ddos", "--record"])).is_err());
        assert!(
            parse_args(&args(&[
                "ingest",
                "--scenario",
                "ddos",
                "--keyframe-every",
                "4"
            ]))
            .is_err(),
            "--keyframe-every without --record has nothing to shape"
        );
        assert!(parse_args(&args(&[
            "ingest",
            "--scenario",
            "ddos",
            "--record",
            "o.zip",
            "--keyframe-every",
            "x"
        ]))
        .is_err());
        assert!(
            parse_args(&args(&["replay"])).is_err(),
            "replay needs a path"
        );
        assert!(parse_args(&args(&["replay", "o.zip", "--speed", "0"])).is_err());
        assert!(parse_args(&args(&["replay", "o.zip", "--speed", "x"])).is_err());
        assert!(parse_args(&args(&["replay", "o.zip", "--bogus"])).is_err());
        assert!(
            parse_args(&args(&["classroom"])).is_err(),
            "needs a scenario or a recording"
        );
        assert!(parse_args(&args(&[
            "classroom",
            "--scenario",
            "ddos",
            "--students",
            "0"
        ]))
        .is_err());
        assert!(parse_args(&args(&[
            "classroom",
            "--scenario",
            "ddos",
            "--windows",
            "0"
        ]))
        .is_err());
        assert!(parse_args(&args(&["classroom", "--scenario", "ddos", "--bogus"])).is_err());
        assert!(
            parse_args(&args(&["classroom", "--scenario", "ddos", "--speed", "0"])).is_err(),
            "a zero pace would serve nothing; rejected at parse time"
        );
        assert!(parse_args(&args(&["classroom", "--replay"])).is_err());
        assert!(
            parse_args(&args(&[
                "classroom",
                "--scenario",
                "ddos",
                "--replay",
                "c.zip"
            ]))
            .is_err(),
            "a recording carries its own scenario"
        );
        assert!(
            parse_args(&args(&["serve", "--scenario", "ddos"])).is_err(),
            "--listen is required"
        );
        assert!(
            parse_args(&args(&["serve", "--listen", "127.0.0.1:0"])).is_err(),
            "needs a scenario or a recording"
        );
        assert!(
            parse_args(&args(&[
                "serve",
                "--listen",
                "127.0.0.1:0",
                "--scenario",
                "ddos",
                "--replay",
                "c.zip"
            ]))
            .is_err(),
            "a recording carries its own scenario"
        );
        assert!(
            parse_args(&args(&[
                "serve",
                "--listen",
                "127.0.0.1:0",
                "--replay",
                "c.zip",
                "--skew-us",
                "100"
            ]))
            .is_err(),
            "skew applies to live ingestion only"
        );
        assert!(parse_args(&args(&[
            "serve",
            "--listen",
            "127.0.0.1:0",
            "--scenario",
            "ddos",
            "--windows",
            "0"
        ]))
        .is_err());
        assert!(parse_args(&args(&[
            "serve",
            "--listen",
            "127.0.0.1:0",
            "--scenario",
            "ddos",
            "--bogus"
        ]))
        .is_err());
        assert!(
            parse_args(&args(&[
                "serve",
                "--listen",
                "127.0.0.1:0",
                "--scenario",
                "ddos",
                "--speed",
                "0"
            ]))
            .is_err(),
            "a zero pace would serve nothing; rejected at parse time"
        );
        assert!(parse_args(&args(&[
            "serve",
            "--listen",
            "127.0.0.1:0",
            "--scenario",
            "ddos",
            "--keyframe-every",
            "x"
        ]))
        .is_err());
        assert!(
            parse_args(&args(&["connect"])).is_err(),
            "connect needs an address"
        );
        assert!(parse_args(&args(&["connect", "a:1", "--windows", "0"])).is_err());
        assert!(parse_args(&args(&["connect", "a:1", "--bogus"])).is_err());
        assert!(parse_args(&args(&["ingest", "--scenario", "ddos", "--skew-us"])).is_err());
        assert!(parse_args(&args(&[
            "ingest",
            "--scenario",
            "ddos",
            "--horizon-us",
            "x"
        ]))
        .is_err());
        assert!(
            parse_args(&args(&[
                "classroom",
                "--replay",
                "c.zip",
                "--skew-us",
                "5000"
            ]))
            .is_err(),
            "skew applies to live ingestion only"
        );
        assert!(
            parse_args(&args(&[
                "classroom",
                "--replay",
                "c.zip",
                "--horizon-us",
                "100"
            ]))
            .is_err(),
            "horizon applies to live ingestion only"
        );
    }

    #[test]
    fn ingest_command_streams_windows() {
        let out = run(&Command::Ingest {
            scenario: "ddos".into(),
            windows: 4,
            nodes: 256,
            seed: 7,
            shards: 2,
            batch: 2048,
            window_us: 50_000,
            horizon_us: 0,
            skew_us: 0,
            record: None,
            keyframe_every: 0,
            json: false,
            metrics_json: None,
            stats_every: 0,
            route_threads: 0,
        })
        .unwrap();
        assert!(out.contains("scenario ddos"));
        assert_eq!(out.lines().filter(|l| l.starts_with("window ")).count(), 4);
        assert!(out.contains("window   0:"));
        assert!(out.contains("window   3:"));
        assert!(out.contains("total: "));
        // Unknown scenarios name the catalog.
        let small = |scenario: &str, nodes, batch, window_us| IngestArgs {
            windows: 1,
            nodes,
            seed: 1,
            batch,
            window_us,
            ..IngestArgs::new(scenario)
        };
        let err = run_ingest(&small("wat", 256, 128, 1_000)).unwrap_err();
        assert!(err.0.contains("known scenarios"));
        assert!(
            run_ingest(&small("ddos", 4, 128, 1_000)).is_err(),
            "tiny address space"
        );
        assert!(
            run_ingest(&small("ddos", 256, 0, 1_000)).is_err(),
            "zero batch"
        );
        assert!(
            run_ingest(&small("ddos", 256, 128, 0)).is_err(),
            "zero window"
        );
    }

    #[test]
    fn ingest_with_skew_and_horizon_loses_nothing() {
        // The ISSUE's acceptance smoke: a skewed DDoS stream with a horizon
        // covering the disorder bound (5000 + 5000/4 = 6250 <= 20000)
        // ingests with zero late drops and a busy reordered counter.
        let out = run_ingest(&IngestArgs {
            windows: 3,
            nodes: 256,
            shards: 2,
            window_us: 50_000,
            horizon_us: 20_000,
            skew_us: 5_000,
            ..IngestArgs::new("ddos")
        })
        .unwrap();
        assert!(
            out.contains(
                "clock skew up to 5000 us (max disorder 6250 us), reorder horizon 20000 us"
            ),
            "{out}"
        );
        assert!(out.contains(" 0 late"), "{out}");
        assert!(!out.contains(" 0 reordered,"), "{out}");
        assert!(!out.contains("WARNING"), "{out}");

        // An undersized horizon warns up front and reports its drops.
        let out = run_ingest(&IngestArgs {
            windows: 3,
            nodes: 256,
            window_us: 50_000,
            horizon_us: 100,
            skew_us: 20_000,
            ..IngestArgs::new("ddos")
        })
        .unwrap();
        assert!(
            out.contains("WARNING: horizon below the disorder bound"),
            "{out}"
        );
    }

    #[test]
    fn record_then_replay_round_trips_the_window_stream() {
        let dir = std::env::temp_dir().join(format!("tw-cli-replay-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let zip = dir.join("ddos.zip").to_string_lossy().into_owned();

        let ingest_out = run(&Command::Ingest {
            scenario: "ddos".into(),
            windows: 8,
            nodes: 256,
            seed: 7,
            shards: 2,
            batch: 2048,
            window_us: 50_000,
            horizon_us: 0,
            skew_us: 0,
            record: Some(zip.clone()),
            keyframe_every: 0,
            json: false,
            metrics_json: None,
            stats_every: 0,
            route_threads: 0,
        })
        .unwrap();
        assert!(ingest_out.contains("recorded 8 window(s)"), "{ingest_out}");

        let replay_out = run(&Command::Replay {
            path: zip.clone(),
            speed: 0,
        })
        .unwrap();
        assert!(replay_out.contains("replaying"), "{replay_out}");
        assert!(replay_out.contains("(ddos)"));
        assert!(replay_out.contains("8 window(s)"));
        assert!(replay_out.contains("replayed 8 window(s) onto the live warehouse"));

        // The replayed per-window lines reproduce the recorded statistics
        // exactly: same window indices, events, packets, nnz (the trailing
        // wall-clock columns are recorded values too, so whole lines match).
        let window_lines = |text: &str| -> Vec<String> {
            text.lines()
                .filter(|l| l.starts_with("window "))
                .map(str::to_string)
                .collect()
        };
        assert_eq!(window_lines(&ingest_out), window_lines(&replay_out));

        // Paced playback streams each line to stdout as it replays, so the
        // returned (buffered) transcript is empty.
        let paced = run_replay(&zip, 1_000).unwrap();
        assert!(paced.is_empty(), "paced replay must stream, not buffer");

        // Recording refuses address spaces beyond the window codec's limit
        // up front instead of panicking mid-capture.
        let err = run_ingest(&IngestArgs {
            windows: 1,
            nodes: u32::MAX,
            seed: 1,
            batch: 128,
            window_us: 1_000,
            record: Some("never.zip".into()),
            ..IngestArgs::new("ddos")
        })
        .unwrap_err();
        assert!(err.0.contains("codec"), "{err}");

        // Replaying garbage fails cleanly.
        let junk = dir.join("junk.zip").to_string_lossy().into_owned();
        std::fs::write(&junk, b"not a zip").unwrap();
        assert!(run_replay(&junk, 0).is_err());
        assert!(run_replay(dir.join("missing.zip").to_string_lossy().as_ref(), 0).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn delta_recordings_replay_like_full_ones() {
        // A cadence-3 archive (key frames at w0/w3/w6, deltas between)
        // replays the identical per-window statistics lines.
        let dir = std::env::temp_dir().join(format!("tw-cli-delta-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let zip = dir.join("delta.zip").to_string_lossy().into_owned();
        let ingest_out = run_ingest(&IngestArgs {
            windows: 7,
            nodes: 256,
            shards: 2,
            batch: 2048,
            window_us: 50_000,
            record: Some(zip.clone()),
            keyframe_every: 3,
            ..IngestArgs::new("ddos")
        })
        .unwrap();
        assert!(ingest_out.contains("recorded 7 window(s)"), "{ingest_out}");
        let replay_out = run_replay(&zip, 0).unwrap();
        assert!(
            replay_out.contains("replayed 7 window(s) onto the live warehouse"),
            "{replay_out}"
        );
        let window_lines = |text: &str| -> Vec<String> {
            text.lines()
                .filter(|l| l.starts_with("window "))
                .map(str::to_string)
                .collect()
        };
        assert_eq!(window_lines(&ingest_out), window_lines(&replay_out));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn scenarios_lists_the_whole_catalog() {
        let out = run(&Command::Scenarios).unwrap();
        use tw_core::ingest::Scenario;
        for scenario in Scenario::all() {
            assert!(out.contains(scenario.name()), "{out}");
            assert!(out.contains(scenario.describe()), "{out}");
        }
        assert!(out.contains("classroom"));
    }

    #[test]
    fn classroom_serves_live_and_replayed_scenarios() {
        // Live: 6 students, one late, 3 windows.
        let out = run_classroom(&ClassroomArgs {
            scenario: Some("ddos".into()),
            replay: None,
            students: 6,
            windows: Some(3),
            nodes: 128,
            seed: 7,
            shards: 2,
            window_us: 50_000,
            horizon_us: 0,
            skew_us: 0,
            speed: 0,
            late: Some(1),
            metrics_json: None,
            stats_every: 0,
            route_threads: 0,
        })
        .unwrap();
        assert!(
            out.contains("6 student(s) (5 on time, 1 late at w1)"),
            "{out}"
        );
        assert_eq!(
            out.lines().filter(|l| l.contains("student ")).count(),
            6,
            "{out}"
        );
        assert!(out.contains("3 window(s) served once to 6 subscriber(s)"));
        // On-time students saw all 3 windows; the late one joined at w1.
        assert!(out.contains("joined w0       3 window(s)"), "{out}");
        assert!(out.contains("joined w1       2 window(s)"), "{out}");

        // Replay: record 4 windows, broadcast the file to 4 students.
        let dir = std::env::temp_dir().join(format!("tw-cli-classroom-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let zip = dir.join("class.zip").to_string_lossy().into_owned();
        run_ingest(&IngestArgs {
            windows: 4,
            nodes: 128,
            seed: 3,
            shards: 2,
            batch: 2048,
            window_us: 50_000,
            record: Some(zip.clone()),
            ..IngestArgs::new("scan")
        })
        .unwrap();
        let out = run_classroom(&ClassroomArgs {
            scenario: None,
            replay: Some(zip.clone()),
            students: 4,
            windows: None,
            nodes: 256,
            seed: 7,
            shards: 0,
            window_us: 100_000,
            horizon_us: 0,
            skew_us: 0,
            speed: 0,
            late: Some(0),
            metrics_json: None,
            stats_every: 0,
            route_threads: 0,
        })
        .unwrap();
        assert!(out.contains("scan (replayed from"), "{out}");
        assert!(out.contains("4 window(s) served once to 4 subscriber(s)"));
        assert!(out.contains("(4 on time, 0 late"), "{out}");

        // Errors: unknown scenario, missing recording, tiny address space.
        let bad = |scenario: Option<&str>, replay: Option<String>, nodes| {
            run_classroom(&ClassroomArgs {
                scenario: scenario.map(String::from),
                replay,
                students: 2,
                windows: Some(1),
                nodes,
                seed: 1,
                shards: 0,
                window_us: 1_000,
                horizon_us: 0,
                skew_us: 0,
                speed: 0,
                late: None,
                metrics_json: None,
                stats_every: 0,
                route_threads: 0,
            })
        };
        assert!(bad(Some("wat"), None, 128)
            .unwrap_err()
            .0
            .contains("known scenarios"));
        assert!(bad(
            None,
            Some(dir.join("gone.zip").to_string_lossy().into_owned()),
            128
        )
        .is_err());
        assert!(bad(Some("ddos"), None, 4).is_err(), "tiny address space");

        // A skewed live classroom: the whole class still sees every window.
        let out = run_classroom(&ClassroomArgs {
            scenario: Some("ddos".into()),
            replay: None,
            students: 3,
            windows: Some(2),
            nodes: 128,
            seed: 7,
            shards: 2,
            window_us: 50_000,
            horizon_us: 20_000,
            skew_us: 5_000,
            speed: 0,
            late: Some(0),
            metrics_json: None,
            stats_every: 0,
            route_threads: 0,
        })
        .unwrap();
        assert!(
            out.contains("clock skew 5000 us, horizon 20000 us"),
            "{out}"
        );
        assert!(!out.contains("WARNING"), "covered horizon: {out}");
        assert!(out.contains("2 window(s) served once to 3 subscriber(s)"));

        // An undersized horizon warns up front, like `ingest` does.
        let out = run_classroom(&ClassroomArgs {
            scenario: Some("ddos".into()),
            replay: None,
            students: 1,
            windows: Some(1),
            nodes: 128,
            seed: 7,
            shards: 1,
            window_us: 50_000,
            horizon_us: 100,
            skew_us: 20_000,
            speed: 0,
            late: Some(0),
            metrics_json: None,
            stats_every: 0,
            route_threads: 0,
        })
        .unwrap();
        assert!(
            out.contains("WARNING: horizon below the disorder bound"),
            "{out}"
        );

        // Programmatic callers hit the same skew-vs-replay guard as the parser.
        let err = run_classroom(&ClassroomArgs {
            scenario: None,
            replay: Some(zip.clone()),
            students: 1,
            windows: Some(1),
            nodes: 128,
            seed: 1,
            shards: 0,
            window_us: 1_000,
            horizon_us: 0,
            skew_us: 5_000,
            speed: 0,
            late: None,
            metrics_json: None,
            stats_every: 0,
            route_threads: 0,
        })
        .unwrap_err();
        assert!(err.0.contains("live ingestion"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn serve_and_connect_round_trip_over_loopback() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let args = ServeArgs {
            scenario: Some("ddos".into()),
            students: 2,
            windows: Some(3),
            nodes: 128,
            shards: 2,
            window_us: 50_000,
            ..ServeArgs::new("127.0.0.1:0")
        };
        let (serve_out, client_outs) = std::thread::scope(|scope| {
            let clients: Vec<_> = (0..2)
                .map(|_| {
                    let addr = addr.clone();
                    scope.spawn(move || run_connect(&addr, None, false).unwrap())
                })
                .collect();
            let out = run_serve_on(listener, &args).unwrap();
            let outs: Vec<String> = clients.into_iter().map(|c| c.join().unwrap()).collect();
            (out, outs)
        });
        assert!(serve_out.contains("served 3 window(s)"), "{serve_out}");
        assert!(
            serve_out.contains("telemetry event(s) evicted"),
            "{serve_out}"
        );
        assert_eq!(
            serve_out.lines().filter(|l| l.contains("student ")).count(),
            2,
            "{serve_out}"
        );
        assert!(!serve_out.contains("WARNING"), "{serve_out}");
        for out in &client_outs {
            assert!(out.contains("connected to"), "{out}");
            assert_eq!(
                out.lines().filter(|l| l.starts_with("window ")).count(),
                3,
                "{out}"
            );
            assert!(
                out.contains("delivered 3 dropped 0 missed 0 (saw 3)"),
                "{out}"
            );
        }

        // Error paths: an unbindable address, an unreachable server, and the
        // same stream validation the classroom applies.
        assert!(run_serve(&ServeArgs {
            scenario: Some("ddos".into()),
            ..ServeArgs::new("256.0.0.1:0")
        })
        .is_err());
        assert!(
            run_connect("127.0.0.1:1", None, false).is_err(),
            "nothing listens"
        );
        assert!(run_serve(&ServeArgs {
            scenario: Some("wat".into()),
            ..ServeArgs::new("127.0.0.1:0")
        })
        .unwrap_err()
        .0
        .contains("known scenarios"));
        assert!(
            run_serve(&ServeArgs {
                scenario: Some("ddos".into()),
                nodes: 4,
                ..ServeArgs::new("127.0.0.1:0")
            })
            .is_err(),
            "tiny address space"
        );
    }

    #[test]
    fn serve_streams_stats_frames_that_connect_can_print() {
        use tw_core::metrics::MetricsSnapshot;
        let dir = std::env::temp_dir().join(format!("tw-cli-wire-stats-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("serve.json").to_string_lossy().into_owned();

        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let args = ServeArgs {
            scenario: Some("ddos".into()),
            students: 1,
            windows: Some(3),
            nodes: 128,
            shards: 2,
            window_us: 50_000,
            metrics_json: Some(path.clone()),
            stats_every: 1,
            ..ServeArgs::new("127.0.0.1:0")
        };
        let (serve_out, client_out) = std::thread::scope(|scope| {
            let client = {
                let addr = addr.clone();
                scope.spawn(move || run_connect(&addr, None, true).unwrap())
            };
            let out = run_serve_on(listener, &args).unwrap();
            (out, client.join().unwrap())
        });

        // The client printed interleaved one-line snapshots: one per window
        // plus the final frame.
        assert_eq!(
            client_out
                .lines()
                .filter(|l| l.starts_with("stats: "))
                .count(),
            4,
            "{client_out}"
        );
        assert!(
            client_out.contains("received 4 stats frame(s)"),
            "{client_out}"
        );
        assert!(
            client_out.contains("serve.windows_encoded=3"),
            "the final wire snapshot carries the full encode count: {client_out}"
        );

        // The server wrote the same final snapshot to disk, and its books
        // balance: windows encoded == delivered + dropped + missed per peer.
        assert!(serve_out.contains("metrics: "), "{serve_out}");
        let text = std::fs::read_to_string(&path).unwrap();
        let snapshot = MetricsSnapshot::from_json(&tw_core::json::parse(&text).unwrap()).unwrap();
        let encoded = snapshot.counter("serve.windows_encoded");
        assert_eq!(encoded, 3);
        assert_eq!(
            snapshot.counter("serve.peer.0.delivered")
                + snapshot.counter("serve.peer.0.dropped")
                + snapshot.counter("serve.peer.0.missed"),
            encoded,
            "{snapshot:?}"
        );
        assert_eq!(snapshot.counter("serve.connections"), 1);
        assert_eq!(snapshot.counter("pipeline.windows"), 3);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn validate_and_render_helpers() {
        let module = tw_core::module::template_10x10();
        let report = render_validation(&module);
        assert!(report.contains("OK, no issues"));

        let (ascii_2d, ppm_2d) = render_module(&module, false, true);
        assert!(ascii_2d.contains("WS1"));
        assert!(ppm_2d.starts_with(b"P6\n"));
        let (ascii_3d, ppm_3d) = render_module(&module, true, true);
        assert!(!ascii_3d.is_empty());
        assert!(ppm_3d.len() > ppm_2d.len() / 4);
    }

    #[test]
    fn play_transcript_reports_the_score() {
        let bundle = tw_core::module::library::figure_bundle(Figure::Posture);
        let transcript = play_bundle(bundle, 3).unwrap();
        assert!(transcript.contains("3/3 correct"));
        assert!(transcript.contains("Security"));
        assert!(transcript.contains("Deterrence"));
    }

    #[test]
    fn curriculum_and_figures_render() {
        let curriculum = render_curriculum();
        assert!(curriculum.contains("DDoS"));
        assert!(curriculum.contains("requires"));
        let figures = render_figures();
        assert!(figures.contains("Figure 10: Graph Theory"));
        assert!(figures.contains("ddos/attack"));
    }

    #[test]
    fn file_commands_round_trip_through_a_temp_directory() {
        let dir = std::env::temp_dir().join(format!("tw-cli-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let module_path = dir.join("module.json");
        std::fs::write(&module_path, tw_core::module::template_6x6().to_json()).unwrap();

        let validate_out = run(&Command::Validate {
            path: module_path.to_string_lossy().into_owned(),
        })
        .unwrap();
        assert!(validate_out.contains("OK"));

        let obfuscated = run(&Command::Obfuscate {
            path: module_path.to_string_lossy().into_owned(),
        })
        .unwrap();
        assert!(obfuscated.contains("correct_answer_token"));

        let export_out = run(&Command::ExportLibrary {
            directory: dir.join("library").to_string_lossy().into_owned(),
        })
        .unwrap();
        assert_eq!(export_out.lines().count(), 6);
        let play_target = dir.join("library/ddos_attack.zip");
        assert!(play_target.exists());
        let play_out = run(&Command::Play {
            path: play_target.to_string_lossy().into_owned(),
            seed: 1,
        })
        .unwrap();
        assert!(play_out.contains("4/4 correct"));

        let missing = run(&Command::Validate {
            path: dir.join("nope.json").to_string_lossy().into_owned(),
        });
        assert!(missing.is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
