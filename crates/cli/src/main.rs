//! The `traffic-warehouse` binary entry point.
//!
//! Argument errors get the full usage text; runtime failures (a missing
//! file, a refused connection, a `--deny-warnings` analyze run) print only
//! the error so the cause is not buried under a screenful of help.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = match tw_cli::parse_args(&args) {
        Ok(command) => command,
        Err(error) => {
            eprintln!("error: {error}");
            eprintln!("{}", tw_cli::USAGE);
            std::process::exit(2);
        }
    };
    match tw_cli::run(&command) {
        Ok(output) => print!("{output}"),
        Err(error) => {
            eprintln!("error: {error}");
            std::process::exit(1);
        }
    }
}
