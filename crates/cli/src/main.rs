//! The `traffic-warehouse` binary entry point.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match tw_cli::parse_args(&args).and_then(|command| tw_cli::run(&command)) {
        Ok(output) => print!("{output}"),
        Err(error) => {
            eprintln!("error: {error}");
            eprintln!("{}", tw_cli::USAGE);
            std::process::exit(1);
        }
    }
}
