//! Parsing stored-entry ZIP archives from memory.

use crate::crc32::crc32;
use crate::error::{ArchiveError, Result};
use crate::writer::{
    validate_entry_name, CENTRAL_DIR_HEADER_SIG, END_OF_CENTRAL_DIR_SIG, LOCAL_FILE_HEADER_SIG,
};

/// One entry in a parsed archive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ZipEntry {
    /// The entry's path inside the archive (always relative, `/`-separated).
    pub name: String,
    /// Uncompressed size in bytes.
    pub size: u32,
    /// CRC-32 of the entry data as recorded in the central directory.
    pub crc: u32,
    /// Byte offset of the local file header within the archive.
    pub(crate) offset: u32,
}

/// A parsed, validated ZIP archive held in memory.
///
/// Parsing walks the central directory, validates every local header and
/// checks every entry's CRC up front, so `read` cannot fail after a
/// successful `parse` (other than for unknown names).
#[derive(Debug)]
pub struct ZipReader<'a> {
    data: &'a [u8],
    entries: Vec<ZipEntry>,
    /// Entry name → index into `entries`, so `read` is O(log n) — window
    /// recordings are looked up once per window and can hold tens of
    /// thousands of entries.
    index: std::collections::BTreeMap<String, usize>,
}

impl<'a> ZipReader<'a> {
    /// Parse and validate an archive.
    ///
    /// The central directory is walked from its recorded offset up to the
    /// end-of-central-directory record, and the number of entries actually
    /// walked must equal the entry count the EOCD declares — archives whose
    /// EOCD was truncated (e.g. a 16-bit wrap of a >65,535-entry count)
    /// are rejected instead of silently losing entries.
    pub fn parse(data: &'a [u8]) -> Result<Self> {
        let eocd = find_end_of_central_directory(data)?;
        let declared = read_u16(data, eocd + 10)? as usize;
        let central_dir_offset = read_u32(data, eocd + 16)? as usize;
        if central_dir_offset > eocd {
            return Err(ArchiveError::Truncated("central directory"));
        }

        let (entries, index) = walk_central_directory(&data[central_dir_offset..eocd], declared)?;

        let reader = ZipReader {
            data,
            entries,
            index,
        };
        // Validate every entry's local header and CRC eagerly.
        for entry in &reader.entries {
            let bytes = reader.entry_data(entry)?;
            let actual = crc32(bytes);
            if actual != entry.crc {
                return Err(ArchiveError::CrcMismatch {
                    name: entry.name.clone(),
                    expected: entry.crc,
                    actual,
                });
            }
        }
        Ok(reader)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the archive holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entries in central-directory order.
    pub fn entries(&self) -> &[ZipEntry] {
        &self.entries
    }

    /// Entry names in central-directory order.
    pub fn entry_names(&self) -> impl Iterator<Item = &str> {
        self.entries.iter().map(|e| e.name.as_str())
    }

    /// Read the contents of a named entry.
    pub fn read(&self, name: &str) -> Result<&'a [u8]> {
        let entry = self
            .index
            .get(name)
            .map(|&i| &self.entries[i])
            .ok_or_else(|| ArchiveError::EntryNotFound(name.to_string()))?;
        self.entry_data(entry)
    }

    /// Read the contents of a named entry as UTF-8 text.
    pub fn read_text(&self, name: &str) -> Result<&'a str> {
        let bytes = self.read(name)?;
        std::str::from_utf8(bytes).map_err(|_| ArchiveError::InvalidEntryName)
    }

    fn entry_data(&self, entry: &ZipEntry) -> Result<&'a [u8]> {
        let off = entry.offset as usize;
        let sig = read_u32(self.data, off)?;
        if sig != LOCAL_FILE_HEADER_SIG {
            return Err(ArchiveError::BadSignature(LOCAL_FILE_HEADER_SIG, sig));
        }
        let method = read_u16(self.data, off + 8)?;
        if method != 0 {
            return Err(ArchiveError::UnsupportedCompression(method));
        }
        let name_len = read_u16(self.data, off + 26)? as usize;
        let extra_len = read_u16(self.data, off + 28)? as usize;
        let data_start = off + 30 + name_len + extra_len;
        slice(self.data, data_start, entry.size as usize, "entry data")
    }
}

/// Walk a central directory held in `cd` (the byte range between the
/// directory's recorded offset and the end-of-central-directory record) and
/// return the validated entry table plus its name index. Shared by the
/// in-memory [`ZipReader`] and the seekable
/// [`SeekZipReader`](crate::seek::SeekZipReader).
pub(crate) fn walk_central_directory(
    cd: &[u8],
    declared: usize,
) -> Result<(Vec<ZipEntry>, std::collections::BTreeMap<String, usize>)> {
    let mut entries = Vec::with_capacity(declared.min(65_535));
    let mut index = std::collections::BTreeMap::new();
    let mut cursor = 0usize;
    while cursor != cd.len() {
        let sig = read_u32(cd, cursor)?;
        if sig != CENTRAL_DIR_HEADER_SIG {
            return Err(ArchiveError::BadSignature(CENTRAL_DIR_HEADER_SIG, sig));
        }
        let method = read_u16(cd, cursor + 10)?;
        if method != 0 {
            return Err(ArchiveError::UnsupportedCompression(method));
        }
        let crc = read_u32(cd, cursor + 16)?;
        let size = read_u32(cd, cursor + 24)?;
        let name_len = read_u16(cd, cursor + 28)? as usize;
        let extra_len = read_u16(cd, cursor + 30)? as usize;
        let comment_len = read_u16(cd, cursor + 32)? as usize;
        let local_offset = read_u32(cd, cursor + 42)?;
        let name_start = cursor + 46;
        let name_bytes = slice(cd, name_start, name_len, "central directory entry name")?;
        let name = std::str::from_utf8(name_bytes)
            .map_err(|_| ArchiveError::InvalidEntryName)?
            .to_string();
        validate_entry_name(&name)?;
        if index.insert(name.clone(), entries.len()).is_some() {
            return Err(ArchiveError::DuplicateEntry(name));
        }
        entries.push(ZipEntry {
            name,
            size,
            crc,
            offset: local_offset,
        });
        cursor = name_start + name_len + extra_len + comment_len;
        if cursor > cd.len() {
            return Err(ArchiveError::Truncated("central directory entry"));
        }
    }
    if entries.len() != declared {
        return Err(ArchiveError::EntryCountMismatch {
            declared,
            walked: entries.len(),
        });
    }
    Ok((entries, index))
}

fn find_end_of_central_directory(data: &[u8]) -> Result<usize> {
    // The EOCD record is 22 bytes plus an optional comment of up to 65535
    // bytes; scan backwards for its signature.
    if data.len() < 22 {
        return Err(ArchiveError::MissingEndOfCentralDirectory);
    }
    let min = data.len().saturating_sub(22 + 65_535);
    let mut pos = data.len() - 22;
    loop {
        if read_u32(data, pos)? == END_OF_CENTRAL_DIR_SIG {
            return Ok(pos);
        }
        if pos == min {
            return Err(ArchiveError::MissingEndOfCentralDirectory);
        }
        pos -= 1;
    }
}

pub(crate) fn slice<'a>(
    data: &'a [u8],
    start: usize,
    len: usize,
    what: &'static str,
) -> Result<&'a [u8]> {
    data.get(
        start
            ..start
                .checked_add(len)
                .ok_or(ArchiveError::Truncated(what))?,
    )
    .ok_or(ArchiveError::Truncated(what))
}

pub(crate) fn read_u16(data: &[u8], offset: usize) -> Result<u16> {
    let b = slice(data, offset, 2, "u16 field")?;
    Ok(u16::from_le_bytes([b[0], b[1]]))
}

pub(crate) fn read_u32(data: &[u8], offset: usize) -> Result<u32> {
    let b = slice(data, offset, 4, "u32 field")?;
    Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::ZipWriter;

    fn sample() -> Vec<u8> {
        let mut w = ZipWriter::new();
        w.add_file("train.json", b"{\"name\":\"Training\"}")
            .unwrap();
        w.add_file("modules/ddos.json", b"{\"name\":\"DDoS\"}")
            .unwrap();
        w.finish().unwrap()
    }

    #[test]
    fn rejects_eocd_entry_count_mismatch() {
        // The sample holds 2 entries; the EOCD count field is at EOCD+10.
        // An understating count (what the old `as u16` truncation produced
        // for >65,535-entry archives) must be rejected, not silently obeyed.
        for wrong in [0u16, 1, 3, 200] {
            let mut bytes = sample();
            let eocd = bytes.len() - 22;
            bytes[eocd + 10..eocd + 12].copy_from_slice(&wrong.to_le_bytes());
            assert_eq!(
                ZipReader::parse(&bytes).unwrap_err(),
                ArchiveError::EntryCountMismatch {
                    declared: wrong as usize,
                    walked: 2
                },
                "declared {wrong}"
            );
        }
    }

    #[test]
    fn reads_entries_and_text() {
        let bytes = sample();
        let r = ZipReader::parse(&bytes).unwrap();
        assert_eq!(r.len(), 2);
        assert_eq!(
            r.read_text("train.json").unwrap(),
            "{\"name\":\"Training\"}"
        );
        assert_eq!(r.entries()[1].name, "modules/ddos.json");
        assert_eq!(r.entries()[1].size, 15);
    }

    #[test]
    fn unknown_entry_errors() {
        let bytes = sample();
        let r = ZipReader::parse(&bytes).unwrap();
        assert_eq!(
            r.read("missing.json").unwrap_err(),
            ArchiveError::EntryNotFound("missing.json".to_string())
        );
    }

    #[test]
    fn rejects_non_zip_data() {
        assert_eq!(
            ZipReader::parse(b"this is not a zip").unwrap_err(),
            ArchiveError::MissingEndOfCentralDirectory
        );
        assert_eq!(
            ZipReader::parse(b"").unwrap_err(),
            ArchiveError::MissingEndOfCentralDirectory
        );
    }

    #[test]
    fn detects_corrupted_entry_data() {
        let mut bytes = sample();
        // Flip a byte inside the first entry's data region (after the 30-byte
        // header + 10-byte name).
        bytes[30 + 10 + 2] ^= 0xFF;
        match ZipReader::parse(&bytes) {
            Err(ArchiveError::CrcMismatch { name, .. }) => assert_eq!(name, "train.json"),
            other => panic!("expected CRC mismatch, got {other:?}"),
        }
    }

    #[test]
    fn detects_truncated_archive() {
        let bytes = sample();
        let truncated = &bytes[..bytes.len() - 10];
        assert!(ZipReader::parse(truncated).is_err());
    }

    #[test]
    fn rejects_deflate_entries() {
        let mut bytes = sample();
        // Patch the compression method of the first central directory entry.
        // Find central dir by signature scan.
        let sig = CENTRAL_DIR_HEADER_SIG.to_le_bytes();
        let pos = bytes.windows(4).position(|w| w == sig).unwrap();
        bytes[pos + 10] = 8; // deflate
        assert_eq!(
            ZipReader::parse(&bytes).unwrap_err(),
            ArchiveError::UnsupportedCompression(8)
        );
    }
}
