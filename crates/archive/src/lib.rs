//! # tw-archive
//!
//! Minimal ZIP archive support for Traffic Warehouse learning-module bundles.
//!
//! The paper distributes learning modules as "a zip file containing multiple
//! JSON files that the user can select and load into the game" (§II). Module
//! files are tiny plain-text JSON, so compression buys nothing; this crate
//! implements the ZIP container format with **stored** (uncompressed) entries
//! only, which keeps the bundle a valid `.zip` that standard tools can open
//! while keeping the implementation dependency-free and easy to audit — the
//! paper explicitly values the ability to review module content "quickly and
//! efficiently" for restricted environments.
//!
//! ```
//! use tw_archive::{ZipWriter, ZipReader};
//!
//! let mut w = ZipWriter::new();
//! w.add_file("lesson1.json", br#"{"name":"Lesson 1"}"#).unwrap();
//! w.add_file("lesson2.json", br#"{"name":"Lesson 2"}"#).unwrap();
//! let bytes = w.finish().unwrap();
//!
//! let r = ZipReader::parse(&bytes).unwrap();
//! assert_eq!(r.entry_names().collect::<Vec<_>>(), vec!["lesson1.json", "lesson2.json"]);
//! assert_eq!(r.read("lesson2.json").unwrap(), br#"{"name":"Lesson 2"}"#);
//! ```

pub mod crc32;
pub mod error;
pub mod reader;
pub mod seek;
pub mod writer;

pub use crc32::crc32;
pub use error::{ArchiveError, Result};
pub use reader::{ZipEntry, ZipReader};
pub use seek::SeekZipReader;
pub use writer::ZipWriter;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_archive_round_trips() {
        let bytes = ZipWriter::new().finish().unwrap();
        let r = ZipReader::parse(&bytes).unwrap();
        assert_eq!(r.len(), 0);
        assert!(r.is_empty());
    }

    #[test]
    fn many_entries_round_trip() {
        let mut w = ZipWriter::new();
        let mut expected = Vec::new();
        for i in 0..64 {
            let name = format!("modules/lesson_{i:02}.json");
            let body = format!("{{\"name\":\"Lesson {i}\",\"size\":\"10x10\"}}").into_bytes();
            w.add_file(&name, &body).unwrap();
            expected.push((name, body));
        }
        let bytes = w.finish().unwrap();
        let r = ZipReader::parse(&bytes).unwrap();
        assert_eq!(r.len(), 64);
        for (name, body) in expected {
            assert_eq!(r.read(&name).unwrap(), body.as_slice());
        }
    }
}
