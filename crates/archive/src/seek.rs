//! Reading stored-entry ZIP archives from a seekable source.
//!
//! [`ZipReader`](crate::ZipReader) needs the whole archive in memory and
//! validates every entry's CRC up front — right for module bundles, wrong for
//! hour-long window recordings that should stream from disk one window at a
//! time. [`SeekZipReader`] parses only the end-of-central-directory record
//! and the central directory eagerly (a tail read plus one directory read),
//! then reads and CRC-checks individual entries on demand with one seek each,
//! so memory use is bounded by the directory and the largest single entry
//! rather than the archive size.

use crate::crc32::crc32;
use crate::error::{ArchiveError, Result};
use crate::reader::{read_u16, read_u32, walk_central_directory, ZipEntry};
use crate::writer::{CENTRAL_DIR_HEADER_SIG, END_OF_CENTRAL_DIR_SIG, LOCAL_FILE_HEADER_SIG};
use std::collections::BTreeMap;
use std::io::{Read, Seek, SeekFrom};

/// The fixed portion of the end-of-central-directory record.
const EOCD_LEN: usize = 22;
/// An EOCD record may be followed by a comment of up to 65,535 bytes.
const MAX_COMMENT: usize = 65_535;

/// A ZIP archive parsed from a seekable source (`std::fs::File`,
/// `std::io::Cursor`, …), reading entries lazily.
///
/// The central directory is walked and validated at construction — the same
/// checks as [`ZipReader`](crate::ZipReader), including the declared-count
/// cross-check — but entry payloads stay on disk until [`read`](Self::read)
/// is called, which validates the local header and the CRC of just that
/// entry. Unlike `ZipReader`, corruption inside an entry is therefore only
/// detected when the entry is actually read.
#[derive(Debug)]
pub struct SeekZipReader<R: Read + Seek> {
    source: R,
    entries: Vec<ZipEntry>,
    index: BTreeMap<String, usize>,
}

impl<R: Read + Seek> SeekZipReader<R> {
    /// Parse the end-of-central-directory record and central directory from
    /// a seekable source.
    pub fn parse(mut source: R) -> Result<Self> {
        let total = source.seek(SeekFrom::End(0))?;
        if total < EOCD_LEN as u64 {
            return Err(ArchiveError::MissingEndOfCentralDirectory);
        }
        // Read the archive tail (EOCD plus the largest possible comment) and
        // scan backwards for the signature, exactly like the in-memory path.
        let tail_len = (total as usize).min(EOCD_LEN + MAX_COMMENT);
        let tail_start = total - tail_len as u64;
        source.seek(SeekFrom::Start(tail_start))?;
        let mut tail = vec![0u8; tail_len];
        source.read_exact(&mut tail)?;
        let eocd_in_tail = find_eocd_in_tail(&tail)?;

        let declared = read_u16(&tail, eocd_in_tail + 10)? as usize;
        let cd_offset = read_u32(&tail, eocd_in_tail + 16)? as u64;
        let eocd_abs = tail_start + eocd_in_tail as u64;
        if cd_offset > eocd_abs {
            return Err(ArchiveError::Truncated("central directory"));
        }

        // The central directory spans [cd_offset, eocd_abs): read exactly
        // that region (it may already be inside the tail buffer, but one
        // extra bounded read keeps the logic simple and the memory bounded
        // by the directory size). Probe the first signature before
        // committing to the read: a corrupt cd_offset (e.g. zeroed) would
        // otherwise make this "bounded" reader slurp nearly the whole
        // archive just to fail in walk_central_directory.
        let cd_len = (eocd_abs - cd_offset) as usize;
        source.seek(SeekFrom::Start(cd_offset))?;
        if cd_len >= 4 {
            let mut probe = [0u8; 4];
            source.read_exact(&mut probe)?;
            let sig = read_u32(&probe, 0)?;
            if sig != CENTRAL_DIR_HEADER_SIG {
                return Err(ArchiveError::BadSignature(CENTRAL_DIR_HEADER_SIG, sig));
            }
            source.seek(SeekFrom::Start(cd_offset))?;
        }
        // `take` + read_to_end grows incrementally, so even a lying span
        // only allocates what the source actually holds.
        let mut cd = Vec::new();
        Read::take(&mut source, cd_len as u64).read_to_end(&mut cd)?;
        if cd.len() != cd_len {
            return Err(ArchiveError::Truncated("central directory"));
        }
        let (entries, index) = walk_central_directory(&cd, declared)?;

        Ok(SeekZipReader {
            source,
            entries,
            index,
        })
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the archive holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entries in central-directory order.
    pub fn entries(&self) -> &[ZipEntry] {
        &self.entries
    }

    /// Entry names in central-directory order.
    pub fn entry_names(&self) -> impl Iterator<Item = &str> {
        self.entries.iter().map(|e| e.name.as_str())
    }

    /// Whether the archive contains an entry with this exact name.
    pub fn has_entry(&self, name: &str) -> bool {
        self.index.contains_key(name)
    }

    /// Read one entry's contents from the source (one seek, one bounded
    /// read), validating its local header and CRC.
    pub fn read(&mut self, name: &str) -> Result<Vec<u8>> {
        let entry = self
            .index
            .get(name)
            .map(|&i| self.entries[i].clone())
            .ok_or_else(|| ArchiveError::EntryNotFound(name.to_string()))?;

        self.source.seek(SeekFrom::Start(entry.offset as u64))?;
        let mut header = [0u8; 30];
        self.source
            .read_exact(&mut header)
            .map_err(|_| ArchiveError::Truncated("local file header"))?;
        let sig = read_u32(&header, 0)?;
        if sig != LOCAL_FILE_HEADER_SIG {
            return Err(ArchiveError::BadSignature(LOCAL_FILE_HEADER_SIG, sig));
        }
        let method = read_u16(&header, 8)?;
        if method != 0 {
            return Err(ArchiveError::UnsupportedCompression(method));
        }
        let name_len = read_u16(&header, 26)? as u64;
        let extra_len = read_u16(&header, 28)? as u64;
        self.source
            .seek(SeekFrom::Current((name_len + extra_len) as i64))?;
        // Read incrementally via `take` rather than pre-allocating the
        // declared size: a corrupt directory claiming a 4 GiB entry then
        // allocates only what the source actually holds before failing.
        let mut data = Vec::new();
        Read::take(&mut self.source, entry.size as u64).read_to_end(&mut data)?;
        if data.len() != entry.size as usize {
            return Err(ArchiveError::Truncated("entry data"));
        }
        let actual = crc32(&data);
        if actual != entry.crc {
            return Err(ArchiveError::CrcMismatch {
                name: entry.name,
                expected: entry.crc,
                actual,
            });
        }
        Ok(data)
    }

    /// Read one entry as UTF-8 text.
    pub fn read_text(&mut self, name: &str) -> Result<String> {
        let bytes = self.read(name)?;
        String::from_utf8(bytes).map_err(|_| ArchiveError::InvalidEntryName)
    }
}

/// Locate the EOCD signature scanning the tail buffer backwards.
fn find_eocd_in_tail(tail: &[u8]) -> Result<usize> {
    if tail.len() < EOCD_LEN {
        return Err(ArchiveError::MissingEndOfCentralDirectory);
    }
    let mut pos = tail.len() - EOCD_LEN;
    loop {
        if read_u32(tail, pos)? == END_OF_CENTRAL_DIR_SIG {
            return Ok(pos);
        }
        if pos == 0 {
            return Err(ArchiveError::MissingEndOfCentralDirectory);
        }
        pos -= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::ZipWriter;
    use std::io::Cursor;

    fn sample() -> Vec<u8> {
        let mut w = ZipWriter::new();
        w.add_file("train.json", b"{\"name\":\"Training\"}")
            .unwrap();
        w.add_file("modules/ddos.json", b"{\"name\":\"DDoS\"}")
            .unwrap();
        w.finish().unwrap()
    }

    #[test]
    fn reads_entries_lazily_from_a_cursor() {
        let bytes = sample();
        let mut r = SeekZipReader::parse(Cursor::new(&bytes)).unwrap();
        assert_eq!(r.len(), 2);
        assert!(!r.is_empty());
        assert!(r.has_entry("train.json"));
        assert!(!r.has_entry("missing.json"));
        assert_eq!(
            r.entry_names().collect::<Vec<_>>(),
            vec!["train.json", "modules/ddos.json"]
        );
        assert_eq!(
            r.read_text("train.json").unwrap(),
            "{\"name\":\"Training\"}"
        );
        // Entries can be read repeatedly and in any order.
        assert_eq!(r.read("modules/ddos.json").unwrap(), b"{\"name\":\"DDoS\"}");
        assert_eq!(r.read("train.json").unwrap().len(), 19);
        assert_eq!(
            r.read("nope.json").unwrap_err(),
            ArchiveError::EntryNotFound("nope.json".to_string())
        );
    }

    #[test]
    fn matches_the_in_memory_reader_on_every_entry() {
        let mut w = ZipWriter::new();
        for i in 0..50 {
            w.add_file(&format!("e/{i:03}.bin"), format!("payload {i}").as_bytes())
                .unwrap();
        }
        let bytes = w.finish().unwrap();
        let eager = crate::ZipReader::parse(&bytes).unwrap();
        let mut lazy = SeekZipReader::parse(Cursor::new(&bytes)).unwrap();
        assert_eq!(eager.len(), lazy.len());
        for name in eager.entry_names().map(str::to_string).collect::<Vec<_>>() {
            assert_eq!(eager.read(&name).unwrap(), lazy.read(&name).unwrap());
        }
    }

    #[test]
    fn corruption_is_detected_at_entry_read_time() {
        let mut bytes = sample();
        // Flip a byte inside the first entry's data (30-byte header + name).
        bytes[30 + 10 + 2] ^= 0xFF;
        // Parsing still succeeds: the directory is intact.
        let mut r = SeekZipReader::parse(Cursor::new(&bytes)).unwrap();
        match r.read("train.json") {
            Err(ArchiveError::CrcMismatch { name, .. }) => assert_eq!(name, "train.json"),
            other => panic!("expected CRC mismatch, got {other:?}"),
        }
        // The other entry remains readable.
        assert!(r.read("modules/ddos.json").is_ok());
    }

    #[test]
    fn rejects_non_zip_sources() {
        assert_eq!(
            SeekZipReader::parse(Cursor::new(b"this is not a zip".to_vec())).unwrap_err(),
            ArchiveError::MissingEndOfCentralDirectory
        );
        assert_eq!(
            SeekZipReader::parse(Cursor::new(Vec::new())).unwrap_err(),
            ArchiveError::MissingEndOfCentralDirectory
        );
    }

    #[test]
    fn rejects_declared_count_mismatch() {
        let mut bytes = sample();
        let eocd = bytes.len() - 22;
        bytes[eocd + 10..eocd + 12].copy_from_slice(&7u16.to_le_bytes());
        assert_eq!(
            SeekZipReader::parse(Cursor::new(&bytes)).unwrap_err(),
            ArchiveError::EntryCountMismatch {
                declared: 7,
                walked: 2
            }
        );
    }

    #[test]
    fn oversized_declared_entry_errors_cleanly() {
        // Patch the first central-directory entry's size field to claim more
        // data than the archive holds: the read must report truncation (via
        // read_exact), not panic or hand back short data.
        let mut bytes = sample();
        let eocd = bytes.len() - 22;
        let cd_offset =
            u32::from_le_bytes(bytes[eocd + 16..eocd + 20].try_into().unwrap()) as usize;
        let size_field = cd_offset + 24;
        bytes[size_field..size_field + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        let mut r = SeekZipReader::parse(Cursor::new(&bytes)).unwrap();
        assert_eq!(
            r.read("train.json").unwrap_err(),
            ArchiveError::Truncated("entry data")
        );
    }

    #[test]
    fn corrupt_central_directory_offset_fails_fast() {
        // Zero the EOCD's central-directory offset: the 4-byte signature
        // probe must reject it (BadSignature) instead of buffering the span
        // from offset 0 to the EOCD.
        let mut bytes = sample();
        let eocd = bytes.len() - 22;
        bytes[eocd + 16..eocd + 20].copy_from_slice(&0u32.to_le_bytes());
        assert!(matches!(
            SeekZipReader::parse(Cursor::new(&bytes)).unwrap_err(),
            ArchiveError::BadSignature(_, _)
        ));
    }

    #[test]
    fn empty_archive_parses() {
        let bytes = ZipWriter::new().finish().unwrap();
        let r = SeekZipReader::parse(Cursor::new(&bytes)).unwrap();
        assert!(r.is_empty());
    }

    #[test]
    fn reads_from_a_real_file() {
        let dir = std::env::temp_dir().join(format!("tw-archive-seek-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.zip");
        std::fs::write(&path, sample()).unwrap();
        let file = std::fs::File::open(&path).unwrap();
        let mut r = SeekZipReader::parse(std::io::BufReader::new(file)).unwrap();
        assert_eq!(
            r.read_text("train.json").unwrap(),
            "{\"name\":\"Training\"}"
        );
        std::fs::remove_dir_all(&dir).ok();
        // Missing files surface as Io errors through the From impl.
        let missing = std::fs::File::open(dir.join("gone.zip"));
        assert!(missing.is_err());
        let err: ArchiveError = missing.unwrap_err().into();
        assert!(matches!(err, ArchiveError::Io(_)));
        assert!(err.to_string().contains("archive I/O"));
    }
}
