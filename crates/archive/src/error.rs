//! Error type for ZIP reading/writing.

use std::fmt;

/// Result alias for archive operations.
pub type Result<T> = std::result::Result<T, ArchiveError>;

/// Errors produced while building or parsing an archive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArchiveError {
    /// The end-of-central-directory record could not be located.
    MissingEndOfCentralDirectory,
    /// A structure had an unexpected signature; contains (expected, found).
    BadSignature(u32, u32),
    /// The archive ended before a structure was complete.
    Truncated(&'static str),
    /// An entry uses a compression method other than "stored".
    UnsupportedCompression(u16),
    /// The stored CRC-32 does not match the entry data.
    CrcMismatch {
        name: String,
        expected: u32,
        actual: u32,
    },
    /// An entry name is not valid UTF-8.
    InvalidEntryName,
    /// An entry name was rejected (empty, absolute, or containing `..`).
    UnsafeEntryName(String),
    /// Two entries share the same name.
    DuplicateEntry(String),
    /// The requested entry does not exist.
    EntryNotFound(String),
    /// An entry or the archive exceeds format limits (e.g. > 4 GiB).
    TooLarge(&'static str),
    /// The end-of-central-directory record declares a different number of
    /// entries than the central directory actually contains.
    EntryCountMismatch {
        /// Entry count declared by the end-of-central-directory record.
        declared: usize,
        /// Entries actually walked in the central directory.
        walked: usize,
    },
    /// An I/O operation on a seekable archive source failed; carries the
    /// rendered `std::io::Error` (kept as a string so the error stays
    /// `Clone`/`PartialEq` like every other variant).
    Io(String),
}

impl From<std::io::Error> for ArchiveError {
    fn from(e: std::io::Error) -> Self {
        ArchiveError::Io(e.to_string())
    }
}

impl fmt::Display for ArchiveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArchiveError::MissingEndOfCentralDirectory => {
                write!(f, "not a ZIP archive: end-of-central-directory record not found")
            }
            ArchiveError::BadSignature(expected, found) => {
                write!(f, "bad ZIP signature: expected {expected:#010x}, found {found:#010x}")
            }
            ArchiveError::Truncated(what) => write!(f, "archive truncated while reading {what}"),
            ArchiveError::UnsupportedCompression(method) => {
                write!(f, "unsupported compression method {method} (only stored entries are supported)")
            }
            ArchiveError::CrcMismatch { name, expected, actual } => write!(
                f,
                "CRC mismatch for entry {name:?}: header says {expected:#010x}, data hashes to {actual:#010x}"
            ),
            ArchiveError::InvalidEntryName => write!(f, "entry name is not valid UTF-8"),
            ArchiveError::UnsafeEntryName(name) => write!(f, "unsafe entry name {name:?}"),
            ArchiveError::DuplicateEntry(name) => write!(f, "duplicate entry {name:?}"),
            ArchiveError::EntryNotFound(name) => write!(f, "entry {name:?} not found"),
            ArchiveError::TooLarge(what) => write!(f, "{what} exceeds ZIP format limits"),
            ArchiveError::EntryCountMismatch { declared, walked } => write!(
                f,
                "end-of-central-directory record declares {declared} entries but the central directory holds {walked}"
            ),
            ArchiveError::Io(message) => write!(f, "archive I/O: {message}"),
        }
    }
}

impl std::error::Error for ArchiveError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_actionable() {
        let e = ArchiveError::CrcMismatch {
            name: "a.json".into(),
            expected: 1,
            actual: 2,
        };
        let msg = e.to_string();
        assert!(msg.contains("a.json"));
        assert!(msg.contains("0x00000001"));
        assert!(ArchiveError::UnsupportedCompression(8)
            .to_string()
            .contains("stored"));
    }
}
