//! CRC-32 (IEEE 802.3 polynomial), as required by the ZIP format.
//!
//! Uses the slicing-by-8 variant: eight 256-entry tables computed at compile
//! time let the hot loop fold eight input bytes per step instead of one,
//! which matters because `ZipReader::parse` checksums every entry eagerly —
//! for a multi-megabyte window recording the CRC pass is the dominant cost
//! of opening the archive.

/// The reflected polynomial used by ZIP/PNG/Ethernet.
const POLY: u32 = 0xEDB8_8320;

/// Slicing-by-8 lookup tables, generated at compile time. `TABLE[0]` is the
/// classic byte-at-a-time table; `TABLE[k][i]` advances `TABLE[k-1][i]` by
/// one extra zero byte.
const TABLE: [[u32; 256]; 8] = build_tables();

const fn build_tables() -> [[u32; 256]; 8] {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        tables[0][i] = crc;
        i += 1;
    }
    let mut k = 1;
    while k < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[k - 1][i];
            tables[k][i] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
            i += 1;
        }
        k += 1;
    }
    tables
}

/// Compute the CRC-32 of `data` in one shot.
pub fn crc32(data: &[u8]) -> u32 {
    let mut hasher = Crc32::new();
    hasher.update(data);
    hasher.finalize()
}

/// Incremental CRC-32 hasher.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// Create a hasher in its initial state.
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Feed bytes into the hasher.
    pub fn update(&mut self, data: &[u8]) {
        let mut crc = self.state;
        let mut chunks = data.chunks_exact(8);
        for chunk in &mut chunks {
            let lo = crc ^ u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
            crc = TABLE[7][(lo & 0xFF) as usize]
                ^ TABLE[6][((lo >> 8) & 0xFF) as usize]
                ^ TABLE[5][((lo >> 16) & 0xFF) as usize]
                ^ TABLE[4][(lo >> 24) as usize]
                ^ TABLE[3][chunk[4] as usize]
                ^ TABLE[2][chunk[5] as usize]
                ^ TABLE[1][chunk[6] as usize]
                ^ TABLE[0][chunk[7] as usize];
        }
        for &b in chunks.remainder() {
            crc = (crc >> 8) ^ TABLE[0][((crc ^ b as u32) & 0xFF) as usize];
        }
        self.state = crc;
    }

    /// Finish and return the checksum.
    pub fn finalize(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn incremental_matches_one_shot() {
        let data = b"traffic_matrix";
        let mut h = Crc32::new();
        h.update(&data[..7]);
        h.update(&data[7..]);
        assert_eq!(h.finalize(), crc32(data));
    }

    #[test]
    fn different_inputs_differ() {
        assert_ne!(crc32(b"lesson1.json"), crc32(b"lesson2.json"));
    }
}
