//! CRC-32 (IEEE 802.3 polynomial), as required by the ZIP format.
//!
//! The table is computed at compile time so the hot loop is a single table
//! lookup per byte.

/// The reflected polynomial used by ZIP/PNG/Ethernet.
const POLY: u32 = 0xEDB8_8320;

/// 256-entry lookup table, generated at compile time.
const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// Compute the CRC-32 of `data` in one shot.
pub fn crc32(data: &[u8]) -> u32 {
    let mut hasher = Crc32::new();
    hasher.update(data);
    hasher.finalize()
}

/// Incremental CRC-32 hasher.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// Create a hasher in its initial state.
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Feed bytes into the hasher.
    pub fn update(&mut self, data: &[u8]) {
        let mut crc = self.state;
        for &b in data {
            crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
        }
        self.state = crc;
    }

    /// Finish and return the checksum.
    pub fn finalize(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn incremental_matches_one_shot() {
        let data = b"traffic_matrix";
        let mut h = Crc32::new();
        h.update(&data[..7]);
        h.update(&data[7..]);
        assert_eq!(h.finalize(), crc32(data));
    }

    #[test]
    fn different_inputs_differ() {
        assert_ne!(crc32(b"lesson1.json"), crc32(b"lesson2.json"));
    }
}
