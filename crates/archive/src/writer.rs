//! Building stored-entry ZIP archives in memory.

use crate::crc32::crc32;
use crate::error::{ArchiveError, Result};

/// Signature of a local file header.
pub(crate) const LOCAL_FILE_HEADER_SIG: u32 = 0x0403_4B50;
/// Signature of a central directory file header.
pub(crate) const CENTRAL_DIR_HEADER_SIG: u32 = 0x0201_4B50;
/// Signature of the end-of-central-directory record.
pub(crate) const END_OF_CENTRAL_DIR_SIG: u32 = 0x0605_4B50;
/// "Version needed to extract": 1.0, since stored entries need nothing special.
const VERSION_NEEDED: u16 = 10;
/// Compression method 0 = stored.
const METHOD_STORED: u16 = 0;
/// Fixed DOS timestamp (1980-01-01 00:00:00) for reproducible archives.
const DOS_TIME: u16 = 0;
const DOS_DATE: u16 = 0x0021;

/// Validate an entry name: relative, non-empty, no `..` components, no backslashes.
pub fn validate_entry_name(name: &str) -> Result<()> {
    if name.is_empty()
        || name.starts_with('/')
        || name.contains('\\')
        || name.split('/').any(|seg| seg == ".." || seg.is_empty())
    {
        return Err(ArchiveError::UnsafeEntryName(name.to_string()));
    }
    Ok(())
}

#[derive(Debug)]
struct PendingEntry {
    name: String,
    crc: u32,
    size: u32,
    local_header_offset: u32,
}

/// Builds a ZIP archive entirely in memory.
///
/// Output is byte-for-byte deterministic for a given sequence of
/// `add_file` calls (fixed timestamps, no extra fields), which makes module
/// bundles reproducible and easy to diff.
#[derive(Debug)]
pub struct ZipWriter {
    buffer: Vec<u8>,
    entries: Vec<PendingEntry>,
    /// Entry names added so far; keeps the duplicate check O(log n) per add
    /// so archives with tens of thousands of entries (one per recorded
    /// window) stay fast to build.
    names: std::collections::BTreeSet<String>,
}

impl Default for ZipWriter {
    fn default() -> Self {
        Self::new()
    }
}

impl ZipWriter {
    /// Create an empty archive builder.
    pub fn new() -> Self {
        ZipWriter {
            buffer: Vec::new(),
            entries: Vec::new(),
            names: std::collections::BTreeSet::new(),
        }
    }

    /// Number of entries added so far.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entries have been added.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Add a file entry with the given name and contents.
    pub fn add_file(&mut self, name: &str, data: &[u8]) -> Result<()> {
        validate_entry_name(name)?;
        if !self.names.insert(name.to_string()) {
            return Err(ArchiveError::DuplicateEntry(name.to_string()));
        }
        let size = u32::try_from(data.len()).map_err(|_| ArchiveError::TooLarge("entry"))?;
        let name_len =
            u16::try_from(name.len()).map_err(|_| ArchiveError::TooLarge("entry name"))?;
        let offset =
            u32::try_from(self.buffer.len()).map_err(|_| ArchiveError::TooLarge("archive"))?;
        let crc = crc32(data);

        // Local file header.
        push_u32(&mut self.buffer, LOCAL_FILE_HEADER_SIG);
        push_u16(&mut self.buffer, VERSION_NEEDED);
        push_u16(&mut self.buffer, 0); // general purpose flags
        push_u16(&mut self.buffer, METHOD_STORED);
        push_u16(&mut self.buffer, DOS_TIME);
        push_u16(&mut self.buffer, DOS_DATE);
        push_u32(&mut self.buffer, crc);
        push_u32(&mut self.buffer, size); // compressed size == size for stored
        push_u32(&mut self.buffer, size);
        push_u16(&mut self.buffer, name_len);
        push_u16(&mut self.buffer, 0); // extra field length
        self.buffer.extend_from_slice(name.as_bytes());
        self.buffer.extend_from_slice(data);

        self.entries.push(PendingEntry {
            name: name.to_string(),
            crc,
            size,
            local_header_offset: offset,
        });
        Ok(())
    }

    /// Finish the archive, appending the central directory, and return the bytes.
    ///
    /// Errors with [`ArchiveError::TooLarge`] instead of silently truncating
    /// when the archive exceeds the classic ZIP format limits: more than
    /// 65,535 entries, or a central directory whose offset or size does not
    /// fit in 32 bits. (The old `as u16`/`as u32` casts here produced a
    /// corrupt end-of-central-directory record with no error.)
    pub fn finish(self) -> Result<Vec<u8>> {
        let entry_count =
            u16::try_from(self.entries.len()).map_err(|_| ArchiveError::TooLarge("entry count"))?;
        let mut buffer = self.buffer;
        let central_dir_offset = u32::try_from(buffer.len())
            .map_err(|_| ArchiveError::TooLarge("central directory offset"))?;

        for entry in &self.entries {
            push_u32(&mut buffer, CENTRAL_DIR_HEADER_SIG);
            push_u16(&mut buffer, VERSION_NEEDED); // version made by
            push_u16(&mut buffer, VERSION_NEEDED); // version needed
            push_u16(&mut buffer, 0); // flags
            push_u16(&mut buffer, METHOD_STORED);
            push_u16(&mut buffer, DOS_TIME);
            push_u16(&mut buffer, DOS_DATE);
            push_u32(&mut buffer, entry.crc);
            push_u32(&mut buffer, entry.size);
            push_u32(&mut buffer, entry.size);
            // Already validated by `add_file`'s checked conversion.
            push_u16(
                &mut buffer,
                // tw-analyze: allow(no-panic-in-lib, "add_file rejects names longer than u16::MAX before they reach the directory writer")
                u16::try_from(entry.name.len()).expect("name length checked on add"),
            );
            push_u16(&mut buffer, 0); // extra length
            push_u16(&mut buffer, 0); // comment length
            push_u16(&mut buffer, 0); // disk number start
            push_u16(&mut buffer, 0); // internal attributes
            push_u32(&mut buffer, 0); // external attributes
            push_u32(&mut buffer, entry.local_header_offset);
            buffer.extend_from_slice(entry.name.as_bytes());
        }

        let central_dir_size = u32::try_from(buffer.len() - central_dir_offset as usize)
            .map_err(|_| ArchiveError::TooLarge("central directory size"))?;
        push_u32(&mut buffer, END_OF_CENTRAL_DIR_SIG);
        push_u16(&mut buffer, 0); // this disk
        push_u16(&mut buffer, 0); // disk with central directory
        push_u16(&mut buffer, entry_count);
        push_u16(&mut buffer, entry_count);
        push_u32(&mut buffer, central_dir_size);
        push_u32(&mut buffer, central_dir_offset);
        push_u16(&mut buffer, 0); // comment length
        Ok(buffer)
    }
}

fn push_u16(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn push_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_is_deterministic() {
        let build = || {
            let mut w = ZipWriter::new();
            w.add_file("a.json", b"{}").unwrap();
            w.add_file("b.json", b"{\"x\":1}").unwrap();
            w.finish().unwrap()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn finish_rejects_more_entries_than_the_eocd_can_count() {
        // The EOCD entry-count field is 16 bits; 65_536 entries used to wrap
        // to 0 silently. Empty payloads keep this regression test fast.
        let mut w = ZipWriter::new();
        for i in 0..=u16::MAX as u32 {
            w.add_file(&format!("w/{i}"), b"").unwrap();
        }
        assert_eq!(w.len(), 65_536);
        assert_eq!(w.finish(), Err(ArchiveError::TooLarge("entry count")));

        // One fewer entry is the format's maximum and still round-trips.
        let mut w = ZipWriter::new();
        for i in 0..u16::MAX {
            w.add_file(&format!("w/{i}"), b"").unwrap();
        }
        let bytes = w.finish().unwrap();
        let r = crate::reader::ZipReader::parse(&bytes).unwrap();
        assert_eq!(r.len(), 65_535);
    }

    #[test]
    fn rejects_unsafe_names() {
        let mut w = ZipWriter::new();
        for bad in ["", "/abs.json", "a/../b.json", "a\\b.json", "a//b.json"] {
            assert!(
                matches!(w.add_file(bad, b"x"), Err(ArchiveError::UnsafeEntryName(_))),
                "should reject {bad:?}"
            );
        }
        assert!(w.add_file("modules/ok.json", b"x").is_ok());
    }

    #[test]
    fn rejects_duplicate_names() {
        let mut w = ZipWriter::new();
        w.add_file("a.json", b"1").unwrap();
        assert_eq!(
            w.add_file("a.json", b"2"),
            Err(ArchiveError::DuplicateEntry("a.json".to_string()))
        );
        assert_eq!(w.len(), 1);
        assert!(!w.is_empty());
    }

    #[test]
    fn local_header_signature_is_pk() {
        let mut w = ZipWriter::new();
        w.add_file("a", b"x").unwrap();
        let bytes = w.finish().unwrap();
        assert_eq!(&bytes[0..4], b"PK\x03\x04");
        // End record signature appears near the end.
        let eocd_pos = bytes.len() - 22;
        assert_eq!(&bytes[eocd_pos..eocd_pos + 4], b"PK\x05\x06");
    }
}
