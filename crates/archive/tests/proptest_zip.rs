//! Property tests: arbitrary file sets round-trip through the ZIP container.

use proptest::prelude::*;
use std::collections::BTreeMap;
use tw_archive::{ArchiveError, ZipReader, ZipWriter};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn arbitrary_file_sets_round_trip(
        files in prop::collection::btree_map("[a-z0-9_]{1,12}(\\.json)?", prop::collection::vec(any::<u8>(), 0..512), 0..20)
    ) {
        let mut w = ZipWriter::new();
        for (name, data) in &files {
            w.add_file(name, data).unwrap();
        }
        let bytes = w.finish().unwrap();
        let r = ZipReader::parse(&bytes).unwrap();
        prop_assert_eq!(r.len(), files.len());
        for (name, data) in &files {
            prop_assert_eq!(r.read(name).unwrap(), data.as_slice());
        }
    }

    #[test]
    fn parser_never_panics_on_arbitrary_bytes(data in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = ZipReader::parse(&data);
    }

    #[test]
    fn parser_never_panics_on_corrupted_archives(
        flips in prop::collection::vec((0usize..4096, any::<u8>()), 1..8)
    ) {
        let mut w = ZipWriter::new();
        w.add_file("a.json", b"{\"name\":\"A\"}").unwrap();
        w.add_file("b.json", &[7u8; 100]).unwrap();
        let mut bytes = w.finish().unwrap();
        for (pos, xor) in flips {
            let len = bytes.len();
            bytes[pos % len] ^= xor;
        }
        // Must either parse (if the flip hit a harmless byte) or error; never panic.
        let _ = ZipReader::parse(&bytes);
    }

    #[test]
    fn nested_paths_round_trip(segments in prop::collection::vec("[a-z]{1,8}", 1..5), data in prop::collection::vec(any::<u8>(), 0..64)) {
        let name = segments.join("/");
        let mut w = ZipWriter::new();
        w.add_file(&name, &data).unwrap();
        let bytes = w.finish().unwrap();
        let r = ZipReader::parse(&bytes).unwrap();
        prop_assert_eq!(r.read(&name).unwrap(), data.as_slice());
    }

    #[test]
    fn tampered_eocd_entry_counts_are_always_rejected(
        names in prop::collection::btree_map("[a-z]{1,10}", 0u8..1, 1..12),
        wrong in any::<u16>(),
    ) {
        let count = names.len();
        let mut w = ZipWriter::new();
        for name in names.keys() {
            w.add_file(name, name.as_bytes()).unwrap();
        }
        let mut bytes = w.finish().unwrap();
        // Force the declared count to disagree with the walked count.
        let wrong = if wrong as usize == count { wrong.wrapping_add(1) } else { wrong };
        let eocd = bytes.len() - 22;
        bytes[eocd + 10..eocd + 12].copy_from_slice(&wrong.to_le_bytes());
        prop_assert_eq!(
            ZipReader::parse(&bytes).unwrap_err(),
            ArchiveError::EntryCountMismatch { declared: wrong as usize, walked: count }
        );
    }
}

#[test]
fn crc_of_btreemap_ordering_is_stable() {
    // Guard that the proptest strategy above (BTreeMap) gives deterministic order.
    let mut m = BTreeMap::new();
    m.insert("b", 1);
    m.insert("a", 2);
    assert_eq!(m.keys().collect::<Vec<_>>(), vec![&"a", &"b"]);
}
