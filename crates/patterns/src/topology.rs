//! Basic traffic topologies (paper Fig. 6).
//!
//! "The basic traffic topologies module presents traffic patterns shown for
//! isolated links, single links, internal supernodes, and external supernodes
//! with additional color coding to help provide context for these patterns."
//!
//! All patterns use the paper's standard 10-node labelling
//! (`WS1-3, SRV1, EXT1-2, ADV1-4`) and the hint points at the multi-temporal
//! traffic analysis paper the figure references ([50] in the paper).

// tw-analyze: allow-file(no-panic-in-lib, "static figure construction: topology patterns are built from hand-written literals and every pattern is round-tripped by the catalog tests")
use crate::{Pattern, DEFAULT_PACKETS};
use tw_matrix::{ColorMatrix, LabelSet, TrafficMatrix};

/// Hint reference attached to the topology patterns (reference [50]).
pub const TOPOLOGY_HINT: &str =
    "Kepner et al., 'Multi-temporal analysis and scaling relations of 100,000,000,000 network packets', HPEC 2020";

fn base() -> (LabelSet, TrafficMatrix, ColorMatrix) {
    let labels = LabelSet::paper_default_10();
    let matrix = TrafficMatrix::zeros(labels.clone());
    let colors = ColorMatrix::from_label_classes(&labels);
    (labels, matrix, colors)
}

/// Fig. 6a — isolated links: pairs of nodes that exchange traffic exclusively
/// with each other.
pub fn isolated_links() -> Pattern {
    let (_labels, mut m, colors) = base();
    // Three isolated pairs, one per space: WS1↔WS2, EXT1↔EXT2, ADV3↔ADV4.
    for (a, b) in [(0usize, 1usize), (4, 5), (8, 9)] {
        m.set(a, b, DEFAULT_PACKETS).unwrap();
        m.set(b, a, DEFAULT_PACKETS).unwrap();
    }
    Pattern::new(
        "topology/isolated_links",
        "Isolated Links",
        "Isolated links",
        "Each pair of nodes exchanges traffic only with its partner, forming links that are disconnected from the rest of the network.",
        Some(TOPOLOGY_HINT),
        m,
        colors,
    )
}

/// Fig. 6b — single links: individual one-directional flows between otherwise
/// quiet nodes.
pub fn single_links() -> Pattern {
    let (_labels, mut m, colors) = base();
    // One-directional links, each node participating in at most one.
    m.set(0, 3, DEFAULT_PACKETS).unwrap(); // WS1 → SRV1
    m.set(4, 1, DEFAULT_PACKETS).unwrap(); // EXT1 → WS2
    m.set(6, 5, DEFAULT_PACKETS).unwrap(); // ADV1 → EXT2
    m.set(8, 7, DEFAULT_PACKETS).unwrap(); // ADV3 → ADV2
    Pattern::new(
        "topology/single_links",
        "Single Links",
        "Single links",
        "Each flow is a lone source-to-destination link with no reply traffic and no other activity at either endpoint.",
        Some(TOPOLOGY_HINT),
        m,
        colors,
    )
}

/// Fig. 6c — internal supernode: a node inside the defended network (the
/// server) communicating with many peers.
pub fn internal_supernode() -> Pattern {
    let (labels, mut m, colors) = base();
    let hub = labels.index_of("SRV1").expect("SRV1 exists");
    // Every workstation and external host talks to the server and gets replies.
    for peer in [0usize, 1, 2, 4, 5] {
        m.set(peer, hub, DEFAULT_PACKETS).unwrap();
        m.set(hub, peer, 1).unwrap();
    }
    Pattern::new(
        "topology/internal_supernode",
        "Internal Supernode",
        "Internal supernode",
        "A single node inside the defended network (the server) exchanges traffic with many peers, dominating one row and one column of the matrix.",
        Some(TOPOLOGY_HINT),
        m,
        colors,
    )
}

/// Fig. 6d — external supernode: a node outside the defended network acting as
/// the hub.
pub fn external_supernode() -> Pattern {
    let (labels, mut m, colors) = base();
    let hub = labels.index_of("EXT1").expect("EXT1 exists");
    for peer in [0usize, 1, 2, 3, 6, 7] {
        m.set(peer, hub, 1).unwrap();
        m.set(hub, peer, DEFAULT_PACKETS).unwrap();
    }
    Pattern::new(
        "topology/external_supernode",
        "External Supernode",
        "External supernode",
        "A single node in grey space is the hub of the traffic: many internal and external peers all communicate through it.",
        Some(TOPOLOGY_HINT),
        m,
        colors,
    )
}

/// All four panels of Fig. 6 in figure order.
pub fn all() -> Vec<Pattern> {
    vec![
        isolated_links(),
        single_links(),
        internal_supernode(),
        external_supernode(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use tw_matrix::{CellColor, MatrixProfile, NodeClass};

    #[test]
    fn isolated_links_are_actually_isolated() {
        let p = isolated_links();
        let profile = MatrixProfile::of(&p.matrix);
        assert_eq!(profile.isolated_pairs, vec![(0, 1), (4, 5), (8, 9)]);
        assert!(p.matrix.is_symmetric());
        assert_eq!(profile.supernodes, Vec::<usize>::new());
    }

    #[test]
    fn single_links_have_fanout_one_and_no_replies() {
        let p = single_links();
        assert!(!p.matrix.is_symmetric());
        for fanout in p.matrix.out_fanout() {
            assert!(fanout <= 1);
        }
        for fanout in p.matrix.in_fanout() {
            assert!(fanout <= 1);
        }
        assert_eq!(p.matrix.nonzero_count(), 4);
    }

    #[test]
    fn internal_supernode_is_the_server() {
        let p = internal_supernode();
        let profile = MatrixProfile::of(&p.matrix);
        let srv = p.matrix.labels().index_of("SRV1").unwrap();
        assert_eq!(profile.supernodes, vec![srv]);
        assert!(NodeClass::from_label("SRV1").is_blue());
        assert!(profile.degrees.max_fanout[srv] >= 5);
    }

    #[test]
    fn external_supernode_is_in_grey_space() {
        let p = external_supernode();
        let profile = MatrixProfile::of(&p.matrix);
        let ext = p.matrix.labels().index_of("EXT1").unwrap();
        assert_eq!(profile.supernodes, vec![ext]);
        assert!(NodeClass::from_label("EXT1").is_grey());
    }

    #[test]
    fn colors_follow_label_classes() {
        for p in all() {
            // A blue→adv cell is red-coded in every topology pattern's color plane.
            assert_eq!(p.colors.get(0, 9), Some(CellColor::Red));
            assert_eq!(p.colors.get(9, 0), Some(CellColor::Blue));
            assert_eq!(p.colors.get(4, 4), Some(CellColor::Grey));
        }
    }

    #[test]
    fn all_returns_figure_order() {
        let names: Vec<String> = all().into_iter().map(|p| p.name).collect();
        assert_eq!(
            names,
            vec![
                "Isolated Links",
                "Single Links",
                "Internal Supernode",
                "External Supernode"
            ]
        );
    }

    #[test]
    fn hints_reference_the_scaling_paper() {
        for p in all() {
            assert_eq!(p.hint.as_deref(), Some(TOPOLOGY_HINT));
        }
    }
}
