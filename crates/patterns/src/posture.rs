//! Security, defense and deterrence postures (paper Fig. 8).
//!
//! "A key concept in the protection of any domain is the distinction between
//! (walls-in) security, (walls-out) defense, and deterrence."

// tw-analyze: allow-file(no-panic-in-lib, "static figure construction: posture patterns are built from hand-written literals and every pattern is round-tripped by the catalog tests")
use crate::{Pattern, DEFAULT_PACKETS};
use tw_matrix::{ColorMatrix, LabelSet, TrafficMatrix};

/// Hint references for the posture patterns (references [51], [52]).
pub const POSTURE_HINT: &str =
    "Kepner, 'Beyond Zero Botnets' (TEDxBoston 2022); Kepner et al., 'Zero Botnets: An Observe-Pursue-Counter Approach' (Belfer Center 2021)";

fn base() -> (LabelSet, TrafficMatrix, ColorMatrix) {
    let labels = LabelSet::paper_default_10();
    let matrix = TrafficMatrix::zeros(labels.clone());
    let colors = ColorMatrix::from_label_classes(&labels);
    (labels, matrix, colors)
}

/// Fig. 8a — security (walls-in): monitoring traffic within one's own blue space.
pub fn security() -> Pattern {
    let (labels, mut m, colors) = base();
    let blue = labels.blue_indices();
    // Workstations talk to the server and to each other; nothing leaves blue space.
    let srv = labels.index_of("SRV1").expect("SRV1 exists");
    for &ws in &blue {
        if ws != srv {
            m.set(ws, srv, DEFAULT_PACKETS).unwrap();
            m.set(srv, ws, 1).unwrap();
        }
    }
    m.set(0, 1, 1).unwrap();
    m.set(1, 0, 1).unwrap();
    Pattern::new(
        "posture/security",
        "Security",
        "Security (walls-in)",
        "Traffic is operating entirely within the defended blue space: the organization is watching its own systems and ensuring no adversarial activity inside its walls.",
        Some(POSTURE_HINT),
        m,
        colors,
    )
}

/// Fig. 8b — defense (walls-out): stepping outside the network to identify
/// threats before they arrive.
pub fn defense() -> Pattern {
    let (labels, mut m, colors) = base();
    // Blue space exchanges telemetry with grey-space community sensors, and the
    // community observes adversarial staging before it reaches blue space.
    for &blue in &labels.blue_indices() {
        for &ext in &labels.grey_indices() {
            m.set(blue, ext, 1).unwrap();
            m.set(ext, blue, 1).unwrap();
        }
    }
    for &adv in &labels.red_indices() {
        m.set(adv, 4, DEFAULT_PACKETS).unwrap(); // adversary probes seen by EXT1
    }
    Pattern::new(
        "posture/defense",
        "Defense",
        "Defense (walls-out)",
        "The defenders step outside their own network: community sensors in grey space share observations, revealing adversary activity before it reaches blue space.",
        Some(POSTURE_HINT),
        m,
        colors,
    )
}

/// Fig. 8c — deterrence: credible activity in adversary space in response to
/// unacceptable actions.
pub fn deterrence() -> Pattern {
    let (labels, mut m, colors) = base();
    // The precipitating adversarial action against blue space…
    m.set(6, 0, 1).unwrap();
    m.set(6, 3, 1).unwrap();
    // …and the credible response activity inside adversary space.
    for &blue in &labels.blue_indices() {
        m.set(blue, 6, DEFAULT_PACKETS).unwrap();
    }
    for &adv in &[7usize, 8, 9] {
        m.set(6, adv, 1).unwrap();
    }
    Pattern::new(
        "posture/deterrence",
        "Deterrence",
        "Deterrence",
        "Credible activity appears in adversary space as a response to unacceptable actions taken against the defended network, making further aggression costly.",
        Some(POSTURE_HINT),
        m,
        colors,
    )
}

/// All three panels of Fig. 8 in figure order.
pub fn all() -> Vec<Pattern> {
    vec![security(), defense(), deterrence()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use tw_matrix::{LinkClass, MatrixProfile};

    #[test]
    fn security_never_leaves_blue_space() {
        let p = security();
        let profile = MatrixProfile::of(&p.matrix);
        assert_eq!(
            profile.packets_for(LinkClass::IntraBlue),
            p.matrix.total_packets()
        );
        assert!(!profile.has_red_contact());
    }

    #[test]
    fn defense_reaches_into_grey_space_but_not_red() {
        let p = defense();
        let profile = MatrixProfile::of(&p.matrix);
        assert!(profile.packets_for(LinkClass::BlueGreyBorder) > 0);
        assert!(
            profile.packets_for(LinkClass::GreyRedContact) > 0,
            "community sensors observe the adversary"
        );
        assert_eq!(
            profile.packets_for(LinkClass::BlueRedContact),
            0,
            "defense does not touch red space directly"
        );
    }

    #[test]
    fn deterrence_shows_activity_in_adversary_space() {
        let p = deterrence();
        let profile = MatrixProfile::of(&p.matrix);
        assert!(profile.packets_for(LinkClass::BlueRedContact) > 0);
        assert!(profile.packets_for(LinkClass::IntraRed) > 0);
    }

    #[test]
    fn posture_order_matches_figure() {
        let names: Vec<String> = all().into_iter().map(|p| p.name).collect();
        assert_eq!(names, vec!["Security", "Defense", "Deterrence"]);
    }

    #[test]
    fn postures_are_distinguishable_by_red_contact() {
        let s = MatrixProfile::of(&security().matrix);
        let d = MatrixProfile::of(&defense().matrix);
        let t = MatrixProfile::of(&deterrence().matrix);
        assert!(!s.has_red_contact());
        assert!(d.has_red_contact());
        assert!(
            t.packets_for(LinkClass::BlueRedContact) > d.packets_for(LinkClass::BlueRedContact)
        );
    }
}
