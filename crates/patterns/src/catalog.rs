//! The pattern catalog: every figure panel, addressable by figure.

use crate::{attack, ddos, graph_theory, posture, topology, Pattern};

/// The figures of the paper's learning-module section.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Figure {
    /// Fig. 6 — basic traffic topologies.
    Topologies,
    /// Fig. 7 — the notional attack stages.
    NotionalAttack,
    /// Fig. 8 — security, defense, deterrence.
    Posture,
    /// Fig. 9 — DDoS components.
    Ddos,
    /// Fig. 10 — graph-theory concepts.
    GraphTheory,
}

impl Figure {
    /// All figures in paper order.
    pub fn all() -> [Figure; 5] {
        [
            Figure::Topologies,
            Figure::NotionalAttack,
            Figure::Posture,
            Figure::Ddos,
            Figure::GraphTheory,
        ]
    }

    /// The paper's figure number.
    pub fn number(&self) -> u32 {
        match self {
            Figure::Topologies => 6,
            Figure::NotionalAttack => 7,
            Figure::Posture => 8,
            Figure::Ddos => 9,
            Figure::GraphTheory => 10,
        }
    }

    /// The figure's caption title.
    pub fn title(&self) -> &'static str {
        match self {
            Figure::Topologies => "Traffic Topologies",
            Figure::NotionalAttack => "Notional Attack",
            Figure::Posture => "Network Security, Defense, and Deterrence",
            Figure::Ddos => "DDoS Attack",
            Figure::GraphTheory => "Graph Theory",
        }
    }
}

/// The panels of one figure, in the order they appear in the paper.
pub fn patterns_for_figure(figure: Figure) -> Vec<Pattern> {
    match figure {
        Figure::Topologies => topology::all(),
        Figure::NotionalAttack => attack::all(),
        Figure::Posture => posture::all(),
        Figure::Ddos => ddos::all(),
        Figure::GraphTheory => graph_theory::all(),
    }
}

/// Every panel of every figure, in paper order.
pub fn all_patterns() -> Vec<Pattern> {
    Figure::all()
        .into_iter()
        .flat_map(patterns_for_figure)
        .collect()
}

/// Look up one panel by its stable id (e.g. `"ddos/attack"`), including the
/// combined composites that are not part of any figure's panel list.
///
/// This is how downstream consumers (the ingest scenario registry, scripts)
/// reuse the attack shapes without duplicating them.
pub fn pattern_by_id(id: &str) -> Option<Pattern> {
    if let Some(pattern) = all_patterns().into_iter().find(|p| p.id == id) {
        return Some(pattern);
    }
    match id {
        "attack/combined" => Some(attack::combined()),
        "ddos/combined" => Some(ddos::combined()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_numbers_and_titles() {
        assert_eq!(Figure::Topologies.number(), 6);
        assert_eq!(Figure::GraphTheory.number(), 10);
        assert_eq!(Figure::Ddos.title(), "DDoS Attack");
        assert_eq!(Figure::all().len(), 5);
    }

    #[test]
    fn panel_counts_match_the_paper() {
        assert_eq!(patterns_for_figure(Figure::Topologies).len(), 4);
        assert_eq!(patterns_for_figure(Figure::NotionalAttack).len(), 4);
        assert_eq!(patterns_for_figure(Figure::Posture).len(), 3);
        assert_eq!(patterns_for_figure(Figure::Ddos).len(), 4);
        assert_eq!(patterns_for_figure(Figure::GraphTheory).len(), 9);
        assert_eq!(all_patterns().len(), 24);
    }

    #[test]
    fn pattern_lookup_by_id() {
        assert_eq!(pattern_by_id("ddos/attack").unwrap().name, "DDoS Attack");
        assert_eq!(pattern_by_id("ddos/combined").unwrap().id, "ddos/combined");
        assert_eq!(
            pattern_by_id("attack/combined").unwrap().id,
            "attack/combined"
        );
        assert!(pattern_by_id("no/such_pattern").is_none());
    }

    #[test]
    fn security_patterns_carry_hints_and_graph_patterns_do_not() {
        for figure in [
            Figure::Topologies,
            Figure::NotionalAttack,
            Figure::Posture,
            Figure::Ddos,
        ] {
            for p in patterns_for_figure(figure) {
                assert!(p.hint.is_some(), "{} should carry a hint", p.id);
            }
        }
        for p in patterns_for_figure(Figure::GraphTheory) {
            assert!(p.hint.is_none(), "{} should not carry a hint", p.id);
        }
    }
}
