//! Graph-theory concept patterns (paper Fig. 10).
//!
//! "This module demonstrates star, clique, bipartite, tree, ring, mesh,
//! toroidal mesh, self loops, and triangle graphs … to show that the
//! information that can be displayed in Traffic Warehouse is not limited just
//! to network communication."
//!
//! Graph-theory patterns use numeric labels (the paper's formal definition of
//! an adjacency matrix indexes vertices by integers) and an all-grey color
//! plane, since they are not about security spaces.

// tw-analyze: allow-file(no-panic-in-lib, "static figure construction: the graph catalog is built from hand-written literals and every pattern is round-tripped by the catalog tests")
use crate::Pattern;
use tw_matrix::{ColorMatrix, LabelSet, TrafficMatrix};

/// Dimension used by all graph-theory patterns (the paper shows them on 10×10).
pub const GRAPH_DIMENSION: usize = 10;

fn base() -> (TrafficMatrix, ColorMatrix) {
    let labels = LabelSet::numeric(GRAPH_DIMENSION);
    (
        TrafficMatrix::zeros(labels),
        ColorMatrix::grey(GRAPH_DIMENSION),
    )
}

fn pattern(id: &str, name: &str, explanation: &str, m: TrafficMatrix, c: ColorMatrix) -> Pattern {
    Pattern::new(
        &format!("graph/{id}"),
        name,
        &format!("A {} graph", name.to_lowercase()),
        explanation,
        None,
        m,
        c,
    )
}

/// Fig. 10a — star: one hub connected to every other vertex.
pub fn star() -> Pattern {
    let (mut m, c) = base();
    for peer in 1..GRAPH_DIMENSION {
        m.set(0, peer, 1).unwrap();
        m.set(peer, 0, 1).unwrap();
    }
    pattern("star", "Star", "A single hub vertex is connected to every other vertex; the hub's row and column are full while the rest of the matrix is empty.", m, c)
}

/// Fig. 10b — clique: a fully connected subset of vertices.
pub fn clique() -> Pattern {
    let (mut m, c) = base();
    for a in 0..5 {
        for b in 0..5 {
            if a != b {
                m.set(a, b, 1).unwrap();
            }
        }
    }
    pattern("clique", "Clique", "A subset of vertices in which every pair is connected, forming a dense square block (minus the diagonal).", m, c)
}

/// Fig. 10c — bipartite: two vertex sets with edges only between the sets.
pub fn bipartite() -> Pattern {
    let (mut m, c) = base();
    for a in 0..5 {
        for b in 5..GRAPH_DIMENSION {
            m.set(a, b, 1).unwrap();
        }
    }
    pattern("bipartite", "Bipartite", "Vertices split into two sets with edges only between the sets, producing one off-diagonal block.", m, c)
}

/// Fig. 10d — tree: a connected acyclic graph (here a binary tree rooted at 0).
pub fn tree() -> Pattern {
    let (mut m, c) = base();
    for child in 1..GRAPH_DIMENSION {
        let parent = (child - 1) / 2;
        m.set(parent, child, 1).unwrap();
    }
    pattern("tree", "Tree", "A connected graph with no cycles: every vertex except the root has exactly one incoming edge from its parent.", m, c)
}

/// Fig. 10e — ring: every vertex connected to the next, wrapping around.
pub fn ring() -> Pattern {
    let (mut m, c) = base();
    for v in 0..GRAPH_DIMENSION {
        m.set(v, (v + 1) % GRAPH_DIMENSION, 1).unwrap();
    }
    pattern("ring", "Ring", "Each vertex is connected to the next in a cycle, producing a super-diagonal stripe with one wrap-around entry.", m, c)
}

/// Fig. 10f — mesh: a 2×5 grid where each vertex connects to its horizontal and
/// vertical neighbours.
pub fn mesh() -> Pattern {
    let (mut m, c) = base();
    let (rows, cols) = (2usize, 5usize);
    for r in 0..rows {
        for col in 0..cols {
            let v = r * cols + col;
            if col + 1 < cols {
                let right = v + 1;
                m.set(v, right, 1).unwrap();
                m.set(right, v, 1).unwrap();
            }
            if r + 1 < rows {
                let down = v + cols;
                m.set(v, down, 1).unwrap();
                m.set(down, v, 1).unwrap();
            }
        }
    }
    pattern(
        "mesh",
        "Mesh",
        "Vertices arranged in a grid are connected to their horizontal and vertical neighbours.",
        m,
        c,
    )
}

/// Fig. 10g — toroidal mesh: the mesh with wrap-around connections.
pub fn toroidal_mesh() -> Pattern {
    let (mut m, c) = base();
    let (rows, cols) = (2usize, 5usize);
    for r in 0..rows {
        for col in 0..cols {
            let v = r * cols + col;
            let right = r * cols + (col + 1) % cols;
            let down = ((r + 1) % rows) * cols + col;
            for peer in [right, down] {
                if peer != v {
                    m.add(v, peer, 1).unwrap();
                    m.add(peer, v, 1).unwrap();
                }
            }
        }
    }
    // Clamp duplicated wrap edges back to single edges for display clarity.
    let grid: Vec<Vec<u32>> = m
        .to_grid()
        .into_iter()
        .map(|row| row.into_iter().map(|v| v.min(1)).collect())
        .collect();
    let m = TrafficMatrix::from_grid(LabelSet::numeric(GRAPH_DIMENSION), &grid).unwrap();
    pattern("toroidal_mesh", "Toroidal Mesh", "A mesh whose rows and columns wrap around, so every vertex has the same number of neighbours.", m, c)
}

/// Fig. 10h — self loop: vertices connected to themselves (the matrix diagonal).
pub fn self_loop() -> Pattern {
    let (mut m, c) = base();
    for v in 0..GRAPH_DIMENSION {
        m.set(v, v, 1).unwrap();
    }
    pattern(
        "self_loop",
        "Self Loop",
        "Each vertex has an edge to itself, filling the matrix diagonal.",
        m,
        c,
    )
}

/// Fig. 10i — triangle: a 3-cycle.
pub fn triangle() -> Pattern {
    let (mut m, c) = base();
    for (a, b) in [(0usize, 1usize), (1, 2), (2, 0)] {
        m.set(a, b, 1).unwrap();
        m.set(b, a, 1).unwrap();
    }
    pattern("triangle", "Triangle", "Three vertices each connected to the other two: the smallest cycle and the building block of clustering metrics.", m, c)
}

/// All nine panels of Fig. 10 in figure order.
pub fn all() -> Vec<Pattern> {
    vec![
        star(),
        clique(),
        bipartite(),
        tree(),
        ring(),
        mesh(),
        toroidal_mesh(),
        self_loop(),
        triangle(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use tw_matrix::MatrixProfile;

    #[test]
    fn star_has_one_hub() {
        let p = star();
        let profile = MatrixProfile::of(&p.matrix);
        assert_eq!(profile.supernodes, vec![0]);
        assert_eq!(profile.degrees.max_fanout[0], GRAPH_DIMENSION - 1);
        assert!(p.matrix.is_symmetric());
    }

    #[test]
    fn clique_block_is_dense() {
        let p = clique();
        for a in 0..5 {
            for b in 0..5 {
                assert_eq!(p.matrix.get(a, b).unwrap(), u32::from(a != b));
            }
        }
        assert_eq!(p.matrix.nonzero_count(), 5 * 4);
    }

    #[test]
    fn bipartite_has_no_intra_set_edges() {
        let p = bipartite();
        for a in 0..5 {
            for b in 0..5 {
                assert_eq!(p.matrix.get(a, b), Some(0));
                assert_eq!(p.matrix.get(a + 5, b + 5), Some(0));
            }
        }
        assert_eq!(p.matrix.nonzero_count(), 25);
    }

    #[test]
    fn tree_has_n_minus_one_edges_and_no_cycles() {
        let p = tree();
        assert_eq!(p.matrix.nonzero_count(), GRAPH_DIMENSION - 1);
        // Every non-root vertex has exactly one parent.
        let in_fan = p.matrix.in_fanout();
        assert_eq!(in_fan[0], 0);
        assert!(in_fan[1..].iter().all(|&f| f == 1));
    }

    #[test]
    fn ring_is_a_single_cycle() {
        let p = ring();
        assert_eq!(p.matrix.nonzero_count(), GRAPH_DIMENSION);
        assert!(p.matrix.out_fanout().iter().all(|&f| f == 1));
        assert!(p.matrix.in_fanout().iter().all(|&f| f == 1));
        assert_eq!(p.matrix.get(GRAPH_DIMENSION - 1, 0), Some(1));
    }

    #[test]
    fn mesh_degrees_match_grid_structure() {
        let p = mesh();
        assert!(p.matrix.is_symmetric());
        // Corner vertices of a 2×5 grid have 2 neighbours; middle-edge vertices 3.
        let fanout = p.matrix.out_fanout();
        assert_eq!(fanout[0], 2);
        assert_eq!(fanout[2], 3);
    }

    #[test]
    fn toroidal_mesh_is_regular() {
        let p = toroidal_mesh();
        assert!(p.matrix.is_symmetric());
        let fanout = p.matrix.out_fanout();
        // Every vertex of a 2×5 torus has neighbours left/right (2 distinct) and
        // up/down (1 distinct, since wrapping in a 2-row torus reaches the same
        // vertex both ways) = 3 distinct neighbours.
        assert!(fanout.iter().all(|&f| f == 3), "fanout was {fanout:?}");
    }

    #[test]
    fn self_loop_fills_the_diagonal() {
        let p = self_loop();
        let profile = MatrixProfile::of(&p.matrix);
        assert_eq!(profile.self_loops, GRAPH_DIMENSION);
        assert_eq!(p.matrix.nonzero_count(), GRAPH_DIMENSION);
    }

    #[test]
    fn triangle_is_three_mutual_edges() {
        let p = triangle();
        assert_eq!(p.matrix.nonzero_count(), 6);
        assert!(p.matrix.is_symmetric());
    }

    #[test]
    fn figure_order_and_count() {
        let names: Vec<String> = all().into_iter().map(|p| p.name).collect();
        assert_eq!(
            names,
            vec![
                "Star",
                "Clique",
                "Bipartite",
                "Tree",
                "Ring",
                "Mesh",
                "Toroidal Mesh",
                "Self Loop",
                "Triangle"
            ]
        );
    }
}
