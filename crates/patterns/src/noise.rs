//! Background-noise mixing.
//!
//! The paper repeatedly suggests that, once the clean patterns are understood,
//! "they could all be combined together or potentially mixed in with random
//! background noise for a student to analyze and determine what is happening
//! in the network." This module provides that mixing, deterministically from a
//! seed so a module author can reproduce a specific exercise.

use crate::Pattern;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tw_matrix::TrafficMatrix;

/// Configuration for background-noise injection.
#[derive(Debug, Clone)]
pub struct NoiseConfig {
    /// Probability that any given empty cell receives noise traffic.
    pub cell_probability: f64,
    /// Maximum packets added to a noisy cell (uniform in `1..=max_packets`).
    pub max_packets: u32,
    /// Whether noise may also land on already-occupied cells.
    pub overlay_existing: bool,
    /// Whether noise may land on the diagonal (self-loops).
    pub allow_self_loops: bool,
    /// RNG seed, so the same exercise can be regenerated.
    pub seed: u64,
}

impl Default for NoiseConfig {
    fn default() -> Self {
        NoiseConfig {
            cell_probability: 0.08,
            max_packets: 3,
            overlay_existing: false,
            allow_self_loops: false,
            seed: 0,
        }
    }
}

/// Add background noise to a matrix according to `config`, returning the noisy
/// matrix and the number of cells that received noise.
pub fn add_noise_to_matrix(matrix: &TrafficMatrix, config: &NoiseConfig) -> (TrafficMatrix, usize) {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut out = matrix.clone();
    let n = matrix.dimension();
    let mut noisy_cells = 0usize;
    for r in 0..n {
        for c in 0..n {
            if r == c && !config.allow_self_loops {
                continue;
            }
            let occupied = matrix.get(r, c).unwrap_or(0) > 0;
            if occupied && !config.overlay_existing {
                continue;
            }
            if rng.gen_bool(config.cell_probability.clamp(0.0, 1.0)) {
                let packets = rng.gen_range(1..=config.max_packets.max(1));
                // tw-analyze: allow(no-panic-in-lib, "r and c iterate over the matrix's own dimension")
                out.add(r, c, packets).expect("indices in range");
                noisy_cells += 1;
            }
        }
    }
    (out, noisy_cells)
}

/// Wrap a pattern with background noise, renaming it so module listings make
/// the difficulty visible.
pub fn add_background_noise(pattern: &Pattern, config: &NoiseConfig) -> Pattern {
    let (matrix, noisy_cells) = add_noise_to_matrix(&pattern.matrix, config);
    Pattern {
        id: format!("{}+noise", pattern.id),
        name: format!("{} (with background noise)", pattern.name),
        relevant_to: pattern.relevant_to.clone(),
        explanation: format!(
            "{} {} cells of random background traffic have been added; the underlying pattern is still visible.",
            pattern.explanation, noisy_cells
        ),
        hint: pattern.hint.clone(),
        matrix,
        colors: pattern.colors.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ddos;

    #[test]
    fn noise_is_deterministic_per_seed() {
        let p = ddos::attack();
        let config = NoiseConfig {
            seed: 7,
            ..NoiseConfig::default()
        };
        let a = add_background_noise(&p, &config);
        let b = add_background_noise(&p, &config);
        assert_eq!(a.matrix, b.matrix);
        let c = add_background_noise(&p, &NoiseConfig { seed: 8, ..config });
        assert_ne!(a.matrix, c.matrix);
    }

    #[test]
    fn noise_preserves_the_original_signal() {
        let p = ddos::attack();
        let noisy = add_background_noise(
            &p,
            &NoiseConfig {
                cell_probability: 0.3,
                seed: 1,
                ..NoiseConfig::default()
            },
        );
        // Every original non-zero cell keeps at least its original value.
        for (r, c, v) in p.matrix.iter_nonzero() {
            assert!(noisy.matrix.get(r, c).unwrap() >= v);
        }
        assert!(noisy.matrix.total_packets() > p.matrix.total_packets());
        assert!(noisy.id.ends_with("+noise"));
    }

    #[test]
    fn zero_probability_adds_nothing() {
        let p = ddos::backscatter();
        let (noisy, cells) = add_noise_to_matrix(
            &p.matrix,
            &NoiseConfig {
                cell_probability: 0.0,
                seed: 3,
                ..NoiseConfig::default()
            },
        );
        assert_eq!(cells, 0);
        assert_eq!(noisy, p.matrix);
    }

    #[test]
    fn self_loops_respect_configuration() {
        let p = ddos::attack();
        let config = NoiseConfig {
            cell_probability: 1.0,
            allow_self_loops: false,
            overlay_existing: false,
            max_packets: 1,
            seed: 0,
        };
        let (noisy, _) = add_noise_to_matrix(&p.matrix, &config);
        for i in 0..noisy.dimension() {
            assert_eq!(noisy.get(i, i), Some(0), "diagonal must stay empty");
        }
        let with_loops = NoiseConfig {
            allow_self_loops: true,
            ..config
        };
        let (noisy, _) = add_noise_to_matrix(&p.matrix, &with_loops);
        assert!((0..noisy.dimension()).any(|i| noisy.get(i, i).unwrap() > 0));
    }

    #[test]
    fn full_probability_fills_every_empty_off_diagonal_cell() {
        let p = ddos::botnet_clients();
        let config = NoiseConfig {
            cell_probability: 1.0,
            max_packets: 2,
            overlay_existing: false,
            allow_self_loops: false,
            seed: 11,
        };
        let (noisy, cells) = add_noise_to_matrix(&p.matrix, &config);
        let n = p.matrix.dimension();
        let empty_off_diagonal = n * n - n - p.matrix.nonzero_count();
        assert_eq!(cells, empty_off_diagonal);
        assert_eq!(
            noisy.nonzero_count(),
            p.matrix.nonzero_count() + empty_off_diagonal
        );
    }
}
