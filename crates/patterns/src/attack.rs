//! The notional cyber attack stages (paper Fig. 7).
//!
//! "First is the planning stage, which is done in adversarial space. Second is
//! staging, which takes place in greyspace. Third is the infiltration stage,
//! which happens at the border between grey and blue space. The final stage is
//! lateral movement, which happens inside blue space."

// tw-analyze: allow-file(no-panic-in-lib, "static figure construction: attack patterns are built from hand-written literals and every pattern is round-tripped by the catalog tests")
use crate::{Pattern, DEFAULT_PACKETS};
use tw_matrix::{ColorMatrix, LabelSet, TrafficMatrix};

/// Hint references attached to the attack patterns (references [51], [52]).
pub const ATTACK_HINT: &str =
    "Kepner, 'Beyond Zero Botnets' (TEDxBoston 2022); Kepner et al., 'Zero Botnets: An Observe-Pursue-Counter Approach' (Belfer Center 2021)";

fn base() -> (LabelSet, TrafficMatrix, ColorMatrix) {
    let labels = LabelSet::paper_default_10();
    let matrix = TrafficMatrix::zeros(labels.clone());
    let colors = ColorMatrix::from_label_classes(&labels);
    (labels, matrix, colors)
}

/// Fig. 7a — planning: coordination traffic entirely within adversarial space.
pub fn planning() -> Pattern {
    let (labels, mut m, colors) = base();
    let adv = labels.red_indices();
    for &a in &adv {
        for &b in &adv {
            if a != b {
                m.set(a, b, 1).unwrap();
            }
        }
    }
    Pattern::new(
        "attack/planning",
        "Planning",
        "Planning",
        "All of the traffic stays inside adversarial (red) space: the attackers are coordinating among themselves before touching anyone else.",
        Some(ATTACK_HINT),
        m,
        colors,
    )
}

/// Fig. 7b — staging: adversaries push tooling into grey space.
pub fn staging() -> Pattern {
    let (labels, mut m, colors) = base();
    for &adv in &labels.red_indices() {
        for &ext in &labels.grey_indices() {
            m.set(adv, ext, DEFAULT_PACKETS).unwrap();
        }
    }
    Pattern::new(
        "attack/staging",
        "Staging",
        "Staging",
        "Traffic flows from adversarial space into neutral grey space as the attackers stage infrastructure closer to the target.",
        Some(ATTACK_HINT),
        m,
        colors,
    )
}

/// Fig. 7c — infiltration: traffic crosses the grey/blue border into the
/// defended network.
pub fn infiltration() -> Pattern {
    let (labels, mut m, colors) = base();
    for &ext in &labels.grey_indices() {
        for &blue in &labels.blue_indices() {
            m.set(ext, blue, DEFAULT_PACKETS).unwrap();
        }
    }
    Pattern::new(
        "attack/infiltration",
        "Infiltration",
        "Infiltration",
        "Traffic crosses the border from grey space into blue space as the staged infrastructure breaches the defended network.",
        Some(ATTACK_HINT),
        m,
        colors,
    )
}

/// Fig. 7d — lateral movement: activity spreads node-to-node inside blue space.
pub fn lateral_movement() -> Pattern {
    let (labels, mut m, colors) = base();
    let blue = labels.blue_indices();
    for &a in &blue {
        for &b in &blue {
            if a != b {
                m.set(a, b, 1).unwrap();
            }
        }
    }
    Pattern::new(
        "attack/lateral_movement",
        "Lateral Movement",
        "Lateral movement",
        "The traffic is entirely inside blue space: a foothold is spreading from machine to machine within the defended network.",
        Some(ATTACK_HINT),
        m,
        colors,
    )
}

/// All four stages of Fig. 7 in attack order.
pub fn all() -> Vec<Pattern> {
    vec![planning(), staging(), infiltration(), lateral_movement()]
}

/// The composite picture the paper suggests: "they could all be combined
/// together … for a student to analyze and determine what is happening".
pub fn combined() -> Pattern {
    let stages = all();
    let mut matrix = stages[0].matrix.clone();
    for stage in &stages[1..] {
        matrix = matrix.combine(&stage.matrix).expect("stages share labels");
    }
    let colors = stages[0].colors.clone();
    Pattern::new(
        "attack/combined",
        "Combined Attack",
        "A multi-stage cyber attack",
        "All four stages overlaid: planning in red space, staging into grey space, infiltration across the border and lateral movement inside blue space.",
        Some(ATTACK_HINT),
        matrix,
        colors,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use tw_matrix::{LinkClass, MatrixProfile};

    #[test]
    fn planning_stays_in_red_space() {
        let p = planning();
        let profile = MatrixProfile::of(&p.matrix);
        assert_eq!(
            profile.packets_for(LinkClass::IntraRed),
            p.matrix.total_packets()
        );
        assert_eq!(profile.packets_for(LinkClass::BlueRedContact), 0);
        assert_eq!(profile.self_loops, 0);
    }

    #[test]
    fn staging_is_red_to_grey_only() {
        let p = staging();
        let profile = MatrixProfile::of(&p.matrix);
        assert_eq!(
            profile.packets_for(LinkClass::GreyRedContact),
            p.matrix.total_packets()
        );
        // 4 adversaries × 2 externals × 2 packets.
        assert_eq!(p.matrix.total_packets(), 16);
    }

    #[test]
    fn infiltration_crosses_the_border() {
        let p = infiltration();
        let profile = MatrixProfile::of(&p.matrix);
        assert_eq!(
            profile.packets_for(LinkClass::BlueGreyBorder),
            p.matrix.total_packets()
        );
        // Every flow originates in grey space.
        for (r, _, _) in p.matrix.iter_nonzero() {
            assert!(p.matrix.labels().grey_indices().contains(&r));
        }
    }

    #[test]
    fn lateral_movement_stays_in_blue_space() {
        let p = lateral_movement();
        let profile = MatrixProfile::of(&p.matrix);
        assert_eq!(
            profile.packets_for(LinkClass::IntraBlue),
            p.matrix.total_packets()
        );
        assert!(!profile.has_red_contact());
    }

    #[test]
    fn stages_are_disjoint_and_combine_losslessly() {
        let stages = all();
        // No two stages share a non-zero cell: each stage lives in its own block.
        for i in 0..stages.len() {
            for j in (i + 1)..stages.len() {
                for (r, c, _) in stages[i].matrix.iter_nonzero() {
                    assert_eq!(
                        stages[j].matrix.get(r, c),
                        Some(0),
                        "stage {i} and {j} overlap at ({r},{c})"
                    );
                }
            }
        }
        let total: u64 = stages.iter().map(|s| s.matrix.total_packets()).sum();
        assert_eq!(combined().matrix.total_packets(), total);
    }

    #[test]
    fn stage_order_matches_figure() {
        let names: Vec<String> = all().into_iter().map(|p| p.name).collect();
        assert_eq!(
            names,
            vec!["Planning", "Staging", "Infiltration", "Lateral Movement"]
        );
    }
}
