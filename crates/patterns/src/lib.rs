//! # tw-patterns
//!
//! Generators for the traffic patterns shown in every figure of the paper's
//! learning-module section (§V), plus background-noise mixing and a pattern
//! classifier.
//!
//! Every generator returns a [`Pattern`]: a labelled traffic matrix, a color
//! plane, the multiple-choice answer the pattern is "most relevant to" (the
//! single question type used by all of the paper's modules) and a short
//! explanation an educator can show after the question is answered.
//!
//! | Paper figure | Module here |
//! |---|---|
//! | Fig. 6 — isolated links, single links, internal/external supernodes | [`topology`] |
//! | Fig. 7 — planning, staging, infiltration, lateral movement | [`attack`] |
//! | Fig. 8 — security, defense, deterrence | [`posture`] |
//! | Fig. 9 — C2, botnet clients, DDoS attack, backscatter | [`ddos`] |
//! | Fig. 10 — star, clique, bipartite, tree, ring, mesh, toroidal mesh, self loop, triangle | [`graph_theory`] |

pub mod attack;
pub mod catalog;
pub mod classify;
pub mod ddos;
pub mod graph_theory;
pub mod noise;
pub mod posture;
pub mod topology;

pub use catalog::{all_patterns, pattern_by_id, patterns_for_figure, Figure};
pub use classify::{classify, Classification};
pub use noise::{add_background_noise, NoiseConfig};

use tw_matrix::{ColorMatrix, TrafficMatrix};

/// The canonical question asked about every pattern, quoted from the paper:
/// "Which choice is the displayed traffic pattern most relevant to?"
pub const CANONICAL_QUESTION: &str =
    "Which choice is the displayed traffic pattern most relevant to?";

/// The default number of packets used for an emphasized link. The paper notes
/// that "fewer than 15 packets between any source and destination displays
/// well"; generators stay well under that.
pub const DEFAULT_PACKETS: u32 = 2;

/// A generated learning pattern: one panel of one of the paper's figures.
#[derive(Debug, Clone, PartialEq)]
pub struct Pattern {
    /// Stable identifier, e.g. `"topology/internal_supernode"`.
    pub id: String,
    /// Human-readable name, e.g. `"Internal Supernode"`.
    pub name: String,
    /// The answer to the canonical question that this pattern illustrates.
    pub relevant_to: String,
    /// One-sentence explanation shown after answering.
    pub explanation: String,
    /// Optional external reference ("hint") the paper points students at.
    pub hint: Option<String>,
    /// The traffic matrix displayed on the warehouse floor.
    pub matrix: TrafficMatrix,
    /// The pallet color plane.
    pub colors: ColorMatrix,
}

impl Pattern {
    /// Convenience constructor used by the generator modules.
    pub(crate) fn new(
        id: &str,
        name: &str,
        relevant_to: &str,
        explanation: &str,
        hint: Option<&str>,
        matrix: TrafficMatrix,
        colors: ColorMatrix,
    ) -> Self {
        Pattern {
            id: id.to_string(),
            name: name.to_string(),
            relevant_to: relevant_to.to_string(),
            explanation: explanation.to_string(),
            hint: hint.map(str::to_string),
            matrix,
            colors,
        }
    }

    /// The matrix dimension of this pattern.
    pub fn dimension(&self) -> usize {
        self.matrix.dimension()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_pattern_is_well_formed() {
        for pattern in all_patterns() {
            assert!(!pattern.id.is_empty());
            assert!(!pattern.name.is_empty());
            assert!(!pattern.relevant_to.is_empty());
            assert!(!pattern.explanation.is_empty());
            assert_eq!(
                pattern.matrix.dimension(),
                pattern.colors.dimension(),
                "matrix/color dimensions must agree for {}",
                pattern.id
            );
            assert!(
                pattern.matrix.total_packets() > 0,
                "{} has no traffic",
                pattern.id
            );
            assert!(
                pattern.matrix.max_value() < 15,
                "{} exceeds the paper's 15-packet display guidance",
                pattern.id
            );
        }
    }

    #[test]
    fn pattern_ids_are_unique() {
        let patterns = all_patterns();
        let mut ids: Vec<&str> = patterns.iter().map(|p| p.id.as_str()).collect();
        let before = ids.len();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), before);
        // The paper's figures contain 4 + 4 + 3 + 4 + 9 = 24 panels.
        assert_eq!(before, 24);
    }
}
