//! Distributed denial-of-service attack components (paper Fig. 9).
//!
//! "Botnet command and control (C2) is shown by representing the
//! communications in red space. The communication from the C2 servers to the
//! individual clients can be represented by identical communications between
//! the C2 nodes and the botnet clients. The attack is then represented by
//! communication from the botnet clients to the blue controlled servers,
//! followed by the backscatter when the servers reply back to the illegitimate
//! traffic."

// tw-analyze: allow-file(no-panic-in-lib, "static figure construction: ddos patterns are built from hand-written literals and every pattern is round-tripped by the catalog tests")
use crate::Pattern;
use tw_matrix::{ColorMatrix, LabelSet, TrafficMatrix};

/// Hint reference for the DDoS patterns (reference [52]).
pub const DDOS_HINT: &str =
    "Kepner et al., 'Zero Botnets: An Observe-Pursue-Counter Approach' (Belfer Center 2021)";

/// Index of the node acting as the C2 server (`ADV1`).
pub const C2_NODE: usize = 6;
/// Indices of the botnet clients: compromised grey-space hosts plus the
/// remaining adversary nodes.
pub const BOTNET_CLIENTS: [usize; 5] = [4, 5, 7, 8, 9];
/// Index of the victim server (`SRV1`).
pub const VICTIM: usize = 3;
/// Packets per client used in the attack panel (kept under the paper's
/// 15-packet display guidance).
pub const ATTACK_PACKETS: u32 = 9;

fn base() -> (LabelSet, TrafficMatrix, ColorMatrix) {
    let labels = LabelSet::paper_default_10();
    let matrix = TrafficMatrix::zeros(labels.clone());
    let colors = ColorMatrix::from_label_classes(&labels);
    (labels, matrix, colors)
}

/// Fig. 9a — command and control: the C2 server coordinates with the other
/// adversary nodes in red space.
pub fn command_and_control() -> Pattern {
    let (labels, mut m, colors) = base();
    for &adv in &labels.red_indices() {
        if adv != C2_NODE {
            m.set(C2_NODE, adv, 2).unwrap();
            m.set(adv, C2_NODE, 1).unwrap();
        }
    }
    Pattern::new(
        "ddos/command_and_control",
        "Command and Control (C2)",
        "Botnet command and control",
        "The command-and-control server coordinates with the other adversary nodes entirely within red space.",
        Some(DDOS_HINT),
        m,
        colors,
    )
}

/// Fig. 9b — botnet clients: identical tasking flows from the C2 server to
/// every client.
pub fn botnet_clients() -> Pattern {
    let (_labels, mut m, colors) = base();
    for &client in &BOTNET_CLIENTS {
        m.set(C2_NODE, client, 2).unwrap();
    }
    Pattern::new(
        "ddos/botnet_clients",
        "Botnet Clients",
        "Botnet client tasking",
        "The C2 server sends identical instructions to every botnet client, producing a row of equal values under the C2 node.",
        Some(DDOS_HINT),
        m,
        colors,
    )
}

/// Fig. 9c — the attack: every client floods the victim server.
pub fn attack() -> Pattern {
    let (_labels, mut m, colors) = base();
    for &client in &BOTNET_CLIENTS {
        m.set(client, VICTIM, ATTACK_PACKETS).unwrap();
    }
    Pattern::new(
        "ddos/attack",
        "DDoS Attack",
        "A distributed denial-of-service attack",
        "Every botnet client sends a high volume of traffic at the same blue server, producing a heavily loaded column over the victim.",
        Some(DDOS_HINT),
        m,
        colors,
    )
}

/// Fig. 9d — backscatter: the victim replies to the spoofed/illegitimate sources.
pub fn backscatter() -> Pattern {
    let (_labels, mut m, colors) = base();
    for &client in &BOTNET_CLIENTS {
        m.set(VICTIM, client, 1).unwrap();
    }
    Pattern::new(
        "ddos/backscatter",
        "Backscatter",
        "DDoS backscatter",
        "The victim server replies to the illegitimate traffic, producing a mirrored row of small responses from the server back toward the clients.",
        Some(DDOS_HINT),
        m,
        colors,
    )
}

/// All four panels of Fig. 9 in figure order.
pub fn all() -> Vec<Pattern> {
    vec![
        command_and_control(),
        botnet_clients(),
        attack(),
        backscatter(),
    ]
}

/// The combined DDoS picture (all components overlaid), which the paper
/// suggests as a follow-on exercise.
pub fn combined() -> Pattern {
    let parts = all();
    let mut matrix = parts[0].matrix.clone();
    for part in &parts[1..] {
        matrix = matrix.combine(&part.matrix).expect("parts share labels");
    }
    Pattern::new(
        "ddos/combined",
        "Combined DDoS",
        "A distributed denial-of-service attack",
        "C2 coordination, client tasking, the flood toward the victim and the backscatter replies all shown together.",
        Some(DDOS_HINT),
        matrix,
        parts[0].colors.clone(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use tw_matrix::{LinkClass, MatrixProfile};

    #[test]
    fn c2_stays_in_red_space() {
        let p = command_and_control();
        let profile = MatrixProfile::of(&p.matrix);
        assert_eq!(
            profile.packets_for(LinkClass::IntraRed),
            p.matrix.total_packets()
        );
    }

    #[test]
    fn botnet_tasking_is_identical_per_client() {
        let p = botnet_clients();
        let values: Vec<u32> = BOTNET_CLIENTS
            .iter()
            .map(|&c| p.matrix.get(C2_NODE, c).unwrap())
            .collect();
        assert!(
            values.windows(2).all(|w| w[0] == w[1]),
            "tasking must be identical"
        );
        assert_eq!(p.matrix.nonzero_count(), BOTNET_CLIENTS.len());
    }

    #[test]
    fn attack_concentrates_on_the_victim_column() {
        let p = attack();
        let in_deg = p.matrix.in_degrees();
        let victim_load = in_deg[VICTIM];
        assert_eq!(victim_load, p.matrix.total_packets());
        assert_eq!(p.matrix.in_fanout()[VICTIM], BOTNET_CLIENTS.len());
        assert!(p.matrix.max_value() < 15);
    }

    #[test]
    fn backscatter_mirrors_the_attack() {
        let a = attack();
        let b = backscatter();
        for &client in &BOTNET_CLIENTS {
            assert!(a.matrix.get(client, VICTIM).unwrap() > 0);
            assert!(b.matrix.get(VICTIM, client).unwrap() > 0);
        }
        // Backscatter is much smaller than the attack itself.
        assert!(b.matrix.total_packets() < a.matrix.total_packets());
    }

    #[test]
    fn combined_preserves_component_totals() {
        let parts = all();
        let total: u64 = parts.iter().map(|p| p.matrix.total_packets()).sum();
        assert_eq!(combined().matrix.total_packets(), total);
    }

    #[test]
    fn figure_order() {
        let names: Vec<String> = all().into_iter().map(|p| p.name).collect();
        assert_eq!(
            names,
            vec![
                "Command and Control (C2)",
                "Botnet Clients",
                "DDoS Attack",
                "Backscatter"
            ]
        );
    }
}
