//! A structural pattern classifier.
//!
//! The paper's future-work section imagines students analyzing composite or
//! noisy matrices "to determine what is happening in the network". The
//! classifier provides the machine-side reference for that exercise: given an
//! arbitrary matrix it ranks every catalog pattern by structural similarity,
//! so the game can check a student's analysis and the benchmarks can measure
//! how much noise a pattern tolerates before it becomes unrecognizable
//! (experiment E-S1/E-S3 support).

use crate::catalog::all_patterns;
use crate::Pattern;
use tw_matrix::TrafficMatrix;

/// The result of classifying a matrix against the catalog.
#[derive(Debug, Clone, PartialEq)]
pub struct Classification {
    /// Pattern id of the best match.
    pub best_id: String,
    /// Human-readable name of the best match.
    pub best_name: String,
    /// Similarity of the best match, in `[0, 1]`.
    pub best_score: f64,
    /// All `(pattern id, similarity)` pairs, sorted best-first.
    pub ranking: Vec<(String, f64)>,
}

/// Cosine similarity between the two matrices' cell-value vectors, treating a
/// missing dimension mismatch as zero similarity.
pub fn similarity(a: &TrafficMatrix, b: &TrafficMatrix) -> f64 {
    if a.dimension() != b.dimension() {
        return 0.0;
    }
    let n = a.dimension();
    let mut dot = 0f64;
    let mut norm_a = 0f64;
    let mut norm_b = 0f64;
    for r in 0..n {
        for c in 0..n {
            let va = a.get(r, c).unwrap_or(0) as f64;
            let vb = b.get(r, c).unwrap_or(0) as f64;
            dot += va * vb;
            norm_a += va * va;
            norm_b += vb * vb;
        }
    }
    if norm_a == 0.0 || norm_b == 0.0 {
        return 0.0;
    }
    dot / (norm_a.sqrt() * norm_b.sqrt())
}

/// Classify a matrix against a set of candidate patterns.
pub fn classify_against(matrix: &TrafficMatrix, candidates: &[Pattern]) -> Classification {
    let mut ranking: Vec<(String, f64)> = candidates
        .iter()
        .map(|p| (p.id.clone(), similarity(matrix, &p.matrix)))
        .collect();
    ranking.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    let (best_id, best_score) = ranking.first().cloned().unwrap_or((String::new(), 0.0));
    let best_name = candidates
        .iter()
        .find(|p| p.id == best_id)
        .map(|p| p.name.clone())
        .unwrap_or_default();
    Classification {
        best_id,
        best_name,
        best_score,
        ranking,
    }
}

/// Classify a matrix against the full figure catalog.
pub fn classify(matrix: &TrafficMatrix) -> Classification {
    classify_against(matrix, &all_patterns())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::noise::{add_background_noise, NoiseConfig};
    use crate::{attack, ddos, graph_theory, topology};

    #[test]
    fn every_clean_pattern_classifies_as_itself() {
        for p in all_patterns() {
            let result = classify(&p.matrix);
            assert_eq!(
                result.best_id, p.id,
                "clean {} must classify as itself",
                p.id
            );
            assert!((result.best_score - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn noisy_patterns_still_classify_correctly_at_moderate_noise() {
        let config = NoiseConfig {
            cell_probability: 0.05,
            max_packets: 1,
            seed: 3,
            ..NoiseConfig::default()
        };
        for p in [
            ddos::attack(),
            attack::planning(),
            topology::internal_supernode(),
            graph_theory::star(),
        ] {
            let noisy = add_background_noise(&p, &config);
            let result = classify(&noisy.matrix);
            assert_eq!(
                result.best_id, p.id,
                "noisy {} misclassified as {}",
                p.id, result.best_id
            );
            assert!(result.best_score > 0.5);
        }
    }

    #[test]
    fn similarity_properties() {
        let a = ddos::attack().matrix;
        let b = ddos::backscatter().matrix;
        assert!((similarity(&a, &a) - 1.0).abs() < 1e-12);
        let ab = similarity(&a, &b);
        let ba = similarity(&b, &a);
        assert!((ab - ba).abs() < 1e-12, "similarity must be symmetric");
        // Attack and backscatter occupy disjoint cells → orthogonal.
        assert_eq!(ab, 0.0);
        // Different dimensions → zero.
        let small = TrafficMatrix::zeros_numeric(4);
        assert_eq!(similarity(&a, &small), 0.0);
    }

    #[test]
    fn empty_matrix_has_zero_similarity_everywhere() {
        let empty = TrafficMatrix::zeros_numeric(10);
        let result = classify(&empty);
        assert_eq!(result.best_score, 0.0);
        assert!(result.ranking.iter().all(|(_, s)| *s == 0.0));
    }

    #[test]
    fn ranking_is_sorted_and_complete() {
        let result = classify(&ddos::combined().matrix);
        assert_eq!(result.ranking.len(), all_patterns().len());
        assert!(result.ranking.windows(2).all(|w| w[0].1 >= w[1].1));
        // The combined DDoS picture should rank a DDoS component highest.
        assert!(
            result.best_id.starts_with("ddos/"),
            "best was {}",
            result.best_id
        );
    }

    #[test]
    fn classify_against_empty_candidates() {
        let result = classify_against(&TrafficMatrix::zeros_numeric(10), &[]);
        assert_eq!(result.best_id, "");
        assert_eq!(result.best_score, 0.0);
        assert!(result.ranking.is_empty());
    }
}
